//! Golden determinism tests: the deterministic solver (Theorem 1) is
//! bit-reproducible, so the coloring of a fixed instance under fixed
//! parameters is a constant.  These hashes pin that constant; they fail
//! if *any* behavioral change slips into the deterministic pipeline —
//! seed search, PRG, procedure order, ACD tie-breaks, anything.
//!
//! If a change is intentional, regenerate with the snippet in this file's
//! history (FNV-1a over the color vector) and update the table — the
//! point is that such changes are *noticed*, not forbidden.

use parcolor_core::{Params, Solver};
use parcolor_graphgen as gen;

fn fnv(colors: &[u32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &c in colors {
        h ^= c as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const GOLDEN: &[(&str, u64)] = &[
    ("gnm_small", 0x304417442566199d),
    ("powerlaw", 0x628f1bf94afb89b6),
    ("planted", 0x97632bb00d9c50dc),
    ("lists", 0x952f23117cd4dd63),
    ("torus", 0x8fe1d40d608200de),
];

fn instance_of(name: &str) -> parcolor_core::D1lcInstance {
    match name {
        "gnm_small" => gen::degree_plus_one(gen::gnm(500, 2_000, 1)),
        "powerlaw" => gen::degree_plus_one(gen::power_law(500, 2.5, 8.0, 2)),
        "planted" => gen::degree_plus_one(gen::planted_cliques(&[24, 20], 0.1, 300, 6, 3)),
        "lists" => gen::random_lists(gen::gnm(400, 1_600, 4), 1_024, 2, 5),
        "torus" => gen::degree_plus_one(gen::torus(15, 15)),
        other => panic!("unknown golden case {other}"),
    }
}

#[test]
fn deterministic_solver_matches_golden_hashes() {
    for &(name, expected) in GOLDEN {
        let inst = instance_of(name);
        let sol = Solver::deterministic(Params::default().with_seed_bits(5)).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        let got = fnv(&sol.colors);
        assert_eq!(
            got, expected,
            "{name}: deterministic output drifted (got 0x{got:016x})"
        );
    }
}

#[test]
fn golden_hashes_are_distinct() {
    // Guards against a copy-paste error in the table itself.
    let mut hs: Vec<u64> = GOLDEN.iter().map(|&(_, h)| h).collect();
    hs.sort_unstable();
    hs.dedup();
    assert_eq!(hs.len(), GOLDEN.len());
}
