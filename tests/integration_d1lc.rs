//! End-to-end D1LC integration tests: every graph family × palette regime
//! through the full deterministic (Theorem 1) and randomized (Lemma 4)
//! pipelines, with verification after every solve.

use parcolor_core::baselines::greedy_sequential;
use parcolor_core::{D1lcInstance, Params, SeedStrategy, Solver};
use parcolor_graphgen as gen;

fn fast_params() -> Params {
    Params::default().with_seed_bits(5)
}

fn solve_both_ways(inst: &D1lcInstance) {
    let det = Solver::deterministic(fast_params()).solve(inst);
    inst.verify_coloring(&det.colors).expect("deterministic");
    let rand = Solver::randomized(fast_params(), 11).solve(inst);
    inst.verify_coloring(&rand.colors).expect("randomized");
}

#[test]
fn gnm_medium() {
    solve_both_ways(&gen::degree_plus_one(gen::gnm(3_000, 15_000, 1)));
}

#[test]
fn gnp_sparse() {
    solve_both_ways(&gen::degree_plus_one(gen::gnp(2_000, 0.003, 2)));
}

#[test]
fn random_regular_graph() {
    solve_both_ways(&gen::degree_plus_one(gen::random_regular(2_000, 12, 3)));
}

#[test]
fn power_law_graph() {
    solve_both_ways(&gen::degree_plus_one(gen::power_law(2_000, 2.5, 8.0, 4)));
}

#[test]
fn planted_almost_cliques() {
    let g = gen::planted_cliques(&[40, 40, 30, 30], 0.1, 1_000, 6, 5);
    solve_both_ways(&gen::degree_plus_one(g));
}

#[test]
fn torus_grid() {
    solve_both_ways(&gen::degree_plus_one(gen::torus(40, 50)));
}

#[test]
fn star_graph() {
    solve_both_ways(&gen::degree_plus_one(gen::star(1_500)));
}

#[test]
fn complete_bipartite_graph() {
    solve_both_ways(&gen::degree_plus_one(gen::complete_bipartite(60, 60)));
}

#[test]
fn random_list_palettes() {
    let inst = gen::random_lists(gen::gnm(1_500, 7_500, 6), 256, 3, 7);
    solve_both_ways(&inst);
}

#[test]
fn windowed_adversarial_palettes() {
    let inst = gen::windowed_lists(gen::gnm(1_000, 4_000, 8), 1_000);
    solve_both_ways(&inst);
}

#[test]
fn uniform_shared_palette() {
    solve_both_ways(&gen::uniform_palette(gen::gnm(1_200, 6_000, 9)));
}

#[test]
fn residual_of_partial_solve() {
    // The paper's motivating case: D1LC instances arise as residuals of
    // partially-solved (Δ+1) instances.
    let inst = gen::residual_after_partial(gen::gnm(2_000, 10_000, 10), 0.6, 11);
    solve_both_ways(&inst);
}

#[test]
fn degree_reduction_path_end_to_end() {
    // Cap the mid-degree threshold to force LowSpaceColorReduce recursion.
    let inst = gen::degree_plus_one(gen::gnm(1_500, 30_000, 12)); // avg deg 40
    let params = fast_params().with_mid_degree_cap(16).with_greedy_cutoff(48);
    let sol = Solver::deterministic(params).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
    assert!(sol.stats.partitions >= 1, "recursion path not taken");
    assert!(
        sol.stats.partition_stats.iter().all(|p| p.bins >= 3),
        "degenerate partition"
    );
}

#[test]
fn deterministic_matches_itself_across_strategies_for_validity() {
    // All seed strategies must yield *valid* colorings (not identical ones).
    let inst = gen::degree_plus_one(gen::gnm(800, 4_000, 13));
    for strategy in [
        SeedStrategy::Exhaustive,
        SeedStrategy::FixedSubset(16),
        SeedStrategy::BitwiseCondExp,
        SeedStrategy::SingleSeed(3),
    ] {
        let params = fast_params().with_strategy(strategy);
        let sol = Solver::deterministic(params).solve(&inst);
        inst.verify_coloring(&sol.colors)
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
    }
}

#[test]
fn solver_never_uses_more_colors_than_greedy_universe() {
    // Sanity: on (Δ+1) instances, every color is ≤ Δ by construction.
    let inst = gen::degree_plus_one(gen::gnm(1_000, 5_000, 14));
    let delta = inst.graph.max_degree() as u32;
    let sol = Solver::deterministic(fast_params()).solve(&inst);
    assert!(sol.colors.iter().all(|&c| c <= delta));
    let (gcolors, _) = greedy_sequential(&inst);
    assert!(gcolors.iter().all(|&c| c <= delta));
}

#[test]
fn randomized_keys_explore_different_colorings() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 8_000, 15));
    let a = Solver::randomized(fast_params(), 1).solve(&inst);
    let b = Solver::randomized(fast_params(), 2).solve(&inst);
    assert_ne!(a.colors, b.colors);
}

#[test]
fn deterministic_bit_reproducible_across_families() {
    for (i, inst) in [
        gen::degree_plus_one(gen::gnm(600, 3_000, 20)),
        gen::random_lists(gen::power_law(600, 2.6, 6.0, 21), 128, 2, 22),
    ]
    .iter()
    .enumerate()
    {
        let a = Solver::deterministic(fast_params()).solve(inst);
        let b = Solver::deterministic(fast_params()).solve(inst);
        assert_eq!(a.colors, b.colors, "family {i} not reproducible");
        assert_eq!(a.cost.mpc_rounds, b.cost.mpc_rounds);
    }
}
