//! Failure-injection tests for Definition 5's deferral semantics.
//!
//! The paper's framework promises that *any* subset of nodes may be
//! deferred after a procedure without breaking anyone else (the weak
//! success property), because deferred nodes re-enter as a residual D1LC
//! instance.  These tests turn on the runner's chaos knob — which defers
//! every remaining uncolored node with probability p after *every*
//! framework step, on top of genuine SSP failures — and require the full
//! solvers to still terminate with verified colorings.
//!
//! The `network_chaos_*` legs layer **distribution failures** on top:
//! the same solves run on a loopback coordinator/worker cluster behind
//! the deterministic chaos proxy (kills, stragglers, total fleet
//! absence), and must still produce verified colorings that are
//! bit-identical to the single-machine path.

use parcolor_core::{D1lcInstance, Params, SeedStrategy, Solver};
use parcolor_dist::{solve_on_cluster, ChaosConfig, DistConfig};
use parcolor_graphgen as gen;

fn chaos_params(p: f64) -> Params {
    Params::default()
        .with_seed_bits(5)
        .with_strategy(SeedStrategy::FixedSubset(8))
        .with_chaos(p)
}

#[test]
fn deterministic_survives_mild_chaos() {
    let inst = gen::degree_plus_one(gen::gnm(1_500, 7_500, 1));
    let sol = Solver::deterministic(chaos_params(0.05)).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn deterministic_survives_heavy_chaos() {
    // 30% of survivors knocked out after every single step.
    let inst = gen::degree_plus_one(gen::gnm(800, 4_000, 2));
    let sol = Solver::deterministic(chaos_params(0.30)).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn randomized_survives_chaos() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 5_000, 3));
    let sol = Solver::randomized(chaos_params(0.2), 7).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn chaos_on_structured_graphs() {
    for inst in [
        gen::degree_plus_one(gen::planted_cliques(&[30, 30], 0.1, 500, 6, 4)),
        gen::degree_plus_one(gen::power_law(800, 2.5, 8.0, 5)),
        gen::degree_plus_one(gen::star(500)),
        gen::random_lists(gen::gnm(600, 3_000, 6), 2_048, 2, 7),
    ] {
        let sol = Solver::deterministic(chaos_params(0.15)).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
    }
}

#[test]
fn chaos_with_degree_reduction_path() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 20_000, 8));
    let params = chaos_params(0.1)
        .with_mid_degree_cap(16)
        .with_greedy_cutoff(48);
    let sol = Solver::deterministic(params).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
    assert!(sol.stats.partitions >= 1);
}

#[test]
fn chaos_is_deterministic_too() {
    // Injection is driven by the step counter, so even chaotic runs are
    // bit-reproducible in deterministic mode.
    let inst = gen::degree_plus_one(gen::gnm(700, 3_500, 9));
    let a = Solver::deterministic(chaos_params(0.2)).solve(&inst);
    let b = Solver::deterministic(chaos_params(0.2)).solve(&inst);
    assert_eq!(a.colors, b.colors);
}

// ---- network chaos: the distributed seed search under fire ----

/// Job codec for the cluster legs: generator parameters, so every node
/// rebuilds the identical instance (the CLI ships DIMACS instead).
fn net_decode(job: &[u8]) -> (D1lcInstance, Params) {
    let p: Vec<&str> = std::str::from_utf8(job)
        .unwrap()
        .split_whitespace()
        .collect();
    let inst = gen::degree_plus_one(gen::gnm(
        p[0].parse().unwrap(),
        p[1].parse().unwrap(),
        p[2].parse().unwrap(),
    ));
    let params = Params::default()
        .with_seed_bits(p[3].parse().unwrap())
        .with_strategy(SeedStrategy::Exhaustive)
        .with_chaos(p[4].parse().unwrap());
    (inst, params)
}

fn net_job(n: usize, m: usize, seed: u64, bits: u32, chaos: f64) -> Vec<u8> {
    format!("{n} {m} {seed} {bits} {chaos}").into_bytes()
}

fn net_cfg(min_workers: usize) -> DistConfig {
    DistConfig {
        lease_timeout_ms: 30,
        poll_ms: 2,
        local_patience_ms: 300,
        min_workers,
        min_worker_wait_ms: 10_000,
        connect_backoff_ms: 10,
        max_backoff_ms: 100,
        idle_reconnect_ms: 400,
        ..DistConfig::default()
    }
}

fn net_expected(job: &[u8]) -> Vec<u32> {
    let (inst, params) = net_decode(job);
    let sol = Solver::deterministic(params).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
    sol.colors
}

#[test]
fn network_chaos_worker_killed_mid_lease() {
    // Deferral chaos *and* a link that dies every 11 frames: severed
    // leases re-issue, the worker reconnects through the kill loop, and
    // the coloring stays bit-identical to the single-machine solve.
    let job = net_job(600, 3_000, 21, 7, 0.10);
    let expected = net_expected(&job);
    let out = solve_on_cluster(
        &job,
        net_decode,
        1,
        &[Some(ChaosConfig::killer(77, 11))],
        net_cfg(1),
    );
    let (inst, _) = net_decode(&job);
    inst.verify_coloring(&out.coordinator.colors).unwrap();
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    if let Some(w) = &out.workers[0] {
        assert_eq!(w.colors, expected, "worker replica diverged");
    }
    assert!(out.stats.reissued >= 1, "{:?}", out.stats);
}

#[test]
fn network_chaos_straggler_past_deadline() {
    // One healthy worker plus one behind an 80 ms link while leases
    // expire at 30 ms: every straggler lease blows its deadline, its
    // late results are discarded, and the fast worker (or the local
    // fallback) re-serves the units — exactly once.
    let job = net_job(600, 3_000, 22, 7, 0.10);
    let expected = net_expected(&job);
    let out = solve_on_cluster(
        &job,
        net_decode,
        2,
        &[None, Some(ChaosConfig::straggler(78, 80, 40))],
        net_cfg(2),
    );
    let (inst, _) = net_decode(&job);
    inst.verify_coloring(&out.coordinator.colors).unwrap();
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    assert_eq!(out.workers[0].as_ref().unwrap().colors, expected);
    assert!(out.stats.expired >= 1, "{:?}", out.stats);
    assert!(out.stats.reissued >= 1, "{:?}", out.stats);
}

#[test]
fn network_chaos_coordinator_alone_degrades_to_local() {
    // The fleet never shows up at all; the coordinator's graceful
    // degradation serves every fold from its own pool.
    let job = net_job(600, 3_000, 23, 7, 0.10);
    let expected = net_expected(&job);
    let out = solve_on_cluster(&job, net_decode, 0, &[], net_cfg(0));
    let (inst, _) = net_decode(&job);
    inst.verify_coloring(&out.coordinator.colors).unwrap();
    assert_eq!(out.coordinator.colors, expected);
    assert!(out.stats.local_units >= 1);
    assert_eq!(out.stats.remote_units, 0);
}

#[test]
fn chaos_increases_deferral_telemetry() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 6_000, 10));
    let calm = Solver::deterministic(chaos_params(0.0)).solve(&inst);
    let wild = Solver::deterministic(chaos_params(0.25)).solve(&inst);
    inst.verify_coloring(&wild.colors).unwrap();
    // Chaos forces more pipeline iterations / finisher work.
    let calm_work = calm.stats.mid_invocations + calm.stats.greedy_finished;
    let wild_work =
        wild.stats.mid_invocations + wild.stats.greedy_finished + wild.stats.total_deferrals;
    assert!(
        wild_work >= calm_work,
        "chaos had no observable effect: {calm_work} vs {wild_work}"
    );
}
