//! Failure-injection tests for Definition 5's deferral semantics.
//!
//! The paper's framework promises that *any* subset of nodes may be
//! deferred after a procedure without breaking anyone else (the weak
//! success property), because deferred nodes re-enter as a residual D1LC
//! instance.  These tests turn on the runner's chaos knob — which defers
//! every remaining uncolored node with probability p after *every*
//! framework step, on top of genuine SSP failures — and require the full
//! solvers to still terminate with verified colorings.

use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen as gen;

fn chaos_params(p: f64) -> Params {
    Params::default()
        .with_seed_bits(5)
        .with_strategy(SeedStrategy::FixedSubset(8))
        .with_chaos(p)
}

#[test]
fn deterministic_survives_mild_chaos() {
    let inst = gen::degree_plus_one(gen::gnm(1_500, 7_500, 1));
    let sol = Solver::deterministic(chaos_params(0.05)).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn deterministic_survives_heavy_chaos() {
    // 30% of survivors knocked out after every single step.
    let inst = gen::degree_plus_one(gen::gnm(800, 4_000, 2));
    let sol = Solver::deterministic(chaos_params(0.30)).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn randomized_survives_chaos() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 5_000, 3));
    let sol = Solver::randomized(chaos_params(0.2), 7).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
}

#[test]
fn chaos_on_structured_graphs() {
    for inst in [
        gen::degree_plus_one(gen::planted_cliques(&[30, 30], 0.1, 500, 6, 4)),
        gen::degree_plus_one(gen::power_law(800, 2.5, 8.0, 5)),
        gen::degree_plus_one(gen::star(500)),
        gen::random_lists(gen::gnm(600, 3_000, 6), 2_048, 2, 7),
    ] {
        let sol = Solver::deterministic(chaos_params(0.15)).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
    }
}

#[test]
fn chaos_with_degree_reduction_path() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 20_000, 8));
    let params = chaos_params(0.1)
        .with_mid_degree_cap(16)
        .with_greedy_cutoff(48);
    let sol = Solver::deterministic(params).solve(&inst);
    inst.verify_coloring(&sol.colors).unwrap();
    assert!(sol.stats.partitions >= 1);
}

#[test]
fn chaos_is_deterministic_too() {
    // Injection is driven by the step counter, so even chaotic runs are
    // bit-reproducible in deterministic mode.
    let inst = gen::degree_plus_one(gen::gnm(700, 3_500, 9));
    let a = Solver::deterministic(chaos_params(0.2)).solve(&inst);
    let b = Solver::deterministic(chaos_params(0.2)).solve(&inst);
    assert_eq!(a.colors, b.colors);
}

#[test]
fn chaos_increases_deferral_telemetry() {
    let inst = gen::degree_plus_one(gen::gnm(1_000, 6_000, 10));
    let calm = Solver::deterministic(chaos_params(0.0)).solve(&inst);
    let wild = Solver::deterministic(chaos_params(0.25)).solve(&inst);
    inst.verify_coloring(&wild.colors).unwrap();
    // Chaos forces more pipeline iterations / finisher work.
    let calm_work = calm.stats.mid_invocations + calm.stats.greedy_finished;
    let wild_work =
        wild.stats.mid_invocations + wild.stats.greedy_finished + wild.stats.total_deferrals;
    assert!(
        wild_work >= calm_work,
        "chaos had no observable effect: {calm_work} vs {wild_work}"
    );
}
