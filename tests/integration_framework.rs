//! Framework-level integration tests: Lemma 10's deferral guarantee, the
//! weak-success-property semantics (deferral only helps), and the MIS
//! generality example, across crates.

use parcolor_core::framework::{NormalProcedure, Runner};
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::mis::{derandomized_luby_mis, luby_mis, verify_mis};
use parcolor_core::{ChunkMode, D1lcInstance, Graph, NodeId, Params, SeedStrategy};
use parcolor_graphgen as gen;
use parcolor_local::tape::CryptoTape;

#[test]
fn chosen_seed_beats_mean_on_every_step() {
    let g = gen::gnm(500, 2_500, 1);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let params = Params::default().with_seed_bits(7);
    let mut state = ColoringState::new(&inst);
    let mut runner = Runner::derandomized(&g, &params, 500);
    for tag in 0..5 {
        let live = state.uncolored_nodes();
        if live.is_empty() {
            break;
        }
        let set = StageSet::new(500, live);
        let proc = TryRandomColor::new(&g, set, SspMode::Colored, tag);
        let rep = runner.run_step(&proc, &mut state);
        let sel = rep.selection.expect("derandomized");
        assert!(
            sel.cost <= sel.mean_cost + 1e-9,
            "step {tag}: chosen {} > mean {}",
            sel.cost,
            sel.mean_cost
        );
    }
    assert!(state.verify_partial(&g).is_ok());
}

#[test]
fn deferral_only_creates_slack() {
    // Definition 5's WSP argument, machine-checked: defer an arbitrary
    // subset of nodes (= exclude them from the stage) and verify that
    // every remaining node's stage slack is at least what it was.
    let g = gen::gnm(300, 1_800, 2);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let all: Vec<NodeId> = (0..300).collect();
    let full = StageSet::new(300, all.clone());
    // Defer every third node.
    let reduced: Vec<NodeId> = all.iter().copied().filter(|v| v % 3 != 0).collect();
    let sub = StageSet::new(300, reduced.clone());
    for &v in &reduced {
        let deg_full = g.neighbors(v).iter().filter(|&&u| full.contains(u)).count() as i64;
        let deg_sub = g.neighbors(v).iter().filter(|&&u| sub.contains(u)).count() as i64;
        let p = state.palette_size(v) as i64;
        assert!(p - deg_sub >= p - deg_full, "deferral reduced slack at {v}");
    }
}

#[test]
fn power_coloring_chunks_agree_with_per_node() {
    // Both chunk modes must produce valid (not identical) executions.
    let g = gen::gnm(120, 360, 3);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    for chunking in [ChunkMode::PerNode, ChunkMode::PowerColoring] {
        let params = Params::default().with_seed_bits(5).with_chunking(chunking);
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::derandomized(&g, &params, 120);
        let set = StageSet::new(120, state.uncolored_nodes());
        let proc = TryRandomColor::new(&g, set, SspMode::Colored, 0);
        let rep = runner.run_step(&proc, &mut state);
        assert!(rep.selection.unwrap().satisfies_guarantee());
        assert!(state.verify_partial(&g).is_ok(), "{chunking:?}");
    }
}

#[test]
fn randomized_and_derandomized_share_procedure_code() {
    // The same procedure object must run under both tapes (API check).
    let g = gen::gnm(100, 300, 4);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(100, state.uncolored_nodes());
    let proc = TryRandomColor::new(&g, set, SspMode::Auto, 0);
    let out_true = proc.simulate(&state, &CryptoTape::new(1));
    assert!(!out_true.adoptions.is_empty());
}

#[test]
fn mis_derandomization_matches_randomized_quality() {
    let g = gen::gnm(800, 4_000, 5);
    let rand = luby_mis(&g, 3, 1_000);
    let det = derandomized_luby_mis(&g, 7, SeedStrategy::Exhaustive, 1_000);
    verify_mis(&g, &rand.in_mis).unwrap();
    verify_mis(&g, &det.in_mis).unwrap();
    let rs = rand.in_mis.iter().filter(|&&b| b).count();
    let ds = det.in_mis.iter().filter(|&&b| b).count();
    // Same ballpark of independent-set size (both are maximal).
    assert!(
        ds * 2 > rs,
        "derandomized MIS suspiciously small: {ds} vs {rs}"
    );
    // Round counts within a small factor.
    assert!(det.rounds <= rand.rounds * 3 + 5);
}

#[test]
fn mis_on_structured_graphs() {
    for g in [
        gen::torus(20, 20),
        gen::star(200),
        gen::complete_bipartite(30, 30),
    ] {
        let det = derandomized_luby_mis(&g, 6, SeedStrategy::FixedSubset(16), 1_000);
        verify_mis(&g, &det.in_mis).unwrap();
    }
}

#[test]
fn stage_set_membership_is_consistent() {
    let set = StageSet::new(10, vec![1, 3, 5]);
    assert!(set.contains(1));
    assert!(!set.contains(0));
    assert_eq!(set.active.len(), 3);
}

/// `TryRandomColor` expressed as a genuine message-passing LOCAL
/// algorithm: round 0 picks a color and sends it to all active neighbors;
/// round 1 adopts unless some neighbor announced the same pick.  Run under
/// the same tape as the whole-graph-pass implementation in
/// `hknt::procs`, the two must produce identical adoption sets — the
/// correspondence the round-accounting engine's docs assert.
#[test]
fn message_passing_matches_pass_implementation() {
    use parcolor_core::hknt::procs::TryRandomColor;
    use parcolor_local::message::{run_message_passing, MessageAlgorithm};
    use parcolor_local::tape::Randomness;

    let g = gen::gnm(400, 1_600, 77);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let active: Vec<NodeId> = state.uncolored_nodes();
    let set = StageSet::new(g.n(), active.clone());
    let tape = CryptoTape::new(31);

    // Reference: the whole-graph pass.
    let round_tag = 5u64;
    let proc = TryRandomColor::new(&g, set, SspMode::Auto, round_tag);
    let mut reference: Vec<(NodeId, u32)> = proc.simulate(&state, &tape).adoptions;
    reference.sort_unstable();

    // Message-passing version drawing from the identical tape address:
    // TryRandomColor::pick uses stream S_PICK ^ (round_tag << 8) with
    // S_PICK = 1 and index 0 (see procs.rs).
    struct MpTryColor<'a> {
        g: &'a Graph,
        state: &'a ColoringState,
        stream: u64,
    }
    #[derive(Clone)]
    struct St {
        pick: u32,
        adopted: Option<u32>,
        finished: bool,
    }
    impl MessageAlgorithm for MpTryColor<'_> {
        type State = St;
        type Msg = u32;
        fn init(&self, _v: NodeId) -> St {
            St {
                pick: 0,
                adopted: None,
                finished: false,
            }
        }
        fn round(
            &self,
            v: NodeId,
            round: u32,
            st: &mut St,
            inbox: &[(NodeId, u32)],
            rng: &dyn Randomness,
        ) -> Vec<(NodeId, u32)> {
            match round {
                0 => {
                    let pal = self.state.palette(v);
                    st.pick = pal[rng.below(v, self.stream, 0, pal.len() as u64) as usize];
                    self.g.neighbors(v).iter().map(|&u| (u, st.pick)).collect()
                }
                _ => {
                    let clash = inbox.iter().any(|&(_, c)| c == st.pick);
                    if !clash {
                        st.adopted = Some(st.pick);
                    }
                    st.finished = true;
                    Vec::new()
                }
            }
        }
        fn done(&self, st: &St) -> bool {
            st.finished
        }
    }
    let algo = MpTryColor {
        g: &g,
        state: &state,
        stream: 1 ^ (round_tag << 8), // S_PICK ^ (round_tag << 8)
    };
    let run = run_message_passing(&g, &algo, &tape, 4);
    let mut via_messages: Vec<(NodeId, u32)> = run
        .states
        .iter()
        .enumerate()
        .filter_map(|(v, st)| st.adopted.map(|c| (v as NodeId, c)))
        .collect();
    via_messages.sort_unstable();

    assert_eq!(run.rounds, 2, "TryRandomColor is a 2-round LOCAL procedure");
    assert_eq!(
        reference, via_messages,
        "whole-graph pass diverged from true message passing"
    );
}
