//! MPC cost-model integration tests: the round/space accounting that
//! Theorem 1 constrains, validated end-to-end (core × mpc crates).

use parcolor_core::{Params, Solver};
use parcolor_graphgen as gen;
use parcolor_local::engine::log_star;
use parcolor_mpc::{Cluster, MpcConfig};

fn fast_params() -> Params {
    Params::default().with_seed_bits(5)
}

#[test]
fn rounds_grow_triple_log_slow() {
    // Theorem 1's shape: MPC rounds must grow dramatically slower than n.
    let mut rounds = Vec::new();
    for (n, m) in [(500usize, 2_500usize), (2_000, 10_000), (8_000, 40_000)] {
        let inst = gen::degree_plus_one(gen::gnm(n, m, 7));
        let sol = Solver::deterministic(fast_params()).solve(&inst);
        rounds.push(sol.cost.mpc_rounds);
    }
    // 16× more nodes may cost at most ~2.5× the rounds (triple-log would
    // predict far less; this bound leaves room for threshold effects).
    assert!(
        rounds[2] as f64 <= rounds[0] as f64 * 2.5 + 20.0,
        "rounds grew too fast: {rounds:?}"
    );
}

#[test]
fn machine_space_stays_sublinear() {
    let n = 4_000;
    let inst = gen::degree_plus_one(gen::gnm(n, 20_000, 8));
    let sol = Solver::deterministic(fast_params()).solve(&inst);
    // Budget: s = c · n^φ with φ=0.5, c=8 → 8·63 ≈ 506 words.
    let budget = (8.0 * (n as f64).sqrt()) as u64;
    assert!(
        sol.cost.max_machine_words <= budget,
        "peak {} exceeds s={budget}",
        sol.cost.max_machine_words
    );
    assert_eq!(sol.cost.budget_violations, 0, "budget violations recorded");
}

#[test]
fn sort_primitive_is_constant_rounds_at_scale() {
    // GSZ11-style sorting: same round charge regardless of input size.
    let mut counts = Vec::new();
    for n in [1usize << 12, 1 << 15] {
        let c = Cluster::new(MpcConfig::new(n, n, 0.5));
        let d = c.distribute((0..n as u64).rev().collect(), 1);
        let before = c.metrics().rounds();
        let _ = c.sort_by_key(d, 1, |&x| x);
        counts.push(c.metrics().rounds() - before);
    }
    assert_eq!(counts[0], counts[1], "sort rounds depend on n: {counts:?}");
}

#[test]
fn local_rounds_track_log_star_budget() {
    // The HKNT stage is a series of O(log* n) procedures; LOCAL rounds
    // charged per stage should be within a constant factor of
    // (try_repeats + log*·reps_a + reps_b/κ + 1) · constants.
    let inst = gen::degree_plus_one(gen::gnm(3_000, 24_000, 9));
    let sol = Solver::deterministic(fast_params()).solve(&inst);
    let per_stage_budget = 200 * (log_star(3_000.0) as u64 + 3);
    let stages = sol.stats.mid_invocations.max(1) as u64;
    assert!(
        sol.cost.local_rounds <= per_stage_budget * stages + 500,
        "LOCAL rounds {} vs budget {} × {stages}",
        sol.cost.local_rounds,
        per_stage_budget
    );
}

#[test]
fn global_space_budget_holds() {
    let n = 3_000usize;
    let m = 15_000usize;
    let cfg = MpcConfig::new(n, m, 0.5);
    // Global budget must dominate the instance itself.
    assert!(cfg.global_budget >= m + n);
    // And the cluster must fit the edge list without violations.
    let c = Cluster::new(cfg);
    let edges: Vec<u64> = (0..m as u64).collect();
    let d = c.distribute(edges, 2);
    assert_eq!(c.metrics().budget_violations(), 0);
    assert!(d.machine_count() >= 2, "degenerate distribution");
}

#[test]
fn deterministic_and_randomized_round_costs_are_comparable() {
    // Lemma 10 costs O(1) MPC rounds per procedure over the randomized
    // version, so the two pipelines' round counts stay within a small
    // factor of each other.
    let inst = gen::degree_plus_one(gen::gnm(2_000, 12_000, 10));
    let det = Solver::deterministic(fast_params()).solve(&inst);
    let rand = Solver::randomized(fast_params(), 5).solve(&inst);
    let ratio = det.cost.mpc_rounds as f64 / rand.cost.mpc_rounds.max(1) as f64;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "derandomization round overhead out of band: {ratio} ({} vs {})",
        det.cost.mpc_rounds,
        rand.cost.mpc_rounds
    );
}

#[test]
fn partition_charges_are_recorded() {
    let inst = gen::degree_plus_one(gen::gnm(1_200, 24_000, 11)); // avg 40
    let params = fast_params().with_mid_degree_cap(16).with_greedy_cutoff(48);
    let sol = Solver::deterministic(params).solve(&inst);
    assert!(sol.stats.partitions >= 1);
    for p in &sol.stats.partition_stats {
        assert!(p.seeds_tried >= 1);
        assert!(p.high_nodes + p.mid_nodes >= 1);
    }
}
