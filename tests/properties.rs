//! Property-based tests (proptest) for the core invariants:
//! * the D1LC self-reducibility invariant `p(v) ≥ d(v)+1` under arbitrary
//!   valid partial colorings (Definition 11 / E14),
//! * properness and palette-membership of every solver output,
//! * graph/CSR structural invariants under random edge lists,
//! * seed-selection guarantees for arbitrary cost functions.

use parcolor_core::baselines::greedy_sequential;
use parcolor_core::instance::{ColoringState, D1lcInstance, PaletteArena};
use parcolor_core::{Graph, NodeId, Params, Solver};
use parcolor_prg::{select_seed, SeedStrategy};
use proptest::prelude::*;

/// Random simple graph from a proptest edge list.
fn graph_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..max_m).prop_map(
            move |pairs| {
                let edges: Vec<(NodeId, NodeId)> =
                    pairs.into_iter().filter(|(a, b)| a != b).collect();
                Graph::from_edges(n, &edges)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_invariants_hold(g in graph_strategy(60, 200)) {
        prop_assert!(g.validate().is_ok());
        // Handshake: sum of degrees = 2m.
        let degsum: usize = (0..g.n() as NodeId).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in graph_strategy(40, 120), pick in any::<u64>()) {
        // Take a pseudorandom subset of nodes.
        let nodes: Vec<NodeId> = (0..g.n() as NodeId)
            .filter(|&v| (pick >> (v % 64)) & 1 == 1)
            .collect();
        let (h, map) = g.induced(&nodes);
        prop_assert!(h.validate().is_ok());
        for (new_u, &old_u) in map.iter().enumerate() {
            for &new_v in h.neighbors(new_u as NodeId) {
                prop_assert!(g.has_edge(old_u, map[new_v as usize]));
            }
        }
    }

    #[test]
    fn self_reducibility_invariant_under_random_partial_colorings(
        g in graph_strategy(50, 150),
        seed in any::<u64>(),
    ) {
        // E14: apply random valid adoptions one at a time; the invariant
        // p(v) ≥ d(v)+1 must hold at every prefix.
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let mut rng = parcolor_local::tape::SplitMix::new(seed);
        for _ in 0..g.n() {
            let unc = state.uncolored_nodes();
            if unc.is_empty() { break; }
            let v = unc[rng.below(unc.len() as u64) as usize];
            let pal = state.palette(v).to_vec();
            prop_assert!(!pal.is_empty());
            let c = pal[rng.below(pal.len() as u64) as usize];
            state.apply_adoptions(&g, &[(v, c)]);
            prop_assert!(state.invariant_violation().is_none(),
                "invariant broken after coloring {}", v);
        }
        prop_assert!(state.verify_partial(&g).is_ok());
    }

    #[test]
    fn residual_instances_are_valid_d1lc(
        g in graph_strategy(40, 120),
        seed in any::<u64>(),
    ) {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let mut rng = parcolor_local::tape::SplitMix::new(seed);
        // Color roughly half the nodes.
        for _ in 0..g.n() / 2 {
            let unc = state.uncolored_nodes();
            if unc.is_empty() { break; }
            let v = unc[rng.below(unc.len() as u64) as usize];
            let c = state.palette(v)[0];
            state.apply_adoptions(&g, &[(v, c)]);
        }
        let rest = state.uncolored_nodes();
        if !rest.is_empty() {
            let (sub, _) = state.residual_instance(&g, &rest);
            prop_assert!(sub.validate().is_ok());
        }
    }

    #[test]
    fn solver_output_is_always_valid(g in graph_strategy(40, 120)) {
        let inst = D1lcInstance::delta_plus_one(g);
        let sol = Solver::deterministic(Params::default().with_seed_bits(4)).solve(&inst);
        prop_assert!(inst.verify_coloring(&sol.colors).is_ok());
    }

    #[test]
    fn greedy_output_is_always_valid(g in graph_strategy(60, 200)) {
        let inst = D1lcInstance::delta_plus_one(g);
        let (colors, _) = greedy_sequential(&inst);
        prop_assert!(inst.verify_coloring(&colors).is_ok());
    }

    #[test]
    fn arbitrary_list_palettes_solve(
        g in graph_strategy(30, 80),
        offset in 0u32..1000,
    ) {
        // Palettes = {offset·v, …} windows: valid but adversarial lists.
        let lists: Vec<Vec<u32>> = (0..g.n() as NodeId)
            .map(|v| {
                let base = offset + v * 61;
                (base..=base + g.degree(v) as u32).collect()
            })
            .collect();
        let inst = D1lcInstance::new(g, PaletteArena::from_lists(&lists));
        let sol = Solver::deterministic(Params::default().with_seed_bits(4)).solve(&inst);
        prop_assert!(inst.verify_coloring(&sol.colors).is_ok());
    }

    #[test]
    fn seed_selection_guarantee_for_arbitrary_costs(
        table in proptest::collection::vec(0.0f64..100.0, 64),
    ) {
        // Exhaustive and bitwise conditional expectations both satisfy
        // cost(chosen) ≤ mean for ANY cost table (6-bit seed space).
        let cost = |s: u64| table[s as usize];
        for strategy in [SeedStrategy::Exhaustive, SeedStrategy::BitwiseCondExp] {
            let sel = select_seed(6, strategy, cost);
            prop_assert!(sel.satisfies_guarantee(), "{:?}", strategy);
        }
        // Exhaustive finds the global minimum.
        let exh = select_seed(6, SeedStrategy::Exhaustive, cost);
        let min = table.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((exh.cost - min).abs() < 1e-12);
    }

    #[test]
    fn palette_arena_roundtrip(lists in proptest::collection::vec(
        proptest::collection::vec(0u32..500, 1..10), 1..20)) {
        let arena = PaletteArena::from_lists(&lists);
        for (v, list) in lists.iter().enumerate() {
            let mut dedup: Vec<u32> = Vec::new();
            for &c in list {
                if !dedup.contains(&c) { dedup.push(c); }
            }
            prop_assert_eq!(arena.palette(v as NodeId), &dedup[..]);
        }
    }
}
