//! Forced-path equivalence suite for the runtime SIMD dispatch layer.
//!
//! The dispatch contract (`parcolor_local::simd`) promises that every
//! kernel variant — scalar, AVX2, AVX-512, NEON — produces bytes
//! identical to the scalar reference, so the runtime selection can never
//! change a coloring, a chosen seed, or a golden hash.  This suite pins
//! that promise on every path the host can actually run:
//!
//! 1. property tests comparing each available path's kernel table to the
//!    scalar reference (via [`simd::kernels_for`] — no global state);
//! 2. the `CryptoTape` / `PrgTape` fill paths under *forced* dispatch,
//!    word-for-word against the forced-scalar run;
//! 3. a whole-solver leg: the `gnm_small` golden hash must come out
//!    identical under every forced path (and equal to the pinned value
//!    in tests/golden.rs);
//! 4. a detection sanity check: an AVX2-capable host must not silently
//!    auto-select scalar.
//!
//! Tests that mutate the process-wide selection (`force_path` /
//! `reset_auto`) serialize on [`DISPATCH_LOCK`]; the kernels themselves
//! are bit-identical, so concurrent *use* from other tests is harmless —
//! only tests that *assert on the active path* need the lock.

use parcolor_core::{Params, Solver};
use parcolor_graphgen as gen;
use parcolor_local::simd::{self, SimdPath, SPLITMIX_LANES};
use parcolor_local::tape::{splitmix64, CryptoTape, Randomness};
use parcolor_prg::{ChunkAssignment, Prg, PrgTape};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes every test that touches the process-wide path selection.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Lock that survives a poisoned mutex (a failed test elsewhere must not
/// cascade into spurious lock panics here).
fn dispatch_guard() -> std::sync::MutexGuard<'static, ()> {
    DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores auto-detection even when the test body panics.
struct ResetOnDrop;
impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        simd::reset_auto();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Leg 1: every available path's kernel table, compared lane-for-lane
    // against the scalar reference.  `kernels_for` reads no global state,
    // so this needs no lock and exercises AVX2/AVX-512 even when the
    // process-wide selection is pinned elsewhere (e.g. PARCOLOR_SIMD).
    #[test]
    fn every_available_path_matches_scalar_kernels(
        zs in proptest::collection::vec(any::<u64>(), SPLITMIX_LANES),
        a in proptest::collection::vec(any::<u32>(), 8),
        b in proptest::collection::vec(any::<u32>(), 8),
        flip in 0usize..8,
    ) {
        let z: [u64; SPLITMIX_LANES] = std::array::from_fn(|i| zs[i]);
        let want: [u64; SPLITMIX_LANES] = std::array::from_fn(|i| splitmix64(z[i]));
        let row_a: [u32; 8] = std::array::from_fn(|i| a[i]);
        let mut row_b: [u32; 8] = std::array::from_fn(|i| b[i]);
        // Guarantee at least one equal and one unequal lane.
        row_b[flip] = row_a[flip];
        row_b[(flip + 1) % 8] = row_a[(flip + 1) % 8].wrapping_add(1);
        let mut want_eq = 0u8;
        for l in 0..8 {
            want_eq |= u8::from(row_a[l] == row_b[l]) << l;
        }
        for path in simd::available_paths() {
            let k = simd::kernels_for(path).expect("available path has a kernel table");
            prop_assert_eq!(k.path, path);
            prop_assert_eq!((k.splitmix4)(z), want, "splitmix4 diverged on {}", path);
            prop_assert_eq!(
                (k.lane_eq_mask8)(&row_a, &row_b),
                want_eq,
                "lane_eq_mask8 diverged on {}",
                path
            );
        }
    }
}

// Leg 2: the tape fill paths route through the dispatched kernels; under
// each forced path they must reproduce the forced-scalar stream
// word-for-word, at lane-boundary stripe lengths.
#[test]
fn forced_fill_paths_match_forced_scalar() {
    let _g = dispatch_guard();
    let _reset = ResetOnDrop;
    let nodes: Vec<u32> = (0..37).map(|i| i * 7 % 41).collect();
    let lens = [0usize, 1, 3, 4, 5, 8, 9, 31, 37];
    let prg = Prg::new(12);
    let chunks = ChunkAssignment::PerNode;
    for (key, stream, idx) in [
        (1u64, 2u64, 3u32),
        (0xDEAD_BEEF, 0, 0),
        (7, u64::MAX, 9_999),
    ] {
        // Reference: forced scalar.
        simd::force_path(SimdPath::Scalar).unwrap();
        let mut want_crypto: Vec<Vec<u64>> = Vec::new();
        let mut want_seq: Vec<Vec<u64>> = Vec::new();
        let mut want_prg: Vec<Vec<u64>> = Vec::new();
        for &len in &lens {
            let tape = CryptoTape::new(key);
            let mut w = vec![0u64; len];
            tape.fill_words(stream, &nodes[..len], idx, &mut w);
            want_crypto.push(w);
            let mut q = vec![0u64; len];
            tape.fill_words_seq(nodes.first().copied().unwrap_or(0), stream, idx, &mut q);
            want_seq.push(q);
            let ptape = PrgTape::new(prg, key % 4096, &chunks);
            let mut p = vec![0u64; len];
            ptape.fill_words(stream, &nodes[..len], idx, &mut p);
            want_prg.push(p);
        }
        for path in simd::available_paths() {
            simd::force_path(path).unwrap();
            assert_eq!(simd::active_path(), path);
            for (j, &len) in lens.iter().enumerate() {
                let tape = CryptoTape::new(key);
                let mut w = vec![0u64; len];
                tape.fill_words(stream, &nodes[..len], idx, &mut w);
                assert_eq!(
                    w, want_crypto[j],
                    "CryptoTape::fill_words on {path} len {len}"
                );
                let mut q = vec![0u64; len];
                tape.fill_words_seq(nodes.first().copied().unwrap_or(0), stream, idx, &mut q);
                assert_eq!(
                    q, want_seq[j],
                    "CryptoTape::fill_words_seq on {path} len {len}"
                );
                let ptape = PrgTape::new(prg, key % 4096, &chunks);
                let mut p = vec![0u64; len];
                ptape.fill_words(stream, &nodes[..len], idx, &mut p);
                assert_eq!(p, want_prg[j], "PrgTape::fill_words on {path} len {len}");
            }
        }
    }
}

// Leg 3: whole-solver bit-identity.  The gnm_small golden hash is pinned
// in tests/golden.rs; here it must come out identical under every forced
// path, which also re-pins it against the same constant so a drift that
// somehow tracked the detected path would still be caught.
#[test]
fn golden_hash_identical_under_every_forced_path() {
    const GNM_SMALL_GOLDEN: u64 = 0x304417442566199d;
    fn fnv(colors: &[u32]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &c in colors {
            h ^= c as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    let _g = dispatch_guard();
    let _reset = ResetOnDrop;
    let inst = gen::degree_plus_one(gen::gnm(500, 2_000, 1));
    for path in simd::available_paths() {
        let params = Params::default().with_seed_bits(5).with_simd(path);
        let sol = Solver::deterministic(params).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        assert_eq!(
            fnv(&sol.colors),
            GNM_SMALL_GOLDEN,
            "{path}: coloring diverged from the pinned golden hash"
        );
    }
}

// Leg 4: a host whose CPU reports AVX2 (or better) must not auto-detect
// scalar — the whole point of runtime dispatch is that a portable build
// still runs the vector kernels.  `detected_path` is pure CPU probing
// (no env, no forcing), so this is safe under a PARCOLOR_SIMD matrix.
#[test]
fn capable_host_does_not_detect_scalar() {
    if simd::is_available(SimdPath::Avx2) || simd::is_available(SimdPath::Neon) {
        assert_ne!(
            simd::detected_path(),
            SimdPath::Scalar,
            "vector units available but detection picked scalar"
        );
    }
    // And forcing an unavailable path must fail loudly, not fall back.
    for path in [SimdPath::Avx2, SimdPath::Avx512, SimdPath::Neon] {
        if !simd::is_available(path) {
            let _g = dispatch_guard();
            let before = simd::active_path();
            let err = simd::force_path(path).unwrap_err();
            assert!(err.contains("not available"), "{err}");
            assert_eq!(
                simd::active_path(),
                before,
                "failed force must not change the path"
            );
        }
    }
}
