//! Property tests pinning the batched randomness plane to its scalar
//! counterpart (the batch contract of `parcolor_local::tape` and
//! `parcolor_prg::hashing`).
//!
//! For every tape type — `CryptoTape`, `PrgTape` under both chunk
//! assignments, and the `ForceScalar` adapter running the trait defaults —
//! the batched `fill_words` / `fill_words_seq` / `fill_below` /
//! `fill_bernoulli` must equal the scalar `word` / `below` / `bernoulli`
//! calls element-for-element, over random node stripes and explicitly at
//! every lane-boundary size (0, 1, lane−1, lane, lane+1).  Likewise
//! `KWiseHash::eval_batch` must equal `eval` for every independence
//! `k ∈ 1..=4`.

use parcolor_local::simd::{lane_eq_mask8, splitmix4, SPLITMIX_LANES};
use parcolor_local::tape::{splitmix64, CryptoTape, ForceScalar, Randomness, MIX_LANES};
use parcolor_prg::hashing::KWiseFamily;
use parcolor_prg::{ChunkAssignment, Prg, PrgTape};
use proptest::prelude::*;

/// Stripe lengths every property probes: the lane boundaries plus the
/// full random stripe.
fn probe_sizes(full: usize) -> Vec<usize> {
    let mut sizes = vec![0, 1, MIX_LANES - 1, MIX_LANES, MIX_LANES + 1, full];
    sizes.retain(|&s| s <= full);
    sizes
}

/// Assert all four batch methods equal their scalar counterparts on a
/// prefix stripe of `nodes`.
fn assert_batch_matches_scalar(
    tape: &dyn Randomness,
    nodes: &[u32],
    stream: u64,
    idx: u32,
    p: f64,
) {
    for len in probe_sizes(nodes.len()) {
        let stripe = &nodes[..len];
        let bounds: Vec<u64> = stripe.iter().map(|&v| (v as u64 % 23) + 1).collect();
        let mut words = vec![0u64; len];
        tape.fill_words(stream, stripe, idx, &mut words);
        let mut below = vec![0u64; len];
        tape.fill_below(stream, stripe, idx, &bounds, &mut below);
        let mut bern = vec![false; len];
        tape.fill_bernoulli(stream, stripe, idx, p, &mut bern);
        for (i, &v) in stripe.iter().enumerate() {
            prop_assert_eq!(
                words[i],
                tape.word(v, stream, idx),
                "words len {} lane {}",
                len,
                i
            );
            prop_assert_eq!(below[i], tape.below(v, stream, idx, bounds[i]));
            prop_assert_eq!(bern[i], tape.bernoulli(v, stream, idx, p));
        }
        if len > 0 {
            let mut seq = vec![0u64; len];
            tape.fill_words_seq(stripe[0], stream, idx, &mut seq);
            for (i, &w) in seq.iter().enumerate() {
                prop_assert_eq!(w, tape.word(stripe[0], stream, idx.wrapping_add(i as u32)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crypto_tape_batches_match_scalar(
        key in any::<u64>(),
        stream in any::<u64>(),
        idx in 0u32..10_000,
        nodes in proptest::collection::vec(0u32..512, (3 * MIX_LANES)..(4 * MIX_LANES)),
        p in 0.0f64..1.0,
    ) {
        let tape = CryptoTape::new(key);
        assert_batch_matches_scalar(&tape, &nodes, stream, idx, p);
        // The ForceScalar adapter (trait defaults over the scalar mixer)
        // must agree with the lane overrides word-for-word.
        let forced = ForceScalar(CryptoTape::new(key));
        let mut lanes = vec![0u64; nodes.len()];
        let mut scalar = vec![0u64; nodes.len()];
        tape.fill_words(stream, &nodes, idx, &mut lanes);
        forced.fill_words(stream, &nodes, idx, &mut scalar);
        prop_assert_eq!(lanes, scalar);
    }

    #[test]
    fn prg_tape_batches_match_scalar(
        seed in 0u64..4096,
        stream in any::<u64>(),
        idx in 0u32..10_000,
        nodes in proptest::collection::vec(0u32..512, (3 * MIX_LANES)..(4 * MIX_LANES)),
        p in 0.0f64..1.0,
    ) {
        let prg = Prg::new(12);
        let per_node = ChunkAssignment::PerNode;
        let coloring = ChunkAssignment::PowerColoring {
            colors: (0..512u32).map(|v| v % 13).collect(),
        };
        for chunks in [&per_node, &coloring] {
            let tape = PrgTape::new(prg, seed, chunks);
            assert_batch_matches_scalar(&tape, &nodes, stream, idx, p);
            let forced = ForceScalar(PrgTape::new(prg, seed, chunks));
            let mut lanes = vec![0u64; nodes.len()];
            let mut scalar = vec![0u64; nodes.len()];
            tape.fill_words(stream, &nodes, idx, &mut lanes);
            forced.fill_words(stream, &nodes, idx, &mut scalar);
            prop_assert_eq!(lanes, scalar);
        }
    }

    // The dispatched SIMD kernels (whichever path runtime detection or
    // `PARCOLOR_SIMD` selected) must be bit-identical to the scalar
    // mixer/compare they replace — the selection is invisible to callers.
    // Per-path coverage lives in tests/simd_dispatch_equivalence.rs.
    #[test]
    fn simd_kernels_match_scalar(
        zs in proptest::collection::vec(any::<u64>(), SPLITMIX_LANES),
        a in proptest::collection::vec(any::<u32>(), 8),
        flip in 0usize..8,
    ) {
        let z: [u64; SPLITMIX_LANES] = [zs[0], zs[1], zs[2], zs[3]];
        let got = splitmix4(z);
        for l in 0..SPLITMIX_LANES {
            prop_assert_eq!(got[l], splitmix64(z[l]), "lane {}", l);
        }
        let row: [u32; 8] = std::array::from_fn(|i| a[i]);
        let mut other = row;
        other[flip] = other[flip].wrapping_add(1);
        let eq = lane_eq_mask8(&row, &other);
        for s in 0..8 {
            prop_assert_eq!(eq >> s & 1 == 1, row[s] == other[s], "lane {}", s);
        }
        prop_assert_eq!(lane_eq_mask8(&row, &row), 0xFF);
    }

    #[test]
    fn kwise_eval_batch_matches_scalar(
        k in 1u32..5,
        seed in any::<u64>(),
        range in 1u64..100_000,
        xs in proptest::collection::vec(any::<u64>(), (3 * MIX_LANES)..(4 * MIX_LANES)),
    ) {
        let fam = KWiseFamily::new(k, range);
        let h = fam.member(seed);
        for len in probe_sizes(xs.len()) {
            let stripe = &xs[..len];
            let mut out = vec![0u64; len];
            h.eval_batch(stripe, &mut out);
            for (i, &x) in stripe.iter().enumerate() {
                prop_assert_eq!(out[i], h.eval(x), "k {} len {} lane {}", k, len, i);
            }
        }
    }
}
