//! Equivalence of the zero-allocation seed-search fast path with the
//! reference (allocation-heavy) path.
//!
//! For every [`SeedStrategy`] and every HKNT procedure, the pair
//! (`select_seed_with` + `simulate_into` + `seed_cost_scratch`) must
//! reproduce the pair (`select_seed` + `simulate` + `seed_cost`)
//! **bit-identically**: same chosen seed, same cost / mean / min, same
//! per-bit conditional-expectation trace, and the same outcome (adoptions
//! in the same order, same aux set) under the chosen seed.  Costs here are
//! SSP failure counts — integers in `f64` — so even the streamed sums of
//! the bitwise walk are exact.

use parcolor_core::framework::{NormalProcedure, SimScratch};
use parcolor_core::hknt::procs::{
    CliquePutAside, CliqueTrial, GenerateSlack, MultiTrial, PutAside, SspMode, StageSet,
    SynchColorTrial, TryRandomColor,
};
use parcolor_core::instance::{ColoringState, D1lcInstance};
use parcolor_core::{Graph, NodeId};
use parcolor_graphgen::gnm;
use parcolor_local::tape::{ForceScalar, Randomness};
use parcolor_prg::{
    select_seed, select_seed_blocks, select_seed_blocks_n, select_seed_with, ChunkAssignment, Prg,
    PrgTape, SeedSelection, SeedStrategy, SEED_BLOCK,
};
use proptest::prelude::*;

const SEED_BITS: u32 = 6;

fn all_strategies() -> [SeedStrategy; 4] {
    [
        SeedStrategy::Exhaustive,
        SeedStrategy::BitwiseCondExp,
        SeedStrategy::FixedSubset(11),
        SeedStrategy::SingleSeed(3),
    ]
}

fn assert_selection_eq(old: &SeedSelection, new: &SeedSelection, ctx: &str) {
    assert_eq!(old.seed, new.seed, "{ctx}: chosen seed");
    assert_eq!(old.cost, new.cost, "{ctx}: cost");
    assert_eq!(old.mean_cost, new.mean_cost, "{ctx}: mean_cost");
    assert_eq!(old.min_cost, new.min_cost, "{ctx}: min_cost");
    assert_eq!(old.evaluated, new.evaluated, "{ctx}: evaluated");
    assert_eq!(old.trace, new.trace, "{ctx}: trace");
}

/// Run both paths over the full strategy set and demand bit-identity.
fn check_equivalence(proc: &dyn NormalProcedure, state: &ColoringState, ctx: &str) {
    let prg = Prg::new(SEED_BITS);
    let chunks = ChunkAssignment::PerNode;
    for strategy in all_strategies() {
        let old = select_seed(SEED_BITS, strategy, |seed| {
            let tape = PrgTape::new(prg, seed, &chunks);
            let out = proc.simulate(state, &tape);
            proc.seed_cost(state, &out)
        });
        let new = select_seed_with(
            SEED_BITS,
            strategy,
            || SimScratch::new(state.n()),
            |seed, scratch| {
                let tape = PrgTape::new(prg, seed, &chunks);
                proc.simulate_into(state, &tape, scratch);
                proc.seed_cost_scratch(state, scratch)
            },
        );
        assert_selection_eq(&old, &new, &format!("{ctx} / {strategy:?}"));
        assert!(new.satisfies_guarantee(), "{ctx} / {strategy:?}: guarantee");

        // The fused evaluation (what Runner::run_step actually calls per
        // candidate seed) must agree as well.
        let fused = select_seed_with(
            SEED_BITS,
            strategy,
            || SimScratch::new(state.n()),
            |seed, scratch| {
                let tape = PrgTape::new(prg, seed, &chunks);
                proc.seed_cost_fused(state, &tape, scratch)
            },
        );
        assert_selection_eq(&old, &fused, &format!("{ctx} / {strategy:?} (fused)"));

        // And with batching forced off at the tape level: the PickPlane
        // consuming the scalar trait defaults must reproduce the lane
        // mixers word-for-word, hence the identical selection.
        let scalar_forced = select_seed_with(
            SEED_BITS,
            strategy,
            || SimScratch::new(state.n()),
            |seed, scratch| {
                let tape = ForceScalar(PrgTape::new(prg, seed, &chunks));
                proc.seed_cost_fused(state, &tape, scratch)
            },
        );
        assert_selection_eq(
            &old,
            &scalar_forced,
            &format!("{ctx} / {strategy:?} (forced scalar)"),
        );

        // The seed-lane block evaluation (what Runner::run_step actually
        // drives): up to SEED_BLOCK seeds per call through
        // `seed_cost_block`, which hot procedures override with the
        // structure-of-arrays plane and a shared clash scan.
        let blocked = select_seed_blocks(
            SEED_BITS,
            strategy,
            || SimScratch::new(state.n()),
            |seed0, costs, scratch| {
                let tapes = prg.block_tapes(seed0, &chunks);
                let refs: [&dyn Randomness; SEED_BLOCK] =
                    std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
                proc.seed_cost_block(state, &refs[..costs.len()], scratch, costs);
            },
        );
        assert_selection_eq(&old, &blocked, &format!("{ctx} / {strategy:?} (block)"));

        // Outcome equivalence under the chosen seed.
        let tape = PrgTape::new(prg, old.seed, &chunks);
        let reference = proc.simulate(state, &tape);
        let mut scratch = SimScratch::new(state.n());
        proc.simulate_into(state, &tape, &mut scratch);
        assert_eq!(
            reference.adoptions, scratch.adoptions,
            "{ctx} / {strategy:?}: adoptions"
        );
        assert_eq!(reference.aux, scratch.aux, "{ctx} / {strategy:?}: aux");
    }
}

/// A partially colored random state so residual palettes are non-trivial.
fn partially_colored(n: usize, m: usize, seed: u64) -> (D1lcInstance, ColoringState) {
    let g = gnm(n, m, seed);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let mut state = ColoringState::new(&inst);
    // Deterministically color a scattered independent-ish subset.
    let mut batch: Vec<(NodeId, u32)> = Vec::new();
    let mut blocked = vec![false; n];
    for v in (0..n as NodeId).step_by(7) {
        if blocked[v as usize] {
            continue;
        }
        let c = state.palette(v)[0];
        if batch.iter().any(|&(u, cu)| cu == c && g.has_edge(u, v)) {
            continue;
        }
        batch.push((v, c));
        for &u in g.neighbors(v) {
            blocked[u as usize] = true;
        }
    }
    state.apply_adoptions(&g, &batch);
    (inst, state)
}

fn active_uncolored(state: &ColoringState) -> StageSet {
    StageSet::new(state.n(), state.uncolored_nodes())
}

#[test]
fn try_random_color_matches_reference_path() {
    for seed in [1u64, 2] {
        let (inst, state) = partially_colored(200, 600, seed);
        for ssp in [SspMode::Colored, SspMode::Auto, SspMode::SlackRatio(0.4)] {
            let proc = TryRandomColor::new(&inst.graph, active_uncolored(&state), ssp.clone(), 2);
            check_equivalence(&proc, &state, &format!("TryRandomColor g{seed} {ssp:?}"));
        }
    }
}

#[test]
fn multi_trial_matches_reference_path() {
    for (seed, x) in [(3u64, 2usize), (4, 5)] {
        let (inst, state) = partially_colored(150, 450, seed);
        let proc = MultiTrial::new(
            &inst.graph,
            active_uncolored(&state),
            x,
            SspMode::Colored,
            1,
        );
        check_equivalence(&proc, &state, &format!("MultiTrial g{seed} x{x}"));
    }
}

#[test]
fn generate_slack_matches_reference_path() {
    let (inst, state) = partially_colored(180, 540, 5);
    let set = active_uncolored(&state);
    // Mixed targets: a third auto-succeed, the rest must gain slack.
    let targets: Vec<f64> = set
        .active
        .iter()
        .enumerate()
        .map(|(i, _)| if i % 3 == 0 { 0.0 } else { 1.0 })
        .collect();
    let proc = GenerateSlack::new(&inst.graph, set, 0.2, targets, 3);
    check_equivalence(&proc, &state, "GenerateSlack");
}

fn clique_graph(k: usize) -> Graph {
    let mut edges = Vec::new();
    for a in 0..k as NodeId {
        for b in (a + 1)..k as NodeId {
            edges.push((a, b));
        }
    }
    Graph::from_edges(k, &edges)
}

#[test]
fn synch_color_trial_matches_reference_path() {
    let g = clique_graph(14);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let inliers: Vec<NodeId> = (1..14).collect();
    let proc = SynchColorTrial::new(
        &g,
        StageSet::new(14, inliers.clone()),
        vec![CliqueTrial { leader: 0, inliers }],
        2,
        1,
    );
    check_equivalence(&proc, &state, "SynchColorTrial");
}

#[test]
fn put_aside_matches_reference_path() {
    let g = clique_graph(16);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let inliers: Vec<NodeId> = (0..16).collect();
    let proc = PutAside {
        g: &g,
        set: StageSet::new(16, inliers.clone()),
        cliques: vec![CliquePutAside {
            clique_id: 0,
            inliers,
            prob: 0.2,
            target: 1,
        }],
        round_tag: 2,
    };
    check_equivalence(&proc, &state, "PutAside");
}

// ---------------------------------------------------------------------
// PR 5 additions: slack-plane block coverage for every SspMode, a
// property test pinning every procedure's `seed_cost_block` to the fused
// scalar path, and worker-count invariance of the stolen-block fold.
// ---------------------------------------------------------------------

#[test]
fn try_random_color_slack_target_matches_reference_path() {
    let (inst, state) = partially_colored(150, 500, 9);
    let set = active_uncolored(&state);
    // Mixed targets: auto-succeed, reachable, unreachable, negative.
    let targets: Vec<f64> = set
        .active
        .iter()
        .enumerate()
        .map(|(i, _)| match i % 4 {
            0 => 0.0,
            1 => 1.0,
            2 => 3.0,
            _ => -2.0,
        })
        .collect();
    let proc = TryRandomColor::new(&inst.graph, set, SspMode::SlackTarget(targets), 4);
    check_equivalence(&proc, &state, "TryRandomColor SlackTarget");
}

#[test]
fn multi_trial_matches_reference_path_for_every_ssp() {
    let (inst, state) = partially_colored(140, 420, 10);
    for ssp in [
        SspMode::Auto,
        SspMode::SlackRatio(0.3),
        SspMode::SlackTarget(
            active_uncolored(&state)
                .active
                .iter()
                .enumerate()
                .map(|(i, _)| (i % 3) as f64)
                .collect(),
        ),
    ] {
        let proc = MultiTrial::new(&inst.graph, active_uncolored(&state), 3, ssp.clone(), 2);
        check_equivalence(&proc, &state, &format!("MultiTrial {ssp:?}"));
    }
}

#[test]
fn generate_slack_matches_reference_path_more_probs() {
    for (seed, prob) in [(6u64, 0.05), (7, 0.5), (8, 0.95)] {
        let (inst, state) = partially_colored(120, 380, seed);
        let set = active_uncolored(&state);
        let targets: Vec<f64> = set
            .active
            .iter()
            .enumerate()
            .map(|(i, _)| (i % 4) as f64 - 1.0)
            .collect();
        let proc = GenerateSlack::new(&inst.graph, set, prob, targets, 5);
        check_equivalence(&proc, &state, &format!("GenerateSlack p={prob}"));
    }
}

/// Direct block-vs-fused pin: for a block of tapes, `seed_cost_block`
/// must write exactly the per-seed `seed_cost_fused` values — including
/// short and unit blocks (the tail/SingleSeed shapes).
fn assert_block_matches_fused(proc: &dyn NormalProcedure, state: &ColoringState, ctx: &str) {
    let prg = Prg::new(SEED_BITS);
    let chunks = ChunkAssignment::PerNode;
    let mut block_scratch = SimScratch::new(state.n());
    let mut fused_scratch = SimScratch::new(state.n());
    for seed0 in [0u64, 8, 56] {
        for blen in [SEED_BLOCK, 3, 1] {
            let tapes = prg.block_tapes(seed0, &chunks);
            let refs: [&dyn Randomness; SEED_BLOCK] =
                std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
            let mut costs = vec![0.0f64; blen];
            proc.seed_cost_block(state, &refs[..blen], &mut block_scratch, &mut costs);
            for (i, &got) in costs.iter().enumerate() {
                let tape = PrgTape::new(prg, seed0 + i as u64, &chunks);
                let want = proc.seed_cost_fused(state, &tape, &mut fused_scratch);
                assert_eq!(
                    got, want,
                    "{ctx}: lane {i} of block at seed0 {seed0} (len {blen})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Every procedure's block override equals the fused scalar path on
    // random graphs, random sampling probabilities, and every SspMode.
    #[test]
    fn block_costs_match_fused_on_random_instances(
        gseed in 0u64..10_000,
        n in 30usize..70,
        extra in 0usize..160,
        prob in 0.05f64..0.95,
        ratio in 0.0f64..1.0,
        x in 1usize..5,
        tol in 0usize..4,
    ) {
        let g = gnm(n, n + extra, gseed);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let full = StageSet::new(n, (0..n as NodeId).collect());
        let targets: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 1.0).collect();
        for ssp in [
            SspMode::Auto,
            SspMode::Colored,
            SspMode::SlackRatio(ratio),
            SspMode::SlackTarget(targets.clone()),
        ] {
            let proc = TryRandomColor::new(&g, full.clone(), ssp.clone(), 1);
            assert_block_matches_fused(&proc, &state, &format!("TryRandomColor {ssp:?}"));
            let proc = MultiTrial::new(&g, full.clone(), x, ssp.clone(), 2);
            assert_block_matches_fused(&proc, &state, &format!("MultiTrial x{x} {ssp:?}"));
        }
        let proc = GenerateSlack::new(&g, full.clone(), prob, targets, 3);
        assert_block_matches_fused(&proc, &state, "GenerateSlack");
        // Two overlapping cliques exercise the last-writer deal/sample
        // semantics of the clique procedures.
        let half: Vec<NodeId> = (0..n as NodeId / 2).collect();
        let rest: Vec<NodeId> = (n as NodeId / 4..n as NodeId).collect();
        let proc = SynchColorTrial::new(
            &g,
            full.clone(),
            vec![
                CliqueTrial { leader: 0, inliers: half.clone() },
                CliqueTrial { leader: n as NodeId - 1, inliers: rest.clone() },
            ],
            tol,
            4,
        );
        assert_block_matches_fused(&proc, &state, "SynchColorTrial");
        let proc = PutAside {
            g: &g,
            set: full,
            cliques: vec![
                CliquePutAside { clique_id: 0, inliers: half, prob, target: 2 },
                CliquePutAside { clique_id: 1, inliers: rest, prob: prob / 2.0, target: 1 },
            ],
            round_tag: 5,
        };
        assert_block_matches_fused(&proc, &state, "PutAside");
    }
}

/// The stolen-block sharded fold must select identically at every worker
/// count on a real procedure (the Lemma 10 guarantee is per-selection,
/// so any divergence would change the pipeline's output).
#[test]
fn sharded_search_is_worker_invariant_on_procedures() {
    let (inst, state) = partially_colored(180, 540, 11);
    let set = active_uncolored(&state);
    let targets: Vec<f64> = set.active.iter().map(|_| 1.0).collect();
    let proc = GenerateSlack::new(&inst.graph, set, 0.3, targets, 6);
    let prg = Prg::new(SEED_BITS);
    let chunks = ChunkAssignment::PerNode;
    let run = |workers: usize, strategy: SeedStrategy| {
        select_seed_blocks_n(
            SEED_BITS,
            strategy,
            workers,
            || SimScratch::new(state.n()),
            |seed0, costs, scratch| {
                let tapes = prg.block_tapes(seed0, &chunks);
                let refs: [&dyn Randomness; SEED_BLOCK] =
                    std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
                proc.seed_cost_block(&state, &refs[..costs.len()], scratch, costs);
            },
        )
    };
    for strategy in all_strategies() {
        let reference = run(1, strategy);
        for workers in [2usize, 3, 5, 8] {
            let got = run(workers, strategy);
            assert_selection_eq(&reference, &got, &format!("{strategy:?} workers {workers}"));
        }
    }
}
