#![warn(missing_docs)]
//! # parcolor — workspace facade
//!
//! Re-exports the user-facing surface of the reproduction of *"Parallel
//! Derandomization for Coloring"* (Coy, Czumaj, Davies-Peck, Mishra;
//! IPDPS 2024).  The real code lives in the `crates/` workspace members;
//! this crate exists so the workspace-level integration tests and
//! examples have a package to hang off, and so downstream users can
//! depend on a single crate.

pub use parcolor_core::framework::SimScratch;
pub use parcolor_core::{
    ChunkMode, ColoringState, D1lcInstance, Graph, NodeId, NormalProcedure, Outcome, PaletteArena,
    Params, Runner, SeedStrategy, Solution, Solver, StepReport, NO_COLOR,
};
pub use parcolor_prg::{select_seed, select_seed_with, SeedSelection};
