//! Palette generators: turn a graph into a D1LC instance in the regimes
//! the paper distinguishes.

use parcolor_core::instance::{D1lcInstance, PaletteArena};
use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::tape::SplitMix;

/// The (Δ+1)-coloring reduction: node `v` gets `{0, …, d(v)}`.
pub fn degree_plus_one(g: Graph) -> D1lcInstance {
    D1lcInstance::delta_plus_one(g)
}

/// Shared-universe lists: each node draws `d(v) + 1 + extra` distinct
/// colors uniformly from a universe of `universe` colors.  `extra > 0`
/// gives every node additional slack (SlackColor's favorite regime).
pub fn random_lists(g: Graph, universe: u32, extra: usize, seed: u64) -> D1lcInstance {
    let mut rng = SplitMix::new(seed);
    let lists: Vec<Vec<u32>> = (0..g.n() as NodeId)
        .map(|v| {
            let want = (g.degree(v) + 1 + extra).min(universe as usize);
            assert!(
                want > g.degree(v),
                "universe {universe} too small for degree {}",
                g.degree(v)
            );
            let mut picked: Vec<u32> = Vec::with_capacity(want);
            while picked.len() < want {
                let c = rng.below(universe as u64) as u32;
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            picked
        })
        .collect();
    D1lcInstance::new(g, PaletteArena::from_lists(&lists))
}

/// Adversarially disjoint-ish lists: node `v`'s palette is the contiguous
/// window `[v·stride, v·stride + d(v)]` — neighbors share few colors,
/// maximizing discrepancy η̄ (the `Vdisc` regime of `Vstart`).
pub fn windowed_lists(g: Graph, stride: u32) -> D1lcInstance {
    let lists: Vec<Vec<u32>> = (0..g.n() as NodeId)
        .map(|v| {
            let base = v * stride;
            (base..=base + g.degree(v) as u32).collect()
        })
        .collect();
    D1lcInstance::new(g, PaletteArena::from_lists(&lists))
}

/// Identical palettes `{0, …, Δ}` for all nodes — the classic (Δ+1)
/// regime with zero discrepancy everywhere.
pub fn uniform_palette(g: Graph) -> D1lcInstance {
    let delta = g.max_degree() as u32;
    let lists: Vec<Vec<u32>> = (0..g.n()).map(|_| (0..=delta).collect()).collect();
    D1lcInstance::new(g, PaletteArena::from_lists(&lists))
}

/// Simulate a partially-solved (Δ+1) instance: color a seeded independent
/// sample of nodes greedily, and return the **residual** D1LC instance on
/// the uncolored subgraph — exactly the situation the paper's introduction
/// names as the source of D1LC instances.
pub fn residual_after_partial(g: Graph, fraction: f64, seed: u64) -> D1lcInstance {
    use parcolor_core::instance::ColoringState;
    let inst = D1lcInstance::delta_plus_one(g);
    let mut rng = SplitMix::new(seed);
    let mut state = ColoringState::new(&inst);
    let mut order: Vec<NodeId> = (0..inst.n() as NodeId).collect();
    rng.shuffle(&mut order);
    let take = (inst.n() as f64 * fraction) as usize;
    for &v in order.iter().take(take) {
        if state.is_colored(v) {
            continue;
        }
        let pal = state.palette(v);
        if let Some(&c) = pal.first() {
            state.apply_adoptions(&inst.graph, &[(v, c)]);
        }
    }
    let rest = state.uncolored_nodes();
    let (sub, _map) = state.residual_instance(&inst.graph, &rest);
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{gnm, ring};

    #[test]
    fn random_lists_are_valid() {
        let inst = random_lists(gnm(100, 300, 1), 64, 2, 2);
        assert!(inst.validate().is_ok());
        for v in 0..100u32 {
            assert_eq!(inst.palettes.size(v), (inst.graph.degree(v) + 3).min(64));
        }
    }

    #[test]
    fn windowed_lists_have_low_overlap() {
        let inst = windowed_lists(ring(10), 100);
        assert!(inst.validate().is_ok());
        let p0 = inst.palettes.palette(0);
        let p1 = inst.palettes.palette(1);
        assert!(p0.iter().all(|c| !p1.contains(c)));
    }

    #[test]
    fn uniform_palette_sizes() {
        let inst = uniform_palette(gnm(50, 200, 3));
        let delta = inst.graph.max_degree();
        for v in 0..50u32 {
            assert_eq!(inst.palettes.size(v), delta + 1);
        }
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn residual_instance_is_valid_and_smaller() {
        let inst = residual_after_partial(gnm(200, 800, 4), 0.5, 5);
        assert!(inst.validate().is_ok());
        assert!(inst.n() < 200);
        assert!(inst.n() > 20);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_lists(gnm(60, 150, 9), 32, 1, 9);
        let b = random_lists(gnm(60, 150, 9), 32, 1, 9);
        for v in 0..60u32 {
            assert_eq!(a.palettes.palette(v), b.palettes.palette(v));
        }
    }
}
