//! Compact open-addressed set for undirected-edge deduplication.
//!
//! `gnm` and `power_law` must reject duplicate draws at generation time
//! (the draw loop's accept/reject sequence is part of their pinned
//! deterministic output).  A `std::collections::HashSet<(u32, u32)>`
//! does the job but costs ≥ 20 bytes per edge (tuple + control bytes +
//! power-of-two over-allocation) — at m = 10^7 that rivals the CSR
//! arrays themselves.  [`EdgeSet`] packs each normalized edge into one
//! `u64` slot (~10 bytes per edge at the 0.8 target load factor, slots
//! sized to the requested capacity rather than the next power of two)
//! while preserving *set semantics exactly*: `insert` returns whether
//! the edge was new, so the accept sequence — and therefore every
//! generated graph — is bit-identical to the `HashSet` version.

use parcolor_local::graph::NodeId;
use parcolor_local::tape::splitmix64;

/// Open-addressed set of undirected edges with linear probing.
///
/// Keys are `((min << 32) | max) + 1` so that `0` can mark an empty
/// slot (the `+1` never collides: `max < 2^32 - 1` is guaranteed by
/// `NodeId` arithmetic on graphs with at least two nodes).
#[derive(Clone, Debug)]
pub struct EdgeSet {
    slots: Vec<u64>,
    len: usize,
}

impl EdgeSet {
    /// A set expecting about `edges` distinct insertions.  Sized for a
    /// 0.8 maximum load factor; grows (rehashes) if exceeded.
    pub fn with_capacity(edges: usize) -> Self {
        let cap = edges + edges / 4 + 16;
        EdgeSet {
            slots: vec![0u64; cap],
            len: 0,
        }
    }

    /// Number of distinct edges inserted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no edge has been inserted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn key(u: NodeId, v: NodeId) -> u64 {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (((a as u64) << 32) | b as u64) + 1
    }

    /// Map a hash onto `0..cap` without requiring a power-of-two table
    /// (Lemire's multiply-shift range reduction).
    #[inline]
    fn bucket(hash: u64, cap: usize) -> usize {
        ((hash as u128 * cap as u128) >> 64) as usize
    }

    /// Insert the undirected edge `{u, v}`; returns `true` iff it was
    /// not present.  Orientation is ignored, matching `HashSet` keyed
    /// on the normalized tuple.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        debug_assert!(u != v, "self loop {u}");
        if self.len + 1 > self.slots.len() * 4 / 5 {
            self.grow();
        }
        let key = Self::key(u, v);
        let cap = self.slots.len();
        let mut i = Self::bucket(splitmix64(key), cap);
        loop {
            match self.slots[i] {
                0 => {
                    self.slots[i] = key;
                    self.len += 1;
                    return true;
                }
                k if k == key => return false,
                _ => i = if i + 1 == cap { 0 } else { i + 1 },
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![0u64; new_cap]);
        for key in old.into_iter().filter(|&k| k != 0) {
            let mut i = Self::bucket(splitmix64(key), new_cap);
            while self.slots[i] != 0 {
                i = if i + 1 == new_cap { 0 } else { i + 1 };
            }
            self.slots[i] = key;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn matches_hashset_accept_sequence() {
        let mut ours = EdgeSet::with_capacity(8); // undersized: forces growth
        let mut std_set: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut state = 12345u64;
        for _ in 0..5000 {
            state = splitmix64(state);
            let u = (state >> 32) as NodeId % 97;
            let v = state as NodeId % 97;
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            assert_eq!(ours.insert(u, v), std_set.insert(key));
        }
        assert_eq!(ours.len(), std_set.len());
    }

    #[test]
    fn orientation_is_ignored() {
        let mut s = EdgeSet::with_capacity(4);
        assert!(s.insert(3, 7));
        assert!(!s.insert(7, 3));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
