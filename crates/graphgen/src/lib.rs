#![warn(missing_docs)]
//! Workload generators for the `parcolor` experiments.
//!
//! Graph families cover the regimes the paper's pipeline distinguishes:
//! sparse (ring/path/G(n,m) at low density), locally-sparse-but-regular
//! (random regular), dense with structure (planted almost-cliques — the
//! ACD's bread and butter), skewed (power-law / star — exercising
//! unevenness), and adversarial palettes for genuine *list* coloring.
//! All generators are deterministic in their seed.

pub mod edgeset;
pub mod graphs;
pub mod palettes;

pub use edgeset::EdgeSet;
pub use graphs::*;
pub use palettes::*;
