//! Graph generators.  All deterministic in `seed`.
//!
//! Every generator is expressed as a **re-runnable edge stream** fed to
//! [`Graph::from_edge_stream`]: the stream closure replays the exact
//! same draw sequence (seeded rng, dedup set and all) on both passes,
//! so the two-pass builder counts degrees and then scatters without
//! ever materializing a `Vec<(u32, u32)>` edge list.  This is the
//! memory-lean construction path that makes n = 10^7 instances fit;
//! outputs are bit-identical to the old `GraphBuilder` versions.

use crate::edgeset::EdgeSet;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::tape::SplitMix;

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform edges.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "m={m} exceeds max {max_edges}");
    Graph::from_edge_stream(n, |sink| {
        let mut rng = SplitMix::new(seed);
        let mut seen = EdgeSet::with_capacity(m);
        while seen.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b && seen.insert(a, b) {
                sink(a.min(b), a.max(b));
            }
        }
    })
}

/// Erdős–Rényi `G(n, p)` via the geometric skipping method — `O(m)` time.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    Graph::from_edge_stream(n, |sink| {
        if p <= 0.0 {
            return;
        }
        let mut rng = SplitMix::new(seed);
        let log1p = (1.0 - p).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        while (v as usize) < n {
            let r = rng.f64().max(1e-18);
            w += 1 + if p < 1.0 {
                (r.ln() / log1p).floor() as i64
            } else {
                0
            };
            while w >= v && (v as usize) < n {
                w -= v;
                v += 1;
            }
            if (v as usize) < n {
                sink(w as NodeId, v as NodeId);
            }
        }
    })
}

/// Random `d`-regular-ish graph by the pairing model (collisions dropped,
/// so degrees are `≤ d`, concentrated at `d`).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    Graph::from_edge_stream(n, |sink| {
        let mut rng = SplitMix::new(seed);
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        rng.shuffle(&mut stubs);
        for pair in stubs.chunks(2) {
            if pair.len() == 2 && pair[0] != pair[1] {
                sink(pair[0], pair[1]);
            }
        }
    })
}

/// Chung–Lu power-law graph: expected degree of node `i` is proportional
/// to `(i+1)^{-1/(γ-1)}`, scaled to average degree `avg_deg`.
pub fn power_law(n: usize, gamma: f64, avg_deg: f64, seed: u64) -> Graph {
    assert!(gamma > 2.0, "gamma must exceed 2 for bounded expectation");
    let exp = -1.0 / (gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exp)).collect();
    let wsum: f64 = weights.iter().sum();
    let scale = avg_deg * n as f64 / wsum;
    let weights: Vec<f64> = weights.iter().map(|w| w * scale).collect();
    let wsum: f64 = weights.iter().sum();
    // Sample ~wsum/2 edges proportional to w_i * w_j via the alias-free
    // two-stage draw (acceptable bias at experiment scale).
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let draw = |rng: &mut SplitMix| -> NodeId {
        let x = rng.f64() * wsum;
        cdf.partition_point(|&c| c < x).min(n - 1) as NodeId
    };
    let target = (wsum / 2.0) as usize;
    Graph::from_edge_stream(n, |sink| {
        let mut rng = SplitMix::new(seed);
        let mut seen = EdgeSet::with_capacity(target);
        for _ in 0..target * 2 {
            if seen.len() >= target {
                break;
            }
            let a = draw(&mut rng);
            let b = draw(&mut rng);
            if a != b && seen.insert(a, b) {
                sink(a.min(b), a.max(b));
            }
        }
    })
}

/// Planted almost-cliques: `k` cliques of the given sizes, each with an
/// `eps` fraction of internal edges removed and light random wiring
/// between cliques, plus `sparse_n` background nodes in a `G(n, m)`-style
/// sparse cloud.  The canonical ACD test input.
pub fn planted_cliques(
    clique_sizes: &[usize],
    eps: f64,
    sparse_n: usize,
    sparse_avg_deg: usize,
    seed: u64,
) -> Graph {
    let clique_total: usize = clique_sizes.iter().sum();
    let n = clique_total + sparse_n;
    Graph::from_edge_stream(n, |sink| {
        let mut rng = SplitMix::new(seed);
        let mut base = 0u32;
        for &s in clique_sizes {
            for a in 0..s as u32 {
                for b in (a + 1)..s as u32 {
                    if rng.f64() >= eps {
                        sink(base + a, base + b);
                    }
                }
            }
            base += s as u32;
        }
        // Sparse background.
        if sparse_n >= 2 {
            for _ in 0..(sparse_n * sparse_avg_deg / 2) {
                let a = base + rng.below(sparse_n as u64) as u32;
                let b = base + rng.below(sparse_n as u64) as u32;
                if a != b {
                    sink(a, b);
                }
            }
            // Light wiring between cliques and cloud.
            for _ in 0..clique_total / 4 {
                let a = rng.below(clique_total as u64) as u32;
                let b = base + rng.below(sparse_n as u64) as u32;
                sink(a, b);
            }
        }
    })
}

/// Ring (cycle) on `n` nodes.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    Graph::from_edge_stream(n, |sink| {
        for i in 0..n as NodeId {
            sink(i, (i + 1) % n as NodeId);
        }
    })
}

/// 2D torus grid `rows × cols` (4-regular).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3);
    let idx = |r: usize, c: usize| (r * cols + c) as NodeId;
    Graph::from_edge_stream(rows * cols, |sink| {
        for r in 0..rows {
            for c in 0..cols {
                sink(idx(r, c), idx(r, (c + 1) % cols));
                sink(idx(r, c), idx((r + 1) % rows, c));
            }
        }
    })
}

/// Star with `n - 1` leaves (maximal unevenness at the leaves).
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edge_stream(n, |sink| {
        for i in 1..n as NodeId {
            sink(0, i);
        }
    })
}

/// Complete bipartite `K_{a,b}` (dense yet triangle-free: maximal sparsity
/// at every node — a stress case for the ACD classifier).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    Graph::from_edge_stream(a + b, |sink| {
        for x in 0..a as NodeId {
            for y in 0..b as NodeId {
                sink(x, a as NodeId + y);
            }
        }
    })
}

/// Random tree with maximum degree `max_deg`: each new node attaches to a
/// uniformly random earlier node that still has stub capacity.  Trees are
/// the classic worst case for local symmetry breaking (Linial's lower
/// bound lives here).
pub fn bounded_degree_tree(n: usize, max_deg: usize, seed: u64) -> Graph {
    assert!(n >= 1 && max_deg >= 2);
    Graph::from_edge_stream(n, |sink| {
        let mut rng = SplitMix::new(seed);
        let mut capacity: Vec<u32> = Vec::with_capacity(n);
        capacity.push(max_deg as u32);
        let mut open: Vec<NodeId> = vec![0];
        for v in 1..n as NodeId {
            let slot = rng.below(open.len() as u64) as usize;
            let parent = open[slot];
            sink(parent, v);
            capacity[parent as usize] -= 1;
            if capacity[parent as usize] == 0 {
                open.swap_remove(slot);
            }
            capacity.push(max_deg as u32 - 1);
            open.push(v);
        }
    })
}

/// Caterpillar: a spine path of length `spine` with `legs` leaves per
/// spine node — maximal unevenness along the legs, a stress input for the
/// ACD's `Vuneven` classification.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 2);
    let n = spine * (1 + legs);
    Graph::from_edge_stream(n, |sink| {
        for i in 0..spine as NodeId - 1 {
            sink(i, i + 1);
        }
        for i in 0..spine as NodeId {
            for l in 0..legs as NodeId {
                sink(i, spine as NodeId + i * legs as NodeId + l);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edges() {
        let g = gnm(100, 300, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 300);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm(50, 100, 7), gnm(50, 100, 7));
        assert_ne!(gnm(50, 100, 7), gnm(50, 100, 8));
    }

    #[test]
    fn gnp_density_is_right() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 3);
        let expected = (n * (n - 1) / 2) as f64 * p;
        assert!(
            (g.m() as f64 - expected).abs() < 0.2 * expected,
            "m = {}, expected ≈ {expected}",
            g.m()
        );
    }

    #[test]
    fn gnp_zero_and_extremes() {
        assert_eq!(gnp(50, 0.0, 1).m(), 0);
        let g = gnp(20, 1.0, 1);
        assert_eq!(g.m(), 190);
    }

    #[test]
    fn random_regular_degrees_concentrate() {
        let g = random_regular(200, 6, 5);
        let low = (0..200u32).filter(|&v| g.degree(v) < 4).count();
        assert!(low < 20, "{low} nodes far below target degree");
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn power_law_is_skewed() {
        let g = power_law(500, 2.5, 8.0, 9);
        let dmax = g.max_degree();
        let avg = 2.0 * g.m() as f64 / 500.0;
        assert!(dmax as f64 > 3.0 * avg, "Δ={dmax}, avg={avg}");
    }

    #[test]
    fn planted_cliques_structure() {
        let g = planted_cliques(&[20, 20], 0.05, 100, 4, 11);
        assert_eq!(g.n(), 140);
        // Clique nodes are much denser than cloud nodes.
        let c_deg: usize = (0..40u32).map(|v| g.degree(v)).sum::<usize>() / 40;
        let s_deg: usize = (40..140u32).map(|v| g.degree(v)).sum::<usize>() / 100;
        assert!(c_deg > 2 * s_deg, "clique {c_deg} vs sparse {s_deg}");
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(5, 6);
        assert_eq!(g.n(), 30);
        for v in 0..30u32 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn bounded_tree_is_a_tree() {
        let g = bounded_degree_tree(200, 4, 7);
        assert_eq!(g.m(), 199);
        let (_, ncomp) = g.components();
        assert_eq!(ncomp, 1);
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(10, 3);
        assert_eq!(g.n(), 40);
        assert_eq!(g.m(), 9 + 30);
        // interior spine nodes: 2 spine + 3 legs = 5
        assert_eq!(g.degree(5), 5);
        // legs are leaves
        assert_eq!(g.degree(15), 1);
    }

    #[test]
    fn star_and_bipartite_shapes() {
        let s = star(10);
        assert_eq!(s.degree(0), 9);
        assert_eq!(s.degree(5), 1);
        let b = complete_bipartite(4, 6);
        assert_eq!(b.m(), 24);
        assert_eq!(b.degree(0), 6);
        assert_eq!(b.degree(4), 4);
    }
}
