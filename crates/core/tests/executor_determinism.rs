//! Determinism matrix for the work-stealing executor and everything
//! built on it: the generic reduces, the striped round simulation, and
//! whole solver runs must produce **bit-identical** results at every
//! worker count and under randomized steal orders.
//!
//! Steal order is randomized indirectly: per-block busy-spin jitter of
//! pseudo-random length perturbs worker timing, so across proptest
//! cases the blocks land on workers in many different interleavings.
//! Worker counts are passed explicitly (never via the env) because the
//! test harness runs tests concurrently in one process.

use parcolor_core::framework::{NormalProcedure, SimScratch};
use parcolor_core::hknt::{SspMode, TryRandomColor};
use parcolor_core::{ColoringState, D1lcInstance, Graph, NodeId, Params, SeedStrategy, Solver};
use parcolor_exec::{par_fold, Executor, SumMinArgmin};
use parcolor_local::tape::{CryptoTape, SplitMix};
use proptest::prelude::*;

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

/// Deterministic per-item cost keyed by `(seed, i)`.
fn cost(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // Integer-valued so sums are grouping-invariant in f64.
    (z >> 52) as f64
}

/// Busy-spin for a block-dependent pseudo-random duration so block →
/// worker assignment varies run to run.
fn jitter(seed: u64, start: u64) {
    let spins = (seed ^ start).wrapping_mul(0x2545_F491_4F6C_DD1D) >> 54;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `par_fold` with the sum/min/argmin reducer returns the same
    // bits at every worker count, regardless of steal interleaving.
    #[test]
    fn par_fold_is_worker_count_invariant(seed in any::<u64>(), len in 1u64..4096) {
        let pool = Executor::global();
        let fold_at = |workers: usize| {
            par_fold(
                pool,
                workers,
                0..len,
                64,
                || (),
                || SumMinArgmin::EMPTY,
                |start, blen, mut acc: SumMinArgmin, _: &mut ()| {
                    jitter(seed, start);
                    for i in start..start + blen {
                        acc.observe(i, cost(seed, i));
                    }
                    acc
                },
                |a, b| a.merge(b),
            )
        };
        let reference = fold_at(1);
        for &w in &WORKER_MATRIX[1..] {
            let got = fold_at(w);
            prop_assert_eq!(got.sum.to_bits(), reference.sum.to_bits());
            prop_assert_eq!(got.min.to_bits(), reference.min.to_bits());
            prop_assert_eq!(got.argmin, reference.argmin);
        }
    }
}

/// Random graph + fresh Δ+1 instance, sized so the striped path engages
/// (well above the serial-fallback floor of the `simulate_into_par`
/// overrides).
fn large_instance(seed: u64) -> D1lcInstance {
    let n = 6000usize;
    let avg_deg = 12usize;
    let mut rng = SplitMix::new(seed);
    let mut edges = Vec::new();
    for _ in 0..(n * avg_deg / 2) {
        let a = (rng.next_u64() % n as u64) as NodeId;
        let b = (rng.next_u64() % n as u64) as NodeId;
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    D1lcInstance::delta_plus_one(Graph::from_edges(n, &edges))
}

/// The striped `TryRandomColor::simulate_into_par` records exactly the
/// adoptions of the sequential `simulate_into`, at every worker count.
#[test]
fn striped_round_simulation_matches_sequential() {
    for seed in [1u64, 42, 7777] {
        let inst = large_instance(seed);
        let state = ColoringState::new(&inst);
        let active = state.uncolored_nodes();
        let n = state.n();
        let proc = TryRandomColor::new(
            &inst.graph,
            parcolor_core::hknt::procs::StageSet::new(n, active),
            SspMode::Auto,
            3,
        );
        let tape = CryptoTape::new(seed ^ 0xD1CE);

        let mut reference = SimScratch::new(n);
        proc.simulate_into(&state, &tape, &mut reference);
        assert!(
            !reference.adoptions.is_empty(),
            "degenerate case: no adoptions"
        );

        for &w in &WORKER_MATRIX {
            let mut scratch = SimScratch::new(n);
            proc.simulate_into_par(&state, &tape, &mut scratch, Executor::global(), w);
            assert_eq!(
                scratch.adoptions, reference.adoptions,
                "adoptions diverge at {w} workers (seed {seed})"
            );
            assert_eq!(scratch.aux, reference.aux);
        }
    }
}

/// Whole-pipeline determinism: the solver — seed search, striped round
/// simulation, and the parallel reduces — yields bit-identical
/// colorings and costs at every worker count.
#[test]
fn solver_colorings_are_worker_count_invariant() {
    let inst = large_instance(99);
    let params = |w: usize| {
        Params::default()
            .with_seed_bits(4)
            .with_strategy(SeedStrategy::FixedSubset(8))
            .with_workers(w)
    };
    let reference = Solver::deterministic(params(1)).solve(&inst);
    inst.verify_coloring(&reference.colors).expect("valid");
    for &w in &WORKER_MATRIX[1..] {
        let sol = Solver::deterministic(params(w)).solve(&inst);
        assert_eq!(
            sol.colors, reference.colors,
            "deterministic coloring diverges at {w} workers"
        );
        assert_eq!(sol.cost.mpc_rounds, reference.cost.mpc_rounds);
        assert_eq!(sol.cost.local_rounds, reference.cost.local_rounds);
    }
    // Randomized mode too: same key ⇒ same tape ⇒ same coloring,
    // independent of how the striped simulation was dealt to workers.
    let r1 = Solver::randomized(params(1), 0xFEED).solve(&inst);
    for &w in &WORKER_MATRIX[1..] {
        let rw = Solver::randomized(params(w), 0xFEED).solve(&inst);
        assert_eq!(
            rw.colors, r1.colors,
            "randomized coloring diverges at {w} workers"
        );
    }
}
