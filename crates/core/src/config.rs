//! Algorithm configuration.
//!
//! Every constant the paper (and HKNT22 underneath it) treats as "a
//! suitable constant" lives here, so experiments can state exactly which
//! instantiation they ran and ablations can vary one knob at a time.
//!
//! **Threshold scaling.**  The paper's degree thresholds (`log⁷ n`,
//! `ℓ = log^{2.1} Δ`) are asymptotic devices: at any n a laptop can hold,
//! `log⁷ n > n` and every node would be "low-degree".  We therefore expose
//! the *shape* (`β · ln^e n`) with configurable `β, e`; defaults are chosen
//! so that instances in the 10³–10⁶ node range actually exercise all of
//! the pipeline's regimes.  DESIGN.md §5 records this substitution.

use parcolor_local::simd::SimdPath;
use parcolor_prg::SeedStrategy;
use serde::Serialize;

/// How PRG output is split into per-node chunks (Lemma 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ChunkMode {
    /// The paper's scheme: a proper coloring of `G^{4τ}` indexes chunks.
    /// Faithful, but the power graph has degree `Δ^{4τ}` — only used when
    /// that fits the space budget.
    PowerColoring,
    /// Each node is its own chunk (strictly stronger separation; possible
    /// because our PRG output is lazily evaluated).  Default at scale.
    PerNode,
}

/// Full configuration for the D1LC solvers.
#[derive(Clone, Debug, Serialize)]
pub struct Params {
    // ---- MPC model ----
    /// Local-space exponent φ ∈ (0,1): machines hold `O(n^φ)` words.
    pub phi: f64,
    /// Degree-reduction exponent δ (Section 6): bins per partition level is
    /// `~n^δ`, and the mid-degree regime is `Δ ≤ n^{7δ}`.
    pub delta: f64,

    // ---- derandomization framework ----
    /// PRG seed length in bits (`Θ(τ log Δ)` in the paper).
    pub seed_bits: u32,
    /// Seed-selection strategy (Lemma 10's conditional expectations, or a
    /// cheaper deterministic surrogate).
    pub strategy: SeedStrategy,
    /// PRG chunk assignment mode.
    pub chunking: ChunkMode,
    /// Locality radius τ of the normal procedures (all of ours are O(1)).
    pub tau: u32,
    /// Worker threads for every parallel surface of the pipeline — the
    /// sharded seed search, striped round simulation, and the
    /// executor-backed reduces (`0` = auto: the `PARCOLOR_THREADS` env
    /// var if set, the deprecated `PARCOLOR_SEED_THREADS` alias
    /// otherwise, else all hardware threads).  Any value yields
    /// bit-identical results — all reduces are grouping-invariant and
    /// stripe splices are positional — so this is purely a throughput
    /// knob.
    pub workers: usize,
    /// Force a specific SIMD kernel path (`None` = auto: the
    /// `PARCOLOR_SIMD` env var if set, else runtime CPU detection).
    /// Every path is bit-identical to the scalar reference — this is a
    /// throughput/testing knob, applied **process-wide** at solve start
    /// (the dispatch cache in `parcolor_local::simd` is global).
    pub simd: Option<SimdPath>,

    // ---- degree thresholds (scaled substitutes for log⁷ n etc.) ----
    /// Low-degree threshold = `low_beta · ln(n)^low_exp`; nodes at or below
    /// it are handled by the deterministic low-degree solver (Lemma 14
    /// substitute).
    pub low_beta: f64,
    /// Exponent in the low-degree threshold formula.
    pub low_exp: f64,
    /// Optional cap on the mid-degree threshold `n^{7δ}` so small test
    /// instances still exercise the degree-reduction recursion.
    pub mid_degree_cap: Option<u32>,

    // ---- HKNT constants ----
    /// ACD sparsity/unevenness threshold ε_sp.
    pub eps_sp: f64,
    /// ACD almost-clique tolerance ε_ac.
    pub eps_ac: f64,
    /// Similarity threshold for the dense-friend relation used to build
    /// almost-cliques: friends share `≥ (1 - eps_friend)·max(d(u), d(v))`
    /// common neighbors.
    pub eps_friend: f64,
    /// The five constants ε₁…ε₅ in the `Vstart` definition (Section 5.2).
    pub eps1: f64,
    /// `Vdisc` discrepancy threshold.
    pub eps2: f64,
    /// Dense-neighbor threshold for `Veasy`.
    pub eps3: f64,
    /// Heavy-color mass threshold for `Vheavy`.
    pub eps4: f64,
    /// Easy-neighbor threshold for `Vstart`.
    pub eps5: f64,
    /// Threshold for a color to be "heavy" w.r.t. a node.
    pub heavy_const: f64,
    /// Sampling probability of `GenerateSlack` (paper: 1/10).
    pub gs_prob: f64,
    /// SSP slack target as a fraction of degree (HKNT's constants scaled).
    pub slack_frac: f64,
    /// κ parameter of SlackColor (`1/s_min < κ ≤ 1`).
    pub kappa: f64,
    /// Number of TryRandomColor warm-up calls in SlackColor ("O(1)").
    pub try_color_repeats: u32,
    /// MultiTrial repetitions in SlackColor's two loops (paper: 2 and 3).
    pub multi_trial_reps_a: u32,
    /// MultiTrial repetitions in SlackColor's geometric loop.
    pub multi_trial_reps_b: u32,
    /// Exponent in `ℓ = log^{ell_exp} Δ` (paper: 2.1).
    pub ell_exp: f64,
    /// PutAside sampling constant (paper: `p_s = ℓ²/(48 Δ_C)`).
    pub put_aside_div: f64,

    // ---- Theorem 12 recursion ----
    /// Process the mid-degree regime in O(log* n) descending degree ranges
    /// (the paper's schedule); `false` collapses to a single range.
    pub multi_range: bool,
    /// Maximum recursive re-applications of the derandomized pipeline on
    /// deferred nodes (`r = O(1/δ)` in the paper) before greedy cleanup.
    pub max_recursions: u32,
    /// Once at most this many nodes remain, collect them onto one machine
    /// and finish greedily (`n^{o(1)}` in the paper).
    pub greedy_cutoff: usize,

    // ---- failure injection (testing) ----
    /// After every framework step, additionally defer each remaining
    /// uncolored node with this probability (deterministic in the step
    /// counter).  Definition 5 promises the pipeline absorbs *any* such
    /// adversarial deferral; the failure-injection tests turn this up and
    /// check the solvers still complete.  Default 0 (off).
    pub chaos_defer_prob: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            phi: 0.5,
            delta: 0.1,
            seed_bits: 10,
            strategy: SeedStrategy::Exhaustive,
            chunking: ChunkMode::PerNode,
            tau: 1,
            workers: 0,
            simd: None,
            low_beta: 1.5,
            low_exp: 1.2,
            mid_degree_cap: None,
            eps_sp: 0.10,
            eps_ac: 0.30,
            eps_friend: 0.40,
            eps1: 0.3,
            eps2: 0.3,
            eps3: 0.3,
            eps4: 0.3,
            eps5: 0.3,
            heavy_const: 1.0,
            gs_prob: 0.1,
            slack_frac: 0.02,
            kappa: 0.5,
            try_color_repeats: 3,
            multi_trial_reps_a: 2,
            multi_trial_reps_b: 3,
            ell_exp: 2.1,
            put_aside_div: 48.0,
            multi_range: true,
            max_recursions: 10,
            greedy_cutoff: 32,
            chaos_defer_prob: 0.0,
        }
    }
}

impl Params {
    /// Low-degree threshold for an `n`-node input (substitute for log⁷ n).
    pub fn low_degree_threshold(&self, n: usize) -> usize {
        let t = self.low_beta * (n.max(2) as f64).ln().powf(self.low_exp);
        t.ceil().max(4.0) as usize
    }

    /// Mid-degree threshold `n^{7δ}` (optionally capped).
    pub fn mid_degree_threshold(&self, n: usize) -> usize {
        let t = (n.max(2) as f64).powf(7.0 * self.delta).ceil() as usize;
        let t = t.max(self.low_degree_threshold(n) + 1);
        match self.mid_degree_cap {
            Some(cap) => t.min(cap as usize).max(self.low_degree_threshold(n) + 1),
            None => t,
        }
    }

    /// Number of node bins `B ≈ n^δ` used by one LowSpacePartition level
    /// (at least 3 so that color bins `B - 1 ≥ 2`).
    pub fn partition_bins(&self, n: usize) -> usize {
        ((n.max(2) as f64).powf(self.delta).ceil() as usize).clamp(3, 64)
    }

    /// `ℓ = (log₂ Δ)^{ell_exp}` — the low-slackability threshold.
    pub fn ell(&self, max_degree: usize) -> f64 {
        (max_degree.max(2) as f64).log2().powf(self.ell_exp)
    }

    /// Builder-style setters for the knobs experiments vary.
    /// Set the local-space exponent φ.
    pub fn with_phi(mut self, phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0);
        self.phi = phi;
        self
    }

    /// Set the degree-reduction exponent δ (must satisfy 7δ ≤ 1).
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0 / 7.0 + 1e-9);
        self.delta = delta;
        self
    }

    /// Set the PRG seed length in bits.
    pub fn with_seed_bits(mut self, bits: u32) -> Self {
        self.seed_bits = bits;
        self
    }

    /// Set the seed-selection strategy.
    pub fn with_strategy(mut self, s: SeedStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the PRG chunk-assignment mode.
    pub fn with_chunking(mut self, c: ChunkMode) -> Self {
        self.chunking = c;
        self
    }

    /// Set the worker count for all parallel surfaces (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Force the SIMD kernel path for solves under these params (must be
    /// runtime-available on the executing host; see
    /// `parcolor_local::simd::available_paths`).
    pub fn with_simd(mut self, path: SimdPath) -> Self {
        self.simd = Some(path);
        self
    }

    /// Deprecated alias of [`Params::with_workers`], kept from when the
    /// knob governed only the seed search.
    #[deprecated(note = "use with_workers: the knob now governs every parallel surface")]
    pub fn with_seed_workers(self, workers: usize) -> Self {
        self.with_workers(workers)
    }

    /// Cap the mid-degree threshold (forces the partition recursion on
    /// small instances).
    pub fn with_mid_degree_cap(mut self, cap: u32) -> Self {
        self.mid_degree_cap = Some(cap);
        self
    }

    /// Override the low-degree threshold's β and exponent.
    pub fn with_low_threshold(mut self, beta: f64, exp: f64) -> Self {
        self.low_beta = beta;
        self.low_exp = exp;
        self
    }

    /// Set the collect-onto-one-machine greedy cutoff.
    pub fn with_greedy_cutoff(mut self, c: usize) -> Self {
        self.greedy_cutoff = c;
        self
    }

    /// Enable/disable the multi-range degree schedule.
    pub fn with_multi_range(mut self, on: bool) -> Self {
        self.multi_range = on;
        self
    }

    /// Set the failure-injection probability (testing).
    pub fn with_chaos(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p));
        self.chaos_defer_prob = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        let p = Params::default();
        for &n in &[100usize, 10_000, 1_000_000] {
            assert!(p.low_degree_threshold(n) < p.mid_degree_threshold(n));
        }
    }

    #[test]
    fn low_threshold_grows_polylog() {
        let p = Params::default();
        let a = p.low_degree_threshold(1_000);
        let b = p.low_degree_threshold(1_000_000);
        assert!(b > a);
        assert!(b < 4 * a, "polylog growth should be mild: {a} -> {b}");
    }

    #[test]
    fn mid_cap_is_respected() {
        let p = Params::default().with_mid_degree_cap(64);
        assert!(p.mid_degree_threshold(1_000_000) <= 64.max(p.low_degree_threshold(1_000_000) + 1));
    }

    #[test]
    fn bins_scale_with_delta() {
        let p = Params::default().with_delta(0.12);
        let small = p.partition_bins(1_000);
        let large = p.partition_bins(1_000_000);
        assert!(small >= 3);
        assert!(large >= small);
    }

    #[test]
    fn ell_matches_formula() {
        let p = Params::default();
        let l = p.ell(1024); // log2 = 10 → 10^2.1
        assert!((l - 10f64.powf(2.1)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn delta_above_one_seventh_rejected() {
        Params::default().with_delta(0.2);
    }
}
