//! End-to-end D1LC solvers.
//!
//! * [`Solver`] in `Deterministic` mode is **Theorem 1**: recursive
//!   degree reduction (`LowSpaceColorReduce`, Algorithm 11) down to
//!   `Δ ≤ n^{7δ}`, then the derandomized HKNT stage
//!   (`DerandomizedMidDegreeColor`, Algorithm 10) with Theorem 12's
//!   defer-and-recurse loop, the deterministic low-degree solver for the
//!   `d ≤ polylog` remainder, and a final collect-onto-one-machine greedy
//!   for the `n^{o(1)}` stragglers.
//! * `Randomized` mode is **Lemma 4**: the same pipeline under true
//!   randomness, no seed searches.
//!
//! Round accounting follows the parallel structure of Algorithm 11: the
//! restricted bins of one partition level are mutually independent (their
//! palettes are disjoint), so their round cost is combined as a *max*;
//! the last bin and `G_mid` are sequential dependencies (*sum*).

use crate::config::Params;
use crate::framework::{Runner, SeedSearcher, StepReport};
use crate::hknt::pipeline::{color_middle, MidReport};
use crate::instance::{ColoringState, D1lcInstance};
use crate::lowdeg::color_low_degree;
use crate::reduce::{low_space_partition, PartitionStats};
use parcolor_local::graph::NodeId;
use rayon::prelude::*;
use serde::Serialize;

/// Execution mode of the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveMode {
    /// Theorem 1: fully deterministic.
    Deterministic,
    /// Lemma 4: randomized baseline, reproducible from the key.
    Randomized {
        /// Master key seeding every random draw.
        key: u64,
    },
}

/// Critical-path cost bundle (rounds are the model's clock; space is max).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct Cost {
    /// LOCAL rounds on the critical path.
    pub local_rounds: u64,
    /// MPC rounds on the critical path.
    pub mpc_rounds: u64,
    /// Peak words on any machine.
    pub max_machine_words: u64,
    /// Machine-budget violations recorded.
    pub budget_violations: u64,
}

impl Cost {
    /// Sequential composition.
    pub fn seq(self, other: Cost) -> Cost {
        Cost {
            local_rounds: self.local_rounds + other.local_rounds,
            mpc_rounds: self.mpc_rounds + other.mpc_rounds,
            max_machine_words: self.max_machine_words.max(other.max_machine_words),
            budget_violations: self.budget_violations + other.budget_violations,
        }
    }

    /// Parallel composition (independent executions).
    pub fn par(self, other: Cost) -> Cost {
        Cost {
            local_rounds: self.local_rounds.max(other.local_rounds),
            mpc_rounds: self.mpc_rounds.max(other.mpc_rounds),
            max_machine_words: self.max_machine_words.max(other.max_machine_words),
            budget_violations: self.budget_violations + other.budget_violations,
        }
    }
}

/// Aggregate statistics of a solve.
#[derive(Clone, Debug, Default, Serialize)]
pub struct SolveStats {
    /// Depth of the degree-reduction recursion actually used.
    pub max_partition_depth: u32,
    /// Partition levels performed (across the whole tree).
    pub partitions: usize,
    /// ColorMiddle invocations (Theorem 12 repetitions included).
    pub mid_invocations: usize,
    /// Total nodes ever deferred by SSP failures.
    pub total_deferrals: usize,
    /// Nodes finished by the final one-machine greedy.
    pub greedy_finished: usize,
    /// Nodes finished by the deterministic low-degree solver.
    pub lowdeg_finished: usize,
    /// Per-partition diagnostics.
    pub partition_stats: Vec<PartitionStats>,
    /// Per-procedure step reports (from every Runner in the tree).
    pub steps: Vec<StepReport>,
    /// Per-stage HKNT reports.
    pub mid_reports: Vec<MidReport>,
}

impl SolveStats {
    fn absorb(&mut self, other: SolveStats) {
        self.max_partition_depth = self.max_partition_depth.max(other.max_partition_depth);
        self.partitions += other.partitions;
        self.mid_invocations += other.mid_invocations;
        self.total_deferrals += other.total_deferrals;
        self.greedy_finished += other.greedy_finished;
        self.lowdeg_finished += other.lowdeg_finished;
        self.partition_stats.extend(other.partition_stats);
        self.steps.extend(other.steps);
        self.mid_reports.extend(other.mid_reports);
    }
}

/// A complete, verified solve.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The verified coloring.
    pub colors: Vec<u32>,
    /// Critical-path cost bundle.
    pub cost: Cost,
    /// Execution statistics.
    pub stats: SolveStats,
}

/// The D1LC solver.
pub struct Solver {
    /// Algorithm configuration.
    pub params: Params,
    /// Deterministic (Theorem 1) or randomized (Lemma 4).
    pub mode: SolveMode,
    /// Seed-search backend for every derandomized runner in the solve
    /// tree (`None` = in-process pool).  Any backend honoring the
    /// [`SeedSearcher`] contract yields the identical coloring.
    seed_searcher: Option<std::sync::Arc<dyn SeedSearcher>>,
}

impl Solver {
    /// Theorem 1 solver.
    pub fn deterministic(params: Params) -> Self {
        Solver {
            params,
            mode: SolveMode::Deterministic,
            seed_searcher: None,
        }
    }

    /// Lemma 4 solver with the given master key.
    pub fn randomized(params: Params, key: u64) -> Self {
        Solver {
            params,
            mode: SolveMode::Randomized { key },
            seed_searcher: None,
        }
    }

    /// Route every seed search of this solve through `searcher` — the
    /// distributed coordinator/worker backends plug in here.
    pub fn with_seed_searcher(mut self, searcher: std::sync::Arc<dyn SeedSearcher>) -> Self {
        self.seed_searcher = Some(searcher);
        self
    }

    /// Solve the instance; the returned coloring is verified before return.
    pub fn solve(&self, inst: &D1lcInstance) -> Solution {
        if let Some(path) = self.params.simd {
            // Process-wide: the kernel dispatch cache is global.  All
            // paths are bit-identical, so this only changes throughput.
            parcolor_local::simd::force_path(path)
                .expect("Params::simd names a path this host cannot run");
        }
        let n_orig = inst.n().max(2);
        let (colors, cost, stats) = self.solve_rec(inst, n_orig, 0);
        inst.verify_coloring(&colors)
            .expect("solver produced an invalid coloring");
        Solution {
            colors,
            cost,
            stats,
        }
    }

    /// Recursive `LowSpaceColorReduce` (Algorithm 11) on a materialized
    /// instance.  Thresholds always use the original `n` (the paper's
    /// space budgets are in terms of the input size).
    fn solve_rec(
        &self,
        inst: &D1lcInstance,
        n_orig: usize,
        depth: u32,
    ) -> (Vec<u32>, Cost, SolveStats) {
        assert!(depth < 16, "partition recursion runaway");
        let threshold = self.params.mid_degree_threshold(n_orig);
        if inst.graph.max_degree() <= threshold {
            return self.mid_degree_color(inst, n_orig, depth);
        }

        let mut stats = SolveStats {
            max_partition_depth: depth + 1,
            partitions: 1,
            ..SolveStats::default()
        };
        let mut state = ColoringState::new(inst);
        let nodes = state.uncolored_nodes();
        let bins = self.params.partition_bins(n_orig);
        let part = low_space_partition(&inst.graph, &state, &nodes, threshold, bins, 256);
        stats.partition_stats.push(part.stats.clone());
        // Partition itself: O(1) MPC rounds (Lemma 23).
        let mut cost = Cost {
            local_rounds: 1,
            mpc_rounds: 2,
            max_machine_words: 0,
            budget_violations: 0,
        };

        // --- Restricted bins 0..B-2: independent sub-instances, solved in
        // parallel; their colors cannot conflict (disjoint color bins). ---
        let color_hash = &part.color_hash;
        type BinResult = (Vec<(NodeId, u32)>, Cost, SolveStats);
        let sub_results: Vec<BinResult> = part
            .bins
            .iter()
            .take(bins - 1)
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .filter(|(_, bin_nodes)| !bin_nodes.is_empty())
            .map(|(b, bin_nodes)| {
                let (sub, map) = state
                    .restricted_instance(&inst.graph, bin_nodes, |c| {
                        color_hash.eval(c as u64) as usize == b
                    })
                    .expect("Lemma 23 selection produced an invalid bin instance");
                let (sub_colors, c, s) = self.solve_rec(&sub, n_orig, depth + 1);
                let adoptions: Vec<(NodeId, u32)> = map
                    .iter()
                    .zip(sub_colors.iter())
                    .map(|(&orig, &col)| (orig, col))
                    .collect();
                (adoptions, c, s)
            })
            .collect();
        let mut parallel_cost = Cost::default();
        let mut all_adoptions = Vec::new();
        for (adoptions, c, s) in sub_results {
            parallel_cost = parallel_cost.par(c);
            stats.absorb(s);
            all_adoptions.extend(adoptions);
        }
        state.apply_adoptions(&inst.graph, &all_adoptions);
        cost = cost.seq(parallel_cost);

        // --- Last bin: full palettes, colored after the restricted bins
        // (its palettes were just updated by the removals). ---
        let last_bin: Vec<NodeId> = part.bins[bins - 1]
            .iter()
            .copied()
            .filter(|&v| !state.is_colored(v))
            .collect();
        if !last_bin.is_empty() {
            let (sub, map) = state.residual_instance(&inst.graph, &last_bin);
            let (sub_colors, c, s) = self.solve_rec(&sub, n_orig, depth + 1);
            let adoptions: Vec<(NodeId, u32)> = map
                .iter()
                .zip(sub_colors.iter())
                .map(|(&orig, &col)| (orig, col))
                .collect();
            state.apply_adoptions(&inst.graph, &adoptions);
            cost = cost.seq(c);
            stats.absorb(s);
        }

        // --- G_mid: the low-degree remainder, colored last. ---
        let mid: Vec<NodeId> = part
            .mid
            .iter()
            .copied()
            .filter(|&v| !state.is_colored(v))
            .collect();
        if !mid.is_empty() {
            let (sub, map) = state.residual_instance(&inst.graph, &mid);
            let (sub_colors, c, s) = self.mid_degree_color(&sub, n_orig, depth);
            let adoptions: Vec<(NodeId, u32)> = map
                .iter()
                .zip(sub_colors.iter())
                .map(|(&orig, &col)| (orig, col))
                .collect();
            state.apply_adoptions(&inst.graph, &adoptions);
            cost = cost.seq(c);
            stats.absorb(s);
        }

        let colors = state
            .into_colors()
            .expect("partition recursion left nodes uncolored");
        (colors, cost, stats)
    }

    /// `DerandomizedMidDegreeColor` (Algorithm 10) — or its randomized
    /// twin: Theorem 12's repetition of the HKNT stage on high-degree
    /// nodes, then the low-degree solver, then the one-machine greedy.
    fn mid_degree_color(
        &self,
        inst: &D1lcInstance,
        n_orig: usize,
        depth: u32,
    ) -> (Vec<u32>, Cost, SolveStats) {
        let g = &inst.graph;
        let mut state = ColoringState::new(inst);
        let mut stats = SolveStats::default();
        let low_thr = self.params.low_degree_threshold(n_orig);

        let mut runner = match self.mode {
            SolveMode::Deterministic => match &self.seed_searcher {
                Some(s) => {
                    Runner::derandomized_with(g, &self.params, n_orig, std::sync::Arc::clone(s))
                }
                None => Runner::derandomized(g, &self.params, n_orig),
            },
            SolveMode::Randomized { key } => {
                // Distinct keys per recursion site keep sub-solves independent.
                Runner::randomized(g, &self.params, key ^ (depth as u64) << 32, n_orig)
            }
        };

        // Degree-range schedule (the paper's "ranges": [log⁷n, n], then
        // [log⁷log n, log⁷n], … — O(log* n) ranges, highest first).  Each
        // range floor is the low-degree threshold *of the previous floor*,
        // mirroring the iterated-log structure at our threshold scaling.
        let mut floors: Vec<usize> = Vec::new();
        let mut t = low_thr;
        loop {
            floors.push(t);
            if !self.params.multi_range || t <= 8 {
                break;
            }
            let next = self.params.low_degree_threshold(t);
            if next >= t {
                break;
            }
            t = next;
        }

        // Theorem 12's loop per range: run the series, recurse on the
        // deferred residual (which *is* the uncolored residual instance,
        // by self-reducibility).
        for &floor in &floors {
            for _round in 0..self.params.max_recursions {
                let high: Vec<NodeId> = state
                    .uncolored_nodes()
                    .into_iter()
                    .filter(|&v| state.uncolored_degree(v) > floor)
                    .collect();
                if high.len() <= self.params.greedy_cutoff || high.is_empty() {
                    break;
                }
                let before = state.uncolored_count();
                runner.clear_deferrals();
                let rep = color_middle(&mut runner, &mut state, &self.params, &high);
                stats.mid_invocations += 1;
                stats.total_deferrals += rep.deferred;
                stats.mid_reports.push(rep);
                if state.uncolored_count() == before {
                    break; // no progress; hand the residue to the finishers
                }
            }
        }
        let low_thr = *floors.last().unwrap();

        // Low-degree remainder (Lemma 14 substitute) — everything whose
        // residual degree is within the low-degree solver's contract.
        let low: Vec<NodeId> = state
            .uncolored_nodes()
            .into_iter()
            .filter(|&v| state.uncolored_degree(v) <= low_thr)
            .collect();
        let lowdeg_big_enough = low.len() > self.params.greedy_cutoff;
        if lowdeg_big_enough {
            color_low_degree(g, &mut state, &low, &mut runner, self.params.greedy_cutoff);
            stats.lowdeg_finished += low.len();
        }

        // Final greedy on one machine (the n^{o(1)} leftover of Thm 12 +
        // anything the cutoffs skipped).  Sequential by construction.
        let rest = state.uncolored_nodes();
        if !rest.is_empty() {
            stats.greedy_finished += rest.len();
            runner.mpc.charge_single_machine(
                rest.len() * 4 + rest.iter().map(|&v| state.palette_size(v)).sum::<usize>(),
            );
            runner.mpc.charge_rounds(1);
            runner.engine.charge(1, rest.len() as u64);
            for &v in &rest {
                let pal = state.palette(v);
                assert!(!pal.is_empty(), "greedy: empty palette at {v}");
                let c = pal[0];
                state.apply_adoptions(g, &[(v, c)]);
            }
        }

        stats.steps.extend(runner.reports.iter().cloned());
        let snap = runner.mpc.metrics().snapshot();
        let cost = Cost {
            local_rounds: runner.engine.rounds(),
            mpc_rounds: snap.rounds,
            max_machine_words: snap.max_machine_words,
            budget_violations: snap.budget_violations,
        };
        let colors = state
            .into_colors()
            .expect("mid-degree stage left nodes uncolored");
        (colors, cost, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::graph::Graph;
    use parcolor_local::tape::SplitMix;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn deterministic_solves_random_graph() {
        let g = random_graph(400, 2400, 1);
        let inst = D1lcInstance::delta_plus_one(g);
        let solver = Solver::deterministic(Params::default().with_seed_bits(6));
        let sol = solver.solve(&inst); // verify_coloring inside
        assert!(sol.cost.local_rounds > 0);
        assert!(sol.cost.mpc_rounds > 0);
    }

    #[test]
    fn deterministic_is_reproducible() {
        let g = random_graph(300, 1500, 2);
        let inst = D1lcInstance::delta_plus_one(g);
        let solver = Solver::deterministic(Params::default().with_seed_bits(6));
        let a = solver.solve(&inst);
        let b = solver.solve(&inst);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.cost.mpc_rounds, b.cost.mpc_rounds);
    }

    #[test]
    fn randomized_solves_and_differs_by_key() {
        let g = random_graph(300, 1500, 3);
        let inst = D1lcInstance::delta_plus_one(g);
        let s1 = Solver::randomized(Params::default(), 1).solve(&inst);
        let s2 = Solver::randomized(Params::default(), 2).solve(&inst);
        // Different keys almost surely give different colorings.
        assert_ne!(s1.colors, s2.colors);
    }

    #[test]
    fn partition_recursion_triggers_with_cap() {
        // Force the degree-reduction path by capping the mid threshold.
        let g = random_graph(500, 8000, 4); // avg degree 32, Δ ~ 50
        let inst = D1lcInstance::delta_plus_one(g);
        let params = Params::default()
            .with_mid_degree_cap(16)
            .with_seed_bits(5)
            .with_greedy_cutoff(64);
        let solver = Solver::deterministic(params);
        let sol = solver.solve(&inst);
        assert!(sol.stats.partitions >= 1, "partition path not exercised");
        assert!(sol.stats.max_partition_depth >= 1);
    }

    #[test]
    fn solves_star_and_clique_corner_cases() {
        // Star (one hub).
        let edges: Vec<_> = (1..200u32).map(|i| (0, i)).collect();
        let star = D1lcInstance::delta_plus_one(Graph::from_edges(200, &edges));
        Solver::deterministic(Params::default().with_seed_bits(5)).solve(&star);
        // Clique K_40.
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                edges.push((a, b));
            }
        }
        let k = D1lcInstance::delta_plus_one(Graph::from_edges(40, &edges));
        let sol = Solver::deterministic(Params::default().with_seed_bits(5)).solve(&k);
        // K_40 needs exactly 40 distinct colors.
        let mut cs = sol.colors.clone();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 40);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = D1lcInstance::delta_plus_one(Graph::empty(5));
        Solver::deterministic(Params::default()).solve(&empty);
        let single = D1lcInstance::delta_plus_one(Graph::from_edges(2, &[(0, 1)]));
        let sol = Solver::deterministic(Params::default()).solve(&single);
        assert_ne!(sol.colors[0], sol.colors[1]);
    }

    #[test]
    fn list_coloring_with_adversarial_palettes() {
        // Ring where palettes are shifted windows — a genuine list instance.
        let n = 120;
        let edges: Vec<_> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges);
        let lists: Vec<Vec<u32>> = (0..n as u32).map(|v| vec![v, v + 1, v + 2]).collect();
        let inst = D1lcInstance::new(g, crate::instance::PaletteArena::from_lists(&lists));
        Solver::deterministic(Params::default().with_seed_bits(5)).solve(&inst);
    }
}
