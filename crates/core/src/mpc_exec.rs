//! Materialized MPC execution of the deterministic preprocessing
//! (Lemmas 16-18): Definition 2's parameters computed *as actual record
//! streams* on the `parcolor-mpc` cluster — sort/exchange/prefix-sum over
//! per-edge and per-palette records, with every message really routed and
//! every buffer really charged against the `n^φ` budget.
//!
//! The main solver computes the same quantities in shared memory and
//! *charges* the Lemma 17 costs (see `framework::Runner`); this module is
//! the ground truth that the accounting layer is charging for a real
//! algorithm.  The test suite cross-checks both paths value-for-value, and
//! `tests/integration_mpc_costs.rs` compares their cost profiles.
//!
//! Record shapes (one machine word ≈ one `u64` in the model):
//! * degree: edge records `(u, v)`, sorted by `u`, group-counted;
//! * slack: palette records `(v, color)` counted per `v`, joined with
//!   degrees by a co-sort;
//! * sparsity: Lemma 17's second bullet — every node `u` ships its
//!   adjacency list to each neighbor's machine (`Σ_u d(u)²` words, legal
//!   when `Δ ≤ √s`), and each `v` counts received `(u, w)` pairs with
//!   both endpoints in `N(v)`.

use crate::instance::{ColoringState, D1lcInstance};
use parcolor_local::graph::{Graph, NodeId};
use parcolor_mpc::cluster::{Cluster, Dist};
use parcolor_mpc::MpcConfig;
use rayon::prelude::*;

/// Definition 2 quantities produced by the materialized pipeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MpcNodeParams {
    /// Residual degree.
    pub degree: u32,
    /// Residual palette size.
    pub palette: u32,
    /// Slack `p − d`.
    pub slack: i64,
    /// Number of edges among the node's neighbors, `m(N(v))`.
    pub nbhd_edges: u64,
    /// Sparsity `ζ_v` (derived from the above).
    pub sparsity: f64,
}

/// Outcome of the materialized run: per-node parameters plus the metrics
/// snapshot of the cluster that produced them.
pub struct MpcParamsRun {
    /// Per-node Definition 2 quantities.
    pub params: Vec<MpcNodeParams>,
    /// Cluster metrics of the run.
    pub metrics: parcolor_mpc::metrics::MetricsSnapshot,
}

/// Route a node id to the machine hosting its contiguous id range.
#[inline]
fn home(v: NodeId, n: usize, machines: usize) -> usize {
    (v as usize * machines / n.max(1)).min(machines - 1)
}

/// Compute Definition 2's degree/slack/sparsity for every node of `inst`
/// on a real record-level cluster with local space `c·n^φ`.
pub fn compute_params_mpc(inst: &D1lcInstance, state: &ColoringState, phi: f64) -> MpcParamsRun {
    let g = &inst.graph;
    let n = g.n();
    let cluster = Cluster::new(MpcConfig::new(n.max(2), g.m().max(1), phi));
    cluster.metrics().begin_phase("degrees");

    // ---- Degrees: directed edge records sorted by source. ----
    let edge_records: Vec<(NodeId, NodeId)> = (0..n as NodeId)
        .flat_map(|u| g.neighbors(u).iter().map(move |&v| (u, v)))
        .collect();
    let d = cluster.distribute(edge_records, 2);
    let sorted = cluster.sort_by_key(d, 2, |&(u, _)| u);
    // Group-count per machine; boundaries are exact because the sort is
    // globally ordered and ties on `u` land on one or two machines — a
    // converge-cast merges the partial counts.
    let partials: Vec<(NodeId, u32)> = cluster.all_reduce(
        &sorted,
        |part| {
            let mut counts: Vec<(NodeId, u32)> = Vec::new();
            for &(u, _) in part {
                match counts.last_mut() {
                    Some((last, c)) if *last == u => *c += 1,
                    _ => counts.push((u, 1)),
                }
            }
            counts
        },
        |mut a, b| {
            for (u, c) in b {
                match a.last_mut() {
                    Some((last, ac)) if *last == u => *ac += c,
                    _ => a.push((u, c)),
                }
            }
            a
        },
        Vec::new(),
    );
    let mut degree = vec![0u32; n];
    for (u, c) in partials {
        degree[u as usize] = c;
    }

    // ---- Palette sizes: (v, color) records, counted the same way. ----
    cluster.metrics().begin_phase("palettes");
    let pal_records: Vec<(NodeId, u32)> = (0..n as NodeId)
        .flat_map(|v| state.palette(v).iter().map(move |&c| (v, c)))
        .collect();
    let d = cluster.distribute(pal_records, 2);
    let sorted = cluster.sort_by_key(d, 2, |&(v, _)| v);
    let partials: Vec<(NodeId, u32)> = cluster.all_reduce(
        &sorted,
        |part| {
            let mut counts: Vec<(NodeId, u32)> = Vec::new();
            for &(v, _) in part {
                match counts.last_mut() {
                    Some((last, c)) if *last == v => *c += 1,
                    _ => counts.push((v, 1)),
                }
            }
            counts
        },
        |mut a, b| {
            for (v, c) in b {
                match a.last_mut() {
                    Some((last, ac)) if *last == v => *ac += c,
                    _ => a.push((v, c)),
                }
            }
            a
        },
        Vec::new(),
    );
    let mut palette = vec![0u32; n];
    for (v, c) in partials {
        palette[v as usize] = c;
    }

    // ---- Sparsity: Lemma 17 second bullet, materialized. ----
    // Node u ships (dest=v, u, w) for every v ∈ N(u), w ∈ N(u): the
    // machine of v then knows every edge incident to its neighborhood.
    cluster.metrics().begin_phase("two_hop");
    let triples: Vec<(NodeId, NodeId, NodeId)> = (0..n as NodeId)
        .into_par_iter()
        .flat_map_iter(|u| {
            let nu = g.neighbors(u);
            nu.iter()
                .flat_map(move |&v| nu.iter().map(move |&w| (v, u, w)))
                .collect::<Vec<_>>()
                .into_iter()
        })
        .collect();
    let d: Dist<(NodeId, NodeId, NodeId)> = cluster.distribute(triples, 3);
    let machines = d.machine_count();
    let routed = cluster.exchange(d, 3, |&(v, _, _)| home(v, n, machines));
    // Each destination machine counts, per hosted v, the received (u, w)
    // pairs with w ∈ N(v) and u < w — i.e. edges inside N(v).
    let partial_counts: Vec<(NodeId, u64)> = cluster.all_reduce(
        &routed,
        |part| {
            // Sort-and-run-length instead of a hash map: collect the
            // qualifying keys, sort, and collapse runs.  The machine's
            // record stream arrives grouped by destination already, so the
            // sort is near-sorted and cheap; the output is sorted by node,
            // which the merge step relies on.
            let mut keys: Vec<NodeId> = part
                .iter()
                .filter(|&&(v, u, w)| u < w && g.has_edge(v, w) && v != w && v != u)
                .map(|&(v, _, _)| v)
                .collect();
            keys.sort_unstable();
            let mut out: Vec<(NodeId, u64)> = Vec::new();
            for v in keys {
                match out.last_mut() {
                    Some((last, c)) if *last == v => *c += 1,
                    _ => out.push((v, 1)),
                }
            }
            out
        },
        |mut a, b| {
            a.extend(b);
            a
        },
        Vec::new(),
    );
    let mut nbhd_edges = vec![0u64; n];
    for (v, c) in partial_counts {
        nbhd_edges[v as usize] += c;
    }
    cluster.metrics().end_phase();

    let params: Vec<MpcNodeParams> = (0..n)
        .map(|v| {
            let d = degree[v] as f64;
            let pairs = d * (d - 1.0) / 2.0;
            let sparsity = if degree[v] >= 2 {
                (pairs - nbhd_edges[v] as f64) / d
            } else {
                0.0
            };
            MpcNodeParams {
                degree: degree[v],
                palette: palette[v],
                slack: palette[v] as i64 - degree[v] as i64,
                nbhd_edges: nbhd_edges[v],
                sparsity,
            }
        })
        .collect();
    MpcParamsRun {
        params,
        metrics: cluster.metrics().snapshot(),
    }
}

/// Convenience check used by tests: does the Lemma 17 precondition
/// `Δ ≤ √s` hold for this instance at exponent `phi`?
pub fn lemma17_applicable(g: &Graph, phi: f64) -> bool {
    let cfg = MpcConfig::new(g.n().max(2), g.m().max(1), phi);
    g.max_degree() <= cfg.sqrt_space()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_params::compute_params;
    use parcolor_local::tape::SplitMix;

    fn random_instance(n: usize, m: usize, seed: u64) -> D1lcInstance {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        D1lcInstance::delta_plus_one(Graph::from_edges(n, &edges))
    }

    #[test]
    fn matches_shared_memory_computation() {
        let inst = random_instance(300, 900, 1);
        let state = ColoringState::new(&inst);
        let run = compute_params_mpc(&inst, &state, 0.5);
        let nodes: Vec<NodeId> = (0..300).collect();
        let active = vec![true; 300];
        let reference = compute_params(&inst.graph, &state, &nodes, &active);
        for v in 0..300u32 {
            let mpc = &run.params[v as usize];
            assert_eq!(mpc.degree as usize, inst.graph.degree(v), "degree {v}");
            assert_eq!(mpc.palette as usize, state.palette_size(v), "palette {v}");
            assert_eq!(mpc.slack, reference.get(v).slack, "slack {v}");
            assert!(
                (mpc.sparsity - reference.get(v).sparsity).abs() < 1e-9,
                "sparsity {v}: {} vs {}",
                mpc.sparsity,
                reference.get(v).sparsity
            );
        }
    }

    #[test]
    fn nbhd_edges_matches_direct_count() {
        let inst = random_instance(150, 600, 2);
        let state = ColoringState::new(&inst);
        let run = compute_params_mpc(&inst, &state, 0.5);
        for v in 0..150u32 {
            assert_eq!(
                run.params[v as usize].nbhd_edges as usize,
                inst.graph.edges_in_neighborhood(v),
                "m(N({v}))"
            );
        }
    }

    #[test]
    fn charges_constant_rounds() {
        let inst = random_instance(400, 1200, 3);
        let state = ColoringState::new(&inst);
        let run = compute_params_mpc(&inst, &state, 0.5);
        // Three phases of O(1) sorts/exchanges each: comfortably < 30.
        assert!(run.metrics.rounds < 30, "rounds = {}", run.metrics.rounds);
        assert!(run.metrics.messages > 0);
    }

    #[test]
    fn round_count_independent_of_n() {
        let r1 = {
            let inst = random_instance(200, 600, 4);
            let state = ColoringState::new(&inst);
            compute_params_mpc(&inst, &state, 0.5).metrics.rounds
        };
        let r2 = {
            let inst = random_instance(1600, 4800, 5);
            let state = ColoringState::new(&inst);
            compute_params_mpc(&inst, &state, 0.5).metrics.rounds
        };
        assert_eq!(r1, r2, "materialized pipeline is not O(1) rounds");
    }

    #[test]
    fn lemma17_precondition_check() {
        let inst = random_instance(400, 1200, 6); // Δ small
        assert!(lemma17_applicable(&inst.graph, 0.9));
        let star = {
            let edges: Vec<_> = (1..300u32).map(|i| (0, i)).collect();
            Graph::from_edges(300, &edges)
        };
        assert!(!lemma17_applicable(&star, 0.3));
    }

    #[test]
    fn works_on_partially_colored_state() {
        let inst = random_instance(100, 300, 7);
        let mut state = ColoringState::new(&inst);
        let c = state.palette(0)[0];
        state.apply_adoptions(&inst.graph, &[(0, c)]);
        let run = compute_params_mpc(&inst, &state, 0.5);
        // Node 1's palette may have shrunk; the MPC path must see the
        // residual palette, not the input one.
        for v in 1..100u32 {
            assert_eq!(
                run.params[v as usize].palette as usize,
                state.palette_size(v)
            );
        }
    }
}
