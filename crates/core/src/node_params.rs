//! The per-node parameters of Definition 2 (from HKNT22).
//!
//! All quantities are computed on the *residual* graph/palettes held by a
//! [`ColoringState`], restricted to a given active node set — matching the
//! paper's convention that "G" always means the current graph.  Lemma 18
//! shows each is computable in O(1) MPC rounds when `Δ ≤ √s`; the caller
//! charges that cost through `parcolor-mpc`.

use crate::instance::ColoringState;
use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Definition 2 parameters for one node.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeParams {
    /// Slack `s(v) = p(v) − d(v)`.
    pub slack: i64,
    /// Sparsity `ζ_v = [ (d(v) choose 2) − m(N(v)) ] / d(v)`.
    pub sparsity: f64,
    /// Discrepancy `η̄_v = Σ_{u∈N(v)} |Ψ(u) \ Ψ(v)| / |Ψ(u)|`.
    pub discrepancy: f64,
    /// Unevenness `η_v = Σ_{u∈N(v)} max(0, d(u) − d(v)) / (d(u) + 1)`.
    pub unevenness: f64,
    /// Slackability `σ̄_v = η̄_v + ζ_v`.
    pub slackability: f64,
    /// Strong slackability `σ_v = η_v + ζ_v`.
    pub strong_slackability: f64,
}

/// Parameters for a set of active nodes; absent nodes hold defaults.
#[derive(Clone, Debug)]
pub struct ParamTable {
    /// Parameters indexed by node id (defaults for inactive nodes).
    pub per_node: Vec<NodeParams>,
}

impl ParamTable {
    /// The parameters of `v`.
    pub fn get(&self, v: NodeId) -> &NodeParams {
        &self.per_node[v as usize]
    }
}

/// Is `u` an *active uncolored* node for the purposes of the residual
/// graph?  Procedures pass the stage's membership mask.
pub type ActiveMask<'a> = &'a [bool];

/// Residual degree of `v` *within the active set* (the stage's graph).
pub fn active_degree(g: &Graph, active: ActiveMask, v: NodeId) -> usize {
    g.neighbors(v)
        .iter()
        .filter(|&&u| active[u as usize])
        .count()
}

/// Compute Definition 2's parameters for all nodes in `nodes` (which must
/// be uncolored and marked in `active`).  Degrees, sparsity and palettes
/// are all taken in the residual graph induced by `active`.
pub fn compute_params(
    g: &Graph,
    state: &ColoringState,
    nodes: &[NodeId],
    active: ActiveMask,
) -> ParamTable {
    let n = g.n();
    let mut per_node = vec![NodeParams::default(); n];
    let computed: Vec<(NodeId, NodeParams)> = nodes
        .par_iter()
        .map(|&v| {
            let nv: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| active[u as usize])
                .collect();
            let d = nv.len();
            let p = state.palette_size(v);
            let slack = p as i64 - d as i64;
            // m(N(v)) within the active subgraph.
            let m_nv: usize = nv
                .iter()
                .map(|&u| {
                    g.neighbors(u)
                        .iter()
                        .filter(|&&w| active[w as usize] && nv.binary_search(&w).is_ok())
                        .count()
                })
                .sum::<usize>()
                / 2;
            let sparsity = if d >= 2 {
                let pairs = (d * (d - 1) / 2) as f64;
                (pairs - m_nv as f64) / d as f64
            } else {
                0.0
            };
            // Disparity sums: |Ψ(u) \ Ψ(v)|.  Residual palettes are
            // unsorted (swap-remove), so sort a local copy of v's palette
            // once and probe with binary search — palettes are small and
            // this sits inside the sparsity loop, where a hash set's
            // allocation and hashing overhead dominates.
            let mut pv: Vec<u32> = state.palette(v).to_vec();
            pv.sort_unstable();
            let mut discrepancy = 0.0;
            let mut unevenness = 0.0;
            for &u in &nv {
                let pu = state.palette(u);
                if !pu.is_empty() {
                    let outside = pu.iter().filter(|c| pv.binary_search(c).is_err()).count();
                    discrepancy += outside as f64 / pu.len() as f64;
                }
                let du = g
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| active[w as usize])
                    .count();
                unevenness += (du.saturating_sub(d)) as f64 / (du as f64 + 1.0);
            }
            let params = NodeParams {
                slack,
                sparsity,
                discrepancy,
                unevenness,
                slackability: discrepancy + sparsity,
                strong_slackability: unevenness + sparsity,
            };
            (v, params)
        })
        .collect();
    for (v, p) in computed {
        per_node[v as usize] = p;
    }
    ParamTable { per_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;
    use parcolor_local::graph::Graph;

    fn mask(n: usize, nodes: &[NodeId]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &v in nodes {
            m[v as usize] = true;
        }
        m
    }

    #[test]
    fn clique_has_zero_sparsity() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..4).collect();
        let act = mask(4, &nodes);
        let t = compute_params(&g, &st, &nodes, &act);
        for v in 0..4 {
            assert_eq!(t.get(v).sparsity, 0.0);
            assert_eq!(t.get(v).slack, 1); // deg+1 palette
            assert_eq!(t.get(v).unevenness, 0.0); // regular
        }
    }

    #[test]
    fn star_center_is_sparse() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..5).collect();
        let act = mask(5, &nodes);
        let t = compute_params(&g, &st, &nodes, &act);
        // center: d=4, no edges among leaves: ζ = (6-0)/4 = 1.5
        assert!((t.get(0).sparsity - 1.5).abs() < 1e-12);
        // leaf: d=1, ζ=0; unevenness = (4-1)/5 = 0.6
        assert_eq!(t.get(1).sparsity, 0.0);
        assert!((t.get(1).unevenness - 0.6).abs() < 1e-12);
    }

    #[test]
    fn identical_palettes_zero_discrepancy() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let pal = crate::instance::PaletteArena::from_lists(&[
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1, 2, 3],
        ]);
        let inst = D1lcInstance::new(g.clone(), pal);
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..3).collect();
        let act = mask(3, &nodes);
        let t = compute_params(&g, &st, &nodes, &act);
        assert_eq!(t.get(1).discrepancy, 0.0);
    }

    #[test]
    fn disjoint_palettes_full_discrepancy() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let pal = crate::instance::PaletteArena::from_lists(&[vec![1, 2], vec![3, 4]]);
        let inst = D1lcInstance::new(g.clone(), pal);
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = vec![0, 1];
        let act = mask(2, &nodes);
        let t = compute_params(&g, &st, &nodes, &act);
        // one neighbor, all of whose palette is outside: η̄ = 1.0
        assert!((t.get(0).discrepancy - 1.0).abs() < 1e-12);
        assert!((t.get(0).slackability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inactive_neighbors_are_invisible() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        // Only 0 and 1 active: node 0's active degree is 1.
        let nodes: Vec<NodeId> = vec![0, 1];
        let act = mask(3, &nodes);
        assert_eq!(active_degree(&g, &act, 0), 1);
        let t = compute_params(&g, &st, &nodes, &act);
        // slack uses residual palette (3 colors) minus active degree 1 = 2
        assert_eq!(t.get(0).slack, 2);
    }
}
