#![warn(missing_docs)]
//! # parcolor-core
//!
//! A full reproduction of **"Parallel Derandomization for Coloring"**
//! (Sam Coy, Artur Czumaj, Peter Davies-Peck, Gopinath Mishra; IPDPS 2024,
//! arXiv:2302.04378): a framework for derandomizing LOCAL algorithms in
//! the sublinear-space MPC model, applied to (degree+1)-list coloring.
//!
//! ## Quick start
//!
//! ```
//! use parcolor_core::{D1lcInstance, Params, Solver};
//! use parcolor_local::graph::Graph;
//!
//! // A 5-cycle as a (Δ+1)-coloring instance (the canonical D1LC case).
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! let inst = D1lcInstance::delta_plus_one(g);
//!
//! // Theorem 1: deterministic D1LC in O(log log log n) MPC rounds.
//! let solution = Solver::deterministic(Params::default()).solve(&inst);
//! assert!(inst.verify_coloring(&solution.colors).is_ok());
//! ```
//!
//! ## Map from paper to code
//!
//! | Paper | Module |
//! |---|---|
//! | Definition 2 (node parameters) | [`node_params`] |
//! | Definition 3 (almost-clique decomposition) | [`hknt::acd`] |
//! | Definition 5 (normal distributed procedures) | [`framework`] |
//! | Algorithms 2–9 (HKNT subprocedures) | [`hknt`] |
//! | Lemma 10 / Theorem 12 (derandomizer) | [`framework`], [`solver`] |
//! | Lemma 14 substitute (low-degree solver) | [`lowdeg`] |
//! | Lemma 23 / Algorithms 11–12 (degree reduction) | [`reduce`], [`solver`] |
//! | Theorem 1 / Lemma 4 (end-to-end solvers) | [`solver`] |
//! | Section 4.1's Luby-MIS example | [`mis`] |
//!
//! Substrates live in sibling crates: `parcolor-local` (graphs, tapes,
//! LOCAL engine), `parcolor-mpc` (MPC simulator), `parcolor-prg` (PRG and
//! seed selection), `parcolor-graphgen` (workloads).

pub mod baselines;
pub mod config;
pub mod edge_coloring;
pub mod framework;
pub mod hknt;
pub mod instance;
pub mod linial;
pub mod lowdeg;
pub mod mis;
pub mod mpc_exec;
pub mod node_params;
pub mod reduce;
pub mod solver;

pub use config::{ChunkMode, Params};
pub use framework::{
    BlockEval, LocalSeedSearcher, NormalProcedure, Outcome, Runner, SeedSearcher, SimScratch,
    StepReport,
};
pub use instance::{ColoringState, D1lcInstance, PaletteArena, NO_COLOR};
pub use solver::{Cost, Solution, SolveMode, SolveStats, Solver};

// Re-export the substrate types users need to build instances.
pub use parcolor_local::graph::{Graph, NodeId};
// The runtime SIMD dispatch layer (path selection, forced-path testing).
pub use parcolor_local::simd;
pub use parcolor_local::simd::SimdPath;
pub use parcolor_prg::{SeedSelection, SeedStrategy};
