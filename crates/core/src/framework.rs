//! The derandomization framework (Section 4 of the paper).
//!
//! * [`NormalProcedure`] encodes Definition 5: a short randomized LOCAL
//!   procedure with a per-node **strong success property** (SSP, holds
//!   w.h.p. under true randomness) whose failures can be **deferred**
//!   without hurting anyone else (the weak success property).  For the
//!   coloring procedures this holds because deferring a node removes it
//!   from neighbors' competition while blocking no palette colors — slack
//!   only grows.  The invariant is machine-checked by the property tests.
//! * [`Runner`] executes a series of procedures either **randomized**
//!   (CryptoTape, Lemma 4) or **derandomized** (Lemma 10: simulate under
//!   every PRG seed, pick one with at most the mean number of SSP failures
//!   via `parcolor-prg::select_seed`, defer the failures).
//!
//! Theorem 12's outer loop — re-running the whole series on the deferred
//! residual instance `O(1/δ)` times, then finishing greedily on one
//! machine — lives in `solver.rs`, because it needs D1LC's
//! self-reducibility (`ColoringState::residual_instance`).

use crate::config::{ChunkMode, Params};
use crate::instance::ColoringState;
use crate::linial::linial_coloring;
use parcolor_local::engine::RoundEngine;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::power::power_graph;
use parcolor_local::tape::{CryptoTape, Randomness};
use parcolor_mpc::{MpcConfig, NodeMpc};
use parcolor_prg::{select_seed, ChunkAssignment, Prg, PrgTape, SeedSelection, SeedStrategy};
use serde::Serialize;

/// Output of simulating one normal procedure (the `Out_v` of Definition 5,
/// gathered for the whole graph).
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Conflict-free color adoptions proposed by the procedure.
    pub adoptions: Vec<(NodeId, u32)>,
    /// Procedure-specific extra output (e.g. PutAside's sampled set).
    pub aux: Vec<NodeId>,
}

/// A normal `(τ, Δ)`-round distributed procedure (Definition 5).
///
/// Implementations must keep `simulate` **pure**: the outcome must be a
/// deterministic function of `(state, rng)` and must not mutate anything —
/// the derandomizer calls it once per candidate seed, in parallel.
pub trait NormalProcedure: Sync {
    /// Human-readable procedure name (for reports).
    fn name(&self) -> &'static str;

    /// Locality radius τ (all procedures in this repo are O(1)-round).
    fn tau(&self) -> u32 {
        1
    }

    /// LOCAL rounds one execution costs (charged to the round engine).
    fn local_rounds(&self) -> u64 {
        2
    }

    /// Number of participating nodes (for reporting and failure bounds).
    fn active_count(&self) -> usize;

    /// Simulate the procedure on the current state under `rng`.
    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome;

    /// Nodes failing the strong success property under `out`.  Must be a
    /// subset of the active uncolored-after-outcome nodes: a node that the
    /// outcome colors is always deemed successful (its output is final),
    /// so deferral never needs to retract an adoption.
    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId>;

    /// Cost functional minimized by the seed search.  Defaults to the SSP
    /// failure count — exactly Lemma 10's pessimistic estimator.  Warm-up
    /// procedures whose SSP is intentionally permissive (e.g. the first
    /// TryRandomColor calls inside SlackColor) override this to "number of
    /// nodes left uncolored", which only strengthens the chosen seed; the
    /// Lemma 10 guarantee is still reported against SSP failures.
    fn seed_cost(&self, state: &ColoringState, out: &Outcome) -> f64 {
        self.ssp_failures(state, out).len() as f64
    }
}

/// Per-step execution report.
#[derive(Clone, Debug, Serialize)]
pub struct StepReport {
    /// Procedure name.
    pub name: &'static str,
    /// Participating nodes.
    pub active: usize,
    /// Nodes colored by the step.
    pub adopted: usize,
    /// SSP failures (deferred).
    pub failures: usize,
    /// Lemma 10's deferral bound for this step: `1/2 + n_G · Δ^{-11τ}`.
    pub failure_bound: f64,
    /// The seed search's outcome (derandomized mode only).
    pub selection: Option<SeedSelection>,
}

/// Execution mode: Lemma 4 (randomized) or Lemma 10 (derandomized).
pub enum Mode {
    /// True(-standing) randomness with the given master key.
    Randomized {
        /// Keyed tape standing in for true randomness.
        tape: CryptoTape,
    },
    /// PRG + conditional expectations.
    Derandomized {
        /// The PRG family (seed length fixed).
        prg: Prg,
        /// Seed-selection strategy.
        strategy: SeedStrategy,
        /// Node → chunk assignment for the PRG output.
        chunks: ChunkAssignment,
    },
}

/// Executes procedures, accounts rounds/space, and tracks deferrals.
pub struct Runner<'g> {
    /// The graph all procedures run on.
    pub graph: &'g Graph,
    mode: Mode,
    /// LOCAL round accountant.
    pub engine: RoundEngine,
    /// MPC round/space accountant.
    pub mpc: NodeMpc,
    /// Nodes deferred by failed SSPs in the current series.
    pub deferred: Vec<bool>,
    stream_counter: u64,
    /// Per-step reports, in execution order.
    pub reports: Vec<StepReport>,
    /// Auxiliary output of the most recent step (e.g. PutAside's set).
    last_aux: Vec<NodeId>,
    /// Failure-injection probability (see `Params::chaos_defer_prob`).
    chaos: f64,
    /// Nodes deferred by injection rather than SSP failure (telemetry).
    pub chaos_deferrals: usize,
}

impl<'g> Runner<'g> {
    /// Construct a randomized runner (Lemma 4 pipeline).
    pub fn randomized(graph: &'g Graph, params: &Params, master_key: u64, n_global: usize) -> Self {
        let cfg = MpcConfig::new(n_global.max(2), graph.m().max(1), params.phi);
        Runner {
            graph,
            mode: Mode::Randomized {
                tape: CryptoTape::new(master_key),
            },
            engine: RoundEngine::new(),
            mpc: NodeMpc::new(cfg),
            deferred: vec![false; graph.n()],
            stream_counter: 0,
            reports: Vec::new(),
            last_aux: Vec::new(),
            chaos: params.chaos_defer_prob,
            chaos_deferrals: 0,
        }
    }

    /// Construct a derandomized runner (Lemma 10 pipeline).  In
    /// `PowerColoring` mode this computes the `G^{4τ}` coloring up front
    /// (Theorem 12 does this once, in `O(τ + log* n)` rounds).
    pub fn derandomized(graph: &'g Graph, params: &Params, n_global: usize) -> Self {
        let cfg = MpcConfig::new(n_global.max(2), graph.m().max(1), params.phi);
        let mpc = NodeMpc::new(cfg);
        let mut engine = RoundEngine::new();
        let chunks = match params.chunking {
            ChunkMode::PerNode => ChunkAssignment::PerNode,
            ChunkMode::PowerColoring => {
                let gp = power_graph(graph, 4 * params.tau as usize);
                let active = vec![true; graph.n()];
                let lin = linial_coloring(&gp, &active);
                // Charged per Theorem 12: O(τ + log* n) rounds to color G^{4τ}.
                engine.charge(lin.rounds * (4 * params.tau as u64).max(1), 0);
                mpc.charge_rounds(lin.rounds + params.tau as u64);
                ChunkAssignment::PowerColoring { colors: lin.colors }
            }
        };
        Runner {
            graph,
            mode: Mode::Derandomized {
                prg: Prg::new(params.seed_bits),
                strategy: params.strategy,
                chunks,
            },
            engine,
            mpc,
            deferred: vec![false; graph.n()],
            stream_counter: 0,
            reports: Vec::new(),
            last_aux: Vec::new(),
            chaos: params.chaos_defer_prob,
            chaos_deferrals: 0,
        }
    }

    /// Auxiliary node-set output of the most recent step (e.g. the
    /// put-aside set `P`); empty when the last procedure had none.
    pub fn last_aux(&self) -> &[NodeId] {
        &self.last_aux
    }

    /// Whether `v` is currently deferred.
    pub fn is_deferred(&self, v: NodeId) -> bool {
        self.deferred[v as usize]
    }

    /// All currently deferred nodes, ascending.
    pub fn deferred_nodes(&self) -> Vec<NodeId> {
        (0..self.graph.n() as NodeId)
            .filter(|&v| self.deferred[v as usize])
            .collect()
    }

    /// Reset deferrals (between Theorem 12 repetitions).
    pub fn clear_deferrals(&mut self) {
        self.deferred.iter_mut().for_each(|d| *d = false);
    }

    fn next_stream(&mut self) -> u64 {
        self.stream_counter += 1;
        self.stream_counter
    }

    /// Execute one normal procedure: simulate (under true randomness or
    /// the chosen PRG seed), apply its adoptions, defer its SSP failures.
    ///
    /// Returns the step report (also appended to `self.reports`).
    pub fn run_step(
        &mut self,
        proc: &dyn NormalProcedure,
        state: &mut ColoringState,
    ) -> StepReport {
        let stream = self.next_stream();
        let tau = proc.tau() as u64;
        // Lemma 10's round/space charges: collect the 8τ-hop input info
        // (τ rounds of neighborhood exchange), one round of seed agreement
        // / output application.
        self.engine.charge(proc.local_rounds(), 0);
        self.mpc
            .charge_neighbor_broadcast(self.graph, |v| !state.is_colored(v), 1);
        self.mpc.charge_rounds(tau + 1);

        let (outcome, selection) = match &self.mode {
            Mode::Randomized { tape } => {
                let keyed = StreamTape {
                    inner: tape,
                    stream,
                };
                (proc.simulate(state, &keyed), None)
            }
            Mode::Derandomized {
                prg,
                strategy,
                chunks,
            } => {
                let st: &ColoringState = state;
                let cost = |seed: u64| {
                    let tape = PrgTape::new(*prg, seed, chunks);
                    let keyed = StreamTape {
                        inner: &tape,
                        stream,
                    };
                    let out = proc.simulate(st, &keyed);
                    proc.seed_cost(st, &out)
                };
                let sel = select_seed(prg.seed_bits(), *strategy, cost);
                debug_assert!(sel.satisfies_guarantee());
                let tape = PrgTape::new(*prg, sel.seed, chunks);
                let keyed = StreamTape {
                    inner: &tape,
                    stream,
                };
                (proc.simulate(state, &keyed), Some(sel))
            }
        };

        let failures = proc.ssp_failures(state, &outcome);
        let adopted = outcome.adoptions.len();
        self.last_aux = outcome.aux.clone();
        state.apply_adoptions(self.graph, &outcome.adoptions);
        for &v in &failures {
            debug_assert!(
                !state.is_colored(v),
                "SSP failure on colored node {v} in {}",
                proc.name()
            );
            self.deferred[v as usize] = true;
        }
        // Failure injection: adversarially defer extra uncolored nodes.
        // Definition 5's WSP survives any such subset; the injection tests
        // (tests/failure_injection.rs) verify the pipeline absorbs it.
        if self.chaos > 0.0 {
            let chaos_tape = CryptoTape::new(0xC4A0_5000 ^ stream);
            for v in 0..self.graph.n() as NodeId {
                if !state.is_colored(v)
                    && !self.deferred[v as usize]
                    && chaos_tape.bernoulli(v, stream, 7, self.chaos)
                {
                    self.deferred[v as usize] = true;
                    self.chaos_deferrals += 1;
                }
            }
        }
        // Lemma 10's bound on deferred nodes for one derandomized step.
        let delta = self.graph.max_degree().max(2) as f64;
        let n_g = proc.active_count() as f64;
        let failure_bound = 0.5 + n_g * delta.powf(-11.0 * tau as f64);
        let report = StepReport {
            name: proc.name(),
            active: proc.active_count(),
            adopted,
            failures: failures.len(),
            failure_bound,
            selection,
        };
        self.reports.push(report.clone());
        report
    }
}

/// Adapter fixing the `stream` coordinate of an underlying tape, so each
/// procedure invocation draws from its own pseudorandom substream.
struct StreamTape<'a, R: Randomness + ?Sized> {
    inner: &'a R,
    stream: u64,
}

impl<R: Randomness + ?Sized> Randomness for StreamTape<'_, R> {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        // Combine the runner-level stream with the procedure-internal one.
        self.inner.word(
            node,
            self.stream.wrapping_mul(0x1000_0000_01B3) ^ stream,
            idx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;

    /// A toy normal procedure: every active node tries a random palette
    /// color with symmetric abstention; SSP = "got colored".
    struct ToyProc<'a> {
        g: &'a Graph,
        active: Vec<NodeId>,
        mask: Vec<bool>,
    }

    impl NormalProcedure for ToyProc<'_> {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn active_count(&self) -> usize {
            self.active.len()
        }

        fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
            let pick_of = |v: NodeId| {
                let pal = state.palette(v);
                pal[rng.below(v, 0, 0, pal.len() as u64) as usize]
            };
            let mut adoptions = Vec::new();
            for &v in &self.active {
                let pick = pick_of(v);
                let clash = self
                    .g
                    .neighbors(v)
                    .iter()
                    .any(|&u| self.mask[u as usize] && pick_of(u) == pick);
                if !clash {
                    adoptions.push((v, pick));
                }
            }
            Outcome {
                adoptions,
                aux: Vec::new(),
            }
        }

        fn ssp_failures(&self, _state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
            let colored: Vec<NodeId> = out.adoptions.iter().map(|a| a.0).collect();
            self.active
                .iter()
                .copied()
                .filter(|v| !colored.contains(v))
                .collect()
        }
    }

    fn ring(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn setup() -> (D1lcInstance, Vec<NodeId>, Vec<bool>) {
        let g = ring(8);
        let inst = D1lcInstance::delta_plus_one(g);
        let active: Vec<NodeId> = (0..8).collect();
        let mask = vec![true; 8];
        (inst, active, mask)
    }

    #[test]
    fn randomized_step_applies_and_defers() {
        let (inst, active, mask) = setup();
        let mut state = ColoringState::new(&inst);
        let params = Params::default();
        let mut runner = Runner::randomized(&inst.graph, &params, 42, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        assert_eq!(rep.adopted + rep.failures, 8);
        assert_eq!(runner.deferred_nodes().len(), rep.failures);
        assert!(state.verify_partial(&inst.graph).is_ok());
        assert!(runner.engine.rounds() > 0);
        assert!(runner.mpc.metrics().rounds() > 0);
    }

    #[test]
    fn derandomized_step_meets_guarantee() {
        let (inst, active, mask) = setup();
        let mut state = ColoringState::new(&inst);
        let params = Params::default().with_seed_bits(8);
        let mut runner = Runner::derandomized(&inst.graph, &params, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        let sel = rep.selection.expect("derandomized step has a selection");
        assert!(sel.satisfies_guarantee());
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn derandomized_run_is_reproducible() {
        let (inst, active, mask) = setup();
        let params = Params::default().with_seed_bits(8);
        let run = |a: Vec<NodeId>, m: Vec<bool>| {
            let mut state = ColoringState::new(&inst);
            let mut runner = Runner::derandomized(&inst.graph, &params, 8);
            let proc = ToyProc {
                g: &inst.graph,
                active: a,
                mask: m,
            };
            runner.run_step(&proc, &mut state);
            state.colors().to_vec()
        };
        assert_eq!(
            run(active.clone(), mask.clone()),
            run(active, mask),
            "derandomized pipeline must be bit-reproducible"
        );
    }

    #[test]
    fn power_coloring_mode_builds_chunks() {
        let (inst, active, mask) = setup();
        let params = Params::default()
            .with_seed_bits(6)
            .with_chunking(ChunkMode::PowerColoring);
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::derandomized(&inst.graph, &params, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        assert!(rep.selection.is_some());
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn streams_differ_between_steps() {
        // Two identical procedures in sequence must not replay the same
        // randomness (the second sees fresh bits via the stream counter).
        let (inst, _, _) = setup();
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&inst.graph, &params, 7, 8);
        let active: Vec<NodeId> = state.uncolored_nodes();
        let mask = vec![true; 8];
        let r1 = runner.run_step(
            &ToyProc {
                g: &inst.graph,
                active: active.clone(),
                mask: mask.clone(),
            },
            &mut state,
        );
        let remaining = state.uncolored_nodes();
        if !remaining.is_empty() {
            let mut mask2 = vec![false; 8];
            for &v in &remaining {
                mask2[v as usize] = true;
            }
            let r2 = runner.run_step(
                &ToyProc {
                    g: &inst.graph,
                    active: remaining,
                    mask: mask2,
                },
                &mut state,
            );
            // Not a strict requirement, but with fresh randomness the second
            // round almost surely colors someone on a ring.
            assert!(r2.adopted > 0 || r1.adopted == 8);
        }
    }
}
