//! The derandomization framework (Section 4 of the paper).
//!
//! * [`NormalProcedure`] encodes Definition 5: a short randomized LOCAL
//!   procedure with a per-node **strong success property** (SSP, holds
//!   w.h.p. under true randomness) whose failures can be **deferred**
//!   without hurting anyone else (the weak success property).  For the
//!   coloring procedures this holds because deferring a node removes it
//!   from neighbors' competition while blocking no palette colors — slack
//!   only grows.  The invariant is machine-checked by the property tests.
//! * [`Runner`] executes a series of procedures either **randomized**
//!   (CryptoTape, Lemma 4) or **derandomized** (Lemma 10: simulate under
//!   every PRG seed, pick one with at most the mean number of SSP failures
//!   via `parcolor-prg::select_seed`, defer the failures).
//!
//! Theorem 12's outer loop — re-running the whole series on the deferred
//! residual instance `O(1/δ)` times, then finishing greedily on one
//! machine — lives in `solver.rs`, because it needs D1LC's
//! self-reducibility (`ColoringState::residual_instance`).
//!
//! ## The seed-search fast path and its cost model
//!
//! The derandomizer's hot loop evaluates the pessimistic estimator once
//! per candidate seed — `2^seed_bits` full simulations per step.  Three
//! structural decisions keep that loop at memory speed:
//!
//! 1. **Scratch-buffer simulation** ([`SimScratch`]).  Every procedure
//!    implements [`NormalProcedure::simulate_into`], writing its outcome
//!    into a reusable arena (epoch-stamped per-node caches, flat adoption
//!    / aux buffers).  After one warm-up evaluation a seed evaluation
//!    performs **zero heap allocation**.
//! 2. **Per-seed pick caching.**  A node's random draw under a fixed seed
//!    is the same no matter which neighbor asks, so `simulate_into`
//!    computes each active node's pick **once** into the scratch
//!    (`O(n_active)` tape reads) and resolves clashes with `O(m)` array
//!    lookups — versus `O(Σ_v d(v))` tape reads for the naïve
//!    re-evaluate-per-edge formulation of [`NormalProcedure::simulate`].
//! 3. **Sharded seed-parallelism.**  `parcolor_prg::select_seed_blocks_n`
//!    folds the seed space over scoped threads, one scratch per worker;
//!    the per-seed simulation is sequential.  Workers steal `SEED_BLOCK`-
//!    sized blocks off one shared atomic counter, and the fold merges
//!    `(sum, min, argmin)` with a lowest-seed tie-break — grouping-
//!    invariant for the integer SSP costs, so results are bit-identical
//!    for any worker count and any steal order.
//! 4. **Batched randomness plane** ([`PickPlane`]).  A procedure's random
//!    draws are materialized for a whole stripe of active nodes in one
//!    `Randomness::fill_*` call per stream — the tape's seed/stream mixer
//!    rounds are hoisted once per stripe and the per-node rounds run in
//!    explicit four-lane SIMD (`parcolor_local::simd::splitmix4`,
//!    runtime-dispatched to the best of scalar/AVX2/AVX-512/NEON the CPU
//!    supports, every path bit-identical) — instead of one scalar `word`
//!    per node.  The plane is bit-identical to the
//!    scalar tape walk (same mixer outputs, same picks, same chosen
//!    seeds; see the batch contract in `parcolor_local::tape`), so the
//!    reference `simulate` path and the golden hashes are unchanged.
//! 5. **Seed-lane block evaluation.**  Every procedure overrides
//!    [`NormalProcedure::seed_cost_block`]: a block of up to `SEED_BLOCK`
//!    seeds materializes its picks/samples/proposals as one
//!    structure-of-arrays plane (`PickPlane::soa` + the lane bitmasks),
//!    and the clash/slack/undominated scans run ONCE over the graph with
//!    lane-parallel compares, instead of once per seed.  See the block
//!    contract on [`NormalProcedure::seed_cost_block`].
//!
//! Per derandomized step the fast path therefore costs
//! `O(2^seed_bits · (n_active + m_active) / workers)` with no allocation,
//! and `BitwiseCondExp` streams each half-space mean instead of
//! materializing the `2^seed_bits` cost table (see
//! `parcolor_prg::seed_search`).  `tests/seed_fastpath_equivalence.rs`
//! pins the fast path to the reference path: identical `SeedSelection`
//! (seed, cost, mean, trace) and identical outcomes for every strategy.

use crate::config::{ChunkMode, Params};
use crate::instance::{ColoringState, NO_COLOR};
use crate::linial::linial_coloring;
use parcolor_local::engine::RoundEngine;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::power::power_graph;
use parcolor_local::tape::{CryptoTape, Randomness};
use parcolor_mpc::{MpcConfig, NodeMpc};
use parcolor_prg::{
    select_seed_blocks_n, ChunkAssignment, Prg, PrgTape, SeedSelection, SeedStrategy, SEED_BLOCK,
};
use serde::Serialize;

/// Output of simulating one normal procedure (the `Out_v` of Definition 5,
/// gathered for the whole graph).
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Conflict-free color adoptions proposed by the procedure.
    pub adoptions: Vec<(NodeId, u32)>,
    /// Procedure-specific extra output (e.g. PutAside's sampled set).
    pub aux: Vec<NodeId>,
}

/// Batched randomness plane of one seed evaluation — staging buffers that
/// `simulate_into` implementations fill with one `Randomness::fill_*`
/// call per (stream, stripe) instead of one scalar tape read per node.
///
/// All buffers are stripe-scoped: each `draw_*` call overwrites them for
/// its own stripe, so nothing needs clearing between seed evaluations and
/// capacity is retained across the whole seed search.  Every draw is
/// bit-identical to the scalar calls it replaces (the tape-level batch
/// contract), which is what keeps the fast path pinned to the reference
/// path.
#[derive(Clone, Debug, Default)]
pub struct PickPlane {
    /// Node stripe scratch (gathered subsets, e.g. sampled nodes).
    pub nodes: Vec<NodeId>,
    /// Per-node draw bounds gathered for the current stripe.
    pub bounds: Vec<u64>,
    /// Raw words or bounded draws, aligned with the stripe.
    pub vals: Vec<u64>,
    /// Bernoulli outcomes, aligned with the stripe.
    pub bits: Vec<bool>,
    /// Seed-lane plane: picks of up to [`SEED_BLOCK`] seeds per node,
    /// dense by node id, one `u32` lane per seed — the
    /// structure-of-arrays layout block cost evaluators scan with
    /// lane-parallel compares.
    pub soa: Vec<[u32; SEED_BLOCK]>,
    /// Per-node seed-lane bit accumulator (bit `s` ⇔ event in lane `s`),
    /// dense by node id — clash scans OR into it branchlessly and count
    /// bits per lane afterwards.
    pub lane_mask: Vec<u8>,
    /// Per-node seed-lane validity bits (bit `s` ⇔ the node holds a draw
    /// in lane `s`: it was sampled / received a proposal under seed lane
    /// `s`), dense by node id.  Lane-masked scans AND with both
    /// endpoints' validity so stale [`PickPlane::soa`] lanes never
    /// produce phantom clashes.
    pub valid_mask: Vec<u8>,
    /// Per-node seed-lane **adoption** bits (bit `s` ⇔ the node adopted
    /// [`PickPlane::soa`]`[v][s]` under seed lane `s`), dense by node id —
    /// the block-evaluation analogue of [`SimScratch::adopted_color`],
    /// consumed by the lane-parallel SSP evaluators.
    pub adopted_mask: Vec<u8>,
    /// Per-lane sorted-set buffers for lane-parallel slack evaluation
    /// (the block analogue of [`SimScratch::taken`]).
    pub taken_lanes: [Vec<u32>; SEED_BLOCK],
}

impl PickPlane {
    /// Bounded draws for `nodes` — `vals[i] = below(nodes[i], stream, idx,
    /// bound_of(nodes[i]))` — in one batched tape pass.
    pub fn draw_below(
        &mut self,
        rng: &dyn Randomness,
        stream: u64,
        idx: u32,
        nodes: &[NodeId],
        mut bound_of: impl FnMut(NodeId) -> u64,
    ) -> &[u64] {
        self.bounds.clear();
        self.bounds.extend(nodes.iter().map(|&v| bound_of(v)));
        self.vals.resize(nodes.len(), 0);
        rng.fill_below(stream, nodes, idx, &self.bounds, &mut self.vals);
        &self.vals
    }

    /// Bernoulli trials for `nodes` — `bits[i] = bernoulli(nodes[i],
    /// stream, idx, p)` — in one batched tape pass.
    pub fn draw_bernoulli(
        &mut self,
        rng: &dyn Randomness,
        stream: u64,
        idx: u32,
        nodes: &[NodeId],
        p: f64,
    ) -> &[bool] {
        self.bits.resize(nodes.len(), false);
        rng.fill_bernoulli(stream, nodes, idx, p, &mut self.bits);
        &self.bits
    }

    /// `len` consecutive words of one node's tape starting at `idx0` —
    /// the idx-stripe shape used by permutation deals and multi-draws.
    pub fn draw_words_seq(
        &mut self,
        rng: &dyn Randomness,
        node: NodeId,
        stream: u64,
        idx0: u32,
        len: usize,
    ) -> &[u64] {
        self.vals.resize(len, 0);
        rng.fill_words_seq(node, stream, idx0, &mut self.vals);
        &self.vals
    }
}

/// Reusable per-worker arena for seed evaluations — the zero-allocation
/// backing store of [`NormalProcedure::simulate_into`].
///
/// All per-node caches are **epoch-stamped**: [`SimScratch::begin`] bumps
/// one epoch counter instead of clearing `O(n)` memory, so starting a new
/// seed evaluation is `O(1)` plus truncating the flat outcome buffers.
/// Capacity is retained across evaluations; after the first evaluation of
/// a step, subsequent seeds perform no heap allocation.
#[derive(Clone, Debug)]
pub struct SimScratch {
    n: usize,
    epoch: u32,
    // -- outcome buffers (the Outcome of the current evaluation) --
    /// Conflict-free adoptions of the current evaluation, in active order.
    pub adoptions: Vec<(NodeId, u32)>,
    /// Aux node-set output of the current evaluation.
    pub aux: Vec<NodeId>,
    // -- dense adopted-color view (valid where stamp matches epoch) --
    adopted: Vec<u32>,
    adopted_stamp: Vec<u32>,
    // -- per-node caches for pick/proposal, sample bits, probabilities --
    picks: Vec<u32>,
    pick_stamp: Vec<u32>,
    bits: Vec<bool>,
    bit_stamp: Vec<u32>,
    probs: Vec<f64>,
    prob_stamp: Vec<u32>,
    mark_stamp: Vec<u32>,
    // -- flat arenas reused by individual procedures --
    /// Flat candidate-color arena (MultiTrial draws).
    pub draw_colors: Vec<u32>,
    /// Offsets into [`SimScratch::draw_colors`], one per active node + 1.
    pub draw_off: Vec<usize>,
    /// Small sorted-set buffer (SSP slack evaluation).
    pub taken: Vec<u32>,
    /// Permutation buffer (SynchColorTrial leader deals).
    pub perm: Vec<u32>,
    /// Batched randomness plane (stripe-scoped, no per-seed clearing).
    pub plane: PickPlane,
}

impl SimScratch {
    /// Arena for an `n`-node state.
    pub fn new(n: usize) -> Self {
        SimScratch {
            n,
            epoch: 0,
            adoptions: Vec::new(),
            aux: Vec::new(),
            adopted: vec![NO_COLOR; n],
            adopted_stamp: vec![0; n],
            picks: vec![NO_COLOR; n],
            pick_stamp: vec![0; n],
            bits: vec![false; n],
            bit_stamp: vec![0; n],
            probs: vec![0.0; n],
            prob_stamp: vec![0; n],
            mark_stamp: vec![0; n],
            draw_colors: Vec::new(),
            draw_off: Vec::new(),
            taken: Vec::new(),
            perm: Vec::new(),
            plane: PickPlane::default(),
        }
    }

    /// Number of nodes the arena is sized for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Start a fresh evaluation: invalidate all per-node caches (O(1))
    /// and truncate the outcome buffers.  Every `simulate_into`
    /// implementation must call this first.
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            // Stamp wrap (once per 2^32 evaluations): hard-reset.
            self.adopted_stamp.iter_mut().for_each(|s| *s = 0);
            self.pick_stamp.iter_mut().for_each(|s| *s = 0);
            self.bit_stamp.iter_mut().for_each(|s| *s = 0);
            self.prob_stamp.iter_mut().for_each(|s| *s = 0);
            self.mark_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.adoptions.clear();
        self.aux.clear();
        self.draw_colors.clear();
        self.draw_off.clear();
    }

    /// Record an adoption `(v, c)` (also maintains the dense view).
    #[inline]
    pub fn record_adoption(&mut self, v: NodeId, c: u32) {
        self.adoptions.push((v, c));
        self.adopted[v as usize] = c;
        self.adopted_stamp[v as usize] = self.epoch;
    }

    /// Color adopted by `v` in the current evaluation (`NO_COLOR` if none).
    #[inline]
    pub fn adopted_color(&self, v: NodeId) -> u32 {
        if self.adopted_stamp[v as usize] == self.epoch {
            self.adopted[v as usize]
        } else {
            NO_COLOR
        }
    }

    /// Cache a pick/proposal for `v`.
    #[inline]
    pub fn set_pick(&mut self, v: NodeId, c: u32) {
        self.picks[v as usize] = c;
        self.pick_stamp[v as usize] = self.epoch;
    }

    /// Cached pick of `v`, if set this evaluation.
    #[inline]
    pub fn pick(&self, v: NodeId) -> Option<u32> {
        (self.pick_stamp[v as usize] == self.epoch).then(|| self.picks[v as usize])
    }

    /// Cached pick of `v` without the stamp check — for hot loops where
    /// the caller guarantees `set_pick(v, ..)` ran this evaluation (e.g.
    /// every active node was filled in a prior pass).
    #[inline]
    pub fn pick_unchecked(&self, v: NodeId) -> u32 {
        debug_assert_eq!(self.pick_stamp[v as usize], self.epoch, "stale pick");
        self.picks[v as usize]
    }

    /// Stamp-free pick write for fused cost evaluations that fill every
    /// node they will subsequently read via [`SimScratch::pick_raw`].
    /// Never mix with stamped reads ([`SimScratch::pick`]) in the same
    /// evaluation.
    #[inline]
    pub fn set_pick_raw(&mut self, v: NodeId, c: u32) {
        self.picks[v as usize] = c;
    }

    /// Stamp-free pick read; only valid after [`SimScratch::set_pick_raw`]
    /// wrote `v` in the same evaluation.
    #[inline]
    pub fn pick_raw(&self, v: NodeId) -> u32 {
        self.picks[v as usize]
    }

    /// Split-borrow the randomness plane together with the dense pick
    /// array (stamp-free, [`SimScratch::set_pick_raw`] contract) —
    /// striped `simulate_into_par` overrides fill picks from plane
    /// stripes in parallel and need both halves mutably at once.
    pub fn plane_and_picks(&mut self) -> (&mut PickPlane, &mut [u32]) {
        (&mut self.plane, &mut self.picks)
    }

    /// Cache a boolean (e.g. "sampled") for `v`.
    #[inline]
    pub fn set_bit(&mut self, v: NodeId, b: bool) {
        self.bits[v as usize] = b;
        self.bit_stamp[v as usize] = self.epoch;
    }

    /// Cached boolean of `v` (false if unset this evaluation).
    #[inline]
    pub fn bit(&self, v: NodeId) -> bool {
        self.bit_stamp[v as usize] == self.epoch && self.bits[v as usize]
    }

    /// Cache a per-node probability for `v`.
    #[inline]
    pub fn set_prob(&mut self, v: NodeId, p: f64) {
        self.probs[v as usize] = p;
        self.prob_stamp[v as usize] = self.epoch;
    }

    /// Cached probability of `v` (0.0 if unset this evaluation).
    #[inline]
    pub fn prob(&self, v: NodeId) -> f64 {
        if self.prob_stamp[v as usize] == self.epoch {
            self.probs[v as usize]
        } else {
            0.0
        }
    }

    /// Add `v` to the evaluation-scoped mark set.
    #[inline]
    pub fn mark(&mut self, v: NodeId) {
        self.mark_stamp[v as usize] = self.epoch;
    }

    /// Add `v` to the mark set, reporting whether it was newly added
    /// (lets clash scans count distinct clashed nodes on the fly).
    #[inline]
    pub fn mark_new(&mut self, v: NodeId) -> bool {
        let fresh = self.mark_stamp[v as usize] != self.epoch;
        self.mark_stamp[v as usize] = self.epoch;
        fresh
    }

    /// Whether `v` is in the mark set.
    #[inline]
    pub fn is_marked(&self, v: NodeId) -> bool {
        self.mark_stamp[v as usize] == self.epoch
    }

    /// Copy an [`Outcome`] into the arena (used by the default
    /// `simulate_into`, which delegates to allocating `simulate`).
    pub fn load_outcome(&mut self, out: &Outcome) {
        self.begin();
        for &(v, c) in &out.adoptions {
            self.record_adoption(v, c);
        }
        self.aux.extend_from_slice(&out.aux);
    }

    /// Materialize the current evaluation as an [`Outcome`] (allocates;
    /// used once per step to apply the chosen seed, never per seed).
    pub fn to_outcome(&self) -> Outcome {
        Outcome {
            adoptions: self.adoptions.clone(),
            aux: self.aux.clone(),
        }
    }
}

/// A normal `(τ, Δ)`-round distributed procedure (Definition 5).
///
/// Implementations must keep `simulate` **pure**: the outcome must be a
/// deterministic function of `(state, rng)` and must not mutate anything —
/// the derandomizer calls it once per candidate seed, in parallel.
pub trait NormalProcedure: Sync {
    /// Human-readable procedure name (for reports).
    fn name(&self) -> &'static str;

    /// Locality radius τ (all procedures in this repo are O(1)-round).
    fn tau(&self) -> u32 {
        1
    }

    /// LOCAL rounds one execution costs (charged to the round engine).
    fn local_rounds(&self) -> u64 {
        2
    }

    /// Number of participating nodes (for reporting and failure bounds).
    fn active_count(&self) -> usize;

    /// Simulate the procedure on the current state under `rng`.
    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome;

    /// Simulate into a reusable scratch arena — the zero-allocation fast
    /// path driven once per candidate seed by the derandomizer.
    ///
    /// Must be **outcome-equivalent** to [`NormalProcedure::simulate`]
    /// (same adoptions in the same order, same aux set) and must call
    /// `scratch.begin()` first.  Implementations should be sequential:
    /// seed-level parallelism is supplied outside, by `select_seed_with`.
    /// The default delegates to `simulate` (correct, but allocating).
    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        let out = self.simulate(state, rng);
        scratch.load_outcome(&out);
    }

    /// [`NormalProcedure::simulate_into`] with node-striped parallelism
    /// on the executor pool — the once-per-step application of the
    /// chosen seed (or of true randomness), where the instance is large
    /// and the evaluation is not already inside a seed-search worker.
    ///
    /// Must be **bit-identical** to `simulate_into` at every worker
    /// count: overrides may parallelize only node stripes whose values
    /// are independent given the previous round's state (batch tape
    /// draws, per-node clash predicates), and must keep every
    /// order-sensitive effect (adoption recording) in sequential active
    /// order.  The default simply runs the sequential path.
    fn simulate_into_par(
        &self,
        state: &ColoringState,
        rng: &dyn Randomness,
        scratch: &mut SimScratch,
        pool: &parcolor_exec::Executor,
        workers: usize,
    ) {
        let _ = (pool, workers);
        self.simulate_into(state, rng, scratch);
    }

    /// [`NormalProcedure::seed_cost`] evaluated against the scratch arena
    /// filled by the latest `simulate_into` — must return exactly the same
    /// value `seed_cost` would for the equivalent [`Outcome`].  The
    /// default materializes the outcome (allocating); hot procedures
    /// override it with allocation-free counting.
    fn seed_cost_scratch(&self, state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        let out = scratch.to_outcome();
        self.seed_cost(state, &out)
    }

    /// One fused seed evaluation: simulate under `rng` and return the seed
    /// cost.  Must equal `simulate_into` + `seed_cost_scratch` (and hence
    /// `simulate` + `seed_cost`) — but implementations may skip producing
    /// the outcome when the cost alone is cheaper to compute (e.g. a
    /// clash count).  This is what the derandomizer calls per candidate
    /// seed; the outcome of the *chosen* seed is always re-simulated via
    /// `simulate_into`.
    fn seed_cost_fused(
        &self,
        state: &ColoringState,
        rng: &dyn Randomness,
        scratch: &mut SimScratch,
    ) -> f64 {
        self.simulate_into(state, rng, scratch);
        self.seed_cost_scratch(state, scratch)
    }

    /// Fused cost evaluation for a **block** of candidate seeds, one tape
    /// per seed (at most `parcolor_prg::SEED_BLOCK`): must write
    /// `costs[i] = seed_cost_fused(state, tapes[i], scratch)` for every
    /// lane.  The default is exactly that loop; hot procedures override
    /// it to materialize the whole block's picks into the seed-lane plane
    /// (`PickPlane::soa`) and amortize their clash scan across lanes.
    ///
    /// ## The block contract
    ///
    /// An override must guarantee, for every lane `i < costs.len()`:
    ///
    /// 1. **Per-lane purity.**  `costs[i]` is a pure function of seed
    ///    lane `i` alone — exactly the value `seed_cost_fused(state,
    ///    tapes[i], scratch)` computes, bit-for-bit (costs are integer
    ///    SSP-failure counts, so "bit-for-bit" is meaningful).  Lanes
    ///    must not leak into one another: the block fold regroups blocks
    ///    freely across workers, and `tests/seed_fastpath_equivalence.rs`
    ///    pins every override to the per-seed fused path.
    /// 2. **Tape addressing is unchanged.**  Each lane draws through its
    ///    own tape with the same `(node, stream, idx)` addresses the
    ///    scalar path uses — materializing lanes into the plane is a
    ///    layout change, never a randomness change.
    /// 3. **Stale lanes are masked.**  Dense SoA rows
    ///    (`PickPlane::soa`) retain garbage from earlier blocks in lanes
    ///    a node did not draw in; any lane-parallel compare must AND
    ///    with the validity bits (`PickPlane::valid_mask`) or pad unused
    ///    lanes with values that cannot collide (e.g. the node's own
    ///    id across an edge).
    /// 4. **Short blocks are legal.**  `tapes.len()` may be any length
    ///    in `1..=SEED_BLOCK` (tail blocks, `SingleSeed`); lanes past
    ///    `costs.len()` must not be read or written as costs.
    ///
    /// Block grouping must never change any individual seed's cost.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        for (tape, c) in tapes.iter().zip(costs.iter_mut()) {
            *c = self.seed_cost_fused(state, *tape, scratch);
        }
    }

    /// Nodes failing the strong success property under `out`.  Must be a
    /// subset of the active uncolored-after-outcome nodes: a node that the
    /// outcome colors is always deemed successful (its output is final),
    /// so deferral never needs to retract an adoption.
    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId>;

    /// Cost functional minimized by the seed search.  Defaults to the SSP
    /// failure count — exactly Lemma 10's pessimistic estimator.  Warm-up
    /// procedures whose SSP is intentionally permissive (e.g. the first
    /// TryRandomColor calls inside SlackColor) override this to "number of
    /// nodes left uncolored", which only strengthens the chosen seed; the
    /// Lemma 10 guarantee is still reported against SSP failures.
    fn seed_cost(&self, state: &ColoringState, out: &Outcome) -> f64 {
        self.ssp_failures(state, out).len() as f64
    }
}

/// Per-step execution report.
#[derive(Clone, Debug, Serialize)]
pub struct StepReport {
    /// Procedure name.
    pub name: &'static str,
    /// Participating nodes.
    pub active: usize,
    /// Nodes colored by the step.
    pub adopted: usize,
    /// SSP failures (deferred).
    pub failures: usize,
    /// Lemma 10's deferral bound for this step: `1/2 + n_G · Δ^{-11τ}`.
    pub failure_bound: f64,
    /// The seed search's outcome (derandomized mode only).
    pub selection: Option<SeedSelection>,
}

/// The block evaluator a [`SeedSearcher`] receives: writes
/// `costs[i] = cost(seed0 + i)` into a short block using the given
/// scratch arena, per the [`NormalProcedure::seed_cost_block`] contract.
pub type BlockEval<'a> = &'a (dyn Fn(u64, &mut [f64], &mut SimScratch) + Sync);

/// Pluggable seed-search backend — the hook through which a solve's seed
/// searches can run somewhere other than this process's executor pool
/// (e.g. `parcolor-dist`'s coordinator, which leases seed blocks to a
/// fleet, or its worker, which serves leases and adopts the broadcast
/// selection).
///
/// Contract: `select` must return the same [`SeedSelection`] the local
/// [`select_seed_blocks_n`] path would return for the same
/// `(seed_bits, strategy, eval_block)` — every cost is a pure function
/// of its seed and the reduce is grouping-invariant, so any backend
/// that folds each seed exactly once (deduplicating retries) satisfies
/// this by construction.  `n` sizes the per-worker [`SimScratch`]
/// arenas.
///
/// Searches within one solve are issued sequentially and in a
/// deterministic order (the solver tree is walked depth-first and the
/// rayon shim's `collect` terminal is sequential); backends that
/// replicate solver state across machines may rely on that order.
pub trait SeedSearcher: Send + Sync {
    /// Run one seed search.
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection;
}

/// The default backend: [`select_seed_blocks_n`] on the in-process
/// work-stealing pool.
pub struct LocalSeedSearcher;

impl SeedSearcher for LocalSeedSearcher {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        select_seed_blocks_n(
            seed_bits,
            strategy,
            workers,
            || SimScratch::new(n),
            |seed0, costs, scratch: &mut SimScratch| eval_block(seed0, costs, scratch),
        )
    }
}

/// Execution mode: Lemma 4 (randomized) or Lemma 10 (derandomized).
pub enum Mode {
    /// True(-standing) randomness with the given master key.
    Randomized {
        /// Keyed tape standing in for true randomness.
        tape: CryptoTape,
    },
    /// PRG + conditional expectations.
    Derandomized {
        /// The PRG family (seed length fixed).
        prg: Prg,
        /// Seed-selection strategy.
        strategy: SeedStrategy,
        /// Node → chunk assignment for the PRG output.
        chunks: ChunkAssignment,
        /// Seed-search worker threads (`0` = auto); any count selects
        /// the identical seed (the block fold is grouping-invariant).
        workers: usize,
        /// Where seed searches run: the in-process pool by default, or a
        /// distributed backend (any backend selects the identical seed —
        /// see [`SeedSearcher`]).
        searcher: std::sync::Arc<dyn SeedSearcher>,
    },
}

/// Executes procedures, accounts rounds/space, and tracks deferrals.
pub struct Runner<'g> {
    /// The graph all procedures run on.
    pub graph: &'g Graph,
    mode: Mode,
    /// LOCAL round accountant.
    pub engine: RoundEngine,
    /// MPC round/space accountant.
    pub mpc: NodeMpc,
    /// Nodes deferred by failed SSPs in the current series.
    pub deferred: Vec<bool>,
    stream_counter: u64,
    /// Per-step reports, in execution order.
    pub reports: Vec<StepReport>,
    /// Auxiliary output of the most recent step (e.g. PutAside's set).
    last_aux: Vec<NodeId>,
    /// Failure-injection probability (see `Params::chaos_defer_prob`).
    chaos: f64,
    /// Nodes deferred by injection rather than SSP failure (telemetry).
    pub chaos_deferrals: usize,
    /// Reusable arena for applying the chosen seed (derandomized mode).
    scratch: Option<SimScratch>,
    /// Worker count for striped round simulation (`0` = auto); the seed
    /// search has its own copy inside [`Mode::Derandomized`].
    workers: usize,
}

impl<'g> Runner<'g> {
    /// Construct a randomized runner (Lemma 4 pipeline).
    pub fn randomized(graph: &'g Graph, params: &Params, master_key: u64, n_global: usize) -> Self {
        let cfg = MpcConfig::new(n_global.max(2), graph.m().max(1), params.phi);
        Runner {
            graph,
            mode: Mode::Randomized {
                tape: CryptoTape::new(master_key),
            },
            engine: RoundEngine::new(),
            mpc: NodeMpc::new(cfg),
            deferred: vec![false; graph.n()],
            stream_counter: 0,
            reports: Vec::new(),
            last_aux: Vec::new(),
            chaos: params.chaos_defer_prob,
            chaos_deferrals: 0,
            scratch: None,
            workers: params.workers,
        }
    }

    /// Construct a derandomized runner (Lemma 10 pipeline).  In
    /// `PowerColoring` mode this computes the `G^{4τ}` coloring up front
    /// (Theorem 12 does this once, in `O(τ + log* n)` rounds).
    pub fn derandomized(graph: &'g Graph, params: &Params, n_global: usize) -> Self {
        Self::derandomized_with(
            graph,
            params,
            n_global,
            std::sync::Arc::new(LocalSeedSearcher),
        )
    }

    /// [`Runner::derandomized`] with an explicit seed-search backend
    /// (the distributed coordinator/worker layers plug in here).
    pub fn derandomized_with(
        graph: &'g Graph,
        params: &Params,
        n_global: usize,
        searcher: std::sync::Arc<dyn SeedSearcher>,
    ) -> Self {
        let cfg = MpcConfig::new(n_global.max(2), graph.m().max(1), params.phi);
        let mpc = NodeMpc::new(cfg);
        let mut engine = RoundEngine::new();
        let chunks = match params.chunking {
            ChunkMode::PerNode => ChunkAssignment::PerNode,
            ChunkMode::PowerColoring => {
                let gp = power_graph(graph, 4 * params.tau as usize);
                let active = vec![true; graph.n()];
                let lin = linial_coloring(&gp, &active);
                // Charged per Theorem 12: O(τ + log* n) rounds to color G^{4τ}.
                engine.charge(lin.rounds * (4 * params.tau as u64).max(1), 0);
                mpc.charge_rounds(lin.rounds + params.tau as u64);
                ChunkAssignment::PowerColoring { colors: lin.colors }
            }
        };
        Runner {
            graph,
            mode: Mode::Derandomized {
                prg: Prg::new(params.seed_bits),
                strategy: params.strategy,
                chunks,
                workers: params.workers,
                searcher,
            },
            engine,
            mpc,
            deferred: vec![false; graph.n()],
            stream_counter: 0,
            reports: Vec::new(),
            last_aux: Vec::new(),
            chaos: params.chaos_defer_prob,
            chaos_deferrals: 0,
            scratch: None,
            workers: params.workers,
        }
    }

    /// Auxiliary node-set output of the most recent step (e.g. the
    /// put-aside set `P`); empty when the last procedure had none.
    pub fn last_aux(&self) -> &[NodeId] {
        &self.last_aux
    }

    /// Whether `v` is currently deferred.
    pub fn is_deferred(&self, v: NodeId) -> bool {
        self.deferred[v as usize]
    }

    /// All currently deferred nodes, ascending.
    pub fn deferred_nodes(&self) -> Vec<NodeId> {
        (0..self.graph.n() as NodeId)
            .filter(|&v| self.deferred[v as usize])
            .collect()
    }

    /// Reset deferrals (between Theorem 12 repetitions).
    pub fn clear_deferrals(&mut self) {
        self.deferred.iter_mut().for_each(|d| *d = false);
    }

    fn next_stream(&mut self) -> u64 {
        self.stream_counter += 1;
        self.stream_counter
    }

    /// Execute one normal procedure: simulate (under true randomness or
    /// the chosen PRG seed), apply its adoptions, defer its SSP failures.
    ///
    /// Returns the step report (also appended to `self.reports`).
    pub fn run_step(
        &mut self,
        proc: &dyn NormalProcedure,
        state: &mut ColoringState,
    ) -> StepReport {
        let stream = self.next_stream();
        let tau = proc.tau() as u64;
        // Lemma 10's round/space charges: collect the 8τ-hop input info
        // (τ rounds of neighborhood exchange), one round of seed agreement
        // / output application.
        self.engine.charge(proc.local_rounds(), 0);
        self.mpc
            .charge_neighbor_broadcast(self.graph, |v| !state.is_colored(v), 1);
        self.mpc.charge_rounds(tau + 1);

        let (outcome, selection) = match &self.mode {
            Mode::Randomized { tape } => {
                let keyed = StreamTape {
                    inner: tape,
                    stream,
                };
                // Scratch-arena path (outcome-equivalent to `simulate` —
                // pinned by the framework tests) so the one simulation per
                // step can stripe across the executor pool.
                let n = state.n();
                let scratch = self.scratch.get_or_insert_with(|| SimScratch::new(n));
                if scratch.n() != n {
                    *scratch = SimScratch::new(n);
                }
                proc.simulate_into_par(
                    state,
                    &keyed,
                    scratch,
                    parcolor_exec::Executor::global(),
                    self.workers,
                );
                (scratch.to_outcome(), None)
            }
            Mode::Derandomized {
                prg,
                strategy,
                chunks,
                workers,
                searcher,
            } => {
                // Fast path: scratch-buffer simulation, one arena per
                // seed-search worker, sequential inner simulation, seeds
                // evaluated in blocks so procedures can amortize their
                // scans across the block's seed lanes; blocks are dealt
                // to workers by atomic stealing (grouping-invariant).
                // The search itself runs wherever the backend says —
                // in-process pool or a distributed fleet; either way the
                // selection is identical (see `SeedSearcher`).
                let st: &ColoringState = state;
                let n = st.n();
                let eval_block = |seed0: u64, costs: &mut [f64], scratch: &mut SimScratch| {
                    let tapes = prg.block_tapes(seed0, chunks);
                    let keyed: [StreamTape<PrgTape>; SEED_BLOCK] =
                        std::array::from_fn(|i| StreamTape {
                            inner: &tapes[i],
                            stream,
                        });
                    let refs: [&dyn Randomness; SEED_BLOCK] =
                        std::array::from_fn(|i| &keyed[i] as &dyn Randomness);
                    proc.seed_cost_block(st, &refs[..costs.len()], scratch, costs);
                };
                let sel = searcher.select(prg.seed_bits(), *strategy, *workers, n, &eval_block);
                debug_assert!(sel.satisfies_guarantee());
                let tape = PrgTape::new(*prg, sel.seed, chunks);
                let keyed = StreamTape {
                    inner: &tape,
                    stream,
                };
                let scratch = &mut self.scratch;
                let scratch = scratch.get_or_insert_with(|| SimScratch::new(n));
                if scratch.n() != n {
                    *scratch = SimScratch::new(n);
                }
                proc.simulate_into_par(
                    st,
                    &keyed,
                    scratch,
                    parcolor_exec::Executor::global(),
                    self.workers,
                );
                (scratch.to_outcome(), Some(sel))
            }
        };

        let failures = proc.ssp_failures(state, &outcome);
        let adopted = outcome.adoptions.len();
        self.last_aux = outcome.aux.clone();
        state.apply_adoptions(self.graph, &outcome.adoptions);
        for &v in &failures {
            debug_assert!(
                !state.is_colored(v),
                "SSP failure on colored node {v} in {}",
                proc.name()
            );
            self.deferred[v as usize] = true;
        }
        // Failure injection: adversarially defer extra uncolored nodes.
        // Definition 5's WSP survives any such subset; the injection tests
        // (tests/failure_injection.rs) verify the pipeline absorbs it.
        if self.chaos > 0.0 {
            let chaos_tape = CryptoTape::new(0xC4A0_5000 ^ stream);
            for v in 0..self.graph.n() as NodeId {
                if !state.is_colored(v)
                    && !self.deferred[v as usize]
                    && chaos_tape.bernoulli(v, stream, 7, self.chaos)
                {
                    self.deferred[v as usize] = true;
                    self.chaos_deferrals += 1;
                }
            }
        }
        // Lemma 10's bound on deferred nodes for one derandomized step.
        let delta = self.graph.max_degree().max(2) as f64;
        let n_g = proc.active_count() as f64;
        let failure_bound = 0.5 + n_g * delta.powf(-11.0 * tau as f64);
        let report = StepReport {
            name: proc.name(),
            active: proc.active_count(),
            adopted,
            failures: failures.len(),
            failure_bound,
            selection,
        };
        self.reports.push(report.clone());
        report
    }
}

/// Adapter fixing the `stream` coordinate of an underlying tape, so each
/// procedure invocation draws from its own pseudorandom substream.
struct StreamTape<'a, R: Randomness + ?Sized> {
    inner: &'a R,
    stream: u64,
}

impl<R: Randomness + ?Sized> Randomness for StreamTape<'_, R> {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        // Combine the runner-level stream with the procedure-internal one.
        self.inner.word(
            node,
            self.stream.wrapping_mul(0x1000_0000_01B3) ^ stream,
            idx,
        )
    }

    // Forward the batch plane with the remapped stream so the inner
    // tape's lane mixers stay engaged.  `fill_below`/`fill_bernoulli`
    // need no override: their trait defaults route through `fill_words`.
    fn fill_words(&self, stream: u64, nodes: &[u32], idx: u32, out: &mut [u64]) {
        self.inner.fill_words(
            self.stream.wrapping_mul(0x1000_0000_01B3) ^ stream,
            nodes,
            idx,
            out,
        )
    }

    fn fill_words_seq(&self, node: u32, stream: u64, idx0: u32, out: &mut [u64]) {
        self.inner.fill_words_seq(
            node,
            self.stream.wrapping_mul(0x1000_0000_01B3) ^ stream,
            idx0,
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;

    /// A toy normal procedure: every active node tries a random palette
    /// color with symmetric abstention; SSP = "got colored".
    struct ToyProc<'a> {
        g: &'a Graph,
        active: Vec<NodeId>,
        mask: Vec<bool>,
    }

    impl NormalProcedure for ToyProc<'_> {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn active_count(&self) -> usize {
            self.active.len()
        }

        fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
            let pick_of = |v: NodeId| {
                let pal = state.palette(v);
                pal[rng.below(v, 0, 0, pal.len() as u64) as usize]
            };
            let mut adoptions = Vec::new();
            for &v in &self.active {
                let pick = pick_of(v);
                let clash = self
                    .g
                    .neighbors(v)
                    .iter()
                    .any(|&u| self.mask[u as usize] && pick_of(u) == pick);
                if !clash {
                    adoptions.push((v, pick));
                }
            }
            Outcome {
                adoptions,
                aux: Vec::new(),
            }
        }

        fn ssp_failures(&self, _state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
            let colored: Vec<NodeId> = out.adoptions.iter().map(|a| a.0).collect();
            self.active
                .iter()
                .copied()
                .filter(|v| !colored.contains(v))
                .collect()
        }
    }

    fn ring(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn setup() -> (D1lcInstance, Vec<NodeId>, Vec<bool>) {
        let g = ring(8);
        let inst = D1lcInstance::delta_plus_one(g);
        let active: Vec<NodeId> = (0..8).collect();
        let mask = vec![true; 8];
        (inst, active, mask)
    }

    #[test]
    fn randomized_step_applies_and_defers() {
        let (inst, active, mask) = setup();
        let mut state = ColoringState::new(&inst);
        let params = Params::default();
        let mut runner = Runner::randomized(&inst.graph, &params, 42, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        assert_eq!(rep.adopted + rep.failures, 8);
        assert_eq!(runner.deferred_nodes().len(), rep.failures);
        assert!(state.verify_partial(&inst.graph).is_ok());
        assert!(runner.engine.rounds() > 0);
        assert!(runner.mpc.metrics().rounds() > 0);
    }

    #[test]
    fn derandomized_step_meets_guarantee() {
        let (inst, active, mask) = setup();
        let mut state = ColoringState::new(&inst);
        let params = Params::default().with_seed_bits(8);
        let mut runner = Runner::derandomized(&inst.graph, &params, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        let sel = rep.selection.expect("derandomized step has a selection");
        assert!(sel.satisfies_guarantee());
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn derandomized_run_is_reproducible() {
        let (inst, active, mask) = setup();
        let params = Params::default().with_seed_bits(8);
        let run = |a: Vec<NodeId>, m: Vec<bool>| {
            let mut state = ColoringState::new(&inst);
            let mut runner = Runner::derandomized(&inst.graph, &params, 8);
            let proc = ToyProc {
                g: &inst.graph,
                active: a,
                mask: m,
            };
            runner.run_step(&proc, &mut state);
            state.colors().to_vec()
        };
        assert_eq!(
            run(active.clone(), mask.clone()),
            run(active, mask),
            "derandomized pipeline must be bit-reproducible"
        );
    }

    #[test]
    fn power_coloring_mode_builds_chunks() {
        let (inst, active, mask) = setup();
        let params = Params::default()
            .with_seed_bits(6)
            .with_chunking(ChunkMode::PowerColoring);
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::derandomized(&inst.graph, &params, 8);
        let proc = ToyProc {
            g: &inst.graph,
            active,
            mask,
        };
        let rep = runner.run_step(&proc, &mut state);
        assert!(rep.selection.is_some());
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn streams_differ_between_steps() {
        // Two identical procedures in sequence must not replay the same
        // randomness (the second sees fresh bits via the stream counter).
        let (inst, _, _) = setup();
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&inst.graph, &params, 7, 8);
        let active: Vec<NodeId> = state.uncolored_nodes();
        let mask = vec![true; 8];
        let r1 = runner.run_step(
            &ToyProc {
                g: &inst.graph,
                active: active.clone(),
                mask: mask.clone(),
            },
            &mut state,
        );
        let remaining = state.uncolored_nodes();
        if !remaining.is_empty() {
            let mut mask2 = vec![false; 8];
            for &v in &remaining {
                mask2[v as usize] = true;
            }
            let r2 = runner.run_step(
                &ToyProc {
                    g: &inst.graph,
                    active: remaining,
                    mask: mask2,
                },
                &mut state,
            );
            // Not a strict requirement, but with fresh randomness the second
            // round almost surely colors someone on a ring.
            assert!(r2.adopted > 0 || r1.adopted == 8);
        }
    }
}
