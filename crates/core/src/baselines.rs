//! Baseline D1LC algorithms for the comparison experiments (E7/E8).
//!
//! * [`greedy_sequential`] — the textbook sequential greedy, the
//!   correctness yardstick (one pass, zero parallelism).
//! * [`random_order_greedy`] — greedy along a seeded random permutation
//!   (removes adversarial-order artifacts from color-count comparisons).
//! * [`luby_style_local`] — the classic fully-randomized LOCAL coloring
//!   loop: every uncolored node tries a random palette color each round
//!   until done.  This is the "plain randomized LOCAL" baseline whose
//!   round count the HKNT pipeline beats on slack-rich instances.

use crate::instance::{ColoringState, D1lcInstance, NO_COLOR};
use parcolor_local::graph::NodeId;
use parcolor_local::tape::{CryptoTape, Randomness, SplitMix};
use serde::Serialize;

/// Result of a baseline run.
#[derive(Clone, Debug, Serialize)]
pub struct BaselineResult {
    /// Rounds used (sequential baselines report `n`).
    pub rounds: u64,
    /// Number of distinct colors in the output.
    pub distinct_colors: usize,
}

fn distinct(colors: &[u32]) -> usize {
    let mut cs: Vec<u32> = colors.to_vec();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

/// Sequential greedy in id order.  Always succeeds on a valid instance.
pub fn greedy_sequential(inst: &D1lcInstance) -> (Vec<u32>, BaselineResult) {
    let order: Vec<NodeId> = (0..inst.n() as NodeId).collect();
    greedy_in_order(inst, &order)
}

/// Sequential greedy along a seeded random permutation.
pub fn random_order_greedy(inst: &D1lcInstance, seed: u64) -> (Vec<u32>, BaselineResult) {
    let mut order: Vec<NodeId> = (0..inst.n() as NodeId).collect();
    SplitMix::new(seed).shuffle(&mut order);
    greedy_in_order(inst, &order)
}

fn greedy_in_order(inst: &D1lcInstance, order: &[NodeId]) -> (Vec<u32>, BaselineResult) {
    let colors = inst
        .graph
        .greedy_color_with(order, |v| inst.palettes.palette(v).to_vec())
        .expect("greedy cannot fail on a valid D1LC instance");
    inst.verify_coloring(&colors).expect("greedy invalid");
    let res = BaselineResult {
        rounds: inst.n() as u64, // sequential: one "round" per node
        distinct_colors: distinct(&colors),
    };
    (colors, res)
}

/// Fully randomized LOCAL coloring: every round, every uncolored node
/// draws a uniform color from its residual palette and keeps it if no
/// uncolored neighbor drew the same.  Terminates with probability 1;
/// returns the verified coloring and the number of rounds used.
pub fn luby_style_local(
    inst: &D1lcInstance,
    key: u64,
    max_rounds: u64,
) -> (Vec<u32>, BaselineResult) {
    let g = &inst.graph;
    let tape = CryptoTape::new(key);
    let mut state = ColoringState::new(inst);
    let mut rounds = 0u64;
    while state.uncolored_count() > 0 {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "luby-style loop exceeded {max_rounds} rounds"
        );
        let unc = state.uncolored_nodes();
        let pick = |v: NodeId| -> u32 {
            let pal = state.palette(v);
            pal[tape.below(v, rounds, 0, pal.len() as u64) as usize]
        };
        let adoptions: Vec<(NodeId, u32)> = unc
            .iter()
            .filter_map(|&v| {
                let c = pick(v);
                let clash = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| !state.is_colored(u) && pick(u) == c);
                (!clash).then_some((v, c))
            })
            .collect();
        state.apply_adoptions(g, &adoptions);
    }
    let colors = state.into_colors().unwrap();
    inst.verify_coloring(&colors).expect("luby-style invalid");
    let d = distinct(&colors);
    (
        colors,
        BaselineResult {
            rounds,
            distinct_colors: d,
        },
    )
}

/// Count of colors that verify as unused — a fairness metric shared by the
/// E8 table (all algorithms use ≤ max palette size colors by construction,
/// so the interesting quantity is how many distinct ones they spend).
pub fn colors_used(colors: &[u32]) -> usize {
    assert!(colors.iter().all(|&c| c != NO_COLOR));
    distinct(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::graph::Graph;

    fn random_inst(n: usize, m: usize, seed: u64) -> D1lcInstance {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        D1lcInstance::delta_plus_one(Graph::from_edges(n, &edges))
    }

    #[test]
    fn greedy_solves() {
        let inst = random_inst(200, 600, 1);
        let (colors, res) = greedy_sequential(&inst);
        assert_eq!(colors.len(), 200);
        assert!(res.distinct_colors <= inst.graph.max_degree() + 1);
    }

    #[test]
    fn random_order_greedy_varies_with_seed() {
        let inst = random_inst(200, 600, 2);
        let (c1, _) = random_order_greedy(&inst, 1);
        let (c2, _) = random_order_greedy(&inst, 2);
        assert_ne!(c1, c2);
    }

    #[test]
    fn luby_style_terminates_fast() {
        let inst = random_inst(500, 2000, 3);
        let (_, res) = luby_style_local(&inst, 7, 10_000);
        // O(log n) rounds with high probability; 60 is a generous cap.
        assert!(res.rounds < 60, "rounds = {}", res.rounds);
    }

    #[test]
    fn luby_style_reproducible() {
        let inst = random_inst(100, 300, 4);
        let (c1, r1) = luby_style_local(&inst, 42, 10_000);
        let (c2, r2) = luby_style_local(&inst, 42, 10_000);
        assert_eq!(c1, c2);
        assert_eq!(r1.rounds, r2.rounds);
    }

    #[test]
    fn colors_used_counts_distinct() {
        assert_eq!(colors_used(&[1, 2, 1, 3]), 3);
    }
}
