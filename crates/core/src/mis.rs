//! Luby's maximal-independent-set algorithm as a normal distributed
//! procedure — the paper's own worked example of Definition 5 (Section
//! 4.1), and experiment E10's subject.
//!
//! One Luby round: every live node draws a random priority; a node joins
//! the MIS if its priority beats all live neighbors'; MIS nodes and their
//! neighbors leave.  The success property (strong = weak, as the paper
//! notes) is *"v is within distance 1 of the output set"* — only
//! maximality can fail, independence is structural, and deferring failed
//! nodes removes nobody from the set.
//!
//! The derandomization here reuses the same PRG + seed-selection stack as
//! the coloring pipeline, showing the framework is not coloring-specific.

use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::tape::{CryptoTape, Randomness};
use parcolor_prg::{select_seed_blocks_n, ChunkAssignment, Prg, PrgTape, SeedStrategy, SEED_BLOCK};
use rayon::prelude::*;
use serde::Serialize;

/// Result of one MIS construction.
#[derive(Clone, Debug, Serialize)]
pub struct MisResult {
    /// Membership mask of the independent set.
    pub in_mis: Vec<bool>,
    /// Luby rounds executed.
    pub rounds: u64,
    /// Nodes deferred per round (derandomized mode; empty otherwise).
    pub deferrals_per_round: Vec<usize>,
    /// Chosen-seed cost vs seed-space mean, per round (derandomized).
    pub guarantee_checks: Vec<(f64, f64)>,
}

/// Simulate one Luby round on the live set: returns `joined` (nodes that
/// enter the MIS this round).  Pure in `(live, rng, round)`.
fn luby_round(g: &Graph, live: &[bool], rng: &dyn Randomness, round: u64) -> Vec<NodeId> {
    (0..g.n() as NodeId)
        .into_par_iter()
        .filter(|&v| live[v as usize])
        .filter(|&v| {
            let pv = rng.word(v, round, 0);
            g.neighbors(v).iter().all(|&u| {
                !live[u as usize] || {
                    let pu = rng.word(u, round, 0);
                    // Strict winner with id tiebreak: deterministic.
                    pv > pu || (pv == pu && v < u)
                }
            })
        })
        .collect()
}

/// Nodes of the live set not dominated by a joined set, where membership
/// is supplied as a predicate — the ONE undominated-count kernel shared
/// by the reference path (dense `Vec<bool>` mask) and the scratch path
/// (epoch stamps), so the two cannot diverge.
fn undominated_count(g: &Graph, live: &[bool], is_joined: impl Fn(NodeId) -> bool) -> usize {
    (0..g.n() as NodeId)
        .filter(|&v| live[v as usize] && !is_joined(v))
        .filter(|&v| !g.neighbors(v).iter().any(|&u| is_joined(u)))
        .count()
}

/// Nodes of the live set not dominated by `joined` (the SSP failures of
/// the round if the round were the whole procedure): live nodes with no
/// joined node in their closed neighborhood after this round... for the
/// per-round procedure we count nodes that neither joined nor got a
/// joined neighbor *and* had the maximum-priority property fail locally.
fn undominated(g: &Graph, live: &[bool], joined: &[NodeId]) -> usize {
    let mut jmask = vec![false; g.n()];
    for &v in joined {
        jmask[v as usize] = true;
    }
    undominated_count(g, live, |v| jmask[v as usize])
}

/// Per-worker scratch for the derandomized seed search: a reusable
/// `joined` buffer, an epoch-stamped domination mask, and the round's
/// **priority plane** — the live nodes' tape words, filled by one batched
/// `fill_words` stripe per seed and scattered densely so the winner scan
/// reads priorities as array lookups instead of re-mixing the tape once
/// per incident edge.  One seed evaluation allocates nothing after
/// warm-up.
struct LubyScratch {
    joined: Vec<NodeId>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Dense priority plane, valid at live-node positions for the seed
    /// under evaluation.
    prio: Vec<u64>,
    /// Stripe buffer aligned with the round's live-node list.
    vals: Vec<u64>,
    /// Seed-lane priority plane: the priorities of up to [`SEED_BLOCK`]
    /// seeds per node, dense by node id — the block evaluator's
    /// structure-of-arrays view.
    prio_soa: Vec<[u64; SEED_BLOCK]>,
    /// Per-node seed-lane join bits (bit `s` ⇔ the node wins its
    /// neighborhood under seed lane `s`).
    join_mask: Vec<u8>,
}

impl LubyScratch {
    fn new(n: usize) -> Self {
        LubyScratch {
            joined: Vec::new(),
            stamp: vec![0; n],
            epoch: 0,
            prio: vec![0; n],
            vals: Vec::new(),
            prio_soa: Vec::new(),
            join_mask: Vec::new(),
        }
    }
}

/// `luby_round`, writing into a reusable buffer (sequential: the seed
/// search parallelizes over seeds, not nodes).  `live_list` is the
/// ascending list of live nodes (the same order the scalar scan visits);
/// their priorities come off the tape as one batched stripe — bit-
/// identical words, so the joined set matches [`luby_round`] exactly.
fn luby_round_into(
    g: &Graph,
    live: &[bool],
    live_list: &[NodeId],
    rng: &dyn Randomness,
    round: u64,
    scratch: &mut LubyScratch,
) {
    scratch.vals.resize(live_list.len(), 0);
    rng.fill_words(round, live_list, 0, &mut scratch.vals);
    for (i, &v) in live_list.iter().enumerate() {
        scratch.prio[v as usize] = scratch.vals[i];
    }
    let prio = &scratch.prio;
    let out = &mut scratch.joined;
    out.clear();
    for &v in live_list {
        let pv = prio[v as usize];
        let wins = g.neighbors(v).iter().all(|&u| {
            !live[u as usize] || {
                let pu = prio[u as usize];
                pv > pu || (pv == pu && v < u)
            }
        });
        if wins {
            out.push(v);
        }
    }
}

/// [`undominated_count`] against an epoch-stamped membership mask (no
/// per-call `Vec<bool>`).
fn undominated_scratch(g: &Graph, live: &[bool], scratch: &mut LubyScratch) -> usize {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    for &v in &scratch.joined {
        scratch.stamp[v as usize] = epoch;
    }
    let stamp = &scratch.stamp;
    undominated_count(g, live, |v| stamp[v as usize] == epoch)
}

/// Seed-lane block evaluation of one Luby round: all lanes' priorities
/// are materialized as one structure-of-arrays plane (one batched
/// `fill_words` stripe per lane), then **one** pass over the live
/// neighborhoods decides every lane's winners (lane-masked strict-max
/// compare with the scalar path's id tiebreak) and a second pass counts
/// every lane's undominated nodes — where the per-seed fallback re-walks
/// the neighborhoods once per seed.  `costs[s]` equals exactly what
/// `luby_round_into` + `undominated_scratch` computes for tape `s`.
#[allow(clippy::too_many_arguments)] // internal block kernel, all state explicit
fn luby_round_block_costs(
    g: &Graph,
    live: &[bool],
    live_list: &[NodeId],
    tapes: &[PrgTape],
    lanes: usize,
    round: u64,
    scratch: &mut LubyScratch,
    costs: &mut [f64],
) {
    debug_assert!(lanes <= SEED_BLOCK && costs.len() == lanes);
    scratch.prio_soa.resize(g.n(), [0u64; SEED_BLOCK]);
    scratch.join_mask.resize(g.n(), 0);
    scratch.vals.resize(live_list.len(), 0);
    for (s, tape) in tapes.iter().enumerate().take(lanes) {
        tape.fill_words(round, live_list, 0, &mut scratch.vals);
        for (i, &v) in live_list.iter().enumerate() {
            scratch.prio_soa[v as usize][s] = scratch.vals[i];
        }
    }
    let full: u8 = ((1u16 << lanes) - 1) as u8;
    let prio_soa = &scratch.prio_soa;
    let join_mask = &mut scratch.join_mask;
    // Pass 1: winners per lane (strict winner with id tiebreak).
    for &v in live_list {
        let pv = &prio_soa[v as usize];
        let mut wins = full;
        for &u in g.neighbors(v) {
            if !live[u as usize] {
                continue;
            }
            let pu = &prio_soa[u as usize];
            for s in 0..lanes {
                let beat = pv[s] > pu[s] || (pv[s] == pu[s] && v < u);
                wins &= !(u8::from(!beat) << s);
            }
            if wins == 0 {
                break;
            }
        }
        join_mask[v as usize] = wins;
    }
    // Pass 2: per-lane undominated counts off the join masks.
    let join_mask = &scratch.join_mask;
    let mut undom = [0usize; SEED_BLOCK];
    for &v in live_list {
        let mut dom = join_mask[v as usize];
        if dom & full != full {
            for &u in g.neighbors(v) {
                if live[u as usize] {
                    dom |= join_mask[u as usize];
                    if dom & full == full {
                        break;
                    }
                }
            }
        }
        for (s, c) in undom.iter_mut().enumerate().take(lanes) {
            *c += usize::from(dom >> s & 1 == 0);
        }
    }
    for (s, c) in costs.iter_mut().enumerate() {
        *c = undom[s] as f64;
    }
}

fn retire(g: &Graph, live: &mut [bool], joined: &[NodeId], in_mis: &mut [bool]) {
    for &v in joined {
        in_mis[v as usize] = true;
        live[v as usize] = false;
        for &u in g.neighbors(v) {
            live[u as usize] = false;
        }
    }
}

/// Randomized Luby MIS (reference).
pub fn luby_mis(g: &Graph, key: u64, max_rounds: u64) -> MisResult {
    let tape = CryptoTape::new(key);
    let mut live = vec![true; g.n()];
    let mut in_mis = vec![false; g.n()];
    let mut rounds = 0;
    while live.iter().any(|&l| l) {
        rounds += 1;
        assert!(rounds <= max_rounds, "Luby exceeded {max_rounds} rounds");
        let joined = luby_round(g, &live, &tape, rounds);
        retire(g, &mut live, &joined, &mut in_mis);
    }
    MisResult {
        in_mis,
        rounds,
        deferrals_per_round: Vec::new(),
        guarantee_checks: Vec::new(),
    }
}

/// Derandomized Luby MIS: each round is treated as a normal distributed
/// procedure and its priority randomness is drawn from a PRG seed chosen
/// by the method of conditional expectations, minimizing the number of
/// undominated live nodes (the SSP-failure count of the round).
pub fn derandomized_luby_mis(
    g: &Graph,
    seed_bits: u32,
    strategy: SeedStrategy,
    max_rounds: u64,
) -> MisResult {
    derandomized_luby_mis_sharded(g, seed_bits, strategy, max_rounds, 0)
}

/// [`derandomized_luby_mis`] with an explicit seed-search worker count
/// (`0` = auto).  Seeds are evaluated in [`SEED_BLOCK`]-lane blocks
/// ([`luby_round_block_costs`]) dealt to workers by atomic stealing; any
/// worker count selects the identical seed every round, so the MIS is
/// identical too.
pub fn derandomized_luby_mis_sharded(
    g: &Graph,
    seed_bits: u32,
    strategy: SeedStrategy,
    max_rounds: u64,
    workers: usize,
) -> MisResult {
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let mut live = vec![true; g.n()];
    let mut in_mis = vec![false; g.n()];
    let mut rounds = 0;
    let mut deferrals = Vec::new();
    let mut checks = Vec::new();
    while live.iter().any(|&l| l) {
        rounds += 1;
        assert!(rounds <= max_rounds, "derandomized Luby exceeded budget");
        let live_ro = &live;
        // The round's live-node list, computed once and shared by every
        // seed evaluation as the batch stripe of the priority plane.
        let live_list: Vec<NodeId> = (0..g.n() as NodeId)
            .filter(|&v| live_ro[v as usize])
            .collect();
        let live_list = &live_list;
        let sel = select_seed_blocks_n(
            seed_bits,
            strategy,
            workers,
            || LubyScratch::new(g.n()),
            |seed0, costs, scratch| {
                let tapes = prg.block_tapes(seed0, &chunks);
                luby_round_block_costs(
                    g,
                    live_ro,
                    live_list,
                    &tapes,
                    costs.len(),
                    rounds,
                    scratch,
                    costs,
                );
            },
        );
        debug_assert!(sel.satisfies_guarantee());
        checks.push((sel.cost, sel.mean_cost));
        let tape = PrgTape::new(prg, sel.seed, &chunks);
        let joined = luby_round(g, &live, &tape, rounds);
        deferrals.push(undominated(g, &live, &joined));
        retire(g, &mut live, &joined, &mut in_mis);
        // Undominated nodes simply stay live — the "defer and repeat"
        // loop of Theorem 12, which for MIS is just the next round.
    }
    MisResult {
        in_mis,
        rounds,
        deferrals_per_round: deferrals,
        guarantee_checks: checks,
    }
}

/// Bench/testing hook: run one Luby round's seed search over the whole
/// graph (everyone live) and return the selection — either through the
/// seed-lane **block** path ([`luby_round_block_costs`], what
/// [`derandomized_luby_mis`] drives) or through the **per-seed** fused
/// fallback (`luby_round_into` + `undominated_scratch`, the regime before
/// the block port).  Both must select identically; benches measure the
/// block path's per-seed-eval speedup through this single entry point.
pub fn luby_round_seed_search(
    g: &Graph,
    seed_bits: u32,
    strategy: SeedStrategy,
    workers: usize,
    block: bool,
) -> parcolor_prg::SeedSelection {
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let live = vec![true; g.n()];
    let live_list: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let (live, live_list) = (&live, &live_list);
    if block {
        select_seed_blocks_n(
            seed_bits,
            strategy,
            workers,
            || LubyScratch::new(g.n()),
            |seed0, costs, scratch| {
                let tapes = prg.block_tapes(seed0, &chunks);
                luby_round_block_costs(g, live, live_list, &tapes, costs.len(), 1, scratch, costs);
            },
        )
    } else {
        parcolor_prg::select_seed_with_n(
            seed_bits,
            strategy,
            workers,
            || LubyScratch::new(g.n()),
            |seed, scratch| {
                let tape = PrgTape::new(prg, seed, &chunks);
                luby_round_into(g, live, live_list, &tape, 1, scratch);
                undominated_scratch(g, live, scratch) as f64
            },
        )
    }
}

/// Verify independence + maximality.
pub fn verify_mis(g: &Graph, in_mis: &[bool]) -> Result<(), String> {
    for v in 0..g.n() as NodeId {
        if in_mis[v as usize] {
            for &u in g.neighbors(v) {
                if in_mis[u as usize] {
                    return Err(format!("edge {v}-{u} inside MIS"));
                }
            }
        } else {
            let dominated = g.neighbors(v).iter().any(|&u| in_mis[u as usize]);
            if !dominated {
                return Err(format!("node {v} undominated"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::tape::SplitMix;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn batched_round_matches_reference_round() {
        // The priority-plane round must produce exactly the joined set of
        // the scalar reference round, on full and partial live sets.
        let g = random_graph(300, 1200, 9);
        let tape = CryptoTape::new(31);
        let mut scratch = LubyScratch::new(g.n());
        for round in 1..4u64 {
            let live: Vec<bool> = (0..g.n()).map(|v| v % (round as usize + 1) != 1).collect();
            let live_list: Vec<NodeId> =
                (0..g.n() as NodeId).filter(|&v| live[v as usize]).collect();
            let reference = luby_round(&g, &live, &tape, round);
            luby_round_into(&g, &live, &live_list, &tape, round, &mut scratch);
            assert_eq!(scratch.joined, reference, "round {round}");
            assert_eq!(
                undominated_scratch(&g, &live, &mut scratch),
                undominated(&g, &live, &reference),
                "round {round}"
            );
        }
    }

    #[test]
    fn block_round_search_matches_per_seed_path() {
        // The seed-lane block evaluation must select exactly what the
        // per-seed fused fallback selects, for every strategy.
        let g = random_graph(250, 900, 4);
        for strategy in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(13),
            SeedStrategy::SingleSeed(5),
        ] {
            let scalar = luby_round_seed_search(&g, 6, strategy, 1, false);
            let block = luby_round_seed_search(&g, 6, strategy, 1, true);
            assert_eq!(scalar.seed, block.seed, "{strategy:?}");
            assert_eq!(scalar.cost, block.cost, "{strategy:?}");
            assert_eq!(scalar.mean_cost, block.mean_cost, "{strategy:?}");
            assert_eq!(scalar.min_cost, block.min_cost, "{strategy:?}");
            assert_eq!(scalar.trace, block.trace, "{strategy:?}");
        }
    }

    #[test]
    fn sharded_mis_is_worker_invariant() {
        // The stolen-block fold must not change any round's selection,
        // hence not the MIS either.
        let g = random_graph(150, 500, 8);
        let reference = derandomized_luby_mis_sharded(&g, 6, SeedStrategy::Exhaustive, 1000, 1);
        verify_mis(&g, &reference.in_mis).unwrap();
        for workers in [2usize, 4, 8] {
            let got = derandomized_luby_mis_sharded(&g, 6, SeedStrategy::Exhaustive, 1000, workers);
            assert_eq!(reference.in_mis, got.in_mis, "workers = {workers}");
            assert_eq!(reference.rounds, got.rounds, "workers = {workers}");
            assert_eq!(
                reference.guarantee_checks, got.guarantee_checks,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn randomized_mis_is_valid() {
        let g = random_graph(500, 2000, 1);
        let res = luby_mis(&g, 7, 1000);
        verify_mis(&g, &res.in_mis).unwrap();
        assert!(res.rounds < 40);
    }

    #[test]
    fn derandomized_mis_is_valid_and_deterministic() {
        let g = random_graph(200, 800, 2);
        let a = derandomized_luby_mis(&g, 6, SeedStrategy::Exhaustive, 1000);
        let b = derandomized_luby_mis(&g, 6, SeedStrategy::Exhaustive, 1000);
        verify_mis(&g, &a.in_mis).unwrap();
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn derandomized_guarantee_holds_each_round() {
        let g = random_graph(150, 500, 3);
        let res = derandomized_luby_mis(&g, 6, SeedStrategy::BitwiseCondExp, 1000);
        for (cost, mean) in &res.guarantee_checks {
            assert!(cost <= &(mean + 1e-9), "cost {cost} > mean {mean}");
        }
    }

    #[test]
    fn empty_graph_mis_is_everything() {
        let g = Graph::empty(10);
        let res = luby_mis(&g, 1, 10);
        assert!(res.in_mis.iter().all(|&b| b));
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn clique_mis_is_single_node() {
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(10, &edges);
        let res = derandomized_luby_mis(&g, 5, SeedStrategy::Exhaustive, 100);
        assert_eq!(res.in_mis.iter().filter(|&&b| b).count(), 1);
        verify_mis(&g, &res.in_mis).unwrap();
    }
}
