//! Luby's maximal-independent-set algorithm as a normal distributed
//! procedure — the paper's own worked example of Definition 5 (Section
//! 4.1), and experiment E10's subject.
//!
//! One Luby round: every live node draws a random priority; a node joins
//! the MIS if its priority beats all live neighbors'; MIS nodes and their
//! neighbors leave.  The success property (strong = weak, as the paper
//! notes) is *"v is within distance 1 of the output set"* — only
//! maximality can fail, independence is structural, and deferring failed
//! nodes removes nobody from the set.
//!
//! The derandomization here reuses the same PRG + seed-selection stack as
//! the coloring pipeline, showing the framework is not coloring-specific.

use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::tape::{CryptoTape, Randomness};
use parcolor_prg::{select_seed_with, ChunkAssignment, Prg, PrgTape, SeedStrategy};
use rayon::prelude::*;
use serde::Serialize;

/// Result of one MIS construction.
#[derive(Clone, Debug, Serialize)]
pub struct MisResult {
    /// Membership mask of the independent set.
    pub in_mis: Vec<bool>,
    /// Luby rounds executed.
    pub rounds: u64,
    /// Nodes deferred per round (derandomized mode; empty otherwise).
    pub deferrals_per_round: Vec<usize>,
    /// Chosen-seed cost vs seed-space mean, per round (derandomized).
    pub guarantee_checks: Vec<(f64, f64)>,
}

/// Simulate one Luby round on the live set: returns `joined` (nodes that
/// enter the MIS this round).  Pure in `(live, rng, round)`.
fn luby_round(g: &Graph, live: &[bool], rng: &dyn Randomness, round: u64) -> Vec<NodeId> {
    (0..g.n() as NodeId)
        .into_par_iter()
        .filter(|&v| live[v as usize])
        .filter(|&v| {
            let pv = rng.word(v, round, 0);
            g.neighbors(v).iter().all(|&u| {
                !live[u as usize] || {
                    let pu = rng.word(u, round, 0);
                    // Strict winner with id tiebreak: deterministic.
                    pv > pu || (pv == pu && v < u)
                }
            })
        })
        .collect()
}

/// Nodes of the live set not dominated by `joined` (the SSP failures of
/// the round if the round were the whole procedure): live nodes with no
/// joined node in their closed neighborhood after this round... for the
/// per-round procedure we count nodes that neither joined nor got a
/// joined neighbor *and* had the maximum-priority property fail locally.
fn undominated(g: &Graph, live: &[bool], joined: &[NodeId]) -> usize {
    let mut jmask = vec![false; g.n()];
    for &v in joined {
        jmask[v as usize] = true;
    }
    (0..g.n() as NodeId)
        .into_par_iter()
        .filter(|&v| live[v as usize] && !jmask[v as usize])
        .filter(|&v| !g.neighbors(v).iter().any(|&u| jmask[u as usize]))
        .count()
}

/// Per-worker scratch for the derandomized seed search: a reusable
/// `joined` buffer, an epoch-stamped domination mask, and the round's
/// **priority plane** — the live nodes' tape words, filled by one batched
/// `fill_words` stripe per seed and scattered densely so the winner scan
/// reads priorities as array lookups instead of re-mixing the tape once
/// per incident edge.  One seed evaluation allocates nothing after
/// warm-up.
struct LubyScratch {
    joined: Vec<NodeId>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Dense priority plane, valid at live-node positions for the seed
    /// under evaluation.
    prio: Vec<u64>,
    /// Stripe buffer aligned with the round's live-node list.
    vals: Vec<u64>,
}

impl LubyScratch {
    fn new(n: usize) -> Self {
        LubyScratch {
            joined: Vec::new(),
            stamp: vec![0; n],
            epoch: 0,
            prio: vec![0; n],
            vals: Vec::new(),
        }
    }
}

/// `luby_round`, writing into a reusable buffer (sequential: the seed
/// search parallelizes over seeds, not nodes).  `live_list` is the
/// ascending list of live nodes (the same order the scalar scan visits);
/// their priorities come off the tape as one batched stripe — bit-
/// identical words, so the joined set matches [`luby_round`] exactly.
fn luby_round_into(
    g: &Graph,
    live: &[bool],
    live_list: &[NodeId],
    rng: &dyn Randomness,
    round: u64,
    scratch: &mut LubyScratch,
) {
    scratch.vals.resize(live_list.len(), 0);
    rng.fill_words(round, live_list, 0, &mut scratch.vals);
    for (i, &v) in live_list.iter().enumerate() {
        scratch.prio[v as usize] = scratch.vals[i];
    }
    let prio = &scratch.prio;
    let out = &mut scratch.joined;
    out.clear();
    for &v in live_list {
        let pv = prio[v as usize];
        let wins = g.neighbors(v).iter().all(|&u| {
            !live[u as usize] || {
                let pu = prio[u as usize];
                pv > pu || (pv == pu && v < u)
            }
        });
        if wins {
            out.push(v);
        }
    }
}

/// `undominated` against an epoch-stamped membership mask (no per-call
/// `Vec<bool>`).
fn undominated_scratch(g: &Graph, live: &[bool], scratch: &mut LubyScratch) -> usize {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    for &v in &scratch.joined {
        scratch.stamp[v as usize] = epoch;
    }
    (0..g.n() as NodeId)
        .filter(|&v| live[v as usize] && scratch.stamp[v as usize] != epoch)
        .filter(|&v| {
            !g.neighbors(v)
                .iter()
                .any(|&u| scratch.stamp[u as usize] == epoch)
        })
        .count()
}

fn retire(g: &Graph, live: &mut [bool], joined: &[NodeId], in_mis: &mut [bool]) {
    for &v in joined {
        in_mis[v as usize] = true;
        live[v as usize] = false;
        for &u in g.neighbors(v) {
            live[u as usize] = false;
        }
    }
}

/// Randomized Luby MIS (reference).
pub fn luby_mis(g: &Graph, key: u64, max_rounds: u64) -> MisResult {
    let tape = CryptoTape::new(key);
    let mut live = vec![true; g.n()];
    let mut in_mis = vec![false; g.n()];
    let mut rounds = 0;
    while live.iter().any(|&l| l) {
        rounds += 1;
        assert!(rounds <= max_rounds, "Luby exceeded {max_rounds} rounds");
        let joined = luby_round(g, &live, &tape, rounds);
        retire(g, &mut live, &joined, &mut in_mis);
    }
    MisResult {
        in_mis,
        rounds,
        deferrals_per_round: Vec::new(),
        guarantee_checks: Vec::new(),
    }
}

/// Derandomized Luby MIS: each round is treated as a normal distributed
/// procedure and its priority randomness is drawn from a PRG seed chosen
/// by the method of conditional expectations, minimizing the number of
/// undominated live nodes (the SSP-failure count of the round).
pub fn derandomized_luby_mis(
    g: &Graph,
    seed_bits: u32,
    strategy: SeedStrategy,
    max_rounds: u64,
) -> MisResult {
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let mut live = vec![true; g.n()];
    let mut in_mis = vec![false; g.n()];
    let mut rounds = 0;
    let mut deferrals = Vec::new();
    let mut checks = Vec::new();
    while live.iter().any(|&l| l) {
        rounds += 1;
        assert!(rounds <= max_rounds, "derandomized Luby exceeded budget");
        let live_ro = &live;
        // The round's live-node list, computed once and shared by every
        // seed evaluation as the batch stripe of the priority plane.
        let live_list: Vec<NodeId> = (0..g.n() as NodeId)
            .filter(|&v| live_ro[v as usize])
            .collect();
        let live_list = &live_list;
        let sel = select_seed_with(
            seed_bits,
            strategy,
            || LubyScratch::new(g.n()),
            |seed, scratch| {
                let tape = PrgTape::new(prg, seed, &chunks);
                luby_round_into(g, live_ro, live_list, &tape, rounds, scratch);
                undominated_scratch(g, live_ro, scratch) as f64
            },
        );
        debug_assert!(sel.satisfies_guarantee());
        checks.push((sel.cost, sel.mean_cost));
        let tape = PrgTape::new(prg, sel.seed, &chunks);
        let joined = luby_round(g, &live, &tape, rounds);
        deferrals.push(undominated(g, &live, &joined));
        retire(g, &mut live, &joined, &mut in_mis);
        // Undominated nodes simply stay live — the "defer and repeat"
        // loop of Theorem 12, which for MIS is just the next round.
    }
    MisResult {
        in_mis,
        rounds,
        deferrals_per_round: deferrals,
        guarantee_checks: checks,
    }
}

/// Verify independence + maximality.
pub fn verify_mis(g: &Graph, in_mis: &[bool]) -> Result<(), String> {
    for v in 0..g.n() as NodeId {
        if in_mis[v as usize] {
            for &u in g.neighbors(v) {
                if in_mis[u as usize] {
                    return Err(format!("edge {v}-{u} inside MIS"));
                }
            }
        } else {
            let dominated = g.neighbors(v).iter().any(|&u| in_mis[u as usize]);
            if !dominated {
                return Err(format!("node {v} undominated"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::tape::SplitMix;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn batched_round_matches_reference_round() {
        // The priority-plane round must produce exactly the joined set of
        // the scalar reference round, on full and partial live sets.
        let g = random_graph(300, 1200, 9);
        let tape = CryptoTape::new(31);
        let mut scratch = LubyScratch::new(g.n());
        for round in 1..4u64 {
            let live: Vec<bool> = (0..g.n()).map(|v| v % (round as usize + 1) != 1).collect();
            let live_list: Vec<NodeId> =
                (0..g.n() as NodeId).filter(|&v| live[v as usize]).collect();
            let reference = luby_round(&g, &live, &tape, round);
            luby_round_into(&g, &live, &live_list, &tape, round, &mut scratch);
            assert_eq!(scratch.joined, reference, "round {round}");
            assert_eq!(
                undominated_scratch(&g, &live, &mut scratch),
                undominated(&g, &live, &reference),
                "round {round}"
            );
        }
    }

    #[test]
    fn randomized_mis_is_valid() {
        let g = random_graph(500, 2000, 1);
        let res = luby_mis(&g, 7, 1000);
        verify_mis(&g, &res.in_mis).unwrap();
        assert!(res.rounds < 40);
    }

    #[test]
    fn derandomized_mis_is_valid_and_deterministic() {
        let g = random_graph(200, 800, 2);
        let a = derandomized_luby_mis(&g, 6, SeedStrategy::Exhaustive, 1000);
        let b = derandomized_luby_mis(&g, 6, SeedStrategy::Exhaustive, 1000);
        verify_mis(&g, &a.in_mis).unwrap();
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn derandomized_guarantee_holds_each_round() {
        let g = random_graph(150, 500, 3);
        let res = derandomized_luby_mis(&g, 6, SeedStrategy::BitwiseCondExp, 1000);
        for (cost, mean) in &res.guarantee_checks {
            assert!(cost <= &(mean + 1e-9), "cost {cost} > mean {mean}");
        }
    }

    #[test]
    fn empty_graph_mis_is_everything() {
        let g = Graph::empty(10);
        let res = luby_mis(&g, 1, 10);
        assert!(res.in_mis.iter().all(|&b| b));
        assert_eq!(res.rounds, 1);
    }

    #[test]
    fn clique_mis_is_single_node() {
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(10, &edges);
        let res = derandomized_luby_mis(&g, 5, SeedStrategy::Exhaustive, 100);
        assert_eq!(res.in_mis.iter().filter(|&&b| b).count(), 1);
        verify_mis(&g, &res.in_mis).unwrap();
    }
}
