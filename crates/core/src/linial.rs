//! Linial's deterministic color-reduction algorithm.
//!
//! Theorem 12's proof needs an `O(Δ^{8τ})`-coloring of the power graph
//! `G^{4τ}`, obtained "by simulating round-by-round the O(Δ²)-coloring
//! algorithm of Linial \[Lin92\]".  This module implements the classic
//! polynomial set-system version: interpret a node's current color as a
//! polynomial of degree ≤ k over `F_q`; with `q > k·Δ` there is an
//! evaluation point `x` where the node differs from all its neighbors
//! (a degree-k polynomial agrees with each neighbor's on ≤ k points), so
//! `(x, f(x))` is a proper color in `[q²]`.  Iterating shrinks `n` colors
//! to `O(Δ² log² Δ)`-ish in `O(log* n)` rounds.
//!
//! The same routine doubles as the color-class scheduler of the low-degree
//! solver (`lowdeg`), our substitute for CDP21c's Lemma 14.

use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Result of running Linial color reduction.
#[derive(Clone, Debug)]
pub struct LinialColoring {
    /// Proper coloring with colors in `[0, color_count)`.
    pub colors: Vec<u32>,
    /// Upper bound on the number of colors used.
    pub color_count: usize,
    /// LOCAL rounds consumed (one per reduction step).
    pub rounds: u64,
}

/// Smallest prime strictly greater than `x` (trial division; inputs are
/// `O(k·Δ)`, far below any range where this matters).
pub fn next_prime(x: u64) -> u64 {
    let mut c = x + 1;
    loop {
        if is_prime(c) {
            return c;
        }
        c += 1;
    }
}

fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// Evaluate the polynomial whose base-`q` digit expansion is `code`
/// (least-significant digit = constant term) at point `x`, over `F_q`.
#[inline]
fn poly_eval(mut code: u64, q: u64, x: u64) -> u64 {
    // Horner from the top: extract digits first (k ≤ 64/log2(q) digits).
    let mut digits = [0u64; 64];
    let mut len = 0;
    while code > 0 {
        digits[len] = code % q;
        code /= q;
        len += 1;
    }
    if len == 0 {
        return 0;
    }
    let mut acc = 0u64;
    for i in (0..len).rev() {
        acc = (acc * x + digits[i]) % q;
    }
    acc
}

/// One Linial reduction step: given a proper `m`-coloring (as `u64` codes)
/// of the subgraph induced by `active`, produce a proper `q²`-coloring
/// where `q` is the smallest prime with `q > k·Δ` and `q^{k+1} ≥ m`.
/// Returns `(new_codes, q²)`.
fn linial_step(
    g: &Graph,
    active: &[bool],
    codes: &[u64],
    m: u64,
    max_deg: usize,
) -> (Vec<u64>, u64) {
    // Smallest k such that with q = next_prime(k·Δ), q^{k+1} ≥ m.
    let mut k = 1u32;
    let q = loop {
        let q = next_prime((k as u64) * (max_deg as u64).max(1));
        if (q as f64).powi(k as i32 + 1) >= m as f64 {
            break q;
        }
        k += 1;
        assert!(k <= 64, "k blow-up; m={m}, Δ={max_deg}");
    };
    let new_codes: Vec<u64> = (0..g.n() as NodeId)
        .into_par_iter()
        .map(|v| {
            if !active[v as usize] {
                return 0;
            }
            let fv = codes[v as usize];
            // Find x with f_v(x) ≠ f_u(x) for all active neighbors u.
            let mut chosen = None;
            for x in 0..q {
                let yv = poly_eval(fv, q, x);
                let clash = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| active[u as usize] && poly_eval(codes[u as usize], q, x) == yv);
                if !clash {
                    chosen = Some(x * q + yv);
                    break;
                }
            }
            chosen.expect("Linial step: no evaluation point (q too small?)")
        })
        .collect();
    (new_codes, q * q)
}

/// Run Linial color reduction on the subgraph induced by `active` until the
/// color count stops improving.  Initial colors are the node ids (the
/// LOCAL model's unique identifiers).
pub fn linial_coloring(g: &Graph, active: &[bool]) -> LinialColoring {
    let n = g.n();
    assert_eq!(active.len(), n);
    let max_deg = (0..n as NodeId)
        .into_par_iter()
        .filter(|&v| active[v as usize])
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| active[u as usize])
                .count()
        })
        .max()
        .unwrap_or(0);
    let mut codes: Vec<u64> = (0..n as u64).collect();
    let mut m = n.max(2) as u64;
    let mut rounds = 0u64;
    loop {
        let (new_codes, new_m) = linial_step(g, active, &codes, m, max_deg);
        rounds += 1;
        if new_m >= m {
            // No improvement: keep the current coloring (the initial node
            // ids already form a proper m-coloring, so this is always a
            // consistent state — codes stay < m).
            break;
        }
        codes = new_codes;
        m = new_m;
    }
    let colors: Vec<u32> = codes.iter().map(|&c| c as u32).collect();
    LinialColoring {
        colors,
        color_count: m as usize,
        rounds,
    }
}

/// Proper coloring check restricted to an active mask (test helper shared
/// by the framework tests).
pub fn is_proper_on_active(g: &Graph, active: &[bool], colors: &[u32]) -> bool {
    (0..g.n() as NodeId)
        .into_par_iter()
        .filter(|&v| active[v as usize])
        .all(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| active[u as usize])
                .all(|&u| colors[u as usize] != colors[v as usize])
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::engine::log_star;

    fn ring(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn primes() {
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(10), 11);
        assert_eq!(next_prime(13), 17);
    }

    #[test]
    fn poly_eval_linear() {
        // code = 2*q + 3 → f(x) = 3 + 2x (digits LSB first) over q=5
        let q = 5;
        let code = 2 * q + 3;
        assert_eq!(poly_eval(code, q, 0), 3);
        assert_eq!(poly_eval(code, q, 1), 0); // 3+2 = 5 ≡ 0
        assert_eq!(poly_eval(code, q, 2), 2); // 3+4 = 7 ≡ 2
    }

    #[test]
    fn ring_coloring_is_proper_and_small() {
        let g = ring(1000);
        let active = vec![true; 1000];
        let res = linial_coloring(&g, &active);
        assert!(is_proper_on_active(&g, &active, &res.colors));
        // Δ = 2: expect O(Δ²·polylog) colors — generous bound:
        assert!(res.color_count <= 169, "colors={}", res.color_count);
        // O(log* n) rounds — generous bound:
        assert!(
            res.rounds <= (log_star(1000.0) + 4) as u64,
            "rounds={}",
            res.rounds
        );
    }

    #[test]
    fn respects_active_mask() {
        let g = ring(20);
        let mut active = vec![true; 20];
        active[0] = false;
        active[10] = false;
        let res = linial_coloring(&g, &active);
        assert!(is_proper_on_active(&g, &active, &res.colors));
    }

    #[test]
    fn dense_graph_coloring() {
        // Complete bipartite K_{10,10}: Δ = 10.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in 10..20u32 {
                edges.push((a, b));
            }
        }
        let g = Graph::from_edges(20, &edges);
        let active = vec![true; 20];
        let res = linial_coloring(&g, &active);
        assert!(is_proper_on_active(&g, &active, &res.colors));
    }

    #[test]
    fn rounds_grow_very_slowly_with_n() {
        let small = linial_coloring(&ring(64), &[true; 64]);
        let large = linial_coloring(&ring(8192), &vec![true; 8192]);
        assert!(
            large.rounds <= small.rounds + 2,
            "{} vs {}",
            large.rounds,
            small.rounds
        );
    }

    #[test]
    fn empty_active_set() {
        let g = ring(5);
        let res = linial_coloring(&g, &[false; 5]);
        assert_eq!(res.colors.len(), 5);
    }

    #[test]
    fn two_cliques_color_count() {
        // Two disjoint triangles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let active = vec![true; 6];
        let res = linial_coloring(&g, &active);
        assert!(is_proper_on_active(&g, &active, &res.colors));
        assert!(res.color_count >= 3);
    }
}
