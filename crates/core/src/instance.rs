//! D1LC instances and the mutable coloring state.
//!
//! A **(degree+1)-list-coloring** instance (Section 2.1 of the paper) is a
//! graph plus a palette `Ψ(v)` per node with `|Ψ(v)| ≥ d(v) + 1`.  The
//! defining property that makes D1LC *self-reducible* (Definition 11) and
//! therefore derandomizable by the paper's framework: after any valid
//! partial coloring, the uncolored subgraph with the *residual* palettes
//! (original minus colored neighbors' colors) is again a D1LC instance.
//! [`ColoringState`] maintains exactly that residual view incrementally
//! and machine-checks the invariant.

use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Sentinel for "not colored yet".
pub const NO_COLOR: u32 = u32::MAX;

/// Immutable per-node palettes in a flat arena (no per-node allocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PaletteArena {
    offsets: Vec<u64>,
    colors: Vec<u32>,
}

impl PaletteArena {
    /// Build from per-node color lists.  Each list is deduplicated; order
    /// is preserved otherwise (first occurrence wins).
    ///
    /// Small lists dedup with a linear probe; above a cutoff the probe's
    /// `O(k²)` cost dominates instance construction, so larger lists
    /// sort-dedup `(color, first_position)` pairs and restore input order —
    /// `O(k log k)` with identical output.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        const SORT_DEDUP_CUTOFF: usize = 32;
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u64);
        let mut colors = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for list in lists {
            for &c in list {
                assert!(c != NO_COLOR, "color value u32::MAX is reserved");
            }
            if list.len() <= SORT_DEDUP_CUTOFF {
                let start = colors.len();
                for &c in list {
                    if !colors[start..].contains(&c) {
                        colors.push(c);
                    }
                }
            } else {
                pairs.clear();
                pairs.extend(list.iter().enumerate().map(|(i, &c)| (c, i as u32)));
                // Keep the first occurrence of each color, then restore
                // input order by position.
                pairs.sort_unstable();
                pairs.dedup_by_key(|&mut (c, _)| c);
                pairs.sort_unstable_by_key(|&(_, pos)| pos);
                colors.extend(pairs.iter().map(|&(c, _)| c));
            }
            offsets.push(colors.len() as u64);
        }
        PaletteArena { offsets, colors }
    }

    /// The canonical (Δ+1)-coloring palette: every node gets `0..=deg`.
    /// This realizes the reduction "(Δ+1)-coloring ≤ D1LC" from the paper's
    /// introduction.
    ///
    /// Constructed straight into the flat arena: the lists `0..=deg` are
    /// already duplicate-free, so no intermediate per-node `Vec` (and no
    /// dedup pass) is needed — offsets are a prefix sum of `deg + 1`.
    pub fn degree_plus_one(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut total = 0u64;
        for v in 0..n as NodeId {
            total += g.degree(v) as u64 + 1;
            offsets.push(total);
        }
        let mut colors = Vec::with_capacity(total as usize);
        for v in 0..n as NodeId {
            colors.extend(0..=g.degree(v) as u32);
        }
        PaletteArena { offsets, colors }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Input palette of `v`.
    #[inline]
    pub fn palette(&self, v: NodeId) -> &[u32] {
        &self.colors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Input palette size of `v`.
    #[inline]
    pub fn size(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Total words of palette storage (for MPC space accounting).
    pub fn words(&self) -> usize {
        self.offsets.len() + self.colors.len()
    }
}

/// A D1LC problem instance.
#[derive(Clone, Debug)]
pub struct D1lcInstance {
    /// The input graph.
    pub graph: Graph,
    /// Per-node input palettes (`|Ψ(v)| ≥ d(v)+1`).
    pub palettes: PaletteArena,
}

impl D1lcInstance {
    /// Construct and validate an instance (panics on a broken promise).
    pub fn new(graph: Graph, palettes: PaletteArena) -> Self {
        let inst = D1lcInstance { graph, palettes };
        inst.validate().expect("invalid D1LC instance");
        inst
    }

    /// The (Δ+1)-coloring special case.
    pub fn delta_plus_one(graph: Graph) -> Self {
        let palettes = PaletteArena::degree_plus_one(&graph);
        D1lcInstance { graph, palettes }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Check the D1LC promise `|Ψ(v)| ≥ d(v) + 1` for every node.
    pub fn validate(&self) -> Result<(), String> {
        if self.palettes.n() != self.graph.n() {
            return Err("palette count != node count".into());
        }
        for v in 0..self.graph.n() as NodeId {
            if self.palettes.size(v) < self.graph.degree(v) + 1 {
                return Err(format!(
                    "node {v}: palette {} < degree {} + 1",
                    self.palettes.size(v),
                    self.graph.degree(v)
                ));
            }
        }
        Ok(())
    }

    /// Verify a complete coloring: every node colored from its own palette
    /// and no monochromatic edge.
    pub fn verify_coloring(&self, colors: &[u32]) -> Result<(), String> {
        if colors.len() != self.n() {
            return Err("wrong length".into());
        }
        for v in 0..self.n() as NodeId {
            let c = colors[v as usize];
            if c == NO_COLOR {
                return Err(format!("node {v} uncolored"));
            }
            if !self.palettes.palette(v).contains(&c) {
                return Err(format!("node {v}: color {c} not in palette"));
            }
        }
        if !self.graph.is_proper_coloring(colors) {
            return Err("monochromatic edge".into());
        }
        Ok(())
    }
}

/// Mutable residual state of a partially colored D1LC instance.
///
/// Maintains, for every uncolored node: its residual palette (input palette
/// minus the colors of colored neighbors) and its uncolored degree.  These
/// are exactly the quantities `p(v)` and `d(v)` of the paper's "current
/// graph G" (Section 2.1: "As we go on coloring the nodes … the color
/// palettes of the nodes will also change").
#[derive(Clone, Debug)]
pub struct ColoringState {
    n: usize,
    color: Vec<u32>,
    /// Residual palettes: arena with per-node live prefix `pal_len[v]`.
    pal_off: Vec<u64>,
    pal: Vec<u32>,
    pal_len: Vec<u32>,
    unc_deg: Vec<u32>,
    /// Epoch stamps marking "colored in the current batch" during updates.
    stamp: Vec<u32>,
    epoch: u32,
    colored_count: usize,
}

impl ColoringState {
    /// Fresh all-uncolored state over the instance.
    pub fn new(inst: &D1lcInstance) -> Self {
        let n = inst.n();
        let mut pal_off = Vec::with_capacity(n + 1);
        pal_off.push(0u64);
        let mut pal = Vec::new();
        let mut pal_len = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let p = inst.palettes.palette(v);
            pal.extend_from_slice(p);
            pal_off.push(pal.len() as u64);
            pal_len.push(p.len() as u32);
        }
        let unc_deg: Vec<u32> = (0..n as NodeId)
            .map(|v| inst.graph.degree(v) as u32)
            .collect();
        ColoringState {
            n,
            color: vec![NO_COLOR; n],
            pal_off,
            pal,
            pal_len,
            unc_deg,
            stamp: vec![0; n],
            epoch: 0,
            colored_count: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current color of `v` (`NO_COLOR` if uncolored).
    #[inline]
    pub fn color(&self, v: NodeId) -> u32 {
        self.color[v as usize]
    }

    /// Whether `v` has committed a color.
    #[inline]
    pub fn is_colored(&self, v: NodeId) -> bool {
        self.color[v as usize] != NO_COLOR
    }

    /// Number of colored nodes.
    pub fn colored_count(&self) -> usize {
        self.colored_count
    }

    /// Number of uncolored nodes.
    pub fn uncolored_count(&self) -> usize {
        self.n - self.colored_count
    }

    /// Residual palette of `v` (meaningless once `v` is colored).
    #[inline]
    pub fn palette(&self, v: NodeId) -> &[u32] {
        let start = self.pal_off[v as usize] as usize;
        &self.pal[start..start + self.pal_len[v as usize] as usize]
    }

    /// Residual palette size `p(v)`.
    #[inline]
    pub fn palette_size(&self, v: NodeId) -> usize {
        self.pal_len[v as usize] as usize
    }

    /// Uncolored degree `d(v)` in the residual graph.
    #[inline]
    pub fn uncolored_degree(&self, v: NodeId) -> usize {
        self.unc_deg[v as usize] as usize
    }

    /// Slack `s(v) = p(v) − d(v)` (Definition 2).
    #[inline]
    pub fn slack(&self, v: NodeId) -> i64 {
        self.pal_len[v as usize] as i64 - self.unc_deg[v as usize] as i64
    }

    /// All uncolored node ids, ascending.
    pub fn uncolored_nodes(&self) -> Vec<NodeId> {
        (0..self.n as NodeId)
            .filter(|&v| !self.is_colored(v))
            .collect()
    }

    /// Apply a batch of simultaneous adoptions `(v, c)`.
    ///
    /// Preconditions (checked): every `v` is uncolored, `c` is in `v`'s
    /// residual palette, and the batch is internally conflict-free (no two
    /// *adjacent* nodes adopt the same color).  Procedures guarantee the
    /// last point by symmetric abstention; it is re-verified here because a
    /// violation would silently corrupt the whole run.
    pub fn apply_adoptions(&mut self, g: &Graph, adoptions: &[(NodeId, u32)]) {
        if adoptions.is_empty() {
            return;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        // Commit colors (and stamp) sequentially; batches are small
        // relative to palette scans, this is not a hot loop.
        for &(v, c) in adoptions {
            assert!(!self.is_colored(v), "node {v} adopted twice");
            assert!(
                self.palette(v).contains(&c),
                "node {v}: adopted color {c} not in residual palette"
            );
            self.color[v as usize] = c;
            self.stamp[v as usize] = epoch;
            self.colored_count += 1;
        }
        // Verify conflict-freedom among the batch.
        for &(v, c) in adoptions {
            for &u in g.neighbors(v) {
                if self.stamp[u as usize] == epoch && self.color[u as usize] == c {
                    panic!("conflicting adoptions: {v} and {u} both took {c}");
                }
            }
        }
        // Pull-based neighbor updates, parallel over affected nodes.
        let mut affected: Vec<NodeId> = adoptions
            .iter()
            .flat_map(|&(v, _)| g.neighbors(v).iter().copied())
            .filter(|&u| !self.is_colored(u))
            .collect();
        affected.par_sort_unstable();
        affected.dedup();
        // Split palette arena into per-node slices for data-parallel
        // mutation.  Safety: `affected` is strictly increasing, so slices
        // are disjoint.
        let pal_off = &self.pal_off;
        let pal_ptr = SendPtr(self.pal.as_mut_ptr());
        let len_ptr = SendPtr(self.pal_len.as_mut_ptr());
        let deg_ptr = SendPtr(self.unc_deg.as_mut_ptr());
        let stamp = &self.stamp;
        let color = &self.color;
        affected.par_iter().for_each(|&u| {
            let start = pal_off[u as usize] as usize;
            // SAFETY: each `u` appears once in `affected`; the regions
            // [start, start+len) are disjoint across nodes, and pal_len /
            // unc_deg entries are per-node.
            unsafe {
                let len_slot = len_ptr.get().add(u as usize);
                let deg_slot = deg_ptr.get().add(u as usize);
                let mut live = *len_slot as usize;
                for &w in g.neighbors(u) {
                    if stamp[w as usize] == epoch {
                        *deg_slot -= 1;
                        let c = color[w as usize];
                        // Remove c from the live palette prefix if present.
                        let slice = std::slice::from_raw_parts_mut(pal_ptr.get().add(start), live);
                        if let Some(pos) = slice.iter().position(|&x| x == c) {
                            slice.swap(pos, live - 1);
                            live -= 1;
                        }
                    }
                }
                *len_slot = live as u32;
            }
        });
    }

    /// The D1LC invariant `p(v) ≥ d(v) + 1` on every uncolored node — the
    /// self-reducibility property (Definition 11) that the entire pipeline
    /// depends on.  Returns the first violating node, if any.
    pub fn invariant_violation(&self) -> Option<NodeId> {
        (0..self.n as NodeId).into_par_iter().find_first(|&v| {
            !self.is_colored(v) && self.pal_len[v as usize] <= self.unc_deg[v as usize]
        })
    }

    /// Verify properness of the colored part against the graph.
    pub fn verify_partial(&self, g: &Graph) -> Result<(), String> {
        for v in 0..self.n as NodeId {
            if !self.is_colored(v) {
                continue;
            }
            for &u in g.neighbors(v) {
                if self.is_colored(u) && self.color(u) == self.color(v) {
                    return Err(format!("edge {v}-{u} monochromatic ({})", self.color(v)));
                }
            }
        }
        Ok(())
    }

    /// Extract the residual D1LC instance induced on `nodes` (all must be
    /// uncolored).  Returns the instance and the map new-id → old-id.
    /// This is the `O(1)`-round re-input computation of Definition 11.
    pub fn residual_instance(&self, g: &Graph, nodes: &[NodeId]) -> (D1lcInstance, Vec<NodeId>) {
        debug_assert!(nodes.iter().all(|&v| !self.is_colored(v)));
        let (sub, map) = g.induced(nodes);
        let lists: Vec<Vec<u32>> = map.iter().map(|&old| self.palette(old).to_vec()).collect();
        let palettes = PaletteArena::from_lists(&lists);
        (D1lcInstance::new(sub, palettes), map)
    }

    /// Residual instance with palettes filtered by a predicate (used by
    /// `LowSpacePartition`'s color-bin restriction).  The caller is
    /// responsible for the filtered instance satisfying the D1LC promise
    /// (Lemma 23 selects hash functions that guarantee it); this method
    /// checks and reports rather than asserting.
    pub fn restricted_instance<F>(
        &self,
        g: &Graph,
        nodes: &[NodeId],
        keep_color: F,
    ) -> Result<(D1lcInstance, Vec<NodeId>), String>
    where
        F: Fn(u32) -> bool + Sync,
    {
        debug_assert!(nodes.iter().all(|&v| !self.is_colored(v)));
        let (sub, map) = g.induced(nodes);
        let lists: Vec<Vec<u32>> = map
            .par_iter()
            .map(|&old| {
                self.palette(old)
                    .iter()
                    .copied()
                    .filter(|&c| keep_color(c))
                    .collect()
            })
            .collect();
        for (new_v, list) in lists.iter().enumerate() {
            if list.len() < sub.degree(new_v as NodeId) + 1 {
                return Err(format!(
                    "restricted palette of node {} (orig {}) too small: {} ≤ degree {}",
                    new_v,
                    map[new_v],
                    list.len(),
                    sub.degree(new_v as NodeId)
                ));
            }
        }
        let palettes = PaletteArena::from_lists(&lists);
        Ok((D1lcInstance::new(sub, palettes), map))
    }

    /// Final colors; errors if any node is uncolored.
    pub fn into_colors(self) -> Result<Vec<u32>, String> {
        if self.colored_count != self.n {
            return Err(format!(
                "{} nodes still uncolored",
                self.n - self.colored_count
            ));
        }
        Ok(self.color)
    }

    /// Colors vector including `NO_COLOR` sentinels (partial view).
    pub fn colors(&self) -> &[u32] {
        &self.color
    }
}

/// Raw-pointer wrapper asserting cross-thread safety for the disjoint
/// per-node writes in `apply_adoptions` (see the safety comments there).
/// The pointer is reached through a method so closures capture the whole
/// wrapper (edition-2021 closures capture disjoint *fields*, which would
/// otherwise smuggle the bare `*mut T` past the `Sync` assertion).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, ((i + 1) % n as NodeId)))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn inst_cycle(n: usize) -> D1lcInstance {
        D1lcInstance::delta_plus_one(cycle(n))
    }

    #[test]
    fn delta_plus_one_palettes() {
        let inst = inst_cycle(5);
        assert!(inst.validate().is_ok());
        assert_eq!(inst.palettes.palette(0), &[0, 1, 2]);
    }

    #[test]
    fn palette_arena_dedups() {
        let pa = PaletteArena::from_lists(&[vec![1, 2, 2, 3], vec![5]]);
        assert_eq!(pa.palette(0), &[1, 2, 3]);
        assert_eq!(pa.size(1), 1);
    }

    #[test]
    #[should_panic]
    fn reserved_color_rejected() {
        PaletteArena::from_lists(&[vec![NO_COLOR]]);
    }

    #[test]
    fn large_list_sort_dedup_preserves_first_occurrence_order() {
        // Above the sort-dedup cutoff: interleaved duplicates across a
        // list long enough to take the O(k log k) path.
        let list: Vec<u32> = (0..120u32).map(|i| (i * 7 + 3) % 40).collect();
        let mut expect: Vec<u32> = Vec::new();
        for &c in &list {
            if !expect.contains(&c) {
                expect.push(c);
            }
        }
        let pa = PaletteArena::from_lists(&[list]);
        assert_eq!(pa.palette(0), &expect[..]);
    }

    #[test]
    fn degree_plus_one_matches_from_lists() {
        // The direct arena construction must equal the list-based one.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]);
        let direct = PaletteArena::degree_plus_one(&g);
        let lists: Vec<Vec<u32>> = (0..g.n() as NodeId)
            .map(|v| (0..=g.degree(v) as u32).collect())
            .collect();
        assert_eq!(direct, PaletteArena::from_lists(&lists));
    }

    #[test]
    fn adoption_updates_neighbors() {
        let inst = inst_cycle(4);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 1)]);
        assert!(st.is_colored(0));
        assert_eq!(st.uncolored_degree(1), 1);
        assert_eq!(st.uncolored_degree(3), 1);
        assert_eq!(st.uncolored_degree(2), 2);
        assert!(!st.palette(1).contains(&1));
        assert!(!st.palette(3).contains(&1));
        assert!(st.palette(2).contains(&1));
        assert!(st.invariant_violation().is_none());
    }

    #[test]
    fn simultaneous_nonadjacent_same_color_ok() {
        let inst = inst_cycle(6);
        let mut st = ColoringState::new(&inst);
        // 0 and 3 are not adjacent in C6.
        st.apply_adoptions(&inst.graph, &[(0, 2), (3, 2)]);
        assert!(st.verify_partial(&inst.graph).is_ok());
        // node 1 neighbors 0 and 2: only one of them colored; degree 1 left
        assert_eq!(st.uncolored_degree(1), 1);
        // palette of 2 lost color 2 once (from node 3), not twice
        assert_eq!(st.palette_size(2), 2);
    }

    #[test]
    #[should_panic(expected = "conflicting adoptions")]
    fn adjacent_same_color_panics() {
        let inst = inst_cycle(4);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "not in residual palette")]
    fn color_outside_palette_panics() {
        let inst = inst_cycle(4);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 99)]);
    }

    #[test]
    #[should_panic(expected = "adopted twice")]
    fn double_coloring_panics() {
        let inst = inst_cycle(4);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 0)]);
        st.apply_adoptions(&inst.graph, &[(0, 1)]);
    }

    #[test]
    fn slack_grows_when_neighbor_colored_with_foreign_color() {
        // Star: center 0 with 3 leaves; palettes deg+1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let inst = D1lcInstance::delta_plus_one(g);
        let mut st = ColoringState::new(&inst);
        assert_eq!(st.slack(0), 1);
        // Leaf 1 has palette {0,1}; give it color 1.
        st.apply_adoptions(&inst.graph, &[(1, 1)]);
        // Center: palette {0,1,2,3} loses 1 → 3 colors, degree 2 → slack 1.
        assert_eq!(st.slack(0), 1);
        // Leaf 2 takes color 1 as well (not adjacent to leaf 1):
        st.apply_adoptions(&inst.graph, &[(2, 1)]);
        // Center palette already lost 1 → stays 3, degree 1 → slack 2.
        assert_eq!(st.slack(0), 2);
    }

    #[test]
    fn residual_instance_is_valid_d1lc() {
        let inst = inst_cycle(6);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 0), (3, 0)]);
        let remaining = st.uncolored_nodes();
        let (sub, map) = st.residual_instance(&inst.graph, &remaining);
        assert_eq!(sub.n(), 4);
        assert!(sub.validate().is_ok());
        assert_eq!(map, vec![1, 2, 4, 5]);
    }

    #[test]
    fn restricted_instance_checks_promise() {
        let inst = inst_cycle(4);
        let st = ColoringState::new(&inst);
        // Keeping only color 0 gives palettes of size 1 < degree+1.
        let r = st.restricted_instance(&inst.graph, &st.uncolored_nodes(), |c| c == 0);
        assert!(r.is_err());
        // Keeping everything works.
        let r = st.restricted_instance(&inst.graph, &st.uncolored_nodes(), |_| true);
        assert!(r.is_ok());
    }

    #[test]
    fn into_colors_requires_completion() {
        let inst = inst_cycle(3);
        let mut st = ColoringState::new(&inst);
        st.apply_adoptions(&inst.graph, &[(0, 0)]);
        assert!(st.clone().into_colors().is_err());
        st.apply_adoptions(&inst.graph, &[(1, 1)]);
        st.apply_adoptions(&inst.graph, &[(2, 2)]);
        let colors = st.into_colors().unwrap();
        assert!(inst.verify_coloring(&colors).is_ok());
    }

    #[test]
    fn verify_coloring_catches_palette_violation() {
        let inst = inst_cycle(3);
        // proper but node 0 uses color 5 ∉ palette {0,1,2}
        assert!(inst.verify_coloring(&[5, 1, 2]).is_err());
        assert!(inst.verify_coloring(&[0, 1, 2]).is_ok());
    }

    #[test]
    fn big_batch_parallel_update_consistent() {
        // Match a sequential reference on a larger cycle.
        let n = 1000;
        let inst = inst_cycle(n);
        let mut st = ColoringState::new(&inst);
        // Color all even nodes with color 0 (independent set in C_1000).
        let batch: Vec<(NodeId, u32)> = (0..n as NodeId).step_by(2).map(|v| (v, 0)).collect();
        st.apply_adoptions(&inst.graph, &batch);
        assert!(st.verify_partial(&inst.graph).is_ok());
        for v in (1..n as NodeId).step_by(2) {
            assert_eq!(st.uncolored_degree(v), 0);
            assert_eq!(st.palette_size(v), 2); // {0,1,2} minus 0
            assert!(st.slack(v) >= 1);
        }
        assert!(st.invariant_violation().is_none());
    }
}
