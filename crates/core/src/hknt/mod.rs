//! The HKNT22 (degree+1)-list-coloring pipeline (Section 2.2 / Section 5
//! of the paper), expressed as a series of normal `(O(1), Δ)`-round
//! distributed procedures so the derandomization framework applies
//! (Lemma 13).
//!
//! Module layout mirrors the paper's presentation:
//! * [`procs`] — the randomized subprocedures: `TryRandomColor`
//!   (Algorithm 3), `MultiTrial` (Algorithm 4), `GenerateSlack`
//!   (Algorithm 6), `SynchColorTrial` (Algorithm 8), `PutAside`
//!   (Algorithm 9), each with its strong success property.
//! * [`acd`] — the almost-clique decomposition (Definition 3) plus
//!   leaders/inliers/outliers (Lemma 22).
//! * [`vstart`] — the `Vstart` identification (Lemma 21).
//! * [`slack_color`](mod@slack_color) — `SlackColor` (Algorithm 2): the `O(log* n)`-step
//!   doubling schedule over MultiTrial.
//! * [`pipeline`] — `ColorMiddle` (Algorithm 1): ACD → ColorSparse
//!   (Algorithm 5) → ColorDense (Algorithm 7).

pub mod acd;
pub mod pipeline;
pub mod procs;
pub mod slack_color;
pub mod vstart;

pub use acd::{compute_acd, Acd, Clique, NodeClass};
pub use pipeline::{color_middle, MidReport};
pub use procs::{GenerateSlack, MultiTrial, PutAside, SspMode, SynchColorTrial, TryRandomColor};
pub use slack_color::slack_color;
pub use vstart::{identify_vstart, VstartSets};
