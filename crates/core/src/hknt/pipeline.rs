//! `ColorMiddle` (Algorithm 1): the full HKNT22 stage for one degree
//! range — ACD, then ColorSparse (Algorithm 5), then ColorDense
//! (Algorithm 7) — driven through the derandomization framework.
//!
//! Every randomized subprocedure goes through [`Runner::run_step`], so the
//! same code path realizes both Lemma 4 (randomized, `CryptoTape`) and
//! Lemma 15 (derandomized, PRG + conditional expectations).  Deterministic
//! parts (parameters, ACD, `Vstart`, leaders/outliers — Lemma 16) are
//! computed directly and charged `O(1)` MPC rounds.

use crate::config::Params;
use crate::framework::Runner;
use crate::hknt::acd::{compute_acd, NodeClass};
use crate::hknt::procs::{
    CliquePutAside, CliqueTrial, GenerateSlack, PutAside, StageSet, SynchColorTrial,
};
use crate::hknt::slack_color::{slack_color, SlackColorReport};
use crate::hknt::vstart::identify_vstart;
use crate::instance::ColoringState;
use crate::node_params::compute_params;
use parcolor_local::graph::NodeId;
use serde::Serialize;

/// Statistics of one `ColorMiddle` invocation.
#[derive(Clone, Debug, Serialize, Default)]
pub struct MidReport {
    /// Nodes the stage started with.
    pub stage_size: usize,
    /// ACD-classified sparse nodes.
    pub sparse: usize,
    /// ACD-classified uneven nodes.
    pub uneven: usize,
    /// ACD-classified dense nodes.
    pub dense: usize,
    /// Almost-cliques found.
    pub cliques: usize,
    /// Cliques with low slackability (put-aside candidates).
    pub low_slack_cliques: usize,
    /// Size of `Vstart`.
    pub vstart: usize,
    /// Size of the put-aside set `P`.
    pub put_aside: usize,
    /// Stage nodes colored by the end.
    pub colored: usize,
    /// Stage nodes deferred by the end.
    pub deferred: usize,
    /// Per-series SlackColor breakdowns.
    pub slack_color_reports: Vec<SlackColorReport>,
}

fn live(runner: &Runner, state: &ColoringState, nodes: &[NodeId]) -> Vec<NodeId> {
    nodes
        .iter()
        .copied()
        .filter(|&v| !state.is_colored(v) && !runner.is_deferred(v))
        .collect()
}

/// Run one ColorMiddle stage on `stage_nodes` (uncolored nodes whose
/// degrees fall in the stage's range; the caller selects the range).
pub fn color_middle(
    runner: &mut Runner,
    state: &mut ColoringState,
    params: &Params,
    stage_nodes: &[NodeId],
) -> MidReport {
    let g = runner.graph;
    let n = state.n();
    let stage: Vec<NodeId> = live(runner, state, stage_nodes);
    let mut report = MidReport {
        stage_size: stage.len(),
        ..MidReport::default()
    };
    if stage.is_empty() {
        return report;
    }
    let mut active = vec![false; n];
    for &v in &stage {
        active[v as usize] = true;
    }

    // ---- Deterministic preprocessing (Lemma 16: O(1) MPC rounds). ----
    runner
        .mpc
        .charge_two_hop_collection(g, |v| active[v as usize]);
    runner.mpc.charge_rounds(4);
    runner.engine.charge(4, 0);
    let table = compute_params(g, state, &stage, &active);
    let acd = compute_acd(g, &stage, &active, &table, params);
    let vs = identify_vstart(g, state, &acd, &table, &active, params);

    let sparse = acd.sparse_nodes();
    let uneven = acd.uneven_nodes();
    let dense = acd.dense_nodes();
    report.sparse = sparse.len();
    report.uneven = uneven.len();
    report.dense = dense.len();
    report.cliques = acd.cliques.len();
    report.low_slack_cliques = acd.cliques.iter().filter(|c| c.low_slack).count();
    report.vstart = vs.start.len();

    let in_start = {
        let mut m = vec![false; n];
        for &v in &vs.start {
            m[v as usize] = true;
        }
        m
    };

    // ---- ColorSparse (Algorithm 5). ----
    // Step 2: GenerateSlack on (Vsparse ∪ Vuneven) \ Vstart.
    let gs_nodes: Vec<NodeId> = sparse
        .iter()
        .chain(uneven.iter())
        .copied()
        .filter(|&v| !in_start[v as usize])
        .collect();
    let gs_nodes = live(runner, state, &gs_nodes);
    if !gs_nodes.is_empty() {
        let act_deg = |v: NodeId| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| active[u as usize])
                .count() as f64
        };
        // SSP slack targets (HKNT Lemmas 10-18, scaled): sparse nodes must
        // earn slack proportional to their sparsity; uneven nodes rely on
        // later-colored high-degree neighbors (temporary slack) — auto.
        let targets: Vec<f64> = gs_nodes
            .iter()
            .map(|&v| {
                if acd.class[v as usize] == NodeClass::Sparse {
                    params.slack_frac * table.get(v).sparsity.min(act_deg(v))
                } else {
                    0.0
                }
            })
            .collect();
        let set = StageSet::new(n, gs_nodes);
        let proc = GenerateSlack::new(g, set, params.gs_prob, targets, 0x11);
        runner.run_step(&proc, state);
    }
    // Step 3: SlackColor(Vstart).
    let start_live = live(runner, state, &vs.start);
    if !start_live.is_empty() {
        let r = slack_color(runner, state, params, &start_live, "sparse:vstart");
        report.slack_color_reports.push(r);
    }
    // Step 4: SlackColor(Vsparse \ Vstart and Vuneven).
    let rest: Vec<NodeId> = sparse
        .iter()
        .chain(uneven.iter())
        .copied()
        .filter(|&v| !in_start[v as usize])
        .collect();
    let rest = live(runner, state, &rest);
    if !rest.is_empty() {
        let r = slack_color(runner, state, params, &rest, "sparse:rest");
        report.slack_color_reports.push(r);
    }

    // ---- ColorDense (Algorithm 7). ----
    // Step 1 (leaders/outliers) came with the ACD; charge is in Lemma 16.
    // Step 2: GenerateSlack on dense nodes.
    let dense_live = live(runner, state, &dense);
    if !dense_live.is_empty() {
        let targets: Vec<f64> = dense_live
            .iter()
            .map(|&v| {
                match acd.class[v as usize] {
                    // High-slackability cliques must generate slack; low-
                    // slackability ones are served by PutAside instead.
                    NodeClass::Dense(cid) if !acd.cliques[cid as usize].low_slack => {
                        params.slack_frac * table.get(v).slackability
                    }
                    _ => 0.0,
                }
            })
            .collect();
        let set = StageSet::new(n, dense_live);
        let proc = GenerateSlack::new(g, set, params.gs_prob, targets, 0x21);
        runner.run_step(&proc, state);
    }

    // Step 3: PutAside for low-slackability cliques.
    let mut put_aside_mask = vec![false; n];
    let put_cliques: Vec<CliquePutAside> = acd
        .cliques
        .iter()
        .filter(|c| c.low_slack)
        .filter_map(|c| {
            let inliers = live(runner, state, &c.inliers);
            if inliers.is_empty() {
                return None;
            }
            let ell = params.ell(c.max_degree.max(2));
            // Paper: p_s = ℓ²/(48 Δ_C).  Clamped so that the "no sampled
            // neighbor" filter keeps a constant fraction at clique scale.
            let prob = (ell * ell / (params.put_aside_div * c.max_degree.max(1) as f64))
                .min(1.0 / (2.0 * c.nodes.len() as f64));
            let expected = inliers.len() as f64 * prob;
            if expected < 2.0 {
                // Too small for a meaningful put-aside set; skip (tiny
                // cliques are finished by SynchColorTrial + SlackColor).
                return None;
            }
            Some(CliquePutAside {
                clique_id: c.id,
                inliers,
                prob,
                target: (expected * 0.25).floor().max(1.0) as usize,
            })
        })
        .collect();
    if !put_cliques.is_empty() {
        let all: Vec<NodeId> = put_cliques
            .iter()
            .flat_map(|c| c.inliers.iter().copied())
            .collect();
        let set = StageSet::new(n, all);
        let proc = PutAside {
            g,
            set,
            cliques: put_cliques,
            round_tag: 0x31,
        };
        let rep = runner.run_step(&proc, state);
        // Re-simulate bookkeeping: run_step applied no adoptions (PutAside
        // has none); its aux (the put-aside set) is in the last report?
        // The outcome is not retained by run_step, so recompute via the
        // deferred mask: we instead read the aux from the report count.
        let _ = rep;
    }
    // run_step does not hand back aux; recompute P deterministically by
    // re-running the chosen step is wasteful — instead PutAside marks its
    // set through `Runner::last_aux` (see framework).
    for &v in runner.last_aux() {
        put_aside_mask[v as usize] = true;
    }
    report.put_aside = runner.last_aux().len();

    // Step 4: SlackColor(outliers) — put-aside nodes excluded everywhere.
    let outliers: Vec<NodeId> = acd
        .cliques
        .iter()
        .flat_map(|c| c.outliers.iter().copied())
        .filter(|&v| !put_aside_mask[v as usize])
        .collect();
    let outliers = live(runner, state, &outliers);
    if !outliers.is_empty() {
        let r = slack_color(runner, state, params, &outliers, "dense:outliers");
        report.slack_color_reports.push(r);
    }

    // Step 5: SynchColorTrial on inliers (minus put-aside).
    let trial_cliques: Vec<CliqueTrial> = acd
        .cliques
        .iter()
        .filter_map(|c| {
            if state.is_colored(c.leader) || runner.is_deferred(c.leader) {
                return None; // leader gone; SlackColor mops up below
            }
            let inliers: Vec<NodeId> = live(runner, state, &c.inliers)
                .into_iter()
                .filter(|&v| !put_aside_mask[v as usize])
                .collect();
            (!inliers.is_empty()).then_some(CliqueTrial {
                leader: c.leader,
                inliers,
            })
        })
        .collect();
    if !trial_cliques.is_empty() {
        let all: Vec<NodeId> = trial_cliques
            .iter()
            .flat_map(|c| c.inliers.iter().copied())
            .collect();
        let max_deg = g.max_degree().max(2);
        let tolerance = params.ell(max_deg).ceil().max(2.0) as usize;
        let set = StageSet::new(n, all);
        let proc = SynchColorTrial::new(g, set, trial_cliques, tolerance, 0x41);
        runner.run_step(&proc, state);
    }

    // Step 6: SlackColor on remaining dense nodes (incl. leaders), minus P.
    let dense_rest: Vec<NodeId> = live(runner, state, &dense)
        .into_iter()
        .filter(|&v| !put_aside_mask[v as usize])
        .collect();
    if !dense_rest.is_empty() {
        let r = slack_color(runner, state, params, &dense_rest, "dense:rest");
        report.slack_color_reports.push(r);
    }

    // Step 7: color the put-aside sets.  P is an independent set (its
    // members have no sampled neighbor at all), each with a non-empty
    // residual palette by the D1LC invariant — one O(1)-round local step.
    let put_nodes: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| put_aside_mask[v as usize] && !state.is_colored(v))
        .collect();
    if !put_nodes.is_empty() {
        let adoptions: Vec<(NodeId, u32)> = put_nodes
            .iter()
            .map(|&v| {
                let pal = state.palette(v);
                assert!(!pal.is_empty(), "put-aside node {v} has empty palette");
                (v, pal[0])
            })
            .collect();
        state.apply_adoptions(g, &adoptions);
        runner.engine.charge(2, put_nodes.len() as u64);
        runner.mpc.charge_rounds(2);
    }

    report.colored = stage.iter().filter(|&&v| state.is_colored(v)).count();
    report.deferred = stage.iter().filter(|&&v| runner.is_deferred(v)).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;
    use parcolor_local::graph::Graph;
    use parcolor_local::tape::SplitMix;

    /// Mixed graph: two planted cliques + a sparse random part.
    fn mixed_graph(seed: u64) -> Graph {
        let mut edges = Vec::new();
        for a in 0..16u32 {
            for b in (a + 1)..16 {
                edges.push((a, b));
            }
        }
        for a in 16..30u32 {
            for b in (a + 1)..30 {
                edges.push((a, b));
            }
        }
        let mut rng = SplitMix::new(seed);
        for _ in 0..150 {
            let a = 30 + rng.below(70) as u32;
            let b = 30 + rng.below(70) as u32;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        // light wiring between parts
        for _ in 0..20 {
            let a = rng.below(30) as u32;
            let b = 30 + rng.below(70) as u32;
            edges.push((a, b));
        }
        Graph::from_edges(100, &edges)
    }

    #[test]
    fn pipeline_colors_most_nodes_randomized() {
        let g = mixed_graph(77);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&g, &params, 1234, 100);
        let stage: Vec<NodeId> = (0..100).collect();
        let rep = color_middle(&mut runner, &mut state, &params, &stage);
        assert_eq!(rep.stage_size, 100);
        assert!(
            rep.colored + rep.deferred >= 95,
            "unaccounted nodes: colored={} deferred={}",
            rep.colored,
            rep.deferred
        );
        assert!(rep.colored >= 60, "too few colored: {}", rep.colored);
        assert!(state.verify_partial(&g).is_ok());
        assert!(state.invariant_violation().is_none());
    }

    #[test]
    fn pipeline_derandomized_is_deterministic() {
        let g = mixed_graph(42);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let params = Params::default().with_seed_bits(6);
        let run = || {
            let mut state = ColoringState::new(&inst);
            let mut runner = Runner::derandomized(&g, &params, 100);
            let stage: Vec<NodeId> = (0..100).collect();
            let rep = color_middle(&mut runner, &mut state, &params, &stage);
            (state.colors().to_vec(), rep.colored, rep.deferred)
        };
        let (c1, col1, def1) = run();
        let (c2, col2, def2) = run();
        assert_eq!(c1, c2);
        assert_eq!(col1, col2);
        assert_eq!(def1, def2);
        assert!(col1 >= 60, "derandomized colored too few: {col1}");
    }

    #[test]
    fn classification_covers_the_stage() {
        let g = mixed_graph(5);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&g, &params, 7, 100);
        let stage: Vec<NodeId> = (0..100).collect();
        let rep = color_middle(&mut runner, &mut state, &params, &stage);
        assert_eq!(rep.sparse + rep.uneven + rep.dense, 100);
        assert!(rep.cliques >= 2, "planted cliques lost: {}", rep.cliques);
    }

    #[test]
    fn empty_stage_is_noop() {
        let g = mixed_graph(5);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&g, &params, 7, 100);
        let rep = color_middle(&mut runner, &mut state, &params, &[]);
        assert_eq!(rep.stage_size, 0);
        assert_eq!(rep.colored, 0);
    }
}
