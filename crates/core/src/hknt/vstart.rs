//! Identification of `Vstart` — the sparse nodes for which slack is hard
//! to generate (Section 5.2 / Lemma 21 of the paper).
//!
//! The breakdown (all thresholds are the ε₁…ε₅ constants of `Params`):
//!
//! ```text
//! Vbalanced = sparse v with ≥ ε₁·d(v) neighbors of degree > 2d(v)/3
//! Vdisc     = sparse v with discrepancy η̄_v ≥ ε₂·d(v)
//! Veasy     = Vbalanced ∪ Vdisc ∪ Vuneven ∪ {sparse v: ≥ ε₃·d(v) dense neighbors}
//! Vheavy    = sparse v ∉ Veasy with Σ_{c heavy} H(c) ≥ ε₄·d(v)
//! Vstart    = sparse v ∉ (Veasy ∪ Vheavy) with ≥ ε₅·d(v) neighbors in Veasy
//! ```
//!
//! where `H(c) = Σ_{u∈N(v)} [c ∈ Ψ(u)] / p(u)` is the expected number of
//! neighbors that would pick `c` in a uniform trial, and `c` is *heavy*
//! when `H(c)` is at least a constant.

use crate::config::Params;
use crate::hknt::acd::{Acd, NodeClass};
use crate::instance::ColoringState;
use crate::node_params::ParamTable;
use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;
use std::collections::HashMap;

/// The subsets computed on the way to `Vstart` (exposed for tests and the
/// E5 diagnostics).
#[derive(Clone, Debug, Default)]
pub struct VstartSets {
    /// `Vbalanced`: sparse nodes with many similar-degree neighbors.
    pub balanced: Vec<NodeId>,
    /// `Vdisc`: sparse nodes with high discrepancy.
    pub disc: Vec<NodeId>,
    /// `Veasy`: the union that easily generates slack.
    pub easy: Vec<NodeId>,
    /// `Vheavy`: heavy-color mass nodes.
    pub heavy: Vec<NodeId>,
    /// `Vstart`: the hard-to-slack set, colored first via temporary slack.
    pub start: Vec<NodeId>,
}

/// Compute `Vstart` for the current stage.
pub fn identify_vstart(
    g: &Graph,
    state: &ColoringState,
    acd: &Acd,
    table: &ParamTable,
    active: &[bool],
    params: &Params,
) -> VstartSets {
    let n = g.n();
    let act_deg = |v: NodeId| -> usize {
        g.neighbors(v)
            .iter()
            .filter(|&&u| active[u as usize])
            .count()
    };
    let is_sparse = |v: NodeId| acd.class[v as usize] == NodeClass::Sparse;

    let sparse: Vec<NodeId> = (0..n as NodeId).filter(|&v| is_sparse(v)).collect();

    // Vbalanced and Vdisc.
    let balanced: Vec<NodeId> = sparse
        .par_iter()
        .copied()
        .filter(|&v| {
            let d = act_deg(v);
            let big = g
                .neighbors(v)
                .iter()
                .filter(|&&u| active[u as usize] && act_deg(u) * 3 > 2 * d)
                .count();
            big as f64 >= params.eps1 * d as f64
        })
        .collect();
    let disc: Vec<NodeId> = sparse
        .par_iter()
        .copied()
        .filter(|&v| table.get(v).discrepancy >= params.eps2 * act_deg(v) as f64)
        .collect();

    // Veasy.
    let mut easy_mask = vec![false; n];
    for &v in balanced.iter().chain(disc.iter()) {
        easy_mask[v as usize] = true;
    }
    for v in 0..n as NodeId {
        if acd.class[v as usize] == NodeClass::Uneven {
            easy_mask[v as usize] = true;
        }
    }
    let many_dense: Vec<NodeId> = sparse
        .par_iter()
        .copied()
        .filter(|&v| {
            let d = act_deg(v);
            let dense_nb = g
                .neighbors(v)
                .iter()
                .filter(|&&u| matches!(acd.class[u as usize], NodeClass::Dense(_)))
                .count();
            dense_nb as f64 >= params.eps3 * d as f64
        })
        .collect();
    for &v in &many_dense {
        easy_mask[v as usize] = true;
    }
    let easy: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| easy_mask[v as usize])
        .collect();

    // Vheavy: heavy-color mass.
    let heavy: Vec<NodeId> = sparse
        .par_iter()
        .copied()
        .filter(|&v| !easy_mask[v as usize])
        .filter(|&v| {
            let mut h: HashMap<u32, f64> = HashMap::new();
            for &u in g.neighbors(v) {
                if !active[u as usize] || state.is_colored(u) {
                    continue;
                }
                let pu = state.palette(u);
                if pu.is_empty() {
                    continue;
                }
                let w = 1.0 / pu.len() as f64;
                for &c in pu {
                    *h.entry(c).or_insert(0.0) += w;
                }
            }
            let heavy_mass: f64 = h.values().filter(|&&m| m >= params.heavy_const).sum();
            heavy_mass >= params.eps4 * act_deg(v) as f64
        })
        .collect();
    let mut heavy_mask = vec![false; n];
    for &v in &heavy {
        heavy_mask[v as usize] = true;
    }

    // Vstart.
    let start: Vec<NodeId> = sparse
        .par_iter()
        .copied()
        .filter(|&v| !easy_mask[v as usize] && !heavy_mask[v as usize])
        .filter(|&v| {
            let d = act_deg(v);
            let easy_nb = g
                .neighbors(v)
                .iter()
                .filter(|&&u| easy_mask[u as usize])
                .count();
            easy_nb as f64 >= params.eps5 * d as f64
        })
        .collect();

    VstartSets {
        balanced,
        disc,
        easy,
        heavy,
        start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hknt::acd::compute_acd;
    use crate::instance::D1lcInstance;
    use crate::node_params::compute_params;

    fn analyze(g: &Graph) -> (VstartSets, Acd) {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let active = vec![true; g.n()];
        let p = Params::default();
        let table = compute_params(g, &st, &nodes, &active);
        let acd = compute_acd(g, &nodes, &active, &table, &p);
        let vs = identify_vstart(g, &st, &acd, &table, &active, &p);
        (vs, acd)
    }

    #[test]
    fn star_leaves_are_not_start() {
        // Star: center sparse (ζ large); leaves are uneven.
        let edges: Vec<_> = (1..20u32).map(|i| (0, i)).collect();
        let g = Graph::from_edges(20, &edges);
        let (vs, acd) = analyze(&g);
        assert_eq!(acd.class[1], NodeClass::Uneven);
        // Leaves are uneven → in Veasy, never in Vstart.
        assert!(!vs.start.contains(&1));
    }

    #[test]
    fn subsets_are_disjoint_from_start() {
        // Random-ish sparse graph.
        let mut edges = Vec::new();
        let mut rng = parcolor_local::tape::SplitMix::new(9);
        for _ in 0..200 {
            let a = rng.below(60) as u32;
            let b = rng.below(60) as u32;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let g = Graph::from_edges(60, &edges);
        let (vs, _) = analyze(&g);
        for v in &vs.start {
            assert!(!vs.easy.contains(v), "start∩easy at {v}");
            assert!(!vs.heavy.contains(v), "start∩heavy at {v}");
        }
    }

    #[test]
    fn balanced_detects_regular_sparse_graphs() {
        // In a degree-regular sparse graph every neighbor has degree
        // > 2d/3, so all sparse nodes are balanced (hence easy).
        let edges: Vec<_> = (0..40u32).map(|i| (i, (i + 1) % 40)).collect();
        let g = Graph::from_edges(40, &edges);
        let (vs, acd) = analyze(&g);
        let sparse = acd.sparse_nodes();
        assert!(!sparse.is_empty());
        for v in &sparse {
            assert!(vs.balanced.contains(v), "ring node {v} not balanced");
        }
        assert!(vs.start.is_empty());
    }

    #[test]
    fn identical_palettes_make_heavy_colors() {
        // Dense-ish bipartite-ish sparse graph where palettes coincide:
        // H(c) ≈ Σ 1/p — heaviness requires enough neighbors.
        // K_{5,5} minus a matching is sparse (no triangles at all).
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 5..10u32 {
                if b - 5 != a {
                    edges.push((a, b));
                }
            }
        }
        let g = Graph::from_edges(10, &edges);
        let pal: Vec<Vec<u32>> = (0..10).map(|_| (0..5).collect()).collect();
        let inst = D1lcInstance::new(g.clone(), crate::instance::PaletteArena::from_lists(&pal));
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..10).collect();
        let active = vec![true; 10];
        let p = Params::default();
        let table = compute_params(&g, &st, &nodes, &active);
        let acd = compute_acd(&g, &nodes, &active, &table, &p);
        let vs = identify_vstart(&g, &st, &acd, &table, &active, &p);
        // Bipartite graph: all nodes sparse (zero triangles → high ζ).
        assert_eq!(acd.sparse_nodes().len(), 10);
        // With 4 neighbors all sharing a 5-color palette, every color has
        // H(c) = 4/5 < 1 (not heavy) — heavy set empty; but each node is
        // "balanced" (regular), so easy and not start.
        assert!(vs.start.is_empty());
    }
}
