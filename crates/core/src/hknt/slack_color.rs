//! `SlackColor` (Algorithm 2 of the paper, from HKNT22): colors nodes that
//! have slack linear in their degree in `O(log* n)` rounds.
//!
//! Structure, as a series of normal procedures (Lemma 13's SlackColor
//! case):
//! 1. `O(1)` calls of `TryRandomColor` to amplify slack; nodes failing the
//!    line-2 gate `s(v) ≥ 2 d(v)` defer.
//! 2. Loop A: `x_i = 2↑↑i` (iterated exponentiation), two `MultiTrial(x_i)`
//!    per step, gate `d(v) ≤ s(v)/min(2^{x_i}, ρ^κ)` — `log* ρ` steps.
//! 3. Loop B: `x = ρ^{iκ}`, three `MultiTrial(x)` per step, gate
//!    `d(v) ≤ s(v)/min(ρ^{(i+1)κ}, ρ)` — `⌈1/κ⌉` steps.
//! 4. A final `MultiTrial(ρ)`; nodes still uncolored defer.
//!
//! Here `ρ = s_min^{1/(1+κ)}` and `s_min` lower-bounds the slack of every
//! participant (measured on the *stage* subgraph: only active neighbors
//! count toward degree, which is exactly the "temporary slack" device the
//! paper uses for `Vstart`).  All draws are capped at
//! [`MULTI_TRIAL_CAP`] candidates.

use crate::config::Params;
use crate::framework::Runner;
use crate::hknt::procs::{MultiTrial, SspMode, StageSet, TryRandomColor, MULTI_TRIAL_CAP};
use crate::instance::ColoringState;
use parcolor_local::engine::{log_star, tower};
use parcolor_local::graph::NodeId;
use serde::Serialize;

/// Summary of one SlackColor series.
#[derive(Clone, Debug, Serialize)]
pub struct SlackColorReport {
    /// Caller-supplied series label.
    pub label: String,
    /// Nodes the series started with.
    pub participants: usize,
    /// Participants colored.
    pub colored: usize,
    /// Participants deferred.
    pub deferred: usize,
    /// Procedure steps executed.
    pub steps: usize,
    /// Minimum stage slack after the warm-up (0 if it finished there).
    pub s_min: i64,
    /// `ρ = s_min^{1/(1+κ)}`.
    pub rho: f64,
}

/// Nodes from `nodes` that are still uncolored and not deferred.
fn filter_live(runner: &Runner, state: &ColoringState, nodes: &[NodeId]) -> Vec<NodeId> {
    nodes
        .iter()
        .copied()
        .filter(|&v| !state.is_colored(v) && !runner.is_deferred(v))
        .collect()
}

/// Stage slack of `v`: residual palette minus *active* degree.
fn stage_slack(state: &ColoringState, set: &StageSet, runner: &Runner) -> i64 {
    set.active
        .iter()
        .map(|&v| {
            let act_deg = runner
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&u| set.contains(u))
                .count() as i64;
            state.palette_size(v) as i64 - act_deg
        })
        .min()
        .unwrap_or(1)
}

/// Run the SlackColor series on `nodes`.  Returns the report; colored
/// nodes are committed to `state`, failures are deferred in `runner`.
pub fn slack_color(
    runner: &mut Runner,
    state: &mut ColoringState,
    params: &Params,
    nodes: &[NodeId],
    label: &str,
) -> SlackColorReport {
    let initial: Vec<NodeId> = filter_live(runner, state, nodes);
    let participants = initial.len();
    let mut steps = 0usize;
    let report = |runner: &Runner, state: &ColoringState, s_min: i64, rho: f64, steps: usize| {
        let colored = initial.iter().filter(|&&v| state.is_colored(v)).count();
        let deferred = initial.iter().filter(|&&v| runner.is_deferred(v)).count();
        SlackColorReport {
            label: label.to_string(),
            participants,
            colored,
            deferred,
            steps,
            s_min,
            rho,
        }
    };
    if initial.is_empty() {
        return report(runner, state, 0, 0.0, 0);
    }
    let g = runner.graph;

    // --- Phase 1: TryRandomColor warm-up + line-2 gate. ---
    let reps = params.try_color_repeats.max(1);
    for t in 0..reps {
        let live = filter_live(runner, state, &initial);
        if live.is_empty() {
            return report(runner, state, 0, 0.0, steps);
        }
        let set = StageSet::new(state.n(), live);
        let ssp = if t + 1 == reps {
            SspMode::SlackRatio(2.0)
        } else {
            SspMode::Auto
        };
        let proc = TryRandomColor::new(g, set, ssp, 0x100 + t as u64);
        runner.run_step(&proc, state);
        steps += 1;
    }

    // s_min over survivors, measured on the stage subgraph.
    let live = filter_live(runner, state, &initial);
    if live.is_empty() {
        return report(runner, state, 0, 0.0, steps);
    }
    let set0 = StageSet::new(state.n(), live.clone());
    let s_min = stage_slack(state, &set0, runner).max(1);
    let kappa = params.kappa.clamp(0.05, 1.0);
    let rho = (s_min as f64).powf(1.0 / (1.0 + kappa)).max(2.0);
    let rho_k = rho.powf(kappa);

    // --- Phase 2, loop A: tower schedule. ---
    let loop_a_len = log_star(rho) + 1;
    for i in 0..loop_a_len {
        let xi = tower(i).min(MULTI_TRIAL_CAP as u64) as usize;
        let two_pow = if xi >= 63 {
            f64::INFINITY
        } else {
            (1u64 << xi) as f64
        };
        let gate = two_pow.min(rho_k);
        for rep in 0..params.multi_trial_reps_a.max(1) {
            let live = filter_live(runner, state, &initial);
            if live.is_empty() {
                return report(runner, state, s_min, rho, steps);
            }
            let set = StageSet::new(state.n(), live);
            let ssp = if rep + 1 == params.multi_trial_reps_a.max(1) {
                SspMode::SlackRatio(gate)
            } else {
                SspMode::Auto
            };
            let proc = MultiTrial::new(g, set, xi, ssp, 0x200 + (i as u64) * 8 + rep as u64);
            runner.run_step(&proc, state);
            steps += 1;
        }
        if two_pow >= rho_k {
            break;
        }
    }

    // --- Phase 2, loop B: geometric schedule. ---
    let loop_b_len = (1.0 / kappa).ceil() as u32;
    for i in 1..=loop_b_len {
        let x = rho.powf(i as f64 * kappa).ceil() as usize;
        let gate = rho.powf((i + 1) as f64 * kappa).min(rho);
        for rep in 0..params.multi_trial_reps_b.max(1) {
            let live = filter_live(runner, state, &initial);
            if live.is_empty() {
                return report(runner, state, s_min, rho, steps);
            }
            let set = StageSet::new(state.n(), live);
            let ssp = if rep + 1 == params.multi_trial_reps_b.max(1) {
                SspMode::SlackRatio(gate)
            } else {
                SspMode::Auto
            };
            let proc = MultiTrial::new(g, set, x, ssp, 0x300 + (i as u64) * 8 + rep as u64);
            runner.run_step(&proc, state);
            steps += 1;
        }
    }

    // --- Phase 3: final MultiTrial(ρ); survivors defer. ---
    let live = filter_live(runner, state, &initial);
    if !live.is_empty() {
        let set = StageSet::new(state.n(), live);
        let proc = MultiTrial::new(g, set, rho.ceil() as usize, SspMode::Colored, 0x400);
        runner.run_step(&proc, state);
        steps += 1;
    }

    report(runner, state, s_min, rho, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{D1lcInstance, PaletteArena};
    use parcolor_local::graph::Graph;

    /// Ring with inflated palettes: every node has slack ≈ palette − 2.
    fn slack_ring(n: usize, extra: usize) -> D1lcInstance {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let lists: Vec<Vec<u32>> = (0..n).map(|_| (0..(3 + extra) as u32).collect()).collect();
        D1lcInstance::new(g, PaletteArena::from_lists(&lists))
    }

    #[test]
    fn colors_everything_with_linear_slack_randomized() {
        let inst = slack_ring(200, 6);
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&inst.graph, &params, 99, 200);
        let nodes: Vec<NodeId> = (0..200).collect();
        let rep = slack_color(&mut runner, &mut state, &params, &nodes, "test");
        assert_eq!(rep.participants, 200);
        assert_eq!(rep.colored + rep.deferred, 200);
        // With slack 7 ≫ degree 2, deferral should be rare.
        assert!(rep.deferred <= 10, "deferred = {}", rep.deferred);
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn colors_everything_derandomized() {
        let inst = slack_ring(100, 6);
        let params = Params::default().with_seed_bits(6);
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::derandomized(&inst.graph, &params, 100);
        let nodes: Vec<NodeId> = (0..100).collect();
        let rep = slack_color(&mut runner, &mut state, &params, &nodes, "test");
        assert_eq!(rep.colored + rep.deferred, 100);
        assert!(
            rep.deferred <= 5,
            "derandomized deferral too high: {}",
            rep.deferred
        );
        assert!(state.verify_partial(&inst.graph).is_ok());
    }

    #[test]
    fn empty_input_is_a_noop() {
        let inst = slack_ring(10, 2);
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::randomized(&inst.graph, &params, 1, 10);
        let rep = slack_color(&mut runner, &mut state, &params, &[], "empty");
        assert_eq!(rep.participants, 0);
        assert_eq!(rep.steps, 0);
    }

    #[test]
    fn already_colored_nodes_are_skipped() {
        let inst = slack_ring(10, 2);
        let params = Params::default();
        let mut state = ColoringState::new(&inst);
        state.apply_adoptions(&inst.graph, &[(0, 0), (5, 0)]);
        let mut runner = Runner::randomized(&inst.graph, &params, 1, 10);
        let nodes: Vec<NodeId> = (0..10).collect();
        let rep = slack_color(&mut runner, &mut state, &params, &nodes, "partial");
        assert_eq!(rep.participants, 8);
    }

    #[test]
    fn round_count_is_log_star_shaped() {
        // Steps should grow like log*(slack), i.e. barely at all.
        let small = {
            let inst = slack_ring(64, 4);
            let params = Params::default();
            let mut state = ColoringState::new(&inst);
            let mut runner = Runner::randomized(&inst.graph, &params, 3, 64);
            let nodes: Vec<NodeId> = (0..64).collect();
            slack_color(&mut runner, &mut state, &params, &nodes, "s").steps
        };
        let large = {
            let inst = slack_ring(1024, 60);
            let params = Params::default();
            let mut state = ColoringState::new(&inst);
            let mut runner = Runner::randomized(&inst.graph, &params, 3, 1024);
            let nodes: Vec<NodeId> = (0..1024).collect();
            slack_color(&mut runner, &mut state, &params, &nodes, "l").steps
        };
        assert!(
            large <= small + 8,
            "steps grew too fast: {small} -> {large}"
        );
    }
}
