//! The randomized subprocedures of HKNT22, as normal distributed
//! procedures (Definition 5 instances; see Lemma 13 of the paper).
//!
//! Conventions shared by all procedures:
//! * `active`/`mask` name the nodes participating in *this* invocation
//!   (uncolored, in the current stage, not deferred).  Inactive neighbors
//!   neither propose nor conflict.
//! * Adoption is by **symmetric abstention**: a node adopts a color only
//!   if no active neighbor proposes the same color, so batches are
//!   conflict-free by construction (re-checked by `apply_adoptions`).
//! * Every random draw is addressed `(node, stream, idx)` through the
//!   [`Randomness`] tape, keeping `simulate` a pure function of the seed —
//!   the property the derandomizer relies on.

use crate::framework::{NormalProcedure, Outcome, PickPlane, SimScratch};
use crate::instance::ColoringState;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_local::tape::Randomness;
use parcolor_prg::SEED_BLOCK;
use rayon::prelude::*;

/// Streams used to separate the random draws inside one procedure.
const S_PICK: u64 = 1;
const S_SAMPLE: u64 = 2;
const S_PERM: u64 = 3;

/// Active-node stripe dealt per steal by the striped
/// `simulate_into_par` overrides.  Doubles as the parallelism floor:
/// with fewer than two full stripes of active nodes the fork/join
/// overhead beats the win and the override falls back to the
/// sequential arena path.
const PAR_STRIPE: usize = 1024;

/// Strong-success-property variants used across the pipeline.
#[derive(Clone, Debug)]
pub enum SspMode {
    /// Always successful (warm-up steps; deferral handled by later gates).
    Auto,
    /// Node must end colored.
    Colored,
    /// Post-state must satisfy `slack ≥ ratio · degree` (degree and slack
    /// measured on active nodes after this outcome) — the SlackColor gates.
    SlackRatio(f64),
    /// Post-state slack must reach the per-node absolute target
    /// (aligned with `active`); `target ≤ 0` means auto-success.
    SlackTarget(Vec<f64>),
}

/// Shared geometry of one procedure invocation.
#[derive(Clone, Debug)]
pub struct StageSet {
    /// Participating nodes, ascending.
    pub active: Vec<NodeId>,
    /// Dense membership mask (`mask[v] ⇔ v ∈ active`).
    pub mask: Vec<bool>,
}

impl StageSet {
    /// Build from the active node list (`n` = total node count).
    pub fn new(n: usize, active: Vec<NodeId>) -> Self {
        let mut mask = vec![false; n];
        for &v in &active {
            mask[v as usize] = true;
        }
        StageSet { active, mask }
    }

    /// Whether `v` participates.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.mask[v as usize]
    }
}

/// Post-outcome metrics: active degree and slack of `v` under a given
/// adopted-color lookup (dense map for the reference path, scratch view
/// for the fast path — one formula, two lookups, so the two paths cannot
/// diverge).  `taken` is a reusable sorted-set buffer.
fn post_deg_slack_with(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    adopted_of: impl Fn(NodeId) -> u32,
    taken: &mut Vec<u32>,
    v: NodeId,
) -> (usize, i64) {
    let mut deg = 0usize;
    let mut pal_lost = 0usize;
    let pal = state.palette(v);
    // Colors adopted by ≥1 neighbor that intersect v's palette.  Distinct
    // colors only: two non-adjacent neighbors may adopt the same color but
    // v's palette loses it once.  Neighbor lists are short (≤ Δ); a sorted
    // scratch vector beats hashing here.
    taken.clear();
    for &u in g.neighbors(v) {
        if !set.contains(u) {
            continue;
        }
        let c = adopted_of(u);
        if c == crate::instance::NO_COLOR {
            deg += 1;
        } else if pal.contains(&c) {
            if let Err(pos) = taken.binary_search(&c) {
                taken.insert(pos, c);
                pal_lost += 1;
            }
        }
    }
    let slack = (pal.len() - pal_lost) as i64 - deg as i64;
    (deg, slack)
}

/// [`post_deg_slack_with`] against a dense adoption map (reference path).
fn post_deg_slack(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    adopted: &[u32],
    v: NodeId,
) -> (usize, i64) {
    let mut taken = Vec::new();
    post_deg_slack_with(g, state, set, |u| adopted[u as usize], &mut taken, v)
}

/// Dense `adopted-color` lookup built once per SSP evaluation.
fn adoption_map(n: usize, out: &Outcome) -> Vec<u32> {
    let mut adopted = vec![crate::instance::NO_COLOR; n];
    for &(v, c) in &out.adoptions {
        adopted[v as usize] = c;
    }
    adopted
}

fn evaluate_ssp(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    ssp: &SspMode,
    out: &Outcome,
) -> Vec<NodeId> {
    match ssp {
        SspMode::Auto => Vec::new(),
        SspMode::Colored => {
            let adopted = adoption_map(state.n(), out);
            set.active
                .par_iter()
                .copied()
                .filter(|&v| adopted[v as usize] == crate::instance::NO_COLOR)
                .collect()
        }
        SspMode::SlackRatio(ratio) => {
            let adopted = adoption_map(state.n(), out);
            set.active
                .par_iter()
                .copied()
                .filter(|&v| {
                    if adopted[v as usize] != crate::instance::NO_COLOR {
                        return false; // colored ⇒ success
                    }
                    let (deg, slack) = post_deg_slack(g, state, set, &adopted, v);
                    (slack as f64) < ratio * deg as f64
                })
                .collect()
        }
        SspMode::SlackTarget(targets) => {
            let adopted = adoption_map(state.n(), out);
            set.active
                .par_iter()
                .zip(targets.par_iter())
                .filter_map(|(&v, &t)| {
                    if t <= 0.0 || adopted[v as usize] != crate::instance::NO_COLOR {
                        return None;
                    }
                    let (_, slack) = post_deg_slack(g, state, set, &adopted, v);
                    ((slack as f64) < t).then_some(v)
                })
                .collect()
        }
    }
}

/// Count of active nodes left uncolored by `out` — the progress-oriented
/// seed cost used by warm-up steps.
fn uncolored_cost(set: &StageSet, state: &ColoringState, out: &Outcome) -> f64 {
    let adopted = adoption_map(state.n(), out);
    set.active
        .iter()
        .filter(|&&v| adopted[v as usize] == crate::instance::NO_COLOR)
        .count() as f64
}

// ---------------------------------------------------------------------
// Allocation-free SSP evaluation against a SimScratch (fast path).
//
// These mirror `post_deg_slack` / `evaluate_ssp` / `uncolored_cost` but
// read the scratch's dense adopted view and count instead of collecting —
// no adoption map, no Vec of failures, no per-call allocation.
// ---------------------------------------------------------------------

/// [`post_deg_slack_with`] against the scratch's adopted view (fast path).
fn post_deg_slack_scratch(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    scratch: &SimScratch,
    taken: &mut Vec<u32>,
    v: NodeId,
) -> (usize, i64) {
    post_deg_slack_with(g, state, set, |u| scratch.adopted_color(u), taken, v)
}

/// `evaluate_ssp(..).len()` without materializing anything.
fn evaluate_ssp_count(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    ssp: &SspMode,
    scratch: &mut SimScratch,
) -> usize {
    match ssp {
        SspMode::Auto => 0,
        // Adoptions are unique active nodes, so the uncolored count is a
        // length difference — O(1) in the hottest SSP mode.
        SspMode::Colored => uncolored_count_scratch(set, scratch),
        SspMode::SlackRatio(ratio) => {
            let mut taken = std::mem::take(&mut scratch.taken);
            let count = set
                .active
                .iter()
                .filter(|&&v| {
                    if scratch.adopted_color(v) != crate::instance::NO_COLOR {
                        return false; // colored ⇒ success
                    }
                    let (deg, slack) =
                        post_deg_slack_scratch(g, state, set, scratch, &mut taken, v);
                    (slack as f64) < ratio * deg as f64
                })
                .count();
            scratch.taken = taken;
            count
        }
        SspMode::SlackTarget(targets) => slack_target_count(g, state, set, targets, scratch),
    }
}

/// `SlackTarget` failure count against per-active-node targets.
fn slack_target_count(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    targets: &[f64],
    scratch: &mut SimScratch,
) -> usize {
    let mut taken = std::mem::take(&mut scratch.taken);
    let count = set
        .active
        .iter()
        .zip(targets.iter())
        .filter(|&(&v, &t)| {
            if t <= 0.0 || scratch.adopted_color(v) != crate::instance::NO_COLOR {
                return false;
            }
            let (_, slack) = post_deg_slack_scratch(g, state, set, scratch, &mut taken, v);
            (slack as f64) < t
        })
        .count();
    scratch.taken = taken;
    count
}

/// Active nodes left uncolored in the scratch evaluation.  Adoptions are
/// unique active nodes, so this is a constant-time difference.
fn uncolored_count_scratch(set: &StageSet, scratch: &SimScratch) -> usize {
    debug_assert!(scratch.adoptions.iter().all(|&(v, _)| set.contains(v)));
    set.active.len() - scratch.adoptions.len()
}

/// All edges whose endpoints are both in `set`, each once as `(a, b)` with
/// `a < b`.  One flat pass at first use replaces per-seed adjacency walks:
/// the clash scan then touches a contiguous edge array with pre-filtered
/// membership instead of re-checking masks per neighbor per seed.
fn collect_active_edges(g: &Graph, set: &StageSet) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for &v in &set.active {
        for &u in g.neighbors(v).iter().rev() {
            if u <= v {
                break;
            }
            if set.contains(u) {
                edges.push((v, u));
            }
        }
    }
    edges
}

// ---------------------------------------------------------------------
// Lane-parallel SSP evaluation against the seed-lane adoption plane.
//
// A block evaluator materializes the whole block's outcome as the plane
// pair (`PickPlane::soa`, `PickPlane::adopted_mask`): lane `s` of node
// `v` adopted color `soa[v][s]` iff bit `s` of `adopted_mask[v]` is set.
// These kernels then compute every lane's seed cost in ONE pass over the
// relevant nodes/neighborhoods — amortizing the graph traffic that the
// per-seed fallback pays once per seed — while evaluating, per lane,
// exactly the formulas of `evaluate_ssp_count` / `uncolored_count_scratch`
// (same arithmetic, same dedup, same comparisons), so block costs are
// bit-identical to the fused scalar path.
// ---------------------------------------------------------------------

/// `costs[s] =` number of active nodes unadopted in lane `s` — the lane
/// analogue of [`uncolored_count_scratch`] (and of `SspMode::Colored`'s
/// failure count).
fn lane_uncolored_costs(set: &StageSet, plane: &PickPlane, lanes: usize, costs: &mut [f64]) {
    let mut adopted = [0usize; SEED_BLOCK];
    for &v in &set.active {
        let am = plane.adopted_mask[v as usize];
        for (s, a) in adopted.iter_mut().enumerate().take(lanes) {
            *a += usize::from(am >> s & 1 == 1);
        }
    }
    for (s, c) in costs.iter_mut().enumerate() {
        *c = (set.active.len() - adopted[s]) as f64;
    }
}

/// Lane-parallel slack-failure count: for every lane `s`, `costs[s] = `
/// number of active nodes `v` with `skip(i) == false`, unadopted in lane
/// `s`, whose post-outcome slack in lane `s` falls below
/// `thresh(i, deg_s)` (where `deg_s` is `v`'s count of unadopted active
/// neighbors in lane `s`) — the lane analogue of [`slack_target_count`] /
/// the `SlackRatio` arm of [`evaluate_ssp_count`].  Walks each candidate
/// node's neighborhood ONCE for all lanes, reading adopted colors as
/// 32-byte SoA rows, with per-lane sorted-set dedup identical to the
/// scalar path's `taken` buffer.
#[allow(clippy::too_many_arguments)] // one shared kernel, two threshold shapes
fn lane_slack_fail_costs(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    plane: &mut PickPlane,
    lanes: usize,
    mut skip: impl FnMut(usize) -> bool,
    mut thresh: impl FnMut(usize, usize) -> f64,
    costs: &mut [f64],
) {
    let PickPlane {
        soa,
        adopted_mask,
        taken_lanes,
        ..
    } = plane;
    let full: u8 = ((1u16 << lanes) - 1) as u8;
    let mut fails = [0usize; SEED_BLOCK];
    for (i, &v) in set.active.iter().enumerate() {
        if skip(i) {
            continue;
        }
        let need = !adopted_mask[v as usize] & full;
        if need == 0 {
            continue; // adopted in every lane ⇒ success everywhere
        }
        let pal = state.palette(v);
        // deg_s = (active neighbors) − (active neighbors adopted in lane
        // s), so the neighbor loop only touches SET adoption bits —
        // iterating each mask's population instead of all 8 lanes keeps
        // the common unadopted-everywhere neighbor at one increment.
        let mut nbr = 0usize;
        let mut adopted_nbrs = [0usize; SEED_BLOCK];
        let mut pal_lost = [0usize; SEED_BLOCK];
        for t in taken_lanes.iter_mut().take(lanes) {
            t.clear();
        }
        for &u in g.neighbors(v) {
            if !set.contains(u) {
                continue;
            }
            nbr += 1;
            let mut amu = adopted_mask[u as usize];
            if amu == 0 {
                continue;
            }
            let row = &soa[u as usize];
            while amu != 0 {
                let s = amu.trailing_zeros() as usize;
                amu &= amu - 1;
                adopted_nbrs[s] += 1;
                let c = row[s];
                if pal.contains(&c) {
                    // Distinct colors only, exactly like the scalar
                    // `taken` dedup: two neighbors adopting the same
                    // color cost v's palette one entry.
                    let taken = &mut taken_lanes[s];
                    if let Err(pos) = taken.binary_search(&c) {
                        taken.insert(pos, c);
                        pal_lost[s] += 1;
                    }
                }
            }
        }
        for (s, f) in fails.iter_mut().enumerate().take(lanes) {
            if need >> s & 1 == 1 {
                let deg = nbr - adopted_nbrs[s];
                let slack = (pal.len() - pal_lost[s]) as i64 - deg as i64;
                if (slack as f64) < thresh(i, deg) {
                    *f += 1;
                }
            }
        }
    }
    for (s, c) in costs.iter_mut().enumerate() {
        *c = fails[s] as f64;
    }
}

/// Dispatch a whole block's SSP costs off the adoption plane — one entry
/// point for every `SspMode`, mirroring the per-seed dispatch in
/// [`evaluate_ssp_count`] (with `Auto` mapped to the uncolored count,
/// matching the warm-up `seed_cost` overrides).
fn lane_ssp_costs(
    g: &Graph,
    state: &ColoringState,
    set: &StageSet,
    ssp: &SspMode,
    plane: &mut PickPlane,
    lanes: usize,
    costs: &mut [f64],
) {
    match ssp {
        SspMode::Auto | SspMode::Colored => lane_uncolored_costs(set, plane, lanes, costs),
        SspMode::SlackRatio(ratio) => {
            let r = *ratio;
            lane_slack_fail_costs(
                g,
                state,
                set,
                plane,
                lanes,
                |_| false,
                |_, deg| r * deg as f64,
                costs,
            );
        }
        SspMode::SlackTarget(targets) => {
            lane_slack_fail_costs(
                g,
                state,
                set,
                plane,
                lanes,
                |i| targets[i] <= 0.0,
                |i, _| targets[i],
                costs,
            );
        }
    }
}

/// Bit `j` of the result ⇔ `mine[j] ∈ theirs`, for sorted slices with
/// `mine.len() ≤ 64` — the merge-scan equivalent of the scalar path's
/// per-candidate binary searches (identical set semantics).
fn sorted_intersect_mask(mine: &[u32], theirs: &[u32]) -> u64 {
    debug_assert!(mine.len() <= 64);
    let mut m = 0u64;
    let (mut a, mut b) = (0usize, 0usize);
    while a < mine.len() && b < theirs.len() {
        match mine[a].cmp(&theirs[b]) {
            std::cmp::Ordering::Equal => {
                m |= 1 << a;
                a += 1;
                b += 1;
            }
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
        }
    }
    m
}

// ---------------------------------------------------------------------
// TryRandomColor (Algorithm 3)
// ---------------------------------------------------------------------

/// Each participating node picks one color uniformly at random from its
/// residual palette and keeps it unless an active neighbor picked the same
/// color.
pub struct TryRandomColor<'a> {
    /// The graph.
    pub g: &'a Graph,
    /// Participating nodes.
    pub set: StageSet,
    /// Strong-success-property variant for this call.
    pub ssp: SspMode,
    /// Distinguishes repeated calls within one stage (fresh randomness).
    pub round_tag: u64,
    /// Edges with both endpoints active, each once (`a < b`) — built
    /// lazily on the first seed evaluation and amortized over the whole
    /// seed space; read-only afterwards, shared across workers.
    active_edges: std::sync::OnceLock<Vec<(NodeId, NodeId)>>,
}

impl<'a> TryRandomColor<'a> {
    /// Construct one invocation.
    pub fn new(g: &'a Graph, set: StageSet, ssp: SspMode, round_tag: u64) -> Self {
        TryRandomColor {
            g,
            set,
            ssp,
            round_tag,
            active_edges: std::sync::OnceLock::new(),
        }
    }

    fn active_edges(&self) -> &[(NodeId, NodeId)] {
        self.active_edges
            .get_or_init(|| collect_active_edges(self.g, &self.set))
    }

    #[inline]
    fn pick(&self, state: &ColoringState, rng: &dyn Randomness, v: NodeId) -> u32 {
        let pal = state.palette(v);
        debug_assert!(!pal.is_empty());
        pal[rng.below(v, S_PICK ^ self.round_tag << 8, 0, pal.len() as u64) as usize]
    }
}

impl NormalProcedure for TryRandomColor<'_> {
    fn name(&self) -> &'static str {
        "TryRandomColor"
    }

    fn active_count(&self) -> usize {
        self.set.active.len()
    }

    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
        let adoptions: Vec<(NodeId, u32)> = self
            .set
            .active
            .par_iter()
            .filter_map(|&v| {
                let c = self.pick(state, rng, v);
                let clash = self
                    .g
                    .neighbors(v)
                    .iter()
                    .any(|&u| self.set.contains(u) && self.pick(state, rng, u) == c);
                (!clash).then_some((v, c))
            })
            .collect();
        Outcome {
            adoptions,
            aux: Vec::new(),
        }
    }

    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        scratch.begin();
        // Pick caching through the batched plane: one `fill_below` stripe
        // over the active nodes (the naïve `simulate` above re-derives
        // `pick(u)` once per incident edge, one scalar mixer call each).
        let mut plane = std::mem::take(&mut scratch.plane);
        plane.draw_below(
            rng,
            S_PICK ^ self.round_tag << 8,
            0,
            &self.set.active,
            |v| state.palette(v).len() as u64,
        );
        for (i, &v) in self.set.active.iter().enumerate() {
            scratch.set_pick(v, state.palette(v)[plane.vals[i] as usize]);
        }
        scratch.plane = plane;
        // Clashing is symmetric: one pass over the pre-filtered active
        // edge list marks both endpoints of every same-pick edge.
        for &(a, b) in self.active_edges() {
            if scratch.pick_unchecked(a) == scratch.pick_unchecked(b) {
                scratch.mark(a);
                scratch.mark(b);
            }
        }
        for &v in &self.set.active {
            if !scratch.is_marked(v) {
                let c = scratch.pick_unchecked(v);
                scratch.record_adoption(v, c);
            }
        }
    }

    /// Node-striped parallel round simulation: given the previous
    /// round's state, each active node's pick and clash bit depend only
    /// on read-only inputs, so the draw/scatter pass and the clash pass
    /// both run as stolen stripes on the executor pool.  The adoption
    /// scan stays sequential in active order, so the recorded outcome is
    /// bit-identical to [`NormalProcedure::simulate_into`] at every
    /// worker count.
    fn simulate_into_par(
        &self,
        state: &ColoringState,
        rng: &dyn Randomness,
        scratch: &mut SimScratch,
        pool: &parcolor_exec::Executor,
        workers: usize,
    ) {
        let n_active = self.set.active.len();
        let w = parcolor_exec::resolve_workers(workers)
            .min(n_active / PAR_STRIPE)
            .max(1);
        if w <= 1 {
            self.simulate_into(state, rng, scratch);
            return;
        }
        scratch.begin();
        let mut plane = std::mem::take(&mut scratch.plane);
        let stream = S_PICK ^ self.round_tag << 8;
        let active = &self.set.active[..];
        {
            let (_, picks) = scratch.plane_and_picks();
            // Pass 1: bounds gathered sequentially (one cheap scan),
            // then the bounded draws land stripe-by-stripe on the pool —
            // the tape's batch contract makes each node's draw
            // independent of stripe geometry — and each worker scatters
            // its stripe's picks (active nodes are unique, so the
            // destinations are disjoint).
            plane.bounds.clear();
            plane
                .bounds
                .extend(active.iter().map(|&v| state.palette(v).len() as u64));
            plane.vals.resize(n_active, 0);
            {
                let bounds = &plane.bounds[..];
                let scatter = parcolor_exec::ScatterMut::new(picks);
                let scatter = &scatter;
                parcolor_exec::par_fill(
                    pool,
                    w,
                    &mut plane.vals,
                    PAR_STRIPE,
                    move |start, stripe| {
                        let nodes = &active[start..start + stripe.len()];
                        rng.fill_below(
                            stream,
                            nodes,
                            0,
                            &bounds[start..start + stripe.len()],
                            stripe,
                        );
                        for (i, &v) in nodes.iter().enumerate() {
                            let c = state.palette(v)[stripe[i] as usize];
                            // SAFETY: active nodes are unique, so
                            // workers write disjoint slots.
                            unsafe { scatter.write(v as usize, c) };
                        }
                    },
                );
            }
            // Pass 2: clash bits, active-aligned.  Clashing is
            // symmetric and reads only picks written in pass 1, so each
            // node evaluates its own bit independently.
            plane.bits.resize(n_active, false);
            let picks: &[u32] = picks;
            parcolor_exec::par_fill(pool, w, &mut plane.bits, PAR_STRIPE, |start, stripe| {
                for (i, bit) in stripe.iter_mut().enumerate() {
                    let v = active[start + i];
                    let c = picks[v as usize];
                    *bit = self
                        .g
                        .neighbors(v)
                        .iter()
                        .any(|&u| self.set.contains(u) && picks[u as usize] == c);
                }
            });
        }
        // Pass 3: adoption is order-sensitive (`record_adoption` appends)
        // and stays sequential over the active order — exactly the order
        // the sequential path records.
        for (i, &v) in self.set.active.iter().enumerate() {
            if !plane.bits[i] {
                let c = scratch.pick_raw(v);
                scratch.record_adoption(v, c);
            }
        }
        scratch.plane = plane;
    }

    fn seed_cost_scratch(&self, state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        match self.ssp {
            SspMode::Auto => uncolored_count_scratch(&self.set, scratch) as f64,
            _ => evaluate_ssp_count(self.g, state, &self.set, &self.ssp, scratch) as f64,
        }
    }

    fn seed_cost_fused(
        &self,
        state: &ColoringState,
        rng: &dyn Randomness,
        scratch: &mut SimScratch,
    ) -> f64 {
        match self.ssp {
            // For Colored (and the Auto warm-up cost) the failure count is
            // exactly the number of clashed nodes: skip recording the
            // adoption outcome entirely and count marks during the scan.
            SspMode::Colored | SspMode::Auto => {
                scratch.begin();
                // Stamp-free fill off the batched plane: every pick read
                // below is of a node written in this pass, so the validity
                // stamps are dead weight here.
                let mut plane = std::mem::take(&mut scratch.plane);
                plane.draw_below(
                    rng,
                    S_PICK ^ self.round_tag << 8,
                    0,
                    &self.set.active,
                    |v| state.palette(v).len() as u64,
                );
                for (i, &v) in self.set.active.iter().enumerate() {
                    scratch.set_pick_raw(v, state.palette(v)[plane.vals[i] as usize]);
                }
                scratch.plane = plane;
                let mut clashed = 0usize;
                for &(a, b) in self.active_edges() {
                    if scratch.pick_raw(a) == scratch.pick_raw(b) {
                        clashed += usize::from(scratch.mark_new(a));
                        clashed += usize::from(scratch.mark_new(b));
                    }
                }
                clashed as f64
            }
            // Slack-based SSPs need neighbors' adopted colors: full path.
            _ => {
                self.simulate_into(state, rng, scratch);
                self.seed_cost_scratch(state, scratch)
            }
        }
    }

    /// Seed-lane block evaluation: the picks of all the block's seeds are
    /// materialized as one structure-of-arrays plane (`soa[v] = [pick
    /// under seed lane 0, …, lane 7]`), then **one** pass over the active
    /// edge list compares whole lanes at a time (AVX2 `cmpeq` on targets
    /// that have it) — amortizing the clash scan's memory traffic across
    /// up to `SEED_BLOCK` seeds, where the scalar fused path re-walks the
    /// edges once per seed.  Unused lanes are padded with the node's own
    /// id, which can never collide across an edge.
    ///
    /// For `Colored`/`Auto` each lane's clashed-node count is the cost
    /// directly; for the slack SSPs the clash masks become the lane
    /// adoption plane and the lane-parallel slack kernel evaluates all
    /// lanes' failure counts in one neighborhood pass per candidate node.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        scratch.begin();
        let mut plane = std::mem::take(&mut scratch.plane);
        // Bounds gathered once for the whole block.
        let n_active = self.set.active.len();
        plane.bounds.clear();
        plane.bounds.extend(
            self.set
                .active
                .iter()
                .map(|&v| state.palette(v).len() as u64),
        );
        plane.soa.resize(state.n(), [0u32; SEED_BLOCK]);
        // All lanes' draws land in one stripe-major buffer
        // (lane s at offset s·n_active) …
        plane.vals.resize(n_active * tapes.len(), 0);
        let stream = S_PICK ^ self.round_tag << 8;
        for (s, tape) in tapes.iter().enumerate() {
            let out = &mut plane.vals[s * n_active..(s + 1) * n_active];
            tape.fill_below(stream, &self.set.active, 0, &plane.bounds, out);
        }
        // … so the pick map resolves each node's palette once and
        // writes its whole seed-lane row (pad lanes get the node's
        // own id, which can never collide across an edge).
        let vals = &plane.vals;
        let soa = &mut plane.soa;
        for (i, &v) in self.set.active.iter().enumerate() {
            let pal = state.palette(v);
            let lanes = &mut soa[v as usize];
            for (s, lane) in lanes.iter_mut().take(tapes.len()).enumerate() {
                *lane = pal[vals[s * n_active + i] as usize];
            }
            for lane in lanes.iter_mut().skip(tapes.len()) {
                *lane = v;
            }
        }
        // One lane-parallel clash scan for the whole block: each
        // edge contributes a lane-equality bitmask OR-ed into both
        // endpoints' accumulators — branchless, so the (frequent)
        // clash case costs the same as the clean case.  Pad lanes
        // never fire (distinct endpoint ids), so every set bit
        // belongs to a real seed lane.
        plane.lane_mask.resize(state.n(), 0);
        for &v in &self.set.active {
            plane.lane_mask[v as usize] = 0;
        }
        let soa = &plane.soa;
        let mask = &mut plane.lane_mask;
        let lane_eq = parcolor_local::simd::kernels().lane_eq_mask8;
        for &(a, b) in self.active_edges() {
            let eq = lane_eq(&soa[a as usize], &soa[b as usize]);
            mask[a as usize] |= eq;
            mask[b as usize] |= eq;
        }
        match self.ssp {
            // For Colored (and the Auto warm-up cost) the failure count
            // is exactly the per-lane number of clashed nodes, read off
            // the masks in one pass over the active stripe.
            SspMode::Colored | SspMode::Auto => {
                let mut clashed = [0usize; SEED_BLOCK];
                for &v in &self.set.active {
                    let m = plane.lane_mask[v as usize];
                    if m != 0 {
                        for (s, c) in clashed.iter_mut().enumerate() {
                            *c += usize::from(m >> s & 1);
                        }
                    }
                }
                for (s, c) in costs.iter_mut().enumerate() {
                    *c = clashed[s] as f64;
                }
            }
            // Slack-based SSPs: every active node holds a pick, so the
            // lane adoption plane is just the complement of the clash
            // mask; the lane-parallel slack kernel does the rest.
            _ => {
                let full: u8 = ((1u16 << tapes.len()) - 1) as u8;
                plane.adopted_mask.resize(state.n(), 0);
                for &v in &self.set.active {
                    plane.adopted_mask[v as usize] = !plane.lane_mask[v as usize] & full;
                }
                lane_ssp_costs(
                    self.g,
                    state,
                    &self.set,
                    &self.ssp,
                    &mut plane,
                    tapes.len(),
                    costs,
                );
            }
        }
        scratch.plane = plane;
    }

    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
        evaluate_ssp(self.g, state, &self.set, &self.ssp, out)
    }

    fn seed_cost(&self, state: &ColoringState, out: &Outcome) -> f64 {
        match self.ssp {
            // Warm-up: maximize colored nodes.
            SspMode::Auto => uncolored_cost(&self.set, state, out),
            _ => self.ssp_failures(state, out).len() as f64,
        }
    }
}

// ---------------------------------------------------------------------
// MultiTrial (Algorithm 4)
// ---------------------------------------------------------------------

/// Cap on the number of colors one MultiTrial draws per node.  The paper's
/// `x` can reach `ρ = s_min^{1/(1+κ)}`; at implementation scale, 64
/// simultaneous candidates already drive the per-trial failure probability
/// below 2⁻⁶⁴-ish for the slack ratios the gates enforce.
pub const MULTI_TRIAL_CAP: usize = 64;

/// Each participating node draws `x` distinct palette colors; it adopts
/// one that no active neighbor drew.
pub struct MultiTrial<'a> {
    /// The graph.
    pub g: &'a Graph,
    /// Participating nodes.
    pub set: StageSet,
    /// Candidate colors drawn per node.
    pub x: usize,
    /// Strong-success-property variant for this call.
    pub ssp: SspMode,
    /// Distinguishes repeated calls within one stage.
    pub round_tag: u64,
    /// Position of each node in `set.active` (for proposal lookup).
    pos: Vec<u32>,
}

impl<'a> MultiTrial<'a> {
    /// Construct one invocation (`x` clamped to [`MULTI_TRIAL_CAP`]).
    pub fn new(g: &'a Graph, set: StageSet, x: usize, ssp: SspMode, round_tag: u64) -> Self {
        let mut pos = vec![u32::MAX; g.n()];
        for (i, &v) in set.active.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        MultiTrial {
            g,
            set,
            x: x.clamp(1, MULTI_TRIAL_CAP),
            ssp,
            round_tag,
            pos,
        }
    }

    /// Sorted set of `min(x, p(v))` distinct colors from `v`'s palette.
    fn draw(&self, state: &ColoringState, rng: &dyn Randomness, v: NodeId) -> Vec<u32> {
        let mut buf = Vec::new();
        let mut tmp = Vec::new();
        let mut words = Vec::new();
        self.draw_into(state, rng, v, &mut buf, &mut tmp, &mut words);
        buf
    }

    /// Append the sorted candidate set of `v` to `buf` (allocation-free
    /// once the buffers have warmed up).  The node's tape words are
    /// fetched as one `fill_words_seq` stripe into `words`; tape
    /// addressing is identical to the historical scalar `draw`, so
    /// outcomes are unchanged.
    fn draw_into(
        &self,
        state: &ColoringState,
        rng: &dyn Randomness,
        v: NodeId,
        buf: &mut Vec<u32>,
        tmp: &mut Vec<u32>,
        words: &mut Vec<u64>,
    ) {
        let pal = state.palette(v);
        let want = self.x.min(pal.len());
        let stream = S_PICK ^ (self.round_tag << 8) ^ 0x4d54;
        let start = buf.len();
        words.resize(want, 0);
        if want * 2 >= pal.len() {
            // Dense draw: partial Fisher-Yates over a palette copy, words
            // at idx 0..want batched up front.
            rng.fill_words_seq(v, stream, 0, words);
            tmp.clear();
            tmp.extend_from_slice(pal);
            for (i, &w) in words.iter().enumerate() {
                let bound = (tmp.len() - i) as u64;
                let j = i + ((w as u128 * bound as u128) >> 64) as usize;
                tmp.swap(i, j);
            }
            buf.extend_from_slice(&tmp[..want]);
        } else {
            // Sparse draw: rejection sampling of distinct indices.  The
            // loop consumes at least `want` words (idx 1000, 1001, …), so
            // that minimum is prefetched as a stripe; collisions beyond it
            // fall back to scalar reads of the same addresses.
            rng.fill_words_seq(v, stream, 1000, words);
            let mut idx = 0u32;
            while buf.len() - start < want {
                let w = match words.get(idx as usize) {
                    Some(&w) => w,
                    None => rng.word(v, stream, 1000 + idx),
                };
                let j = ((w as u128 * pal.len() as u128) >> 64) as usize;
                idx += 1;
                let c = pal[j];
                if !buf[start..].contains(&c) {
                    buf.push(c);
                }
            }
        }
        buf[start..].sort_unstable();
    }
}

impl NormalProcedure for MultiTrial<'_> {
    fn name(&self) -> &'static str {
        "MultiTrial"
    }

    fn active_count(&self) -> usize {
        self.set.active.len()
    }

    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
        // Phase 1: every active node draws its candidate set.
        let draws: Vec<Vec<u32>> = self
            .set
            .active
            .par_iter()
            .map(|&v| self.draw(state, rng, v))
            .collect();
        // Phase 2: adopt the first candidate no active neighbor drew.
        let adoptions: Vec<(NodeId, u32)> = self
            .set
            .active
            .par_iter()
            .enumerate()
            .filter_map(|(i, &v)| {
                let mine = &draws[i];
                'cand: for &c in mine {
                    for &u in self.g.neighbors(v) {
                        if !self.set.contains(u) {
                            continue;
                        }
                        let theirs = &draws[self.pos[u as usize] as usize];
                        if theirs.binary_search(&c).is_ok() {
                            continue 'cand;
                        }
                    }
                    return Some((v, c));
                }
                None
            })
            .collect();
        Outcome {
            adoptions,
            aux: Vec::new(),
        }
    }

    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        scratch.begin();
        // Phase 1: every active node draws into the flat candidate arena.
        let mut draw_colors = std::mem::take(&mut scratch.draw_colors);
        let mut draw_off = std::mem::take(&mut scratch.draw_off);
        let mut tmp = std::mem::take(&mut scratch.perm);
        let mut words = std::mem::take(&mut scratch.plane.vals);
        draw_off.push(0);
        for &v in &self.set.active {
            self.draw_into(state, rng, v, &mut draw_colors, &mut tmp, &mut words);
            draw_off.push(draw_colors.len());
        }
        scratch.plane.vals = words;
        // Phase 2: adopt the first candidate no active neighbor drew.
        for (i, &v) in self.set.active.iter().enumerate() {
            let mine = &draw_colors[draw_off[i]..draw_off[i + 1]];
            'cand: for &c in mine {
                for &u in self.g.neighbors(v) {
                    if !self.set.contains(u) {
                        continue;
                    }
                    let p = self.pos[u as usize] as usize;
                    let theirs = &draw_colors[draw_off[p]..draw_off[p + 1]];
                    if theirs.binary_search(&c).is_ok() {
                        continue 'cand;
                    }
                }
                scratch.record_adoption(v, c);
                break;
            }
        }
        scratch.draw_colors = draw_colors;
        scratch.draw_off = draw_off;
        scratch.perm = tmp;
    }

    fn seed_cost_scratch(&self, state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        match self.ssp {
            SspMode::Auto => uncolored_count_scratch(&self.set, scratch) as f64,
            _ => evaluate_ssp_count(self.g, state, &self.set, &self.ssp, scratch) as f64,
        }
    }

    /// Seed-lane block evaluation: all lanes' candidate sets are drawn
    /// into one lane-major flat arena (identical tape addresses to the
    /// scalar draw), then the adoption scan walks each node's
    /// neighborhood **once** for the whole block — per neighbor, a
    /// sorted merge-intersection eliminates the node's surviving
    /// candidates in every lane at once (64-bit alive masks, one bit per
    /// candidate), where the per-seed fallback re-walks the neighbor
    /// list and re-runs the binary searches once per seed.  The first
    /// surviving candidate per lane is the adopted color, feeding the
    /// lane-parallel SSP kernel.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        let lanes = tapes.len();
        scratch.begin();
        let n_active = self.set.active.len();
        let mut plane = std::mem::take(&mut scratch.plane);
        let mut draw_colors = std::mem::take(&mut scratch.draw_colors);
        let mut draw_off = std::mem::take(&mut scratch.draw_off);
        let mut tmp = std::mem::take(&mut scratch.perm);
        // Phase 1: lane-major candidate arena; range of (lane s, active
        // index i) is draw_off[s·n_active + i] .. draw_off[s·n_active + i + 1].
        draw_off.push(0);
        for tape in tapes {
            for &v in &self.set.active {
                self.draw_into(state, *tape, v, &mut draw_colors, &mut tmp, &mut plane.vals);
                draw_off.push(draw_colors.len());
            }
        }
        // Phase 2: block adoption scan.
        plane.soa.resize(state.n(), [0u32; SEED_BLOCK]);
        plane.adopted_mask.resize(state.n(), 0);
        let off = |s: usize, i: usize| (draw_off[s * n_active + i], draw_off[s * n_active + i + 1]);
        for (i, &v) in self.set.active.iter().enumerate() {
            let mut alive = [0u64; SEED_BLOCK];
            for (s, a) in alive.iter_mut().enumerate().take(lanes) {
                let (lo, hi) = off(s, i);
                let want = hi - lo;
                *a = if want >= 64 {
                    u64::MAX
                } else {
                    (1u64 << want) - 1
                };
            }
            for &u in self.g.neighbors(v) {
                if !self.set.contains(u) {
                    continue;
                }
                let p = self.pos[u as usize] as usize;
                let mut any = 0u64;
                for (s, a) in alive.iter_mut().enumerate().take(lanes) {
                    if *a == 0 {
                        continue;
                    }
                    let (lo, hi) = off(s, i);
                    let (ulo, uhi) = off(s, p);
                    *a &= !sorted_intersect_mask(&draw_colors[lo..hi], &draw_colors[ulo..uhi]);
                    any |= *a;
                }
                if any == 0 {
                    break; // eliminated everywhere: no lane can adopt
                }
            }
            let mut am = 0u8;
            let row = &mut plane.soa[v as usize];
            for (s, &a) in alive.iter().enumerate().take(lanes) {
                if a != 0 {
                    let (lo, _) = off(s, i);
                    // First surviving candidate in sorted order — exactly
                    // the scalar path's first adoptable color.
                    row[s] = draw_colors[lo + a.trailing_zeros() as usize];
                    am |= 1 << s;
                }
            }
            plane.adopted_mask[v as usize] = am;
        }
        lane_ssp_costs(
            self.g, state, &self.set, &self.ssp, &mut plane, lanes, costs,
        );
        scratch.plane = plane;
        scratch.draw_colors = draw_colors;
        scratch.draw_off = draw_off;
        scratch.perm = tmp;
    }

    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
        evaluate_ssp(self.g, state, &self.set, &self.ssp, out)
    }

    fn seed_cost(&self, state: &ColoringState, out: &Outcome) -> f64 {
        match self.ssp {
            SspMode::Auto => uncolored_cost(&self.set, state, out),
            _ => self.ssp_failures(state, out).len() as f64,
        }
    }
}

// ---------------------------------------------------------------------
// GenerateSlack (Algorithm 6)
// ---------------------------------------------------------------------

/// Every node joins a set `S` independently with probability `p`; nodes in
/// `S` run one TryRandomColor among themselves.  Same-colored pairs of
/// sampled neighbors "collide away" palette colors of bystanders, creating
/// permanent slack (HKNT's slack-generation lemmas).
pub struct GenerateSlack<'a> {
    /// The graph.
    pub g: &'a Graph,
    /// Participating nodes.
    pub set: StageSet,
    /// Sampling probability (paper: 1/10).
    pub prob: f64,
    /// Per-active-node slack targets (the SSP); entries `≤ 0` auto-succeed.
    pub targets: Vec<f64>,
    /// Distinguishes repeated calls within one stage.
    pub round_tag: u64,
    /// Active-active edges, built lazily at first seed evaluation.
    active_edges: std::sync::OnceLock<Vec<(NodeId, NodeId)>>,
}

impl<'a> GenerateSlack<'a> {
    /// Construct one invocation (`targets` aligned with `set.active`).
    pub fn new(g: &'a Graph, set: StageSet, prob: f64, targets: Vec<f64>, round_tag: u64) -> Self {
        assert_eq!(set.active.len(), targets.len());
        GenerateSlack {
            g,
            set,
            prob,
            targets,
            round_tag,
            active_edges: std::sync::OnceLock::new(),
        }
    }

    fn active_edges(&self) -> &[(NodeId, NodeId)] {
        self.active_edges
            .get_or_init(|| collect_active_edges(self.g, &self.set))
    }

    #[inline]
    fn sampled(&self, rng: &dyn Randomness, v: NodeId) -> bool {
        rng.bernoulli(v, S_SAMPLE ^ (self.round_tag << 8), 0, self.prob)
    }

    #[inline]
    fn pick(&self, state: &ColoringState, rng: &dyn Randomness, v: NodeId) -> u32 {
        let pal = state.palette(v);
        pal[rng.below(v, S_PICK ^ (self.round_tag << 8), 1, pal.len() as u64) as usize]
    }
}

impl NormalProcedure for GenerateSlack<'_> {
    fn name(&self) -> &'static str {
        "GenerateSlack"
    }

    fn active_count(&self) -> usize {
        self.set.active.len()
    }

    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
        let adoptions: Vec<(NodeId, u32)> = self
            .set
            .active
            .par_iter()
            .filter_map(|&v| {
                if !self.sampled(rng, v) {
                    return None;
                }
                let c = self.pick(state, rng, v);
                let clash = self.g.neighbors(v).iter().any(|&u| {
                    self.set.contains(u) && self.sampled(rng, u) && self.pick(state, rng, u) == c
                });
                (!clash).then_some((v, c))
            })
            .collect();
        Outcome {
            adoptions,
            aux: Vec::new(),
        }
    }

    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        scratch.begin();
        // Cache sampling + pick once per active node ("sampled" ⇔ a pick
        // is cached); the naïve path re-derives both per incident edge.
        // Two plane stripes: Bernoulli bits over all active nodes, then
        // bounded picks over the gathered sampled subset only (the scalar
        // path also draws picks only for sampled nodes).
        let mut plane = std::mem::take(&mut scratch.plane);
        plane.draw_bernoulli(
            rng,
            S_SAMPLE ^ (self.round_tag << 8),
            0,
            &self.set.active,
            self.prob,
        );
        let mut sampled = std::mem::take(&mut plane.nodes);
        sampled.clear();
        sampled.extend(
            self.set
                .active
                .iter()
                .zip(plane.bits.iter())
                .filter(|&(_, &hit)| hit)
                .map(|(&v, _)| v),
        );
        plane.draw_below(rng, S_PICK ^ (self.round_tag << 8), 1, &sampled, |v| {
            state.palette(v).len() as u64
        });
        for (i, &v) in sampled.iter().enumerate() {
            scratch.set_pick(v, state.palette(v)[plane.vals[i] as usize]);
        }
        plane.nodes = sampled;
        scratch.plane = plane;
        // Same-pick collisions between sampled nodes are symmetric: one
        // pass over the pre-filtered active edge list marks both ends.
        for &(a, b) in self.active_edges() {
            if let (Some(ca), Some(cb)) = (scratch.pick(a), scratch.pick(b)) {
                if ca == cb {
                    scratch.mark(a);
                    scratch.mark(b);
                }
            }
        }
        for &v in &self.set.active {
            if let Some(c) = scratch.pick(v) {
                if !scratch.is_marked(v) {
                    scratch.record_adoption(v, c);
                }
            }
        }
    }

    fn seed_cost_scratch(&self, state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        slack_target_count(self.g, state, &self.set, &self.targets, scratch) as f64
    }

    /// Slack-lane block evaluation: all lanes' sample bits and picks are
    /// materialized once (Bernoulli stripes over the active set, bounded
    /// draws over each lane's gathered sampled subset — the same tape
    /// addresses the scalar path reads), then **one** lane-masked pass
    /// over the active edge list finds same-pick collisions between
    /// sampled endpoints for the whole block, and the lane-parallel slack
    /// kernel evaluates every lane's slack-target failures in one
    /// neighborhood pass per candidate node — where the per-seed fallback
    /// re-walks edges and neighborhoods once per seed.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        let lanes = tapes.len();
        scratch.begin();
        let mut plane = std::mem::take(&mut scratch.plane);
        let n = state.n();
        plane.soa.resize(n, [0u32; SEED_BLOCK]);
        plane.valid_mask.resize(n, 0);
        plane.lane_mask.resize(n, 0);
        plane.adopted_mask.resize(n, 0);
        for &v in &self.set.active {
            plane.valid_mask[v as usize] = 0;
            plane.lane_mask[v as usize] = 0;
        }
        // Per lane: Bernoulli stripe over the active set, then bounded
        // picks over the gathered sampled subset only (the scalar path
        // also draws picks only for sampled nodes).
        let stream_s = S_SAMPLE ^ (self.round_tag << 8);
        let stream_p = S_PICK ^ (self.round_tag << 8);
        let mut sampled = std::mem::take(&mut plane.nodes);
        for (s, tape) in tapes.iter().enumerate() {
            plane.bits.resize(self.set.active.len(), false);
            tape.fill_bernoulli(stream_s, &self.set.active, 0, self.prob, &mut plane.bits);
            sampled.clear();
            sampled.extend(
                self.set
                    .active
                    .iter()
                    .zip(plane.bits.iter())
                    .filter(|&(_, &hit)| hit)
                    .map(|(&v, _)| v),
            );
            plane.bounds.clear();
            plane
                .bounds
                .extend(sampled.iter().map(|&v| state.palette(v).len() as u64));
            plane.vals.resize(sampled.len(), 0);
            tape.fill_below(stream_p, &sampled, 1, &plane.bounds, &mut plane.vals);
            for (i, &v) in sampled.iter().enumerate() {
                plane.soa[v as usize][s] = state.palette(v)[plane.vals[i] as usize];
                plane.valid_mask[v as usize] |= 1 << s;
            }
        }
        plane.nodes = sampled;
        // Lane-masked collision scan: an edge clashes in lane `s` iff
        // both endpoints are sampled there and drew the same color.
        // ANDing with both validity masks keeps stale SoA lanes (nodes
        // unsampled this block) from producing phantom clashes.
        {
            let soa = &plane.soa;
            let valid = &plane.valid_mask;
            let mask = &mut plane.lane_mask;
            let lane_eq = parcolor_local::simd::kernels().lane_eq_mask8;
            for &(a, b) in self.active_edges() {
                let both = valid[a as usize] & valid[b as usize];
                if both == 0 {
                    continue;
                }
                let eq = lane_eq(&soa[a as usize], &soa[b as usize]) & both;
                mask[a as usize] |= eq;
                mask[b as usize] |= eq;
            }
        }
        for &v in &self.set.active {
            plane.adopted_mask[v as usize] =
                plane.valid_mask[v as usize] & !plane.lane_mask[v as usize];
        }
        lane_slack_fail_costs(
            self.g,
            state,
            &self.set,
            &mut plane,
            lanes,
            |i| self.targets[i] <= 0.0,
            |i, _| self.targets[i],
            costs,
        );
        scratch.plane = plane;
    }

    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
        evaluate_ssp(
            self.g,
            state,
            &self.set,
            &SspMode::SlackTarget(self.targets.clone()),
            out,
        )
    }
}

// ---------------------------------------------------------------------
// SynchColorTrial (Algorithm 8)
// ---------------------------------------------------------------------

/// One almost-clique's view for the synchronized trial.
#[derive(Clone, Debug)]
pub struct CliqueTrial {
    /// The clique leader `x_C` dealing colors.
    pub leader: NodeId,
    /// Inliers receiving proposals (sorted by id; excludes put-aside set).
    pub inliers: Vec<NodeId>,
}

/// The leader of each almost-clique permutes its palette and proposes a
/// distinct color to each inlier; an inlier keeps the proposal if it is in
/// its own palette and conflicts with no neighbor's proposal.
pub struct SynchColorTrial<'a> {
    /// The graph.
    pub g: &'a Graph,
    /// All proposal-receiving inliers across cliques.
    pub set: StageSet,
    /// Per-clique leader/inlier views.
    pub cliques: Vec<CliqueTrial>,
    /// Per-clique failure tolerance `t` (SSP: ≤ t inliers of the clique
    /// fail; beyond that the whole clique's remaining inliers defer).
    pub tolerance: usize,
    /// Distinguishes repeated calls within one stage.
    pub round_tag: u64,
    /// Union of all cliques' inliers (the only possible proposal holders)
    /// and the edges among them — the lane-masked conflict scan's
    /// pre-filtered edge list, built lazily at first seed evaluation.
    prop_edges: std::sync::OnceLock<(StageSet, Vec<(NodeId, NodeId)>)>,
}

impl<'a> SynchColorTrial<'a> {
    /// Construct one invocation.
    pub fn new(
        g: &'a Graph,
        set: StageSet,
        cliques: Vec<CliqueTrial>,
        tolerance: usize,
        round_tag: u64,
    ) -> Self {
        SynchColorTrial {
            g,
            set,
            cliques,
            tolerance,
            round_tag,
            prop_edges: std::sync::OnceLock::new(),
        }
    }

    fn prop_edges(&self) -> &(StageSet, Vec<(NodeId, NodeId)>) {
        self.prop_edges.get_or_init(|| {
            let mut holders: Vec<NodeId> = self
                .cliques
                .iter()
                .flat_map(|ct| ct.inliers.iter().copied())
                .collect();
            holders.sort_unstable();
            holders.dedup();
            let holder_set = StageSet::new(self.g.n(), holders);
            let edges = collect_active_edges(self.g, &holder_set);
            (holder_set, edges)
        })
    }
}

impl NormalProcedure for SynchColorTrial<'_> {
    fn name(&self) -> &'static str {
        "SynchColorTrial"
    }

    fn active_count(&self) -> usize {
        self.set.active.len()
    }

    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
        // Phase 1: leaders deal colors.  proposal[v] for each inlier v.
        let mut proposal = vec![crate::instance::NO_COLOR; state.n()];
        let deals: Vec<Vec<(NodeId, u32)>> = self
            .cliques
            .par_iter()
            .map(|ct| {
                let pal = state.palette(ct.leader);
                if pal.is_empty() {
                    return Vec::new();
                }
                // Leader permutes its palette with its own randomness:
                // the Fisher-Yates words (idx 1..|pal|) arrive as one
                // dispatched `fill_words_seq` stripe fetch — only the
                // data-dependent swaps stay sequential.  `below(v, s, i,
                // i+1)` is the Lemire reduction of `word(v, s, i)`, so
                // this is bit-identical to per-draw scalar calls.
                let mut perm: Vec<u32> = pal.to_vec();
                let stream = S_PERM ^ (self.round_tag << 8);
                let mut words = vec![0u64; perm.len().saturating_sub(1)];
                rng.fill_words_seq(ct.leader, stream, 1, &mut words);
                for i in (1..perm.len()).rev() {
                    let j = ((words[i - 1] as u128 * (i as u128 + 1)) >> 64) as usize;
                    perm.swap(i, j);
                }
                ct.inliers
                    .iter()
                    .take(perm.len())
                    .enumerate()
                    .map(|(k, &v)| (v, perm[k]))
                    .collect()
            })
            .collect();
        for deal in &deals {
            for &(v, c) in deal {
                proposal[v as usize] = c;
            }
        }
        // Phase 2: symmetric conflict resolution + palette membership.
        let adoptions: Vec<(NodeId, u32)> = self
            .set
            .active
            .par_iter()
            .filter_map(|&v| {
                let c = proposal[v as usize];
                if c == crate::instance::NO_COLOR || !state.palette(v).contains(&c) {
                    return None;
                }
                let clash = self
                    .g
                    .neighbors(v)
                    .iter()
                    .any(|&u| proposal[u as usize] == c);
                (!clash).then_some((v, c))
            })
            .collect();
        Outcome {
            adoptions,
            aux: Vec::new(),
        }
    }

    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        scratch.begin();
        // Phase 1: leaders deal colors; proposals live in the pick cache.
        let mut perm = std::mem::take(&mut scratch.perm);
        let mut plane = std::mem::take(&mut scratch.plane);
        for ct in &self.cliques {
            let pal = state.palette(ct.leader);
            if pal.is_empty() {
                continue;
            }
            // Leader permutes its palette with its own randomness: the
            // Fisher-Yates words (idx 1..|pal|) come off the plane as one
            // idx-stripe, the data-dependent swaps stay sequential.
            perm.clear();
            perm.extend_from_slice(pal);
            let stream = S_PERM ^ (self.round_tag << 8);
            plane.draw_words_seq(rng, ct.leader, stream, 1, perm.len().saturating_sub(1));
            for i in (1..perm.len()).rev() {
                let j = ((plane.vals[i - 1] as u128 * (i as u128 + 1)) >> 64) as usize;
                perm.swap(i, j);
            }
            for (k, &v) in ct.inliers.iter().take(perm.len()).enumerate() {
                scratch.set_pick(v, perm[k]);
            }
        }
        scratch.perm = perm;
        scratch.plane = plane;
        // Phase 2: symmetric conflict resolution + palette membership.
        for &v in &self.set.active {
            let Some(c) = scratch.pick(v) else { continue };
            if !state.palette(v).contains(&c) {
                continue;
            }
            let clash = self
                .g
                .neighbors(v)
                .iter()
                .any(|&u| scratch.pick(u) == Some(c));
            if !clash {
                scratch.record_adoption(v, c);
            }
        }
    }

    fn seed_cost_scratch(&self, _state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        let mut total = 0usize;
        for ct in &self.cliques {
            let failed = ct
                .inliers
                .iter()
                .filter(|&&v| {
                    self.set.contains(v) && scratch.adopted_color(v) == crate::instance::NO_COLOR
                })
                .count();
            if failed > self.tolerance {
                total += failed;
            }
        }
        total as f64
    }

    /// Seed-lane block evaluation: every lane's leader deals (the
    /// data-dependent Fisher-Yates stays per-lane, fed by one idx-stripe
    /// off that lane's tape) land in the proposal SoA plane, then **one**
    /// lane-masked pass over the proposal-holder edge list resolves
    /// conflicts for the whole block, and one pass over the cliques
    /// counts every lane's tolerance-gated failures — where the per-seed
    /// fallback re-walks inlier neighborhoods once per seed.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        let lanes = tapes.len();
        scratch.begin();
        let (holders, prop_edges) = self.prop_edges();
        let mut plane = std::mem::take(&mut scratch.plane);
        let mut perm = std::mem::take(&mut scratch.perm);
        let n = state.n();
        plane.soa.resize(n, [0u32; SEED_BLOCK]);
        plane.valid_mask.resize(n, 0);
        plane.lane_mask.resize(n, 0);
        plane.adopted_mask.resize(n, 0);
        for &v in holders.active.iter().chain(self.set.active.iter()) {
            plane.valid_mask[v as usize] = 0;
            plane.lane_mask[v as usize] = 0;
        }
        // Phase 1: leaders deal colors, one Fisher-Yates per (clique,
        // lane); cliques outer so shared inliers keep the scalar path's
        // last-writer proposal in every lane.
        let stream = S_PERM ^ (self.round_tag << 8);
        for ct in &self.cliques {
            let pal = state.palette(ct.leader);
            if pal.is_empty() {
                continue;
            }
            for (s, tape) in tapes.iter().enumerate() {
                perm.clear();
                perm.extend_from_slice(pal);
                plane.vals.resize(perm.len().saturating_sub(1), 0);
                tape.fill_words_seq(ct.leader, stream, 1, &mut plane.vals);
                for i in (1..perm.len()).rev() {
                    let j = ((plane.vals[i - 1] as u128 * (i as u128 + 1)) >> 64) as usize;
                    perm.swap(i, j);
                }
                for (k, &v) in ct.inliers.iter().take(perm.len()).enumerate() {
                    plane.soa[v as usize][s] = perm[k];
                    plane.valid_mask[v as usize] |= 1 << s;
                }
            }
        }
        // Phase 2: lane-masked conflict scan over proposal holders; a
        // clash in lane `s` needs both endpoints to hold (raw) proposals
        // there — palette membership gates adoption, not clashing,
        // exactly as in the scalar path.
        {
            let soa = &plane.soa;
            let valid = &plane.valid_mask;
            let mask = &mut plane.lane_mask;
            let lane_eq = parcolor_local::simd::kernels().lane_eq_mask8;
            for &(a, b) in prop_edges {
                let both = valid[a as usize] & valid[b as usize];
                if both == 0 {
                    continue;
                }
                let eq = lane_eq(&soa[a as usize], &soa[b as usize]) & both;
                mask[a as usize] |= eq;
                mask[b as usize] |= eq;
            }
        }
        // Adoption: proposal held, in own palette, clash-free.
        for &v in &self.set.active {
            let mut am = plane.valid_mask[v as usize] & !plane.lane_mask[v as usize];
            if am != 0 {
                let pal = state.palette(v);
                let row = &plane.soa[v as usize];
                let mut keep = 0u8;
                for (s, c) in row.iter().enumerate().take(lanes) {
                    if am >> s & 1 == 1 && pal.contains(c) {
                        keep |= 1 << s;
                    }
                }
                am = keep;
            }
            plane.adopted_mask[v as usize] = am;
        }
        // Tolerance-gated per-clique failure counts, all lanes at once.
        let mut total = [0usize; SEED_BLOCK];
        for ct in &self.cliques {
            let mut failed = [0usize; SEED_BLOCK];
            for &v in &ct.inliers {
                if !self.set.contains(v) {
                    continue;
                }
                let am = plane.adopted_mask[v as usize];
                for (s, f) in failed.iter_mut().enumerate().take(lanes) {
                    *f += usize::from(am >> s & 1 == 0);
                }
            }
            for (s, t) in total.iter_mut().enumerate().take(lanes) {
                if failed[s] > self.tolerance {
                    *t += failed[s];
                }
            }
        }
        for (s, c) in costs.iter_mut().enumerate() {
            *c = total[s] as f64;
        }
        scratch.plane = plane;
        scratch.perm = perm;
    }

    fn ssp_failures(&self, state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
        let adopted = adoption_map(state.n(), out);
        let mut failures = Vec::new();
        for ct in &self.cliques {
            let failed: Vec<NodeId> = ct
                .inliers
                .iter()
                .copied()
                .filter(|&v| {
                    self.set.contains(v) && adopted[v as usize] == crate::instance::NO_COLOR
                })
                .collect();
            // SSP (paper): the clique has at most O(t) failed nodes.  If
            // exceeded, the clique's uncolored inliers defer.
            if failed.len() > self.tolerance {
                failures.extend(failed);
            }
        }
        failures
    }
}

// ---------------------------------------------------------------------
// PutAside (Algorithm 9)
// ---------------------------------------------------------------------

/// One low-slackability clique's put-aside computation.
#[derive(Clone, Debug)]
pub struct CliquePutAside {
    /// Which clique this view belongs to.
    pub clique_id: u32,
    /// Its live inliers.
    pub inliers: Vec<NodeId>,
    /// Sampling probability `p_s = ℓ²/(48 Δ_C)` (clamped; see pipeline).
    pub prob: f64,
    /// SSP target: `|P_C|` must reach this (scaled-down `Ω(ℓ²)`).
    pub target: usize,
}

/// Sample each inlier independently; keep those with no sampled neighbor.
/// The kept set `P` is independent (globally: a kept node has *no* sampled
/// neighbor at all) and is put aside to be colored greedily at the very
/// end, meanwhile donating slack to the rest of its clique.
pub struct PutAside<'a> {
    /// The graph.
    pub g: &'a Graph,
    /// All participating inliers across low-slack cliques.
    pub set: StageSet,
    /// Per-clique sampling parameters.
    pub cliques: Vec<CliquePutAside>,
    /// Distinguishes repeated calls within one stage.
    pub round_tag: u64,
}

impl PutAside<'_> {
    #[inline]
    fn sampled(&self, rng: &dyn Randomness, v: NodeId, prob: f64) -> bool {
        rng.bernoulli(v, S_SAMPLE ^ (self.round_tag << 8) ^ 0x5041, 0, prob)
    }

    /// The sampling probability applicable to node `v` (its clique's).
    fn prob_of(&self, probs: &[f64], v: NodeId) -> f64 {
        probs[v as usize]
    }
}

impl NormalProcedure for PutAside<'_> {
    fn name(&self) -> &'static str {
        "PutAside"
    }

    fn local_rounds(&self) -> u64 {
        1
    }

    fn active_count(&self) -> usize {
        self.set.active.len()
    }

    fn simulate(&self, state: &ColoringState, rng: &dyn Randomness) -> Outcome {
        // Per-node sampling probability lookup.
        let mut probs = vec![0.0f64; state.n()];
        for cq in &self.cliques {
            for &v in &cq.inliers {
                probs[v as usize] = cq.prob;
            }
        }
        // P = sampled nodes with no sampled neighbor (anywhere).
        let aux: Vec<NodeId> = self
            .set
            .active
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = self.prob_of(&probs, v);
                pv > 0.0 && self.sampled(rng, v, pv) && {
                    !self.g.neighbors(v).iter().any(|&u| {
                        let pu = self.prob_of(&probs, u);
                        pu > 0.0 && self.set.contains(u) && self.sampled(rng, u, pu)
                    })
                }
            })
            .collect();
        Outcome {
            adoptions: Vec::new(),
            aux,
        }
    }

    fn simulate_into(&self, state: &ColoringState, rng: &dyn Randomness, scratch: &mut SimScratch) {
        let _ = state;
        scratch.begin();
        // Sample bits cached once per inlier (≙ once per edge before),
        // batched per clique — each clique's inliers share one sampling
        // probability, so they form one Bernoulli stripe.  Later cliques
        // overwrite shared inliers, matching the scalar path's last-writer
        // probability table; nodes in no clique stay unset (⇔ bit false).
        let mut plane = std::mem::take(&mut scratch.plane);
        let stream = S_SAMPLE ^ (self.round_tag << 8) ^ 0x5041;
        for cq in &self.cliques {
            plane.draw_bernoulli(rng, stream, 0, &cq.inliers, cq.prob);
            for (i, &v) in cq.inliers.iter().enumerate() {
                scratch.set_bit(v, cq.prob > 0.0 && plane.bits[i]);
            }
        }
        scratch.plane = plane;
        // P = sampled nodes with no sampled neighbor (anywhere).
        for &v in &self.set.active {
            if !scratch.bit(v) {
                continue;
            }
            let blocked = self
                .g
                .neighbors(v)
                .iter()
                .any(|&u| self.set.contains(u) && scratch.bit(u));
            if !blocked {
                scratch.aux.push(v);
            }
        }
    }

    fn seed_cost_scratch(&self, _state: &ColoringState, scratch: &mut SimScratch) -> f64 {
        // Mark P, then count per-clique target misses — allocation-free
        // equivalent of `ssp_failures(..).len()`.
        for i in 0..scratch.aux.len() {
            let v = scratch.aux[i];
            scratch.mark(v);
        }
        let mut total = 0usize;
        for cq in &self.cliques {
            let got = cq.inliers.iter().filter(|&&v| scratch.is_marked(v)).count();
            if got < cq.target {
                total += cq
                    .inliers
                    .iter()
                    .filter(|&&v| self.set.contains(v) && !scratch.is_marked(v))
                    .count();
            }
        }
        total as f64
    }

    /// Seed-lane block evaluation: every lane's sample bits are
    /// materialized as per-node lane bitmasks (one Bernoulli stripe per
    /// clique per lane, later cliques overwriting shared inliers exactly
    /// like the scalar last-writer probability table), then **one**
    /// neighborhood pass computes every lane's kept set `P` (sampled, no
    /// sampled active neighbor) and one pass over the cliques counts all
    /// lanes' target misses — where the per-seed fallback re-walks the
    /// inlier neighborhoods once per seed.
    fn seed_cost_block(
        &self,
        state: &ColoringState,
        tapes: &[&dyn Randomness],
        scratch: &mut SimScratch,
        costs: &mut [f64],
    ) {
        debug_assert_eq!(tapes.len(), costs.len());
        let lanes = tapes.len();
        scratch.begin();
        let mut plane = std::mem::take(&mut scratch.plane);
        let n = state.n();
        plane.valid_mask.resize(n, 0);
        plane.adopted_mask.resize(n, 0);
        for &v in &self.set.active {
            plane.valid_mask[v as usize] = 0;
            plane.adopted_mask[v as usize] = 0;
        }
        for cq in &self.cliques {
            for &v in &cq.inliers {
                plane.valid_mask[v as usize] = 0;
                plane.adopted_mask[v as usize] = 0;
            }
        }
        let stream = S_SAMPLE ^ (self.round_tag << 8) ^ 0x5041;
        for cq in &self.cliques {
            for (s, tape) in tapes.iter().enumerate() {
                plane.bits.resize(cq.inliers.len(), false);
                tape.fill_bernoulli(stream, &cq.inliers, 0, cq.prob, &mut plane.bits);
                for (i, &v) in cq.inliers.iter().enumerate() {
                    // Last-writer overwrite per lane, matching the scalar
                    // path's dense probability table.
                    let bit = 1u8 << s;
                    if cq.prob > 0.0 && plane.bits[i] {
                        plane.valid_mask[v as usize] |= bit;
                    } else {
                        plane.valid_mask[v as usize] &= !bit;
                    }
                }
            }
        }
        // P per lane: sampled with no sampled active neighbor.
        let full: u8 = ((1u16 << lanes) - 1) as u8;
        for &v in &self.set.active {
            let sv = plane.valid_mask[v as usize];
            if sv == 0 {
                continue;
            }
            let mut blocked = 0u8;
            for &u in self.g.neighbors(v) {
                if self.set.contains(u) {
                    blocked |= plane.valid_mask[u as usize];
                    if blocked & full == full {
                        break;
                    }
                }
            }
            plane.adopted_mask[v as usize] = sv & !blocked;
        }
        // Per-clique target misses, all lanes at once.
        let mut total = [0usize; SEED_BLOCK];
        for cq in &self.cliques {
            let mut got = [0usize; SEED_BLOCK];
            let mut missing = [0usize; SEED_BLOCK];
            for &v in &cq.inliers {
                let pm = plane.adopted_mask[v as usize];
                let in_set = self.set.contains(v);
                for s in 0..lanes {
                    let kept = pm >> s & 1 == 1;
                    got[s] += usize::from(kept);
                    missing[s] += usize::from(in_set && !kept);
                }
            }
            for (s, t) in total.iter_mut().enumerate().take(lanes) {
                if got[s] < cq.target {
                    *t += missing[s];
                }
            }
        }
        for (s, c) in costs.iter_mut().enumerate() {
            *c = total[s] as f64;
        }
        scratch.plane = plane;
    }

    fn ssp_failures(&self, _state: &ColoringState, out: &Outcome) -> Vec<NodeId> {
        // SSP per clique: |P_C| ≥ target.  On failure the clique's inliers
        // defer (they will be recursed on; deferral only creates slack for
        // the rest — see Lemma 13's PutAside case).
        let mut in_p = vec![false; self.g.n()];
        for &v in &out.aux {
            in_p[v as usize] = true;
        }
        let mut failures = Vec::new();
        for cq in &self.cliques {
            let got = cq.inliers.iter().filter(|&&v| in_p[v as usize]).count();
            if got < cq.target {
                failures.extend(
                    cq.inliers
                        .iter()
                        .copied()
                        .filter(|&v| self.set.contains(v) && !in_p[v as usize]),
                );
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;
    use parcolor_local::tape::CryptoTape;

    fn ring(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    fn clique(n: usize) -> Graph {
        let mut edges = Vec::new();
        for a in 0..n as NodeId {
            for b in (a + 1)..n as NodeId {
                edges.push((a, b));
            }
        }
        Graph::from_edges(n, &edges)
    }

    fn full_set(n: usize) -> StageSet {
        StageSet::new(n, (0..n as NodeId).collect())
    }

    #[test]
    fn try_random_color_adoptions_are_proper() {
        let g = ring(50);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let proc = TryRandomColor::new(&g, full_set(50), SspMode::Auto, 0);
        let tape = CryptoTape::new(7);
        let out = proc.simulate(&state, &tape);
        assert!(!out.adoptions.is_empty(), "ring trial should color someone");
        state.apply_adoptions(&g, &out.adoptions); // would panic on conflicts
        assert!(state.verify_partial(&g).is_ok());
    }

    #[test]
    fn try_random_color_is_pure() {
        let g = ring(30);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let proc = TryRandomColor::new(&g, full_set(30), SspMode::Auto, 3);
        let tape = CryptoTape::new(11);
        let a = proc.simulate(&state, &tape);
        let b = proc.simulate(&state, &tape);
        assert_eq!(a.adoptions, b.adoptions);
    }

    #[test]
    fn round_tags_change_randomness() {
        let g = ring(30);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let tape = CryptoTape::new(11);
        let a = TryRandomColor::new(&g, full_set(30), SspMode::Auto, 1).simulate(&state, &tape);
        let b = TryRandomColor::new(&g, full_set(30), SspMode::Auto, 2).simulate(&state, &tape);
        assert_ne!(a.adoptions, b.adoptions);
    }

    #[test]
    fn multi_trial_draws_distinct_sorted() {
        let g = ring(10);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let proc = MultiTrial::new(&g, full_set(10), 2, SspMode::Auto, 0);
        let tape = CryptoTape::new(3);
        for v in 0..10 {
            let d = proc.draw(&state, &tape, v);
            assert_eq!(d.len(), 2);
            assert!(d[0] < d[1]);
        }
    }

    #[test]
    fn multi_trial_colors_everyone_with_full_palette_draw() {
        // x ≥ palette size: every node proposes its whole palette.  On a
        // ring with 3-color palettes neighbors always share colors... but
        // an isolated-ish graph colors instantly.  Use an empty graph.
        let g = Graph::empty(5);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let proc = MultiTrial::new(&g, full_set(5), 8, SspMode::Colored, 0);
        let tape = CryptoTape::new(5);
        let out = proc.simulate(&state, &tape);
        assert_eq!(out.adoptions.len(), 5);
        assert!(proc.ssp_failures(&state, &out).is_empty());
        state.apply_adoptions(&g, &out.adoptions);
        assert_eq!(state.uncolored_count(), 0);
    }

    #[test]
    fn multi_trial_respects_conflicts() {
        let g = clique(4);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let proc = MultiTrial::new(&g, full_set(4), 2, SspMode::Auto, 1);
        let tape = CryptoTape::new(9);
        let out = proc.simulate(&state, &tape);
        state.apply_adoptions(&g, &out.adoptions);
        assert!(state.verify_partial(&g).is_ok());
    }

    #[test]
    fn generate_slack_samples_a_fraction() {
        let g = ring(2000);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let set = full_set(2000);
        let targets = vec![0.0; 2000];
        let proc = GenerateSlack::new(&g, set, 0.1, targets, 0);
        let tape = CryptoTape::new(13);
        let out = proc.simulate(&state, &tape);
        // ~10% sampled, nearly all succeed on a ring: between 3% and 15%.
        assert!(
            out.adoptions.len() > 60 && out.adoptions.len() < 300,
            "adoptions = {}",
            out.adoptions.len()
        );
        state.apply_adoptions(&g, &out.adoptions);
        assert!(state.verify_partial(&g).is_ok());
    }

    #[test]
    fn generate_slack_ssp_targets() {
        let g = ring(8);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let set = full_set(8);
        // Impossible target: everyone uncolored fails.
        let targets = vec![100.0; 8];
        let proc = GenerateSlack::new(&g, set, 0.0, targets, 0);
        let tape = CryptoTape::new(1);
        let out = proc.simulate(&state, &tape);
        assert_eq!(out.adoptions.len(), 0);
        assert_eq!(proc.ssp_failures(&state, &out).len(), 8);
    }

    #[test]
    fn synch_color_trial_deals_distinct_colors() {
        let g = clique(6);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let inliers: Vec<NodeId> = (1..6).collect();
        let set = StageSet::new(6, inliers.clone());
        let proc = SynchColorTrial::new(&g, set, vec![CliqueTrial { leader: 0, inliers }], 6, 0);
        let tape = CryptoTape::new(17);
        let out = proc.simulate(&state, &tape);
        // In a true clique all proposals are distinct colors of a shared
        // palette, so nobody conflicts: everyone adopts.
        assert_eq!(out.adoptions.len(), 5);
        state.apply_adoptions(&g, &out.adoptions);
        assert!(state.verify_partial(&g).is_ok());
    }

    #[test]
    fn synch_color_trial_tolerance_gates_failures() {
        let g = clique(5);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let inliers: Vec<NodeId> = (1..5).collect();
        let set = StageSet::new(5, inliers.clone());
        let proc = SynchColorTrial::new(&g, set, vec![CliqueTrial { leader: 0, inliers }], 0, 0);
        let tape = CryptoTape::new(17);
        let out = proc.simulate(&state, &tape);
        let fails = proc.ssp_failures(&state, &out);
        let uncolored = 4 - out.adoptions.len();
        if uncolored > 0 {
            assert_eq!(fails.len(), uncolored);
        } else {
            assert!(fails.is_empty());
        }
    }

    #[test]
    fn put_aside_set_is_independent() {
        let g = clique(12);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let inliers: Vec<NodeId> = (0..12).collect();
        let set = StageSet::new(12, inliers.clone());
        let proc = PutAside {
            g: &g,
            set,
            cliques: vec![CliquePutAside {
                clique_id: 0,
                inliers,
                prob: 0.15,
                target: 0,
            }],
            round_tag: 0,
        };
        let tape = CryptoTape::new(23);
        let out = proc.simulate(&state, &tape);
        // In a clique, P has at most one node (it's an independent set).
        assert!(out.aux.len() <= 1, "P = {:?}", out.aux);
        assert!(proc.ssp_failures(&state, &out).is_empty());
    }

    #[test]
    fn put_aside_target_failure_defers_clique() {
        let g = clique(6);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let inliers: Vec<NodeId> = (0..6).collect();
        let set = StageSet::new(6, inliers.clone());
        let proc = PutAside {
            g: &g,
            set,
            cliques: vec![CliquePutAside {
                clique_id: 0,
                inliers,
                prob: 0.0, // nothing sampled → |P| = 0 < target
                target: 2,
            }],
            round_tag: 0,
        };
        let tape = CryptoTape::new(23);
        let out = proc.simulate(&state, &tape);
        assert_eq!(out.aux.len(), 0);
        assert_eq!(proc.ssp_failures(&state, &out).len(), 6);
    }

    #[test]
    fn post_metrics_account_duplicate_colors_once() {
        // Path 1-0-2 (star with two leaves): leaves adopt the same color c
        // (not adjacent), center loses c once but two neighbors.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let set = full_set(3);
        let adopted = {
            let out = Outcome {
                adoptions: vec![(1, 1), (2, 1)],
                aux: Vec::new(),
            };
            super::adoption_map(3, &out)
        };
        let (deg, slack) = super::post_deg_slack(&g, &state, &set, &adopted, 0);
        assert_eq!(deg, 0);
        // palette {0,1,2} minus {1} = 2 colors, degree 0 → slack 2
        assert_eq!(slack, 2);
    }
}
