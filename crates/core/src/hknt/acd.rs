//! Almost-clique decomposition — Definition 3 of the paper, computed as in
//! Lemma 19 (O(1) MPC rounds when `Δ ≤ √s`).
//!
//! Classification of each active node:
//! * **Sparse** — `ζ_v ≥ ε_sp · d(v)` (many non-edges among neighbors);
//! * **Uneven** — `η_v ≥ ε_sp · d(v)` (many much-higher-degree neighbors);
//! * **Dense** — everything else, grouped into almost-cliques as the
//!   connected components of the *friend* relation (`u ~ v` iff adjacent
//!   dense nodes sharing `≥ (1 − ε_friend)·max(d(u), d(v))` common
//!   neighbors — the standard construction from AA20/HKNT22).
//!
//! A repair pass reclassifies nodes violating Definition 3 (iii)/(iv) as
//! sparse.  This mirrors practical ACD constructions: correctness of the
//! coloring never depends on the decomposition (only deferral rates do),
//! and experiment E11 measures the quality of the classification.

use crate::config::Params;
use crate::node_params::ParamTable;
use parcolor_local::graph::{sorted_intersection_size, Graph, NodeId};
use rayon::prelude::*;

/// Classification of a node by the ACD.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Not part of the current stage.
    Inactive,
    /// `ζ_v ≥ ε_sp·d(v)`: many non-edges among neighbors.
    Sparse,
    /// `η_v ≥ ε_sp·d(v)`: many much-higher-degree neighbors.
    Uneven,
    /// Member of almost-clique `Clique(id)`.
    Dense(u32),
}

/// One almost-clique with its Lemma 22 roles.
#[derive(Clone, Debug)]
pub struct Clique {
    /// Dense-component id (index into `Acd::cliques`).
    pub id: u32,
    /// All members, sorted.
    pub nodes: Vec<NodeId>,
    /// Leader `x_C`: member with minimum slackability.
    pub leader: NodeId,
    /// Outliers `O_C` (sorted): colored early by SlackColor.
    pub outliers: Vec<NodeId>,
    /// Inliers `I_C = C \ O_C` (sorted): colored by SynchColorTrial.
    pub inliers: Vec<NodeId>,
    /// Whether the clique has low slackability (`σ̄(x_C) ≤ ℓ`) and hence
    /// needs a put-aside set.
    pub low_slack: bool,
    /// Maximum active degree within the clique (the `Δ_C` of PutAside).
    pub max_degree: usize,
}

/// The full decomposition.
#[derive(Clone, Debug)]
pub struct Acd {
    /// Per-node classification.
    pub class: Vec<NodeClass>,
    /// The almost-cliques partitioning `Vdense`.
    pub cliques: Vec<Clique>,
}

impl Acd {
    /// All nodes classified `Sparse`, ascending.
    pub fn sparse_nodes(&self) -> Vec<NodeId> {
        self.collect(NodeClass::Sparse)
    }

    /// All nodes classified `Uneven`, ascending.
    pub fn uneven_nodes(&self) -> Vec<NodeId> {
        self.collect(NodeClass::Uneven)
    }

    /// All nodes in some almost-clique, ascending.
    pub fn dense_nodes(&self) -> Vec<NodeId> {
        (0..self.class.len() as NodeId)
            .filter(|&v| matches!(self.class[v as usize], NodeClass::Dense(_)))
            .collect()
    }

    fn collect(&self, want: NodeClass) -> Vec<NodeId> {
        (0..self.class.len() as NodeId)
            .filter(|&v| self.class[v as usize] == want)
            .collect()
    }

    /// Validate Definition 3's four properties; returns human-readable
    /// violations (used by tests and the E11 experiment).
    pub fn violations(
        &self,
        g: &Graph,
        active: &[bool],
        table: &ParamTable,
        p: &Params,
    ) -> Vec<String> {
        let mut out = Vec::new();
        let act_deg = |v: NodeId| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| active[u as usize])
                .count()
        };
        for v in 0..self.class.len() as NodeId {
            match self.class[v as usize] {
                NodeClass::Sparse => {
                    // Repaired nodes may be below the sparsity threshold;
                    // only flag wildly-dense "sparse" nodes (ζ = 0, d big).
                    let t = table.get(v);
                    if t.sparsity <= 0.0 && act_deg(v) > 4 {
                        out.push(format!("sparse node {v} has zero sparsity"));
                    }
                }
                NodeClass::Uneven => {
                    let t = table.get(v);
                    if t.unevenness < p.eps_sp * act_deg(v) as f64 * 0.5 {
                        out.push(format!("uneven node {v} barely uneven"));
                    }
                }
                _ => {}
            }
        }
        for c in &self.cliques {
            for &v in &c.nodes {
                let d = act_deg(v);
                if (d as f64) > (1.0 + p.eps_ac) * 2.0 * c.nodes.len() as f64 {
                    out.push(format!(
                        "clique {}: node {v} degree {d} ≫ clique size {}",
                        c.id,
                        c.nodes.len()
                    ));
                }
                let inside = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| c.nodes.binary_search(&u).is_ok())
                    .count();
                if ((c.nodes.len() - 1) as f64) > (1.0 + p.eps_ac) * 2.0 * (inside.max(1)) as f64 {
                    out.push(format!(
                        "clique {}: node {v} has only {inside} internal neighbors of {}",
                        c.id,
                        c.nodes.len() - 1
                    ));
                }
            }
        }
        out
    }
}

/// Union-find for the friend components (path halving + union by size).
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Compute the (deg+1)-ACD of the subgraph induced by `active`, using the
/// already-computed Definition 2 parameters.
pub fn compute_acd(
    g: &Graph,
    nodes: &[NodeId],
    active: &[bool],
    table: &ParamTable,
    params: &Params,
) -> Acd {
    let n = g.n();
    let mut class = vec![NodeClass::Inactive; n];

    // Active-filtered sorted adjacency (reused for intersections).
    let act_adj: Vec<Vec<NodeId>> = (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            if !active[v as usize] {
                return Vec::new();
            }
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| active[u as usize])
                .collect()
        })
        .collect();

    // Step 1: sparse / uneven / dense-candidate classification.
    for &v in nodes {
        let t = table.get(v);
        let d = act_adj[v as usize].len() as f64;
        class[v as usize] = if t.sparsity >= params.eps_sp * d {
            NodeClass::Sparse
        } else if t.unevenness >= params.eps_sp * d {
            NodeClass::Uneven
        } else {
            NodeClass::Dense(u32::MAX) // candidate; component id assigned below
        };
    }

    // Step 2: friend edges among dense candidates.
    let act_adj_ref = &act_adj;
    let class_ref = &class;
    let friend_edges: Vec<(NodeId, NodeId)> = nodes
        .par_iter()
        .flat_map_iter(|&v| {
            let is_dense_v = matches!(class_ref[v as usize], NodeClass::Dense(_));
            let adj = &act_adj_ref[v as usize];
            let dv = adj.len();
            adj.iter()
                .filter(move |&&u| is_dense_v && u > v)
                .filter(|&&u| matches!(class_ref[u as usize], NodeClass::Dense(_)))
                .filter_map(move |&u| {
                    let du = act_adj_ref[u as usize].len();
                    let cn = sorted_intersection_size(
                        &act_adj_ref[v as usize],
                        &act_adj_ref[u as usize],
                    );
                    let need = (1.0 - params.eps_friend) * dv.max(du) as f64;
                    (cn as f64 >= need).then_some((v, u))
                })
                .collect::<Vec<_>>()
                .into_iter()
        })
        .collect();

    // Step 3: components of the friend graph.
    let mut dsu = Dsu::new(n);
    for &(u, v) in &friend_edges {
        dsu.union(u, v);
    }

    // Step 4: gather components, repair violations, emit cliques.
    let mut comp_members: std::collections::HashMap<u32, Vec<NodeId>> =
        std::collections::HashMap::new();
    for &v in nodes {
        if matches!(class[v as usize], NodeClass::Dense(_)) {
            comp_members.entry(dsu.find(v)).or_default().push(v);
        }
    }
    let mut roots: Vec<u32> = comp_members.keys().copied().collect();
    roots.sort_unstable();

    let mut cliques = Vec::new();
    for root in roots {
        let mut members = comp_members.remove(&root).unwrap();
        members.sort_unstable();
        // Repair: Definition 3 (iii)/(iv) with tolerance ε_ac; violators
        // become sparse.  Singletons and pairs are not useful cliques.
        let size = members.len() as f64;
        let keep: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&v| {
                let d = act_adj[v as usize].len() as f64;
                let inside = act_adj[v as usize]
                    .iter()
                    .filter(|&&u| members.binary_search(&u).is_ok())
                    .count() as f64;
                d <= (1.0 + params.eps_ac) * size && size <= (1.0 + params.eps_ac) * (inside + 1.0)
            })
            .collect();
        let dropped: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|v| keep.binary_search(v).is_err())
            .collect();
        for v in dropped {
            class[v as usize] = NodeClass::Sparse;
        }
        if keep.len() < 2 {
            for v in keep {
                class[v as usize] = NodeClass::Sparse;
            }
            continue;
        }
        let id = cliques.len() as u32;
        for &v in &keep {
            class[v as usize] = NodeClass::Dense(id);
        }
        let max_degree = keep
            .iter()
            .map(|&v| act_adj[v as usize].len())
            .max()
            .unwrap();
        // Leader: minimum slackability (ties → lowest id).
        let leader = keep
            .iter()
            .copied()
            .min_by(|&a, &b| {
                table
                    .get(a)
                    .slackability
                    .partial_cmp(&table.get(b).slackability)
                    .unwrap()
                    .then(a.cmp(&b))
            })
            .unwrap();
        let (outliers, inliers) = split_outliers(g, &keep, leader, table, &act_adj);
        let ell = params.ell(max_degree.max(2));
        let low_slack = table.get(leader).slackability <= ell;
        cliques.push(Clique {
            id,
            nodes: keep,
            leader,
            outliers,
            inliers,
            low_slack,
            max_degree,
        });
    }

    Acd { class, cliques }
}

/// Lemma 22's outlier selection: the union of (a) the `max(d(x_C), |C|)/3`
/// members with fewest common neighbors with the leader, (b) the `|C|/6`
/// largest-degree members, and (c) non-neighbors of the leader.  The
/// leader itself is kept out of the inlier list (it must survive to deal
/// colors in SynchColorTrial).
fn split_outliers(
    _g: &Graph,
    members: &[NodeId],
    leader: NodeId,
    _table: &ParamTable,
    act_adj: &[Vec<NodeId>],
) -> (Vec<NodeId>, Vec<NodeId>) {
    let csize = members.len();
    let leader_adj = &act_adj[leader as usize];
    let d_leader = leader_adj.len();

    let mut out = vec![false; csize];
    // (c) non-neighbors of the leader.
    for (i, &v) in members.iter().enumerate() {
        if v != leader && leader_adj.binary_search(&v).is_err() {
            out[i] = true;
        }
    }
    // (a) fewest common neighbors with the leader.
    let take_a = (d_leader.max(csize)).div_ceil(3).min(csize);
    let mut by_common: Vec<(usize, usize)> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            (
                sorted_intersection_size(&act_adj[v as usize], leader_adj),
                i,
            )
        })
        .collect();
    by_common.sort_unstable();
    for &(_, i) in by_common.iter().take(take_a) {
        out[i] = true;
    }
    // (b) largest degrees.
    let take_b = csize.div_ceil(6);
    let mut by_deg: Vec<(usize, usize)> = members
        .iter()
        .enumerate()
        .map(|(i, &v)| (act_adj[v as usize].len(), i))
        .collect();
    by_deg.sort_unstable_by(|a, b| b.cmp(a));
    for &(_, i) in by_deg.iter().take(take_b) {
        out[i] = true;
    }
    // Leader is neither outlier nor inlier recipient.
    let leader_idx = members.binary_search(&leader).unwrap();
    out[leader_idx] = true;

    let mut outliers = Vec::new();
    let mut inliers = Vec::new();
    for (i, &v) in members.iter().enumerate() {
        if v == leader {
            continue;
        }
        if out[i] {
            outliers.push(v);
        } else {
            inliers.push(v);
        }
    }
    (outliers, inliers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{ColoringState, D1lcInstance};
    use crate::node_params::compute_params;

    fn planted(clique_sizes: &[usize], sparse_n: usize, seed: u64) -> Graph {
        // Disjoint cliques plus a sparse random part wired to nothing.
        let total: usize = clique_sizes.iter().sum::<usize>() + sparse_n;
        let mut edges = Vec::new();
        let mut base = 0u32;
        for &s in clique_sizes {
            for a in 0..s as u32 {
                for b in (a + 1)..s as u32 {
                    edges.push((base + a, base + b));
                }
            }
            base += s as u32;
        }
        // Sparse part: a long path (high sparsity is trivial at degree ≤ 2,
        // so give each node a couple of random chords for degree 4-ish).
        let mut rng = parcolor_local::tape::SplitMix::new(seed);
        for i in 0..sparse_n.saturating_sub(1) {
            edges.push((base + i as u32, base + i as u32 + 1));
        }
        for _ in 0..sparse_n {
            let a = base + rng.below(sparse_n as u64) as u32;
            let b = base + rng.below(sparse_n as u64) as u32;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(total, &edges)
    }

    fn acd_of(g: &Graph) -> (Acd, ParamTable) {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let active = vec![true; g.n()];
        let table = compute_params(g, &st, &nodes, &active);
        let acd = compute_acd(g, &nodes, &active, &table, &Params::default());
        (acd, table)
    }

    #[test]
    fn planted_cliques_are_found() {
        let g = planted(&[20, 15], 0, 1);
        let (acd, _) = acd_of(&g);
        assert_eq!(acd.cliques.len(), 2);
        let sizes: Vec<usize> = acd.cliques.iter().map(|c| c.nodes.len()).collect();
        assert!(sizes.contains(&20) && sizes.contains(&15), "{sizes:?}");
    }

    #[test]
    fn sparse_part_is_classified_sparse_or_uneven() {
        let g = planted(&[12], 40, 2);
        let (acd, _) = acd_of(&g);
        // Nodes 12.. are the sparse part; none should land in a clique.
        for v in 12..52u32 {
            assert!(
                !matches!(acd.class[v as usize], NodeClass::Dense(_)),
                "node {v} misclassified as dense: {:?}",
                acd.class[v as usize]
            );
        }
    }

    #[test]
    fn leader_minimizes_slackability() {
        let g = planted(&[10], 0, 3);
        let (acd, table) = acd_of(&g);
        let c = &acd.cliques[0];
        let min_slk = c
            .nodes
            .iter()
            .map(|&v| table.get(v).slackability)
            .fold(f64::INFINITY, f64::min);
        assert!((table.get(c.leader).slackability - min_slk).abs() < 1e-12);
    }

    #[test]
    fn outliers_inliers_partition_members() {
        let g = planted(&[18], 0, 4);
        let (acd, _) = acd_of(&g);
        let c = &acd.cliques[0];
        let mut all: Vec<NodeId> = c.outliers.iter().chain(c.inliers.iter()).copied().collect();
        all.push(c.leader);
        all.sort_unstable();
        assert_eq!(all, c.nodes);
        // Inliers are all adjacent to the leader.
        for &v in &c.inliers {
            assert!(g.has_edge(c.leader, v));
        }
    }

    #[test]
    fn clique_nodes_have_zero_sparsity() {
        let g = planted(&[16], 30, 5);
        let (acd, _table) = acd_of(&g);
        let active = vec![true; g.n()];
        let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let st = ColoringState::new(&inst);
        let table = compute_params(&g, &st, &nodes, &active);
        let violations = acd.violations(&g, &active, &table, &Params::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn two_cliques_sharing_a_bridge_edge_stay_separate() {
        // Two K10s joined by a single edge: the bridge endpoints share few
        // common neighbors, so the friend relation keeps cliques apart.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
            }
        }
        for a in 10..20u32 {
            for b in (a + 1)..20 {
                edges.push((a, b));
            }
        }
        edges.push((0, 10));
        let g = Graph::from_edges(20, &edges);
        let (acd, _) = acd_of(&g);
        assert_eq!(acd.cliques.len(), 2);
    }

    #[test]
    fn ring_has_no_cliques() {
        let edges: Vec<_> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
        let g = Graph::from_edges(30, &edges);
        let (acd, _) = acd_of(&g);
        assert!(acd.cliques.is_empty());
        // Degree-2 ring: sparsity of each node is (1 - 0)/2 = 0.5 ≥ ε·2.
        assert_eq!(acd.sparse_nodes().len(), 30);
    }
}
