//! Degree reduction: `LowSpacePartition` (Algorithm 12) with the
//! derandomized hash selection of Lemma 23.
//!
//! One partition level hashes the *high-degree* uncolored nodes into
//! `B ≈ n^δ` bins with `h₁` and the color universe into `B − 1` bins with
//! `h₂`; bin `i < B−1` keeps only its own colors, the last bin and the
//! low-degree remainder `G_mid` keep full (residual) palettes and are
//! colored after the restricted bins.  Lemma 23's guarantees — in-bin
//! degree `d'(v) < 2 d(v)/B` and in-bin palette `p'(v) > d'(v)` — are
//! achieved by a deterministic search over a pairwise-independent hash
//! family (the method of conditional expectations over the family, run
//! here as a deterministic argmin over an indexed prefix of the family
//! with an exhaustive-equivalent widening fallback).

use crate::instance::ColoringState;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_prg::hashing::{KWiseFamily, KWiseHash};
use rayon::prelude::*;
use serde::Serialize;

/// Independence of the partition hashes.  CDP21d uses `O(log n)`-wise
/// independence for Chernoff-type concentration of in-bin degrees; 8-wise
/// is ample at every scale this repo reaches.
const HASH_INDEPENDENCE: u32 = 8;

/// Result of one `LowSpacePartition` call.
#[derive(Debug)]
pub struct PartitionOutcome {
    /// Node bins `G_1 … G_B` (original ids).  Bins `0..B-1` get restricted
    /// palettes; the last bin keeps full palettes.
    pub bins: Vec<Vec<NodeId>>,
    /// `G_mid`: nodes whose degree is already at most the threshold
    /// (plus any violators moved here by the fallback).
    pub mid: Vec<NodeId>,
    /// The chosen color hash (colors `c` with `h₂(c) = i` belong to bin i).
    pub color_hash: KWiseHash,
    /// Diagnostics for experiment E4.
    pub stats: PartitionStats,
}

/// Diagnostics of one partition level (experiment E4's row).
#[derive(Clone, Debug, Serialize)]
pub struct PartitionStats {
    /// Node bins `B`.
    pub bins: usize,
    /// Nodes above the mid-degree threshold (binned).
    pub high_nodes: usize,
    /// Nodes routed to `G_mid`.
    pub mid_nodes: usize,
    /// Hash seeds evaluated by the deterministic search.
    pub seeds_tried: u64,
    /// The chosen hash seed.
    pub chosen_seed: u64,
    /// Nodes whose restricted palette would have been too small (the
    /// *hard* Lemma 23 violation); they fall back to `G_mid` with full
    /// palettes, preserving correctness.
    pub violations_moved_to_mid: usize,
    /// Binned nodes exceeding the `2 d(v)/B` degree bound (the *soft*
    /// Lemma 23 violation — hurts only the recursion's progress rate; at
    /// paper scale `d/B = n^{6δ}` makes these vanish, at test scale they
    /// are counted and reported by E4).
    pub soft_degree_violations: usize,
    /// Max over binned nodes of `d'(v) · B / d(v)` (Lemma 23 predicts < 2).
    pub worst_degree_ratio: f64,
}

/// Per-search scratch of the batched hash plane (Lemma 23's search).
///
/// The stripe inputs — high node ids and the color hash inputs — are
/// built **once per partition call**; per candidate seed, two
/// [`KWiseHash::eval_batch`] passes fill the output planes and a dense
/// node→bin scatter turns the per-incident-edge `h₁` evaluations of the
/// scalar formulation into array reads.  Every lookup reproduces the
/// scalar `eval` bit-for-bit (the hashing batch contract), so the chosen
/// seed and all statistics are unchanged.
struct HashPlane {
    /// High node ids as `h₁` inputs (fixed across seeds).
    xs_high: Vec<u64>,
    /// `h₁` bins aligned with `xs_high` (refilled per seed).
    high_bins: Vec<u64>,
    /// Dense node → `h₁` bin, valid at high positions (refilled per seed).
    bin_of: Vec<u64>,
    /// `h₂` inputs: the color universe `0..=max_color` (dense mode) or
    /// the concatenated high-node palettes (occurrence mode).
    xs_colors: Vec<u64>,
    /// Occurrence-mode offsets into `xs_colors`, one per high node + 1
    /// (empty in dense mode).
    color_off: Vec<usize>,
    /// `h₂` bins aligned with `xs_colors` (refilled per seed).
    color_bins: Vec<u64>,
}

impl HashPlane {
    fn new(g: &Graph, state: &ColoringState, high: &[NodeId]) -> Self {
        let xs_high: Vec<u64> = high.iter().map(|&v| v as u64).collect();
        let pal_words: usize = high.iter().map(|&v| state.palette(v).len()).sum();
        let max_color = high
            .iter()
            .flat_map(|&v| state.palette(v).iter().copied())
            .max();
        // Dense mode evaluates each color of the universe once per seed;
        // it wins whenever the universe is not much larger than the
        // palette storage (always true for degree+1 palettes).  Sparse
        // universes fall back to one evaluation per palette occurrence —
        // exactly the scalar path's count, just batched.
        let dense = max_color.is_some_and(|m| (m as usize) < 2 * pal_words + 1024);
        let (xs_colors, color_off) = if dense {
            ((0..=max_color.unwrap() as u64).collect(), Vec::new())
        } else {
            let mut xs = Vec::with_capacity(pal_words);
            let mut off = Vec::with_capacity(high.len() + 1);
            off.push(0);
            for &v in high {
                xs.extend(state.palette(v).iter().map(|&c| c as u64));
                off.push(xs.len());
            }
            (xs, off)
        };
        HashPlane {
            xs_high,
            high_bins: vec![0; high.len()],
            bin_of: vec![u64::MAX; g.n()],
            color_bins: vec![0; xs_colors.len()],
            xs_colors,
            color_off,
        }
    }

    /// Evaluate `(h1, h2)` over the stripes and scatter the node bins.
    fn fill(&mut self, high: &[NodeId], h1: &KWiseHash, h2: &KWiseHash) {
        h1.eval_batch(&self.xs_high, &mut self.high_bins);
        for (i, &v) in high.iter().enumerate() {
            self.bin_of[v as usize] = self.high_bins[i];
        }
        h2.eval_batch(&self.xs_colors, &mut self.color_bins);
    }

    /// `|{c ∈ Ψ(v) : h₂(c) = b}|` for the `i`-th high node `v`.
    #[inline]
    fn palette_in_bin(&self, state: &ColoringState, i: usize, v: NodeId, b: u64) -> usize {
        if self.color_off.is_empty() {
            state
                .palette(v)
                .iter()
                .filter(|&&c| self.color_bins[c as usize] == b)
                .count()
        } else {
            self.color_bins[self.color_off[i]..self.color_off[i + 1]]
                .iter()
                .filter(|&&cb| cb == b)
                .count()
        }
    }
}

/// Violations of Lemma 23's two properties for a candidate `(h1, h2)`,
/// read off a filled [`HashPlane`].  Returns `(hard_violators,
/// soft_count)`: *hard* = the restricted palette would not cover the
/// in-bin degree (breaks the D1LC promise of the sub-instance — those
/// nodes must fall back to `G_mid`); *soft* = the `2d/B` degree bound is
/// exceeded (slows the recursion but breaks nothing).
fn violating_nodes(
    g: &Graph,
    state: &ColoringState,
    high: &[NodeId],
    high_mask: &[bool],
    plane: &HashPlane,
    bins: usize,
) -> (Vec<NodeId>, usize) {
    let marks: Vec<(bool, bool)> = high
        .par_iter()
        .enumerate()
        .map(|(i, &v)| {
            let b = plane.high_bins[i];
            let d: usize = g
                .neighbors(v)
                .iter()
                .filter(|&&u| high_mask[u as usize])
                .count();
            let d_in: usize = g
                .neighbors(v)
                .iter()
                .filter(|&&u| high_mask[u as usize] && plane.bin_of[u as usize] == b)
                .count();
            // Degree reduction: d'(v) < max(2, 2 d(v)/B).  The `max(2)`
            // absorbs integer effects at small degrees (Lemma 23 is stated
            // for Δ ≥ n^{7δ} where 2d/B ≫ 1).
            let deg_bound = (2.0 * d as f64 / bins as f64).max(2.0);
            let soft = d_in as f64 >= deg_bound;
            // Palette property for restricted bins only.
            let hard = (b as usize) < bins - 1 && plane.palette_in_bin(state, i, v, b) <= d_in;
            (hard, soft)
        })
        .collect();
    let hard: Vec<NodeId> = high
        .iter()
        .zip(marks.iter())
        .filter(|(_, &(h, _))| h)
        .map(|(&v, _)| v)
        .collect();
    let soft = marks.iter().filter(|&&(_, s)| s).count();
    (hard, soft)
}

/// Run one partition level over `nodes` (uncolored).  `threshold` is the
/// mid-degree cutoff `n^{7δ}`; `bins` is `B`; `budget` bounds the hash
/// search.
pub fn low_space_partition(
    g: &Graph,
    state: &ColoringState,
    nodes: &[NodeId],
    threshold: usize,
    bins: usize,
    budget: u64,
) -> PartitionOutcome {
    assert!(bins >= 3, "need at least 3 bins (B-1 ≥ 2 color bins)");
    // Residual degree within the instance decides mid membership.
    let mut in_set = vec![false; g.n()];
    for &v in nodes {
        in_set[v as usize] = true;
    }
    let deg_of = |v: NodeId| {
        g.neighbors(v)
            .iter()
            .filter(|&&u| in_set[u as usize])
            .count()
    };
    let (mut mid, high): (Vec<NodeId>, Vec<NodeId>) =
        nodes.iter().partition(|&&v| deg_of(v) <= threshold);
    let mut high_mask = vec![false; g.n()];
    for &v in &high {
        high_mask[v as usize] = true;
    }

    let node_family = KWiseFamily::new(HASH_INDEPENDENCE, bins as u64);
    let color_family = KWiseFamily::new(HASH_INDEPENDENCE, bins as u64 - 1);
    let derive = |seed: u64| {
        (
            node_family.member(seed.wrapping_mul(0x9E37_79B9) ^ 0x5bd1),
            color_family.member(seed.wrapping_mul(0xC2B2_AE35) ^ 0x27d4),
        )
    };

    // Deterministic search (the method of conditional expectations over
    // the hash family, realized as an argmin over an indexed prefix):
    // hard violations dominate the cost; stop early at a perfect seed.
    // Each candidate seed expands its coefficients once and fills the
    // batched hash plane; the violation scan then reads array entries.
    let mut plane = HashPlane::new(g, state, &high);
    let mut best: Option<(u64, Vec<NodeId>, usize, u64)> = None;
    let mut tried = 0u64;
    for seed in 0..budget.max(1) {
        tried += 1;
        let (h1, h2) = derive(seed);
        plane.fill(&high, &h1, &h2);
        let (hard, soft) = violating_nodes(g, state, &high, &high_mask, &plane, bins);
        let score = hard.len() as u64 * 1_000_000 + soft as u64;
        let better = best.as_ref().is_none_or(|&(_, _, _, bs)| score < bs);
        if better {
            let done = score == 0;
            best = Some((seed, hard, soft, score));
            if done {
                break;
            }
        }
    }
    let (chosen_seed, violators, soft_violations, _) = best.unwrap();
    let (h1, h2) = derive(chosen_seed);
    plane.fill(&high, &h1, &h2);
    let plane = &plane;

    // Fallback: violators join G_mid (they keep full palettes and are
    // colored after the bins, so correctness is unaffected; only the
    // degree bound of the mid instance may be looser — recorded).
    let violations_moved = violators.len();
    let mut is_violator = vec![false; g.n()];
    for &v in &violators {
        is_violator[v as usize] = true;
    }
    mid.extend(violators.iter().copied());
    mid.sort_unstable();

    let mut bins_vec: Vec<Vec<NodeId>> = vec![Vec::new(); bins];
    for &v in &high {
        if !is_violator[v as usize] {
            bins_vec[plane.bin_of[v as usize] as usize].push(v);
        }
    }

    // Diagnostic: realized degree-reduction ratio (off the chosen seed's
    // plane — identical to re-evaluating h₁ per node and neighbor).
    let worst_ratio = high
        .par_iter()
        .copied()
        .filter(|&v| !is_violator[v as usize])
        .map(|v| {
            let b = plane.bin_of[v as usize];
            let d = deg_of(v).max(1);
            let d_in = g
                .neighbors(v)
                .iter()
                .filter(|&&u| {
                    high_mask[u as usize]
                        && !is_violator[u as usize]
                        && plane.bin_of[u as usize] == b
                })
                .count();
            d_in as f64 * bins as f64 / d as f64
        })
        .fold(|| f64::NEG_INFINITY, f64::max)
        .reduce(|| f64::NEG_INFINITY, f64::max);
    // NEG_INFINITY identity so a genuine max survives the reduce even if
    // every ratio were negative (a 0.0 identity would clamp it); with no
    // participating nodes the max stays -inf, reported as 0.0.
    let worst_ratio = if worst_ratio.is_finite() {
        worst_ratio
    } else {
        0.0
    };

    let stats = PartitionStats {
        bins,
        high_nodes: high.len(),
        mid_nodes: mid.len(),
        seeds_tried: tried,
        chosen_seed,
        violations_moved_to_mid: violations_moved,
        soft_degree_violations: soft_violations,
        worst_degree_ratio: worst_ratio,
    };
    PartitionOutcome {
        bins: bins_vec,
        mid,
        color_hash: h2,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::D1lcInstance;
    use parcolor_local::tape::SplitMix;

    /// Dense random graph with a wide palette universe.
    fn dense_instance(n: usize, avg_deg: usize, seed: u64) -> D1lcInstance {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        for _ in 0..(n * avg_deg / 2) {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let g = Graph::from_edges(n, &edges);
        D1lcInstance::delta_plus_one(g)
    }

    #[test]
    fn partition_respects_lemma23_bounds() {
        // Lemma 23's regime: in-bin degree d/B must dominate its own
        // fluctuations AND the palette-degree gap d/B² must dominate
        // √(d/B) — i.e. d ≫ B³.  (The paper has d ≥ n^{7δ} ≫ B³ = n^{3δ}.)
        let inst = dense_instance(600, 120, 1);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let out = low_space_partition(&inst.graph, &state, &nodes, 40, 3, 128);
        // Hard (palette) violations must be fully absorbed by the fallback.
        assert_eq!(out.stats.violations_moved_to_mid, 0, "{:?}", out.stats);
        // Soft degree violations are a small tail at this scale.
        assert!(
            out.stats.soft_degree_violations * 10 <= out.stats.high_nodes,
            "{:?}",
            out.stats
        );
        // Degree reduction really happened: worst ratio far below B.
        assert!(
            out.stats.worst_degree_ratio < out.stats.bins as f64,
            "ratio {}",
            out.stats.worst_degree_ratio
        );
    }

    #[test]
    fn mid_collects_low_degree_nodes() {
        let inst = dense_instance(300, 10, 2);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let threshold = 12;
        let out = low_space_partition(&inst.graph, &state, &nodes, threshold, 4, 64);
        for &v in &out.mid {
            // mid = low-degree or violator; most should be low-degree
            let d = inst.graph.degree(v);
            assert!(d <= threshold + 8, "node {v} degree {d} in mid");
        }
        let binned: usize = out.bins.iter().map(Vec::len).sum();
        assert_eq!(binned + out.mid.len(), 300);
    }

    #[test]
    fn restricted_bins_form_valid_instances() {
        let inst = dense_instance(600, 50, 3);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let bins = 4;
        let out = low_space_partition(&inst.graph, &state, &nodes, 16, bins, 128);
        // Every restricted bin must satisfy the D1LC promise (hard
        // violators were moved to mid, so this holds by construction).
        for (b, bin_nodes) in out.bins.iter().enumerate().take(bins - 1) {
            if bin_nodes.is_empty() {
                continue;
            }
            let h2 = &out.color_hash;
            let r = state
                .restricted_instance(&inst.graph, bin_nodes, |c| h2.eval(c as u64) as usize == b);
            assert!(r.is_ok(), "bin {b}: {:?}", r.err());
        }
    }

    #[test]
    fn search_is_deterministic() {
        let inst = dense_instance(400, 40, 4);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let a = low_space_partition(&inst.graph, &state, &nodes, 16, 4, 64);
        let b = low_space_partition(&inst.graph, &state, &nodes, 16, 4, 64);
        assert_eq!(a.stats.chosen_seed, b.stats.chosen_seed);
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.mid, b.mid);
    }

    #[test]
    fn empty_input() {
        let inst = dense_instance(50, 4, 5);
        let state = ColoringState::new(&inst);
        let out = low_space_partition(&inst.graph, &state, &[], 8, 3, 16);
        assert!(out.mid.is_empty());
        assert!(out.bins.iter().all(Vec::is_empty));
    }

    /// Regression: the worst-ratio reduce uses a `NEG_INFINITY` identity
    /// (a `0.0` identity would silently clamp the max); the -inf of an
    /// empty participation set must be reported as 0.0, never leak out.
    #[test]
    fn worst_ratio_identity_is_neutral() {
        // Threshold above every degree → no high nodes participate.
        let inst = dense_instance(100, 6, 6);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let out = low_space_partition(&inst.graph, &state, &nodes, 10_000, 3, 16);
        assert_eq!(out.stats.high_nodes, 0);
        assert_eq!(out.stats.worst_degree_ratio, 0.0);
        // Nonempty participation: the reduce identity must not distort
        // the max — every surviving high node's realized ratio is a
        // lower bound on the reported worst ratio.
        let inst = dense_instance(600, 120, 1);
        let state = ColoringState::new(&inst);
        let nodes = state.uncolored_nodes();
        let out = low_space_partition(&inst.graph, &state, &nodes, 40, 3, 128);
        assert!(out.stats.high_nodes > 0);
        assert!(out.stats.worst_degree_ratio.is_finite());
        assert!(out.stats.worst_degree_ratio > 0.0);
    }
}
