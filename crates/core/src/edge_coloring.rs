//! (2Δ−1)-edge-coloring via D1LC — one of the paper's motivating
//! applications ("it also appears as a subproblem … in edge-coloring
//! algorithms", §1, citing \[Kuh20\]).
//!
//! The reduction: edges of `G` become nodes of the **line graph** `L(G)`;
//! two line-graph nodes are adjacent iff the edges share an endpoint, so
//! `deg_L(e) = d(u) + d(v) − 2 ≤ 2Δ − 2` for `e = {u, v}`.  Giving each
//! line-graph node the palette `{0, …, deg_L(e)}` is a valid D1LC instance
//! that uses at most `2Δ − 1` colors — exactly the (2Δ−1)-edge-coloring
//! benchmark.  Any D1LC solver then edge-colors `G`; here both the
//! deterministic (Theorem 1) and randomized (Lemma 4) pipelines apply
//! unchanged.

use crate::config::Params;
use crate::instance::D1lcInstance;
use crate::solver::{Solution, Solver};
use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;

/// The line graph of `G` plus the edge list indexing its nodes.
pub struct LineGraph {
    /// `L(G)`: node `i` represents `edges[i]`.
    pub graph: Graph,
    /// Edge `i` of `G` as `(u, v)` with `u < v`.
    pub edges: Vec<(NodeId, NodeId)>,
}

/// Build the line graph.  Cost `O(Σ_v d(v)²)` — the same budget as the
/// Definition 2 sparsity computation.
pub fn line_graph(g: &Graph) -> LineGraph {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    // Incident-edge ids per node in one flat offset-indexed arena (the
    // CSR idiom): node v's incident edges are
    // `incident[off[v]..off[v + 1]]`, and |that slice| = d(v), so the
    // offsets are the graph's own degree prefix sum.
    let n = g.n();
    let mut off = Vec::with_capacity(n + 1);
    off.push(0usize);
    let mut total = 0usize;
    for v in 0..n as NodeId {
        total += g.degree(v);
        off.push(total);
    }
    let mut incident = vec![0u32; total];
    let mut cursor = off.clone();
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[cursor[u as usize]] = i as u32;
        cursor[u as usize] += 1;
        incident[cursor[v as usize]] = i as u32;
        cursor[v as usize] += 1;
    }
    let mut le: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        let inc = &incident[off[v]..off[v + 1]];
        for a in 0..inc.len() {
            for b in (a + 1)..inc.len() {
                le.push((inc[a].min(inc[b]), inc[a].max(inc[b])));
            }
        }
    }
    LineGraph {
        graph: Graph::from_edges(edges.len(), &le),
        edges,
    }
}

/// The (2Δ−1)-edge-coloring instance of `G` as D1LC on `L(G)`.
pub fn edge_coloring_instance(g: &Graph) -> (D1lcInstance, Vec<(NodeId, NodeId)>) {
    let lg = line_graph(g);
    let inst = D1lcInstance::delta_plus_one(lg.graph);
    (inst, lg.edges)
}

/// A complete edge coloring of `G`.
pub struct EdgeColoring {
    /// Edge list (`(u, v)` with `u < v`), aligned with `colors`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Color per edge.
    pub colors: Vec<u32>,
    /// The underlying D1LC solution (round/space accounting etc.).
    pub solution: Solution,
}

impl EdgeColoring {
    /// Largest color used plus one.
    pub fn palette_size(&self) -> usize {
        self.colors
            .iter()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Deterministically (2Δ−1)-edge-color `G` (Theorem 1 on `L(G)`).
pub fn edge_color_deterministic(g: &Graph, params: Params) -> EdgeColoring {
    let (inst, edges) = edge_coloring_instance(g);
    let solution = Solver::deterministic(params).solve(&inst);
    let colors = solution.colors.clone();
    EdgeColoring {
        edges,
        colors,
        solution,
    }
}

/// Randomized counterpart (Lemma 4 on `L(G)`).
pub fn edge_color_randomized(g: &Graph, params: Params, key: u64) -> EdgeColoring {
    let (inst, edges) = edge_coloring_instance(g);
    let solution = Solver::randomized(params, key).solve(&inst);
    let colors = solution.colors.clone();
    EdgeColoring {
        edges,
        colors,
        solution,
    }
}

/// Verify a proper edge coloring: incident edges differ, and the color
/// count respects the (2Δ−1) bound.
pub fn verify_edge_coloring(g: &Graph, ec: &EdgeColoring) -> Result<(), String> {
    if ec.edges.len() != g.m() {
        return Err("edge count mismatch".into());
    }
    // Incidence check via per-node color sets, stored in one flat
    // offset-indexed arena (each node sees exactly d(v) incident-edge
    // colors, so the offsets are the degree prefix sum; `fill[v]` tracks
    // the populated prefix of node v's slice).
    let n = g.n();
    let mut off = Vec::with_capacity(n + 1);
    off.push(0usize);
    let mut total = 0usize;
    for v in 0..n as NodeId {
        total += g.degree(v);
        off.push(total);
    }
    let mut seen = vec![0u32; total];
    let mut fill = vec![0usize; n];
    for (&(u, v), &c) in ec.edges.iter().zip(ec.colors.iter()) {
        for end in [u, v] {
            let e = end as usize;
            if e >= n {
                return Err(format!("edge endpoint {end} outside graph"));
            }
            // A malformed edge list can claim more incident edges than the
            // node's degree — reject instead of overflowing its slice.
            if fill[e] >= off[e + 1] - off[e] {
                return Err(format!(
                    "node {end}: more incident edges than degree {}",
                    g.degree(end)
                ));
            }
            let slice = &seen[off[e]..off[e] + fill[e]];
            if slice.contains(&c) {
                return Err(format!("node {end}: two incident edges colored {c}"));
            }
            seen[off[e] + fill[e]] = c;
            fill[e] += 1;
        }
    }
    let delta = g.max_degree();
    let used = ec.palette_size();
    if delta > 0 && used > 2 * delta - 1 {
        return Err(format!("{used} colors exceed 2Δ−1 = {}", 2 * delta - 1));
    }
    Ok(())
}

/// Degree statistics of the line graph (used by tests/diagnostics).
pub fn line_graph_degree_bound_holds(g: &Graph) -> bool {
    let lg = line_graph(g);
    lg.edges
        .par_iter()
        .enumerate()
        .all(|(i, &(u, v))| lg.graph.degree(i as NodeId) == g.degree(u) + g.degree(v) - 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcolor_local::tape::SplitMix;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let lg = line_graph(&g);
        assert_eq!(lg.graph.n(), 3);
        assert_eq!(lg.graph.m(), 3);
    }

    #[test]
    fn line_graph_of_star_is_clique() {
        let edges: Vec<_> = (1..6u32).map(|i| (0, i)).collect();
        let g = Graph::from_edges(6, &edges);
        let lg = line_graph(&g);
        assert_eq!(lg.graph.n(), 5);
        assert_eq!(lg.graph.m(), 10); // K5
    }

    #[test]
    fn line_graph_degrees_match_formula() {
        let g = random_graph(60, 150, 1);
        assert!(line_graph_degree_bound_holds(&g));
    }

    #[test]
    fn deterministic_edge_coloring_verifies() {
        let g = random_graph(80, 200, 2);
        let ec = edge_color_deterministic(&g, Params::default().with_seed_bits(4));
        verify_edge_coloring(&g, &ec).unwrap();
    }

    #[test]
    fn randomized_edge_coloring_verifies() {
        let g = random_graph(80, 200, 3);
        let ec = edge_color_randomized(&g, Params::default(), 9);
        verify_edge_coloring(&g, &ec).unwrap();
    }

    #[test]
    fn ring_needs_at_most_three_edge_colors() {
        let edges: Vec<_> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, &edges);
        let ec = edge_color_deterministic(&g, Params::default().with_seed_bits(4));
        verify_edge_coloring(&g, &ec).unwrap();
        assert!(ec.palette_size() <= 3); // 2Δ−1 = 3
    }

    #[test]
    fn edge_coloring_is_deterministic() {
        let g = random_graph(50, 120, 4);
        let a = edge_color_deterministic(&g, Params::default().with_seed_bits(4));
        let b = edge_color_deterministic(&g, Params::default().with_seed_bits(4));
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn verify_rejects_conflicts() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let ec = EdgeColoring {
            edges: vec![(0, 1), (1, 2)],
            colors: vec![0, 0], // share node 1
            solution: Solver::deterministic(Params::default()).solve(&edge_coloring_instance(&g).0),
        };
        assert!(verify_edge_coloring(&g, &ec).is_err());
    }

    #[test]
    fn verify_rejects_overfull_incidence_without_panicking() {
        // Edge count matches m but node 3 claims two incident edges while
        // its degree is 1 — must be a clean Err, not a slice overflow.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let ec = EdgeColoring {
            edges: vec![(2, 3), (2, 3)],
            colors: vec![0, 1],
            solution: Solver::deterministic(Params::default()).solve(&edge_coloring_instance(&g).0),
        };
        assert!(verify_edge_coloring(&g, &ec).is_err());
    }

    #[test]
    fn empty_graph_edge_coloring() {
        let g = Graph::empty(5);
        let ec = edge_color_deterministic(&g, Params::default());
        verify_edge_coloring(&g, &ec).unwrap();
        assert_eq!(ec.palette_size(), 0);
    }
}
