//! Deterministic D1LC for low-degree instances — our substitute for
//! CDP21c's Lemma 14 (see DESIGN.md §5 for the substitution record).
//!
//! Primary method ([`color_low_degree`]): repeated **derandomized
//! TryRandomColor**.  Under uniform random trials a node with
//! `p(v) ≥ d(v) + 1` keeps its color with probability
//! `∏_{u∈N(v)} (1 − 1/p(u)) ≥ e^{-1}`-ish, so the expected colored
//! fraction per round is a constant; the conditional-expectations seed
//! choice turns that expectation into a *deterministic guarantee* (the
//! chosen seed colors at least the seed-space mean).  Hence `O(log n)`
//! deterministic rounds, each `O(1)` MPC rounds — the same framework
//! machinery as the main pipeline, applied to the low-degree remainder.
//! (CDP21c's own Lemma 14 achieves `O(log log log n)`; it is an entire
//! separate paper.  Our substitute preserves the contract that matters
//! here: deterministic, complete, round count ≪ any polynomial.)
//!
//! Fallback/ablation method ([`color_low_degree_linial`]): Linial's
//! `O(Δ²·polylog)`-coloring followed by a one-round-per-class greedy
//! sweep — the textbook approach, whose round count degrades to `O(n)`
//! when `Δ² log n ≳ n` (measured by experiment E9's cousin in
//! EXPERIMENTS.md).

use crate::framework::Runner;
use crate::hknt::procs::{SspMode, StageSet, TryRandomColor};
use crate::instance::ColoringState;
use crate::linial::linial_coloring;
use parcolor_local::engine::RoundEngine;
use parcolor_local::graph::{Graph, NodeId};
use parcolor_mpc::NodeMpc;
use serde::Serialize;

/// Report of one low-degree coloring invocation.
#[derive(Clone, Debug, Serialize)]
pub struct LowDegReport {
    /// Nodes handled by the invocation.
    pub participants: usize,
    /// Derandomized TryRandomColor rounds used.
    pub trial_rounds: usize,
    /// Nodes finished by the sequential greedy tail.
    pub greedy_tail: usize,
}

/// Deterministically color every node of `nodes` (all uncolored) through
/// the runner's framework.  Always completes.
pub fn color_low_degree(
    g: &Graph,
    state: &mut ColoringState,
    nodes: &[NodeId],
    runner: &mut Runner,
    greedy_cutoff: usize,
) -> LowDegReport {
    debug_assert!(nodes.iter().all(|&v| !state.is_colored(v)));
    let mut report = LowDegReport {
        participants: nodes.len(),
        trial_rounds: 0,
        greedy_tail: 0,
    };
    if nodes.is_empty() {
        return report;
    }
    let mut stagnant = 0u32;
    let mut tag = 0u64;
    loop {
        let live: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|&v| !state.is_colored(v))
            .collect();
        if live.len() <= greedy_cutoff {
            break;
        }
        let before = live.len();
        let set = StageSet::new(state.n(), live);
        // SSP = Auto: nobody defers here; the seed cost (uncolored count)
        // drives the progress guarantee instead.
        let proc = TryRandomColor::new(g, set, SspMode::Auto, 0x1000 + tag);
        tag += 1;
        runner.run_step(&proc, state);
        report.trial_rounds += 1;
        let after = nodes.iter().filter(|&&v| !state.is_colored(v)).count();
        if after == before {
            stagnant += 1;
            if stagnant >= 3 {
                break; // hand the rest to the greedy tail
            }
        } else {
            stagnant = 0;
        }
    }
    // Greedy tail on one machine (the residual fits the Theorem 12
    // "collect and finish" budget; charged as residency + one round).
    let rest: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| !state.is_colored(v))
        .collect();
    if !rest.is_empty() {
        report.greedy_tail = rest.len();
        let words: usize =
            rest.len() * 4 + rest.iter().map(|&v| state.palette_size(v)).sum::<usize>();
        runner.mpc.charge_single_machine(words);
        runner.mpc.charge_rounds(1);
        runner.engine.charge(1, rest.len() as u64);
        for &v in &rest {
            let pal = state.palette(v);
            assert!(
                !pal.is_empty(),
                "low-degree node {v} has empty residual palette (invariant broken)"
            );
            let c = pal[0];
            state.apply_adoptions(g, &[(v, c)]);
        }
    }
    report
}

/// Report of the Linial-based fallback.
#[derive(Clone, Debug, Serialize)]
pub struct LinialSweepReport {
    /// Nodes handled by the invocation.
    pub participants: usize,
    /// Colors in the Linial coloring.
    pub linial_colors: usize,
    /// Rounds Linial's reduction used.
    pub linial_rounds: u64,
    /// Non-empty classes swept (one round each).
    pub classes_used: usize,
}

/// The textbook alternative: Linial coloring + class-by-class greedy.
/// One MPC round per non-empty class; kept for the ablation table and as
/// a runner-free fallback.
pub fn color_low_degree_linial(
    g: &Graph,
    state: &mut ColoringState,
    nodes: &[NodeId],
    engine: &mut RoundEngine,
    mpc: &NodeMpc,
) -> LinialSweepReport {
    debug_assert!(nodes.iter().all(|&v| !state.is_colored(v)));
    if nodes.is_empty() {
        return LinialSweepReport {
            participants: 0,
            linial_colors: 0,
            linial_rounds: 0,
            classes_used: 0,
        };
    }
    let mut active = vec![false; g.n()];
    for &v in nodes {
        active[v as usize] = true;
    }
    let lin = linial_coloring(g, &active);
    engine.charge(lin.rounds, nodes.len() as u64);
    mpc.charge_rounds(lin.rounds);
    mpc.charge_neighbor_broadcast(g, |v| active[v as usize], 1);

    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); lin.color_count];
    for &v in nodes {
        buckets[lin.colors[v as usize] as usize].push(v);
    }
    let mut classes_used = 0usize;
    for bucket in buckets.iter().filter(|b| !b.is_empty()) {
        classes_used += 1;
        let adoptions: Vec<(NodeId, u32)> = bucket
            .iter()
            .map(|&v| {
                let pal = state.palette(v);
                assert!(!pal.is_empty(), "empty residual palette (invariant broken)");
                (v, pal[0])
            })
            .collect();
        state.apply_adoptions(g, &adoptions);
        engine.charge(1, adoptions.len() as u64);
        mpc.charge_rounds(1);
    }
    LinialSweepReport {
        participants: nodes.len(),
        linial_colors: lin.color_count,
        linial_rounds: lin.rounds,
        classes_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Params;
    use crate::instance::D1lcInstance;
    use parcolor_local::tape::SplitMix;
    use parcolor_mpc::MpcConfig;

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut rng = SplitMix::new(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let a = rng.below(n as u64) as NodeId;
            let b = rng.below(n as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        Graph::from_edges(n, &edges)
    }

    fn run_framework(g: &Graph) -> (ColoringState, LowDegReport, D1lcInstance, u64) {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let params = Params::default().with_seed_bits(5);
        let mut runner = Runner::derandomized(g, &params, g.n());
        let nodes = state.uncolored_nodes();
        let rep = color_low_degree(g, &mut state, &nodes, &mut runner, 32);
        let rounds = runner.mpc.metrics().rounds();
        (state, rep, inst, rounds)
    }

    #[test]
    fn colors_random_graph_completely() {
        let g = random_graph(500, 1500, 7);
        let (state, rep, inst, _) = run_framework(&g);
        assert_eq!(rep.participants, 500);
        let colors = state.into_colors().unwrap();
        inst.verify_coloring(&colors).unwrap();
    }

    #[test]
    fn trial_rounds_are_logarithmic() {
        let g = random_graph(2000, 6000, 9);
        let (_, rep, _, rounds) = run_framework(&g);
        // ~constant-fraction progress per round: far fewer than n rounds.
        assert!(rep.trial_rounds <= 40, "trial rounds {}", rep.trial_rounds);
        assert!(rounds < 200, "MPC rounds {rounds}");
    }

    #[test]
    fn greedy_tail_is_bounded() {
        let g = random_graph(800, 2400, 11);
        let (_, rep, _, _) = run_framework(&g);
        assert!(rep.greedy_tail <= 32 || rep.trial_rounds >= 3);
    }

    #[test]
    fn deterministic_output() {
        let g = random_graph(300, 900, 13);
        let (s1, _, _, _) = run_framework(&g);
        let (s2, _, _, _) = run_framework(&g);
        assert_eq!(s1.colors(), s2.colors());
    }

    #[test]
    fn works_on_partially_colored_state() {
        let g = random_graph(100, 200, 11);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let c0 = state.palette(0)[0];
        state.apply_adoptions(&g, &[(0, c0)]);
        let params = Params::default().with_seed_bits(5);
        let mut runner = Runner::derandomized(&g, &params, 100);
        let nodes = state.uncolored_nodes();
        color_low_degree(&g, &mut state, &nodes, &mut runner, 16);
        let colors = state.into_colors().unwrap();
        inst.verify_coloring(&colors).unwrap();
        assert_eq!(colors[0], c0);
    }

    #[test]
    fn empty_input_noop() {
        let g = random_graph(10, 15, 3);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let params = Params::default().with_seed_bits(4);
        let mut runner = Runner::derandomized(&g, &params, 10);
        let rep = color_low_degree(&g, &mut state, &[], &mut runner, 8);
        assert_eq!(rep.participants, 0);
        assert_eq!(runner.mpc.metrics().rounds(), 0);
    }

    #[test]
    fn linial_fallback_still_works() {
        let g = random_graph(400, 1200, 5);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let mut engine = RoundEngine::new();
        let mpc = NodeMpc::new(MpcConfig::new(400, 1200, 0.5));
        let nodes = state.uncolored_nodes();
        let rep = color_low_degree_linial(&g, &mut state, &nodes, &mut engine, &mpc);
        assert!(rep.classes_used <= rep.linial_colors.max(400));
        let colors = state.into_colors().unwrap();
        inst.verify_coloring(&colors).unwrap();
    }

    #[test]
    fn framework_beats_linial_sweep_on_round_count() {
        // The motivating regime: Δ²·log n ≳ n, where the Linial sweep
        // degenerates to ~n rounds but the framework stays logarithmic.
        let g = random_graph(1000, 6000, 17);
        let (_, rep, _, fw_rounds) = run_framework(&g);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let mut engine = RoundEngine::new();
        let mpc = NodeMpc::new(MpcConfig::new(1000, 6000, 0.5));
        let nodes = state.uncolored_nodes();
        let lin = color_low_degree_linial(&g, &mut state, &nodes, &mut engine, &mpc);
        let lin_rounds = mpc.metrics().rounds();
        assert!(
            fw_rounds * 3 < lin_rounds,
            "framework {fw_rounds} vs linial sweep {lin_rounds} ({} classes, {} trials)",
            lin.classes_used,
            rep.trial_rounds
        );
    }
}
