//! Lease-shaped work accounting.
//!
//! The distributed seed search (crate `parcolor-dist`) deals fixed work
//! *units* (block-aligned seed ranges) to remote workers the same way the
//! in-process executor deals index blocks to threads — except that remote
//! workers fail: they crash mid-unit, straggle past any deadline, and
//! reconnect under new identities.  [`LeaseTable`] is the bookkeeping that
//! makes that safe:
//!
//! * every unit is **granted** as a lease with a deadline; expired or
//!   orphaned leases return the unit to the pending queue so it can be
//!   **re-issued** to a live worker;
//! * completions are **deduplicated by unit id** — a late result from a
//!   re-issued unit's first assignee is dropped, so each unit enters the
//!   reduce exactly once.  Because every unit's result is a pure function
//!   of its index range, and the enclosing reduce is grouping-invariant
//!   (see the crate docs), re-issue and dedup can never change the merged
//!   outcome — only who computed it.
//!
//! Time is a caller-supplied logical clock (`now` in milliseconds or any
//! monotone unit), so tests can drive expiry deterministically.  The table
//! is single-threaded by design; callers serialize access (the dist
//! coordinator owns one table per fold).

use std::collections::VecDeque;

/// State of one work unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnitState {
    /// Waiting in the pending queue.
    Pending,
    /// Leased out; index into the outstanding list is found by scan.
    Outstanding,
    /// Completed; duplicates are dropped.
    Done,
}

/// An issued lease: one unit granted to one worker with a deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// Monotonically increasing lease id (unique per table).
    pub lease_id: u64,
    /// The work unit covered.
    pub unit: u32,
    /// The assignee (an opaque worker key).
    pub worker: u64,
    /// Logical instant after which the lease counts as expired.
    pub deadline: u64,
}

/// Counters the coordinator reports (and tests assert on).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Leases granted (first issues + re-issues).
    pub granted: u64,
    /// Units that went back to pending after a deadline expiry.
    pub expired: u64,
    /// Units that went back to pending because their worker died.
    pub orphaned: u64,
    /// Units granted more than once (any cause).
    pub reissued: u64,
    /// Completions dropped because the unit was already done.
    pub duplicates: u64,
}

/// Deadline-tracked work-unit ledger with re-issue and exactly-once
/// completion accounting.  See the module docs for the contract.
#[derive(Debug)]
pub struct LeaseTable {
    state: Vec<UnitState>,
    /// Times each unit has been granted (re-issue accounting).
    grants: Vec<u32>,
    pending: VecDeque<u32>,
    outstanding: Vec<Lease>,
    next_lease: u64,
    done: u32,
    stats: LeaseStats,
}

impl LeaseTable {
    /// A table over units `0..nunits`, all pending.
    pub fn new(nunits: u32) -> Self {
        LeaseTable {
            state: vec![UnitState::Pending; nunits as usize],
            grants: vec![0; nunits as usize],
            pending: (0..nunits).collect(),
            outstanding: Vec::new(),
            next_lease: 0,
            done: 0,
            stats: LeaseStats::default(),
        }
    }

    /// Units in the table.
    pub fn nunits(&self) -> u32 {
        self.state.len() as u32
    }

    /// Whether every unit has completed.
    pub fn is_done(&self) -> bool {
        self.done as usize == self.state.len()
    }

    /// Units not yet completed (pending + outstanding).
    pub fn remaining(&self) -> u32 {
        self.nunits() - self.done
    }

    /// Units currently waiting for a grant.
    pub fn pending_len(&self) -> u32 {
        self.pending.len() as u32
    }

    /// Leases currently outstanding for `worker`.
    pub fn outstanding_of(&self, worker: u64) -> usize {
        self.outstanding
            .iter()
            .filter(|l| l.worker == worker)
            .count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    /// Grant the next pending unit to `worker` with deadline
    /// `now + timeout`.  Returns `None` when nothing is pending (the
    /// remaining units are outstanding or done).
    pub fn grant(&mut self, worker: u64, now: u64, timeout: u64) -> Option<Lease> {
        let unit = self.pending.pop_front()?;
        debug_assert_eq!(self.state[unit as usize], UnitState::Pending);
        self.state[unit as usize] = UnitState::Outstanding;
        self.grants[unit as usize] += 1;
        if self.grants[unit as usize] > 1 {
            self.stats.reissued += 1;
        }
        self.stats.granted += 1;
        let lease = Lease {
            lease_id: self.next_lease,
            unit,
            worker,
            deadline: now.saturating_add(timeout),
        };
        self.next_lease += 1;
        self.outstanding.push(lease);
        Some(lease)
    }

    /// Return every lease whose deadline is `< now` to the **front** of
    /// the pending queue (expired units are re-issued before untouched
    /// ones) and report them.
    pub fn expire(&mut self, now: u64) -> Vec<Lease> {
        let mut expired = Vec::new();
        self.outstanding.retain(|l| {
            if l.deadline < now {
                expired.push(*l);
                false
            } else {
                true
            }
        });
        for l in expired.iter().rev() {
            debug_assert_eq!(self.state[l.unit as usize], UnitState::Outstanding);
            self.state[l.unit as usize] = UnitState::Pending;
            self.pending.push_front(l.unit);
            self.stats.expired += 1;
        }
        expired
    }

    /// Return every lease held by `worker` (which died or was evicted) to
    /// the front of the pending queue; reports how many units came back.
    pub fn release_worker(&mut self, worker: u64) -> usize {
        let mut released = Vec::new();
        self.outstanding.retain(|l| {
            if l.worker == worker {
                released.push(l.unit);
                false
            } else {
                true
            }
        });
        for &unit in released.iter().rev() {
            self.state[unit as usize] = UnitState::Pending;
            self.pending.push_front(unit);
            self.stats.orphaned += 1;
        }
        released.len()
    }

    /// Record a completion for `unit`.  Returns `true` exactly once per
    /// unit — the first completion, whatever its provenance (original
    /// assignee, re-issued assignee, or local fallback).  Later
    /// completions return `false` and are counted as duplicates; the
    /// caller must drop their payloads.
    pub fn complete(&mut self, unit: u32) -> bool {
        let s = &mut self.state[unit as usize];
        if *s == UnitState::Done {
            self.stats.duplicates += 1;
            return false;
        }
        if *s == UnitState::Pending {
            // A late result for a unit that was returned to pending (its
            // lease expired but the original worker finished anyway):
            // still a first completion — remove it from the queue.
            self.pending.retain(|&u| u != unit);
        } else {
            self.outstanding.retain(|l| l.unit != unit);
        }
        *s = UnitState::Done;
        self.done += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_lowest_pending_first() {
        let mut t = LeaseTable::new(3);
        assert_eq!(t.grant(1, 0, 10).unwrap().unit, 0);
        assert_eq!(t.grant(1, 0, 10).unwrap().unit, 1);
        assert_eq!(t.grant(2, 0, 10).unwrap().unit, 2);
        assert!(t.grant(2, 0, 10).is_none());
        assert_eq!(t.outstanding_of(1), 2);
    }

    #[test]
    fn expiry_reissues_and_counts() {
        let mut t = LeaseTable::new(2);
        let a = t.grant(1, 0, 10).unwrap();
        let _b = t.grant(2, 0, 100).unwrap();
        assert!(t.expire(5).is_empty());
        let exp = t.expire(11);
        assert_eq!(exp, vec![a]);
        // Expired unit re-issues ahead of nothing else pending; grants
        // count the re-issue.
        let re = t.grant(3, 11, 10).unwrap();
        assert_eq!(re.unit, 0);
        assert!(re.lease_id != a.lease_id);
        assert_eq!(t.stats().reissued, 1);
        assert_eq!(t.stats().expired, 1);
    }

    #[test]
    fn completion_is_exactly_once() {
        let mut t = LeaseTable::new(1);
        let l = t.grant(1, 0, 10).unwrap();
        assert!(t.complete(l.unit));
        assert!(!t.complete(l.unit), "duplicate must be dropped");
        assert_eq!(t.stats().duplicates, 1);
        assert!(t.is_done());
    }

    #[test]
    fn late_result_after_reissue_is_deduped() {
        let mut t = LeaseTable::new(1);
        let _first = t.grant(1, 0, 10).unwrap();
        t.expire(20);
        let _second = t.grant(2, 20, 10).unwrap();
        // Second assignee completes first; the original's late result is
        // a duplicate.
        assert!(t.complete(0));
        assert!(!t.complete(0));
        assert_eq!(t.stats().reissued, 1);
        assert_eq!(t.stats().duplicates, 1);
    }

    #[test]
    fn late_result_while_pending_still_counts_once() {
        let mut t = LeaseTable::new(2);
        let l = t.grant(1, 0, 10).unwrap();
        t.expire(20); // unit 0 back to pending, not yet re-granted
        assert!(t.complete(l.unit), "late result adopts the pending unit");
        // The pending queue no longer offers unit 0.
        assert_eq!(t.grant(2, 20, 10).unwrap().unit, 1);
        assert!(t.grant(2, 20, 10).is_none());
    }

    #[test]
    fn dead_worker_orphans_return_to_front() {
        let mut t = LeaseTable::new(3);
        let _u0 = t.grant(7, 0, 100).unwrap();
        let _u1 = t.grant(7, 0, 100).unwrap();
        let _u2 = t.grant(8, 0, 100).unwrap();
        assert_eq!(t.release_worker(7), 2);
        assert_eq!(t.outstanding_of(7), 0);
        // Orphans re-issue in unit order, ahead of nothing else pending.
        assert_eq!(t.grant(9, 0, 100).unwrap().unit, 0);
        assert_eq!(t.grant(9, 0, 100).unwrap().unit, 1);
        assert_eq!(t.stats().orphaned, 2);
        assert_eq!(t.stats().reissued, 2);
    }

    #[test]
    fn remaining_tracks_completion() {
        let mut t = LeaseTable::new(4);
        assert_eq!(t.remaining(), 4);
        let l = t.grant(1, 0, 10).unwrap();
        t.complete(l.unit);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.pending_len(), 3);
        assert!(!t.is_done());
    }
}
