//! Persistent work-stealing executor — the workspace's one thread pool.
//!
//! Extracted from `parcolor-prg::seed_search`, where the pattern was
//! proven on the seed-search hot loop: workers **steal fixed-size index
//! blocks off one shared atomic counter** and fold per-worker partials
//! that a grouping-invariant merge combines into a deterministic result.
//! This crate generalizes that scheduler so every data-parallel surface —
//! seed search, the rayon-shim `fold().reduce()` terminals, node-striped
//! round simulation — shares **one lazily-spawned persistent pool**
//! instead of spawning scoped threads per call.
//!
//! ## The executor contract
//!
//! Every parallel entry point ([`par_fold`], [`par_fold_in`],
//! [`par_map_chunks`], [`par_fill`]) imposes the same rules on its
//! closures; violating any of them makes results worker-count- or
//! steal-order-dependent (or unsound, for the scatter paths):
//!
//! * **Purity.**  `eval`/`fill` must be pure functions of their index
//!   range (plus shared read-only captures).  Which worker evaluates
//!   which block, and in which order, is nondeterministic; only the
//!   per-index values may not be.
//! * **Grouping invariance.**  `merge` must be associative and
//!   commutative with `identity` as a neutral element, and the per-block
//!   fold must distribute over it.  Integer-valued sums, `min`, and
//!   `argmin` with an explicit lowest-index tie-break
//!   ([`SumMinArgmin`]) qualify exactly; float sums are
//!   grouping-invariant only when every addend is integer-valued (all
//!   SSP cost functionals in this workspace) — otherwise the low bits of
//!   a sum may vary run to run even though `min`/`argmin` stay exact.
//! * **Scratch ownership.**  Worker `w` owns scratch slot `w` for the
//!   whole call: `eval` may mutate it freely, but evaluations must not
//!   depend on what a previous block left in it beyond capacity (a
//!   scratch is an optimization detail, never state).
//! * **Tie-breaks are explicit.**  Any argmin-like reduce must break
//!   ties by index, not by arrival order; [`SumMinArgmin::observe`] and
//!   [`SumMinArgmin::merge`] do this, which is what makes the selection
//!   independent of the steal schedule.
//!
//! ## Scheduling
//!
//! The pool is created lazily on first use and **persists for the
//! process lifetime** — repeated calls reuse the same parked workers, so
//! hot paths (one seed search per derandomized step, several folds per
//! round) never pay thread-spawn latency.  The calling thread always
//! participates as worker 0; `workers <= 1` runs inline with no
//! synchronization at all.  Calls from *inside* a pool worker (a
//! procedure whose cost evaluation itself reaches a parallel fold) are
//! detected via a thread-local flag and collapse to the inline serial
//! path — nested parallelism cannot deadlock the pool, it just runs
//! sequentially inside the already-parallel outer call.
//!
//! Panics in worker closures are caught, the call completes its
//! synchronization, and the first captured payload is re-thrown on the
//! caller thread.

use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Condvar, Mutex, Once, OnceLock};

pub mod lease;
pub use lease::{Lease, LeaseStats, LeaseTable};

/// Upper bound on pool helpers — a sanity cap far above any real host.
const MAX_WORKERS: usize = 256;

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of the executor's pool workers.
/// Parallel entry points consult this to run nested calls inline.
pub fn in_pool_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Outcome of parsing a thread-count environment variable.  Pure —
/// exposed so the malformed-input handling is unit-testable without
/// mutating the process environment (tests run multi-threaded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadVar {
    /// Variable not set.
    Unset,
    /// A usable positive thread count.
    Valid(usize),
    /// Set but unusable (non-numeric, zero, negative, empty…); the raw
    /// value is carried for the warning message.
    Invalid(String),
}

/// Parse the value of a thread-count variable.  Accepts surrounding
/// whitespace; anything that is not a positive integer is [`ThreadVar::Invalid`].
pub fn parse_thread_var(value: Option<&str>) -> ThreadVar {
    match value {
        None => ThreadVar::Unset,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(t) if t > 0 => ThreadVar::Valid(t),
            _ => ThreadVar::Invalid(raw.to_string()),
        },
    }
}

/// Read one thread-count env var, warning (once per process) and falling
/// back to `None` when it is set but malformed — a typo'd
/// `PARCOLOR_THREADS=abc` or `=0` must degrade to the hardware-thread
/// default loudly, not silently misconfigure the pool.
fn env_threads(key: &str) -> Option<usize> {
    let raw = std::env::var(key).ok();
    match parse_thread_var(raw.as_deref()) {
        ThreadVar::Unset => None,
        ThreadVar::Valid(t) => Some(t),
        ThreadVar::Invalid(raw) => {
            static WARNED: Once = Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "parcolor: ignoring {key}={raw:?}: expected a positive integer \
                     thread count; falling back to hardware threads"
                );
            });
            None
        }
    }
}

/// Worker-thread count configured for this process: the
/// `PARCOLOR_THREADS` env var if set, else the deprecated
/// `PARCOLOR_SEED_THREADS` alias (the seed-search-only knob this crate's
/// knob supersedes), else all hardware threads.  A malformed value
/// (`"abc"`, `"0"`, `"-3"`…) warns once and falls through as if unset.
///
/// Read per call (not cached) so benches can pin a section by setting
/// the variable at runtime.
pub fn configured_threads() -> usize {
    env_threads("PARCOLOR_THREADS")
        .or_else(|| env_threads("PARCOLOR_SEED_THREADS"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Resolve a requested worker count: `0` = auto ([`configured_threads`]),
/// anything else is taken literally (clamped to the pool's sanity cap).
pub fn resolve_workers(requested: usize) -> usize {
    let w = if requested > 0 {
        requested
    } else {
        configured_threads()
    };
    w.clamp(1, MAX_WORKERS)
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// Call-scoped shared state: the erased job closure plus the completion
/// latch helpers count down on.
struct JobShared {
    /// The caller's `Fn(worker_id)`, lifetime-erased.  Valid until the
    /// caller observes `remaining == 0` — workers must not touch it (or
    /// this struct) after their decrement.
    f: *const (dyn Fn(usize) + Sync),
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Job {
    shared: *const JobShared,
    worker: usize,
}

// SAFETY: the raw pointers are only dereferenced while the issuing
// `run_on` call is blocked on the latch, which keeps the pointees alive;
// the closure itself is `Sync`.
unsafe impl Send for Job {}

fn worker_loop(rx: std::sync::mpsc::Receiver<Job>) {
    IN_POOL.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        // SAFETY: see `Job`'s Send justification.
        let shared = unsafe { &*job.shared };
        let f = unsafe { &*shared.f };
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(job.worker))) {
            *shared.panic.lock().unwrap() = Some(p);
        }
        // Count down while holding the lock and notify before releasing:
        // once the lock drops with `remaining == 0` the caller may free
        // `shared`, so it must not be touched afterwards.
        let mut rem = shared.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            shared.done.notify_all();
        }
        drop(rem);
    }
}

/// The persistent worker pool.  One per process ([`Executor::global`]);
/// workers are spawned lazily up to the largest count any call has
/// requested and then parked on their job channels.
pub struct Executor {
    senders: Mutex<Vec<Sender<Job>>>,
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

impl Executor {
    /// The process-wide pool.
    pub fn global() -> &'static Executor {
        GLOBAL.get_or_init(|| Executor {
            senders: Mutex::new(Vec::new()),
        })
    }

    /// Threads currently spawned (for diagnostics/tests).
    pub fn spawned_workers(&self) -> usize {
        self.senders.lock().unwrap().len()
    }

    /// Run `f(worker_id)` on `workers` workers with ids `0..workers`,
    /// the calling thread acting as worker 0.  Returns when every worker
    /// has finished.  `workers <= 1` — and any call from inside a pool
    /// worker — runs `f(0)` inline: work distribution is the closure's
    /// job (stealing off a shared counter), so one worker id always
    /// drains the whole range.
    pub fn run_on(&self, workers: usize, f: &(dyn Fn(usize) + Sync)) {
        let workers = workers.min(MAX_WORKERS);
        let helpers = workers.saturating_sub(1);
        if helpers == 0 || in_pool_worker() {
            f(0);
            return;
        }
        let shared = JobShared {
            // SAFETY: erase the borrow's lifetime; `shared` (and `f`)
            // outlive every worker's use because this function does not
            // return until `remaining` hits 0.
            f: unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    f as *const _,
                )
            },
            remaining: Mutex::new(helpers),
            done: Condvar::new(),
            panic: Mutex::new(None),
        };
        {
            let mut senders = self.senders.lock().unwrap();
            while senders.len() < helpers {
                let (tx, rx) = channel::<Job>();
                std::thread::Builder::new()
                    .name(format!("parcolor-exec-{}", senders.len() + 1))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn executor worker");
                senders.push(tx);
            }
            for (i, tx) in senders.iter().take(helpers).enumerate() {
                tx.send(Job {
                    shared: &shared,
                    worker: i + 1,
                })
                .expect("executor worker died");
            }
        }
        // The caller is worker 0; even if it panics, the helpers must be
        // drained before unwinding releases `shared`.
        let main_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut rem = shared.remaining.lock().unwrap();
        while *rem > 0 {
            rem = shared.done.wait(rem).unwrap();
        }
        drop(rem);
        if let Err(p) = main_result {
            resume_unwind(p);
        }
        let helper_panic = shared.panic.lock().unwrap().take();
        if let Some(p) = helper_panic {
            resume_unwind(p);
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic reduce kernels
// ---------------------------------------------------------------------

/// The grouping-invariant `(sum, min, argmin)` reduce of the seed
/// search, with the explicit **lowest-index tie-break** that makes the
/// argmin independent of how indices were grouped into blocks or
/// workers.  Sums are exact (hence grouping-invariant) whenever the
/// observed values are integer-valued.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SumMinArgmin {
    /// Sum of observed values.
    pub sum: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Lowest index achieving the minimum (`u64::MAX` when empty).
    pub argmin: u64,
}

impl SumMinArgmin {
    /// The neutral element.
    pub const EMPTY: SumMinArgmin = SumMinArgmin {
        sum: 0.0,
        min: f64::INFINITY,
        argmin: u64::MAX,
    };

    /// Fold one `(index, value)` observation in.
    #[inline]
    pub fn observe(&mut self, index: u64, value: f64) {
        self.sum += value;
        if value < self.min || (value == self.min && index < self.argmin) {
            self.min = value;
            self.argmin = index;
        }
    }

    /// Merge another partial in (associative, commutative, ties to the
    /// lowest index).
    #[inline]
    pub fn merge(mut self, other: SumMinArgmin) -> SumMinArgmin {
        self.sum += other.sum;
        if other.min < self.min || (other.min == self.min && other.argmin < self.argmin) {
            self.min = other.min;
            self.argmin = other.argmin;
        }
        self
    }
}

impl Default for SumMinArgmin {
    fn default() -> Self {
        Self::EMPTY
    }
}

// ---------------------------------------------------------------------
// Shared-slot helpers for the generic layer
// ---------------------------------------------------------------------

/// A `&mut [S]` handed out one disjoint element per worker.
struct SharedScratches<S> {
    ptr: *mut S,
    len: usize,
}

// SAFETY: each worker index is used by at most one thread (enforced by
// `run_on`'s unique worker ids), so element access is exclusive.
unsafe impl<S: Send> Sync for SharedScratches<S> {}

impl<S> SharedScratches<S> {
    fn new(s: &mut [S]) -> Self {
        SharedScratches {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// SAFETY: caller must guarantee at most one live borrow per index.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, w: usize) -> &mut S {
        assert!(w < self.len);
        &mut *self.ptr.add(w)
    }
}

/// A mutable slice shared across workers for **disjoint scattered
/// writes** (e.g. writing each active node's pick into a dense-by-node
/// array from index-chunked workers).
///
/// SAFETY contract: across one parallel call, every index must be
/// written by at most one worker, and no reads may overlap writes.
/// [`ScatterMut::write`] is `unsafe` to keep that obligation visible at
/// the call site.
pub struct ScatterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for ScatterMut<'_, T> {}

impl<'a, T> ScatterMut<'a, T> {
    /// Wrap a slice for scattered parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        ScatterMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Write `slice[i] = value`.
    ///
    /// # Safety
    /// Within the enclosing parallel call, index `i` must be written by
    /// at most one worker and not read concurrently.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }

    /// Reborrow `slice[start..start + len]` as a mutable stripe.
    ///
    /// # Safety
    /// Within the enclosing parallel call, stripes handed to different
    /// workers must be disjoint and must not overlap any `write` index.
    // `&self -> &mut` is this type's entire purpose: the `unsafe` fn plus
    // the disjointness contract above replace the usual exclusivity rule.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn stripe_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

// ---------------------------------------------------------------------
// Generic parallel primitives
// ---------------------------------------------------------------------

/// Work-stealing fold over `range` in `block`-sized index blocks, one
/// scratch per worker taken from `scratches` (worker count =
/// `scratches.len()`).  Callers issuing many folds (the streaming
/// bitwise seed walk) construct arenas once and reuse them across calls
/// instead of re-zeroing O(n) memory per fold.
///
/// `eval(start, len, acc, scratch)` folds one block into the worker's
/// accumulator and returns it; `merge` combines per-worker partials (in
/// worker order, though grouping invariance — see the crate docs — makes
/// the order immaterial).
pub fn par_fold_in<T, S, I, E, R>(
    pool: &Executor,
    scratches: &mut [S],
    range: Range<u64>,
    block: u64,
    identity: I,
    eval: E,
    merge: R,
) -> T
where
    T: Send,
    S: Send,
    I: Fn() -> T + Sync,
    E: Fn(u64, u64, T, &mut S) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    assert!(block > 0);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity();
    }
    let workers = scratches.len().max(1);
    let nblocks = len.div_ceil(block);
    let next = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let cells = SharedScratches::new(scratches);
    let run = |w: usize| {
        // SAFETY: worker ids are unique per call.
        let scratch = unsafe { cells.get(w) };
        let mut acc = identity();
        loop {
            let b = next.fetch_add(1, Ordering::Relaxed);
            if b >= nblocks {
                break;
            }
            let start = range.start + b * block;
            let blen = (range.end - start).min(block);
            acc = eval(start, blen, acc, scratch);
        }
        *slots[w].lock().unwrap() = Some(acc);
    };
    pool.run_on(workers, &run);
    let mut out = identity();
    for slot in &slots {
        if let Some(part) = slot.lock().unwrap().take() {
            out = merge(out, part);
        }
    }
    out
}

/// [`par_fold_in`] with per-worker scratches built by `make_scratch`
/// (called once per participating worker, on that worker's thread).
// Eight arguments mirror the rayon `fold(||id, op).reduce(||id, op)`
// shape plus the scheduling knobs; a builder would only obscure it.
#[allow(clippy::too_many_arguments)]
pub fn par_fold<T, S, MS, I, E, R>(
    pool: &Executor,
    workers: usize,
    range: Range<u64>,
    block: u64,
    make_scratch: MS,
    identity: I,
    eval: E,
    merge: R,
) -> T
where
    T: Send,
    S: Send,
    MS: Fn() -> S + Sync,
    I: Fn() -> T + Sync,
    E: Fn(u64, u64, T, &mut S) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    assert!(block > 0);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity();
    }
    let workers = workers.clamp(1, MAX_WORKERS);
    let nblocks = len.div_ceil(block);
    let next = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let run = |w: usize| {
        let mut scratch = make_scratch();
        let mut acc = identity();
        loop {
            let b = next.fetch_add(1, Ordering::Relaxed);
            if b >= nblocks {
                break;
            }
            let start = range.start + b * block;
            let blen = (range.end - start).min(block);
            acc = eval(start, blen, acc, &mut scratch);
        }
        *slots[w].lock().unwrap() = Some(acc);
    };
    pool.run_on(workers, &run);
    let mut out = identity();
    for slot in &slots {
        if let Some(part) = slot.lock().unwrap().take() {
            out = merge(out, part);
        }
    }
    out
}

/// Indexed chunk map: workers steal `chunk`-sized index chunks of
/// `0..len` off one shared counter and call `apply(start, len)` for
/// each.  `apply` is responsible for writing **disjoint** outputs (use
/// [`ScatterMut`] for scattered destinations or [`par_fill`] for one
/// contiguous output slice).
pub fn par_map_chunks<F>(pool: &Executor, workers: usize, len: usize, chunk: usize, apply: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(chunk > 0);
    if len == 0 {
        return;
    }
    let workers = workers.clamp(1, MAX_WORKERS);
    let nchunks = len.div_ceil(chunk);
    let next = AtomicU64::new(0);
    let run = |_w: usize| loop {
        let c = next.fetch_add(1, Ordering::Relaxed) as usize;
        if c >= nchunks {
            break;
        }
        let start = c * chunk;
        let clen = (len - start).min(chunk);
        apply(start, clen);
    };
    pool.run_on(workers, &run);
}

/// Fill `out` by disjoint stripes: `fill(start, stripe)` must write
/// every element of `stripe`, which aliases `out[start..start +
/// stripe.len()]`.  Stripes are dealt to workers by stealing; the
/// splice is positional, so the result is identical at every worker
/// count whenever `fill` is pure.
pub fn par_fill<T, F>(pool: &Executor, workers: usize, out: &mut [T], chunk: usize, fill: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    let scatter = ScatterMut::new(out);
    let scatter = &scatter;
    par_map_chunks(pool, workers, len, chunk, move |start, clen| {
        // SAFETY: chunks are disjoint, so the reconstructed sub-slices
        // never overlap across workers.
        let stripe = unsafe { scatter.stripe_mut(start, clen) };
        fill(start, stripe);
    });
}

// ---------------------------------------------------------------------
// Pool-parallel sort
// ---------------------------------------------------------------------

/// Below this many elements [`par_sort_unstable`] stays sequential — the
/// stripe scheduling plus the merge buffer would cost more than the sort.
pub const MIN_PARALLEL_SORT_LEN: usize = 1 << 14;

/// Largest number of stripes the parallel sort deals; merging is
/// `log2(stripes)` rounds, so more stripes past the worker count only
/// add merge traffic.
const MAX_SORT_STRIPES: usize = 64;

/// Sort `data` on the pool: the slice is cut into `k` fixed stripes
/// (`k` = workers rounded up to a power of two, capped), each stripe is
/// `sort_unstable`d by a stealing worker, and the sorted runs are merged
/// k-way in `log2(k)` rounds of pairwise parallel merges, ping-ponging
/// through one scratch buffer.
///
/// The output is the sorted permutation of the input, which for `Copy`
/// payloads is a unique byte sequence — so the result is **bit-identical
/// at every worker count and steal order**, with no grouping-invariance
/// caveat to discharge.  `Copy` is required because elements transit the
/// scratch buffer by plain memcpy (every workspace sort key is a small
/// integer tuple); short slices and nested-pool callers fall back to
/// `sort_unstable` inline.
pub fn par_sort_unstable<T: Ord + Send + Sync + Copy>(
    pool: &Executor,
    workers: usize,
    data: &mut [T],
) {
    let len = data.len();
    let workers = workers.clamp(1, MAX_WORKERS);
    if len < MIN_PARALLEL_SORT_LEN || workers <= 1 || in_pool_worker() {
        data.sort_unstable();
        return;
    }
    let k = workers.next_power_of_two().clamp(2, MAX_SORT_STRIPES);
    let bound = |i: usize| ((i as u128 * len as u128) / k as u128) as usize;
    // Phase 1: sort each fixed stripe (disjoint, so ScatterMut is sound).
    {
        let scatter = ScatterMut::new(data);
        let scatter = &scatter;
        par_map_chunks(pool, workers, k, 1, move |i, _| {
            let (s, e) = (bound(i), bound(i + 1));
            // SAFETY: stripe boundaries depend only on (len, k); stripes
            // are pairwise disjoint.
            let stripe = unsafe { scatter.stripe_mut(s, e - s) };
            stripe.sort_unstable();
        });
    }
    // Phase 2: pairwise merge rounds, ping-ponging between `data` and a
    // scratch buffer; each pair writes a disjoint output range.
    let mut runs: Vec<(usize, usize)> = (0..k).map(|i| (bound(i), bound(i + 1))).collect();
    let mut buf: Vec<T> = vec![data[0]; len];
    let mut in_data = true;
    while runs.len() > 1 {
        let next_runs: Vec<(usize, usize)> = runs
            .chunks(2)
            .map(|pair| (pair[0].0, pair[pair.len() - 1].1))
            .collect();
        {
            let (src, dst): (&[T], &mut [T]) = if in_data {
                (&*data, &mut buf)
            } else {
                (&buf, data)
            };
            let scatter = ScatterMut::new(dst);
            let scatter = &scatter;
            let runs = &runs;
            par_map_chunks(pool, workers, runs.len().div_ceil(2), 1, move |p, _| {
                let a = runs[2 * p];
                // SAFETY: each pair's output range is disjoint.
                if let Some(&b) = runs.get(2 * p + 1) {
                    let out = unsafe { scatter.stripe_mut(a.0, b.1 - a.0) };
                    merge_sorted(&src[a.0..a.1], &src[b.0..b.1], out);
                } else {
                    let out = unsafe { scatter.stripe_mut(a.0, a.1 - a.0) };
                    out.copy_from_slice(&src[a.0..a.1]);
                }
            });
        }
        runs = next_runs;
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(&buf);
    }
}

/// Two-pointer merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`).
fn merge_sorted<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    debug_assert_eq!(a.len() + b.len(), out.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        // `<=` keeps the merge stable (equal keys draw from `a` first);
        // immaterial for Copy payloads but cheap to guarantee.
        *slot = if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn sum_range(pool: &Executor, workers: usize, n: u64) -> SumMinArgmin {
        par_fold(
            pool,
            workers,
            0..n,
            8,
            || (),
            || SumMinArgmin::EMPTY,
            |start, len, mut acc: SumMinArgmin, _: &mut ()| {
                for i in start..start + len {
                    acc.observe(i, ((i * 37 + 11) % 19) as f64);
                }
                acc
            },
            |a, b| a.merge(b),
        )
    }

    #[test]
    fn fold_matches_serial_at_every_worker_count() {
        let pool = Executor::global();
        let reference = sum_range(pool, 1, 1 << 12);
        for workers in [2usize, 3, 4, 8] {
            let got = sum_range(pool, workers, 1 << 12);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn fold_in_uses_one_scratch_per_worker() {
        let pool = Executor::global();
        let mut scratches = vec![0u64; 4];
        let total = par_fold_in(
            pool,
            &mut scratches,
            0..1000,
            16,
            || 0u64,
            |start, len, acc: u64, scratch: &mut u64| {
                *scratch += len;
                acc + (start..start + len).sum::<u64>()
            },
            |a, b| a + b,
        );
        assert_eq!(total, 999 * 1000 / 2);
        assert_eq!(scratches.iter().sum::<u64>(), 1000, "every index once");
    }

    #[test]
    fn empty_range_returns_identity() {
        let pool = Executor::global();
        let x = par_fold(
            pool,
            8,
            5..5,
            4,
            || (),
            || 0u64,
            |_, _, acc: u64, _: &mut ()| acc + 1,
            |a, b| a + b,
        );
        assert_eq!(x, 0);
    }

    #[test]
    fn par_fill_is_positionally_deterministic() {
        let pool = Executor::global();
        let mut reference = vec![0u64; 10_000];
        par_fill(pool, 1, &mut reference, 64, |start, stripe| {
            for (i, o) in stripe.iter_mut().enumerate() {
                let idx = (start + i) as u64;
                *o = (idx * idx) ^ 0xA5;
            }
        });
        for workers in [2usize, 4, 8] {
            let mut out = vec![0u64; 10_000];
            par_fill(pool, workers, &mut out, 64, |start, stripe| {
                for (i, o) in stripe.iter_mut().enumerate() {
                    let idx = (start + i) as u64;
                    *o = (idx * idx) ^ 0xA5;
                }
            });
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn pool_threads_are_reused_across_calls() {
        let pool = Executor::global();
        let ids = Mutex::new(HashSet::new());
        for _ in 0..16 {
            par_map_chunks(pool, 4, 1 << 12, 8, |_, _| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        }
        // 16 calls × 4 workers would be 64 threads if each call spawned
        // its own; the persistent pool keeps it at ≤ 4 (3 helpers + the
        // caller), modulo other tests growing the shared global pool.
        let distinct = ids.lock().unwrap().len();
        assert!(distinct <= MAX_WORKERS.min(64), "thread churn: {distinct}");
        assert!(pool.spawned_workers() <= MAX_WORKERS);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let pool = Executor::global();
        let inner_runs = AtomicUsize::new(0);
        par_map_chunks(pool, 4, 64, 4, |_, _| {
            // A nested parallel call from (possibly) inside a worker:
            // must complete inline rather than deadlocking the pool.
            par_map_chunks(pool, 4, 8, 2, |_, _| {
                inner_runs.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_runs.load(Ordering::Relaxed), 16 * 4);
    }

    #[test]
    fn worker_panics_propagate_to_caller() {
        let pool = Executor::global();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_chunks(pool, 4, 1 << 10, 1, |start, _| {
                if start == 777 {
                    panic!("boom at {start}");
                }
            });
        }));
        assert!(result.is_err(), "panic must cross the pool boundary");
    }

    #[test]
    fn sum_min_argmin_ties_break_low() {
        let mut a = SumMinArgmin::EMPTY;
        a.observe(7, 3.0);
        a.observe(2, 3.0);
        assert_eq!(a.argmin, 2);
        let mut b = SumMinArgmin::EMPTY;
        b.observe(1, 3.0);
        // Merge in either order: lowest index wins.
        assert_eq!(a.merge(b).argmin, 1);
        assert_eq!(b.merge(a).argmin, 1);
    }

    /// SplitMix-style mixer for deterministic pseudo-random test data.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn par_sort_matches_std_at_every_worker_count() {
        let pool = Executor::global();
        let base: Vec<u64> = (0..(3 * MIN_PARALLEL_SORT_LEN as u64 + 7))
            .map(|i| mix(i) % 1000) // plenty of duplicates
            .collect();
        let mut expected = base.clone();
        expected.sort_unstable();
        for workers in [1usize, 2, 3, 4, 8] {
            let mut got = base.clone();
            par_sort_unstable(pool, workers, &mut got);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn par_sort_handles_tuples_and_presorted() {
        let pool = Executor::global();
        let n = 2 * MIN_PARALLEL_SORT_LEN;
        let base: Vec<(u32, u32)> = (0..n)
            .map(|i| {
                (
                    (mix(i as u64) % 512) as u32,
                    (mix(i as u64 ^ 0xA5) % 512) as u32,
                )
            })
            .collect();
        let mut expected = base.clone();
        expected.sort_unstable();
        let mut got = base.clone();
        par_sort_unstable(pool, 4, &mut got);
        assert_eq!(got, expected);
        // Already sorted and reverse-sorted inputs.
        par_sort_unstable(pool, 4, &mut got);
        assert_eq!(got, expected);
        got.reverse();
        par_sort_unstable(pool, 4, &mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn par_sort_short_and_empty_slices() {
        let pool = Executor::global();
        let mut empty: Vec<u32> = Vec::new();
        par_sort_unstable(pool, 8, &mut empty);
        assert!(empty.is_empty());
        let mut small = vec![3u32, 1, 4, 1, 5, 9, 2, 6];
        par_sort_unstable(pool, 8, &mut small);
        assert_eq!(small, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn merge_sorted_interleaves() {
        let a = [1u32, 4, 4, 9];
        let b = [2u32, 4, 8];
        let mut out = [0u32; 7];
        merge_sorted(&a, &b, &mut out);
        assert_eq!(out, [1, 2, 4, 4, 4, 8, 9]);
        let mut only_a = [0u32; 4];
        merge_sorted(&a, &[], &mut only_a);
        assert_eq!(only_a, a);
    }

    #[test]
    fn resolve_workers_clamps() {
        assert_eq!(resolve_workers(3), 3);
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(100_000), MAX_WORKERS);
    }

    // Malformed thread-var handling: each bad shape must be classified
    // Invalid (and so fall back to hardware threads) rather than being
    // silently swallowed or, worse, parsed as something surprising.
    #[test]
    fn thread_var_unset() {
        assert_eq!(parse_thread_var(None), ThreadVar::Unset);
    }

    #[test]
    fn thread_var_valid_counts() {
        assert_eq!(parse_thread_var(Some("4")), ThreadVar::Valid(4));
        assert_eq!(parse_thread_var(Some(" 8 ")), ThreadVar::Valid(8));
        assert_eq!(parse_thread_var(Some("1")), ThreadVar::Valid(1));
    }

    #[test]
    fn thread_var_non_numeric_is_invalid() {
        assert_eq!(
            parse_thread_var(Some("abc")),
            ThreadVar::Invalid("abc".into())
        );
    }

    #[test]
    fn thread_var_zero_is_invalid() {
        assert_eq!(parse_thread_var(Some("0")), ThreadVar::Invalid("0".into()));
    }

    #[test]
    fn thread_var_negative_is_invalid() {
        assert_eq!(
            parse_thread_var(Some("-3")),
            ThreadVar::Invalid("-3".into())
        );
    }

    #[test]
    fn thread_var_empty_is_invalid() {
        assert_eq!(parse_thread_var(Some("")), ThreadVar::Invalid("".into()));
    }

    #[test]
    fn thread_var_fractional_is_invalid() {
        assert_eq!(
            parse_thread_var(Some("1.5")),
            ThreadVar::Invalid("1.5".into())
        );
    }
}
