//! Short-seed PRG with lazily evaluated, chunked output.
//!
//! The paper's Lemma 10 hands each node a disjoint *chunk* of the PRG's
//! output string, where chunks are indexed by the node's color in a proper
//! coloring of the power graph `G^{4τ}` (so nodes within distance `4τ`
//! never share bits).  Our PRG evaluates output words on demand as a pure
//! function of `(seed, chunk, index)`, so the "output string" is virtual
//! and arbitrarily long; `ChunkAssignment` carries the node→chunk map.

use parcolor_local::tape::{splitmix64, Randomness};

/// A PRG family parameterized by seed length in bits.
///
/// The seed space is `{0, 1}^{seed_bits}`, i.e. seeds `0..2^seed_bits`.
/// Matching the paper, seed length is logarithmic: `Θ(τ log Δ)` bits
/// suffice for the `(Δ^{11τ}, Δ^{-11τ})` PRG of Lemma 10; callers pick
/// `seed_bits` accordingly (see `parcolor-core::config`).
#[derive(Clone, Copy, Debug)]
pub struct Prg {
    seed_bits: u32,
}

impl Prg {
    /// Create a family with `seed_bits`-bit seeds (1..=24 supported; the
    /// cap keeps exhaustive search and conditional expectations tractable,
    /// mirroring the poly(Δ)-size seed space of the paper).
    pub fn new(seed_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&seed_bits),
            "seed_bits must be in 1..=24, got {seed_bits}"
        );
        Prg { seed_bits }
    }

    /// Seed length in bits.
    pub fn seed_bits(&self) -> u32 {
        self.seed_bits
    }

    /// Number of seeds in the family.
    pub fn seed_space(&self) -> u64 {
        1u64 << self.seed_bits
    }

    /// The `idx`-th output word of chunk `chunk` under `seed`.
    #[inline]
    pub fn word(&self, seed: u64, chunk: u64, idx: u32) -> u64 {
        debug_assert!(seed < self.seed_space());
        // Domain-separate seed, chunk and index through three mixer rounds;
        // each round is bijective so no entropy is lost.
        let a = splitmix64(seed ^ 0xD1B5_4A32_D192_ED03);
        let b = splitmix64(a ^ chunk.wrapping_mul(0x2545_F491_4F6C_DD1D));
        splitmix64(b ^ (idx as u64).wrapping_mul(0x9E6C_63D0_876A_368B))
    }

    /// Batched [`Prg::word`] over a chunk assignment: for a stripe of
    /// nodes, `out[i] = word(seed, chunks.chunk_of(nodes[i]), idx)`.
    ///
    /// The seed round and the idx product are hoisted once per stripe;
    /// what remains per lane is the chunk lookup plus two splitmix rounds
    /// run four lanes at a time by the runtime-dispatched
    /// [`parcolor_local::simd`] kernel table (AVX2 / AVX-512 / NEON when
    /// the CPU has them, identical scalar rounds otherwise).
    /// Bit-identical to the scalar path by construction (same rounds,
    /// same constants — the dispatch contract in the `simd` module).
    pub fn fill_words(
        &self,
        seed: u64,
        chunks: &ChunkAssignment,
        nodes: &[u32],
        idx: u32,
        out: &mut [u64],
    ) {
        debug_assert!(seed < self.seed_space());
        debug_assert_eq!(nodes.len(), out.len());
        let a = splitmix64(seed ^ 0xD1B5_4A32_D192_ED03);
        let im = (idx as u64).wrapping_mul(0x9E6C_63D0_876A_368B);
        // Resolve the assignment variant once, outside the lane loop.
        match chunks {
            ChunkAssignment::PerNode => {
                fill_two_rounds(a, im, nodes, out, |v| v as u64);
            }
            ChunkAssignment::PowerColoring { colors } => {
                fill_two_rounds(a, im, nodes, out, |v| colors[v as usize] as u64);
            }
        }
    }
}

/// The two per-lane mixer rounds shared by both chunk assignments:
/// `out[i] = splitmix64(splitmix64(a ^ chunk(nodes[i])·K) ^ im)`, four
/// lanes per dispatched kernel call with a scalar tail (the kernel table
/// is hoisted once per stripe).
#[inline]
fn fill_two_rounds(
    a: u64,
    im: u64,
    nodes: &[u32],
    out: &mut [u64],
    mut chunk_of: impl FnMut(u32) -> u64,
) {
    use parcolor_local::simd::{kernels, SPLITMIX_LANES};
    let k = kernels();
    let mut node_it = nodes.chunks_exact(SPLITMIX_LANES);
    let mut out_it = out.chunks_exact_mut(SPLITMIX_LANES);
    for (nch, och) in (&mut node_it).zip(&mut out_it) {
        let mut z = [0u64; SPLITMIX_LANES];
        for l in 0..SPLITMIX_LANES {
            z[l] = a ^ chunk_of(nch[l]).wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        let b = (k.splitmix4)(z);
        let w = (k.splitmix4)(std::array::from_fn(|l| b[l] ^ im));
        och.copy_from_slice(&w);
    }
    for (&v, o) in node_it.remainder().iter().zip(out_it.into_remainder()) {
        let b = splitmix64(a ^ chunk_of(v).wrapping_mul(0x2545_F491_4F6C_DD1D));
        *o = splitmix64(b ^ im);
    }
}

/// Node → PRG-chunk assignment.
///
/// * `PowerColoring` mode stores the color of each node in a proper
///   coloring of `G^{4τ}` (the paper's scheme — chunk count is `O(Δ^{8τ})`,
///   bounded independently of `n`).
/// * `PerNode` mode gives node `v` chunk `v` (every pair of nodes disjoint;
///   only possible because our PRG output is virtual — see crate docs).
#[derive(Clone, Debug)]
pub enum ChunkAssignment {
    /// `chunk(v) = colors[v]`, a proper coloring of the relevant power graph.
    PowerColoring {
        /// The power-graph coloring indexed by node.
        colors: Vec<u32>,
    },
    /// chunk(v) = v.
    PerNode,
}

impl ChunkAssignment {
    /// The PRG chunk assigned to `node`.
    #[inline]
    pub fn chunk_of(&self, node: u32) -> u64 {
        match self {
            ChunkAssignment::PowerColoring { colors } => colors[node as usize] as u64,
            ChunkAssignment::PerNode => node as u64,
        }
    }

    /// Number of distinct chunks if known (power-coloring mode).
    pub fn chunk_count(&self) -> Option<usize> {
        match self {
            ChunkAssignment::PowerColoring { colors } => {
                Some(colors.iter().map(|&c| c as usize + 1).max().unwrap_or(0))
            }
            ChunkAssignment::PerNode => None,
        }
    }
}

impl Prg {
    /// Tapes for one seed block: `tapes[i]` reads seed `seed0 + i`.  Pad
    /// lanes past the end of the seed space are clamped to the last valid
    /// seed — a block evaluator only reads lanes `0..costs.len()`, so the
    /// clamped tapes are never consulted; the clamp exists solely to keep
    /// the construction in range.  This is the one place that invariant
    /// lives: every `select_seed_blocks` call site should build its tapes
    /// here.
    pub fn block_tapes<'a>(
        &self,
        seed0: u64,
        chunks: &'a ChunkAssignment,
    ) -> [PrgTape<'a>; crate::seed_search::SEED_BLOCK] {
        let last = self.seed_space() - 1;
        std::array::from_fn(|i| PrgTape::new(*self, (seed0 + i as u64).min(last), chunks))
    }
}

/// A [`Randomness`] tape backed by a PRG seed and a chunk assignment —
/// the object that gets substituted for true randomness when a normal
/// distributed procedure is simulated under a candidate seed (Lemma 10).
pub struct PrgTape<'a> {
    prg: Prg,
    seed: u64,
    chunks: &'a ChunkAssignment,
}

impl<'a> PrgTape<'a> {
    /// Tape reading chunked PRG output under `seed`.
    pub fn new(prg: Prg, seed: u64, chunks: &'a ChunkAssignment) -> Self {
        assert!(seed < prg.seed_space(), "seed out of range");
        PrgTape { prg, seed, chunks }
    }

    /// The seed this tape evaluates.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Randomness for PrgTape<'_> {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        // `stream` and `idx` jointly index within the node's chunk.
        let chunk = self.chunks.chunk_of(node);
        self.prg
            .word(self.seed, chunk, (splitmix64(stream) as u32) ^ idx)
    }

    /// Batched plane: the stream mix and the seed round are computed once
    /// per stripe (the scalar path re-derives both per call), then
    /// [`Prg::fill_words`] runs the remaining two rounds over lanes.
    fn fill_words(&self, stream: u64, nodes: &[u32], idx: u32, out: &mut [u64]) {
        let eff = (splitmix64(stream) as u32) ^ idx;
        self.prg.fill_words(self.seed, self.chunks, nodes, eff, out);
    }

    /// Idx-stripe along one node's chunk: seed, chunk and stream rounds
    /// hoisted, one splitmix round per output word.  The effective index
    /// is `splitmix64(stream) ^ (idx0 + i)` — identical to what the
    /// scalar [`Randomness::word`] computes per call.
    fn fill_words_seq(&self, node: u32, stream: u64, idx0: u32, out: &mut [u64]) {
        use parcolor_local::simd::{kernels, SPLITMIX_LANES};
        let k = kernels();
        let s = splitmix64(stream) as u32;
        let chunk = self.chunks.chunk_of(node);
        let a = splitmix64(self.seed ^ 0xD1B5_4A32_D192_ED03);
        let b = splitmix64(a ^ chunk.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut out_it = out.chunks_exact_mut(SPLITMIX_LANES);
        let mut i = 0u32;
        for och in &mut out_it {
            let w = (k.splitmix4)(std::array::from_fn(|l| {
                let idx = s ^ idx0.wrapping_add(i).wrapping_add(l as u32);
                b ^ (idx as u64).wrapping_mul(0x9E6C_63D0_876A_368B)
            }));
            och.copy_from_slice(&w);
            i += SPLITMIX_LANES as u32;
        }
        for o in out_it.into_remainder() {
            let idx = s ^ idx0.wrapping_add(i);
            *o = splitmix64(b ^ (idx as u64).wrapping_mul(0x9E6C_63D0_876A_368B));
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_deterministic() {
        let prg = Prg::new(10);
        assert_eq!(prg.word(5, 3, 7), prg.word(5, 3, 7));
    }

    #[test]
    fn seeds_change_output() {
        let prg = Prg::new(10);
        let diffs = (0..100)
            .filter(|&i| prg.word(1, i, 0) != prg.word(2, i, 0))
            .count();
        assert_eq!(diffs, 100);
    }

    #[test]
    fn chunks_are_disjoint_streams() {
        let prg = Prg::new(8);
        let same = (0..1000u64)
            .filter(|&c| prg.word(0, c, 0) == prg.word(0, c + 1, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_space_size() {
        assert_eq!(Prg::new(8).seed_space(), 256);
        assert_eq!(Prg::new(1).seed_space(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_seed_bits() {
        Prg::new(40);
    }

    #[test]
    #[should_panic]
    fn tape_rejects_out_of_range_seed() {
        let prg = Prg::new(4);
        let chunks = ChunkAssignment::PerNode;
        PrgTape::new(prg, 16, &chunks);
    }

    #[test]
    fn power_coloring_chunks() {
        let chunks = ChunkAssignment::PowerColoring {
            colors: vec![0, 1, 0, 2],
        };
        assert_eq!(chunks.chunk_of(0), 0);
        assert_eq!(chunks.chunk_of(3), 2);
        assert_eq!(chunks.chunk_count(), Some(3));
    }

    #[test]
    fn per_node_chunks() {
        let chunks = ChunkAssignment::PerNode;
        assert_eq!(chunks.chunk_of(17), 17);
        assert_eq!(chunks.chunk_count(), None);
    }

    #[test]
    fn tape_words_look_uniform() {
        let prg = Prg::new(12);
        let chunks = ChunkAssignment::PerNode;
        let tape = PrgTape::new(prg, 1234, &chunks);
        let mut ones = 0u32;
        for v in 0..500u32 {
            ones += tape.word(v, 0, 0).count_ones();
        }
        let avg = ones as f64 / 500.0;
        assert!((avg - 32.0).abs() < 1.5, "avg bit weight {avg}");
    }

    #[test]
    fn batched_tape_matches_scalar_for_both_assignments() {
        let prg = Prg::new(12);
        let per_node = ChunkAssignment::PerNode;
        let coloring = ChunkAssignment::PowerColoring {
            colors: (0..64u32).map(|v| v % 7).collect(),
        };
        for chunks in [&per_node, &coloring] {
            let tape = PrgTape::new(prg, 777, chunks);
            let nodes: Vec<u32> = (0..37u32).map(|i| i % 64).collect();
            let mut got = vec![0u64; nodes.len()];
            tape.fill_words(5, &nodes, 2, &mut got);
            for (i, &v) in nodes.iter().enumerate() {
                assert_eq!(got[i], tape.word(v, 5, 2), "node {v}");
            }
            let mut seq = vec![0u64; 19];
            tape.fill_words_seq(9, 5, 100, &mut seq);
            for (i, &w) in seq.iter().enumerate() {
                assert_eq!(w, tape.word(9, 5, 100 + i as u32));
            }
        }
    }

    #[test]
    fn prg_fill_words_matches_word() {
        let prg = Prg::new(8);
        let chunks = ChunkAssignment::PerNode;
        let nodes: Vec<u32> = (0..17).collect();
        let mut out = vec![0u64; 17];
        prg.fill_words(3, &chunks, &nodes, 42, &mut out);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(out[i], prg.word(3, v as u64, 42));
        }
    }

    #[test]
    fn shared_chunk_nodes_share_bits() {
        // Nodes mapped to the same chunk with the same stream/idx read the
        // same words — exactly the sharing the power-graph coloring rules
        // out within distance 4τ.
        let prg = Prg::new(8);
        let chunks = ChunkAssignment::PowerColoring {
            colors: vec![7, 7, 3],
        };
        let tape = PrgTape::new(prg, 9, &chunks);
        assert_eq!(tape.word(0, 0, 5), tape.word(1, 0, 5));
        assert_ne!(tape.word(0, 0, 5), tape.word(2, 0, 5));
    }
}
