//! Bounded-independence hash families over the Mersenne prime `2^61 - 1`.
//!
//! `LowSpacePartition` (Section 6 of the paper, following CDP21d) needs two
//! hash functions — `h₁ : [n] → [n^δ]` on nodes and `h₂ : [n²] → [n^δ - 1]`
//! on colors — drawn from a small family such that a good pair can be
//! found deterministically by the method of conditional expectations
//! (Lemma 23).  Pairwise independence suffices for the degree/palette
//! concentration used there; we provide general `k`-wise families
//! (polynomials of degree `k-1` over `F_p`) so ablations can vary `k`.
//!
//! ## The batch contract
//!
//! Hot paths (the partition's per-seed hash plane) evaluate members over
//! a stripe of inputs at once with [`KWiseHash::eval_batch`] instead of
//! one scalar [`KWiseHash::eval`] per key.  The batch is **bit-identical
//! to scalar** — the same Horner recurrence over `F_{2^61-1}` with the
//! same coefficient vector (expanded once per seed by
//! [`KWiseFamily::member`]), merely run structure-of-arrays: coefficients
//! in the outer loop, a fixed-width lane of accumulators inner, so the
//! modular multiply-add autovectorizes.  The lane width is an internal
//! detail; stripes of any length, including empty, are valid.

use parcolor_local::tape::{splitmix64, MIX_LANES};
use rayon::prelude::*;

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduce a 122-bit product modulo `2^61 - 1` without division.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let lo = (x & MERSENNE_P as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= MERSENNE_P {
        s -= MERSENNE_P;
    }
    s
}

/// `(a * b) mod (2^61 - 1)`.
#[inline]
pub fn mulmod(a: u64, b: u64) -> u64 {
    mod_mersenne(a as u128 * b as u128)
}

#[inline]
fn addmod(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2^61, no overflow
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// A `k`-wise independent hash family `h : u64 → [range]`, realized as
/// degree-`(k-1)` polynomials over `F_{2^61-1}` composed with a range
/// reduction.  Family members are indexed by a 64-bit seed that expands
/// into the `k` coefficients through the SplitMix avalanche.
#[derive(Clone, Copy, Debug)]
pub struct KWiseFamily {
    k: u32,
    range: u64,
}

impl KWiseFamily {
    /// A `k`-wise independent family into `[range]`.
    pub fn new(k: u32, range: u64) -> Self {
        assert!(k >= 1, "independence k must be >= 1");
        assert!(range >= 1, "range must be >= 1");
        KWiseFamily { k, range }
    }

    /// Independence parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Output range size.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Instantiate the member with the given seed.
    pub fn member(&self, seed: u64) -> KWiseHash {
        let coeffs: Vec<u64> = (0..self.k)
            .map(|i| splitmix64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407)) % MERSENNE_P)
            .collect();
        KWiseHash {
            coeffs,
            range: self.range,
        }
    }
}

/// A member of a [`KWiseFamily`]: `h(x) = poly(x) mod p mod range`.
#[derive(Clone, Debug)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Evaluate the hash on `x` (Horner's rule, `O(k)` multiplications).
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let xm = x % MERSENNE_P;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = addmod(mulmod(acc, xm), c);
        }
        // Multiply-shift range reduction: bias ≤ range / p ≈ 2^-61·range,
        // negligible at every range we use (≤ n^δ ≤ 2^32).
        ((acc as u128 * self.range as u128) >> 61) as u64
    }

    /// Batched [`KWiseHash::eval`] over a stripe of inputs:
    /// `out[i] = eval(xs[i])`, bit-identically.
    ///
    /// Horner runs structure-of-arrays — each coefficient is applied to a
    /// lane of accumulators before the next coefficient loads — so the
    /// `F_{2^61-1}` multiply-add is straight-line per lane and
    /// autovectorizable; the tail shorter than a lane falls back to the
    /// scalar recurrence (identical arithmetic either way).
    pub fn eval_batch(&self, xs: &[u64], out: &mut [u64]) {
        debug_assert_eq!(xs.len(), out.len());
        // No small-k scalar shortcut: measured on the AVX2 reference
        // host (400k keys, target-cpu=native), the lane-staged Horner
        // beats the scalar per-element loop at EVERY degree — 1.47× at
        // k = 1, 1.32× at k = 2, rising to 1.58× at k = 8 — because the
        // staged `% p` / reduction steps vectorize even when the Horner
        // chain itself is one multiply-add.  (The previous `degree ≤ 1`
        // shortcut was exactly the k = 2 regression
        // `BENCH_hash_batch.json` recorded.)  Stripes shorter than one
        // lane still run the scalar tail below.
        let mut xs_it = xs.chunks_exact(MIX_LANES);
        let mut out_it = out.chunks_exact_mut(MIX_LANES);
        for (xch, och) in (&mut xs_it).zip(&mut out_it) {
            let mut xm = [0u64; MIX_LANES];
            for l in 0..MIX_LANES {
                xm[l] = xch[l] % MERSENNE_P;
            }
            let mut acc = [0u64; MIX_LANES];
            for &c in self.coeffs.iter().rev() {
                for l in 0..MIX_LANES {
                    acc[l] = addmod(mulmod(acc[l], xm[l]), c);
                }
            }
            for l in 0..MIX_LANES {
                och[l] = ((acc[l] as u128 * self.range as u128) >> 61) as u64;
            }
        }
        for (&x, o) in xs_it.remainder().iter().zip(out_it.into_remainder()) {
            *o = self.eval(x);
        }
    }
}

/// Convenience wrapper for the pairwise (`k = 2`) case used by
/// `LowSpacePartition`.
#[derive(Clone, Copy, Debug)]
pub struct PairwiseHash {
    family: KWiseFamily,
}

impl PairwiseHash {
    /// A pairwise-independent family into `[range]`.
    pub fn new(range: u64) -> Self {
        PairwiseHash {
            family: KWiseFamily::new(2, range),
        }
    }

    /// Instantiate the member with the given seed.
    pub fn member(&self, seed: u64) -> KWiseHash {
        self.family.member(seed)
    }

    /// Output range size.
    pub fn range(&self) -> u64 {
        self.family.range()
    }
}

/// Chi-square statistic of a hash member's bucket distribution over the
/// keys `0..nkeys` — used by tests and the E4 diagnostics to confirm the
/// family spreads loads as pairwise independence predicts.
pub fn bucket_chi_square(h: &KWiseHash, nkeys: u64, range: u64) -> f64 {
    let counts: Vec<u64> = (0..range)
        .map(|b| {
            (0..nkeys)
                .into_par_iter()
                .filter(|&x| h.eval(x) == b)
                .count() as u64
        })
        .collect();
    let expected = nkeys as f64 / range as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_arithmetic() {
        assert_eq!(mulmod(MERSENNE_P - 1, 2) % MERSENNE_P, MERSENNE_P - 2);
        assert_eq!(mulmod(0, 123), 0);
        assert_eq!(addmod(MERSENNE_P - 1, 1), 0);
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let fam = KWiseFamily::new(2, 10);
        let h = fam.member(99);
        for x in 0..1000u64 {
            let v = h.eval(x);
            assert!(v < 10);
            assert_eq!(v, h.eval(x));
        }
    }

    #[test]
    fn different_members_differ() {
        let fam = KWiseFamily::new(2, 1 << 20);
        let h1 = fam.member(1);
        let h2 = fam.member(2);
        let same = (0..1000u64).filter(|&x| h1.eval(x) == h2.eval(x)).count();
        assert!(same < 5, "members nearly identical: {same}");
    }

    #[test]
    fn buckets_are_balanced() {
        let fam = KWiseFamily::new(2, 16);
        let h = fam.member(7);
        let mut counts = [0u32; 16];
        for x in 0..16_000u64 {
            counts[h.eval(x) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 1000.0).abs() < 150.0, "{counts:?}");
        }
    }

    #[test]
    fn pairwise_collision_rate() {
        // For pairwise-independent h into range R, Pr[h(x)=h(y)] ≈ 1/R.
        let fam = PairwiseHash::new(64);
        let mut collisions = 0u32;
        let trials = 200u64;
        let mut total = 0u32;
        for seed in 0..trials {
            let h = fam.member(seed);
            for x in 0..50u64 {
                for y in (x + 1)..50 {
                    total += 1;
                    if h.eval(x) == h.eval(y) {
                        collisions += 1;
                    }
                }
            }
        }
        let rate = collisions as f64 / total as f64;
        assert!((rate - 1.0 / 64.0).abs() < 0.005, "collision rate {rate}");
    }

    #[test]
    fn higher_k_members_work() {
        let fam = KWiseFamily::new(4, 100);
        let h = fam.member(5);
        let vals: Vec<u64> = (0..50).map(|x| h.eval(x)).collect();
        assert!(vals.iter().all(|&v| v < 100));
        // degree-3 polynomial: not constant
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn chi_square_is_sane() {
        let fam = KWiseFamily::new(2, 8);
        let h = fam.member(3);
        let chi = bucket_chi_square(&h, 8000, 8);
        // dof = 7; chi-square should be far below catastrophic values.
        assert!(chi < 60.0, "chi={chi}");
    }

    #[test]
    fn eval_batch_matches_scalar_all_k_and_lane_boundaries() {
        for k in 1..=4u32 {
            let fam = KWiseFamily::new(k, 1000);
            let h = fam.member(0x1234_5678 ^ k as u64);
            for len in [0usize, 1, MIX_LANES - 1, MIX_LANES, MIX_LANES + 1, 45] {
                let xs: Vec<u64> = (0..len as u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect();
                let mut out = vec![0u64; len];
                h.eval_batch(&xs, &mut out);
                for (i, &x) in xs.iter().enumerate() {
                    assert_eq!(out[i], h.eval(x), "k={k} len={len} lane={i}");
                }
            }
        }
    }

    #[test]
    fn range_one_maps_everything_to_zero() {
        let fam = KWiseFamily::new(2, 1);
        let h = fam.member(11);
        assert!((0..100).all(|x| h.eval(x) == 0));
    }
}
