//! Deterministic seed selection — the "method of conditional expectations"
//! half of the paper's framework (Lemma 10).
//!
//! Given a cost functional `cost(seed)` (for us: the number of nodes
//! failing the strong success property when a normal distributed procedure
//! is simulated under `seed`), the derandomizer must *deterministically*
//! find a seed whose cost is at most the mean over the seed space.  Three
//! interchangeable strategies are provided:
//!
//! * [`SeedStrategy::Exhaustive`] — evaluate every seed (rayon-parallel)
//!   and take the argmin.  Gold standard; cost `2^d · eval`.
//! * [`SeedStrategy::BitwiseCondExp`] — the textbook method of conditional
//!   expectations: fix seed bits one at a time, each time choosing the
//!   branch with the smaller conditional mean.  This is the form that maps
//!   onto MPC rounds (one converge-cast per bit) and is what Lemma 10
//!   charges; it returns a per-bit trace for the E6 experiment.  The final
//!   cost is ≤ the global mean by induction on bits.
//! * [`SeedStrategy::FixedSubset`] — evaluate a deterministic prefix of the
//!   seed space and take the argmin.  A throughput concession for large
//!   instances; still fully deterministic.  Its guarantee is relative to
//!   the subset mean (reported so experiments can compare).
//!
//! `SingleSeed` pins the seed (used to measure "no derandomization" in
//! ablations).
//!
//! ## Fast path: [`select_seed_with`]
//!
//! [`select_seed`] evaluates a plain `cost(seed)` closure and (for
//! `Exhaustive`/`BitwiseCondExp`) materializes the whole `2^d`-entry cost
//! table — simple, but allocation-heavy and wasteful when each evaluation
//! itself wants reusable scratch buffers.  [`select_seed_with`] is the
//! batched replacement used by the framework's hot loop:
//!
//! * the caller provides a `make_scratch` factory and an
//!   `eval(seed, &mut scratch)` closure, so each worker thread owns one
//!   scratch arena and seed evaluations allocate nothing after warm-up;
//! * seeds are folded on the **persistent work-stealing pool** of
//!   [`parcolor_exec`] (seed-level parallelism only — evaluations
//!   themselves must be sequential): workers steal [`SEED_BLOCK`]-sized
//!   blocks off one shared atomic counter, merging `(sum, min, argmin)`
//!   with a lowest-seed tie-break; the block fold is grouping-invariant,
//!   so the result is independent of both the worker count and the steal
//!   order (the `_n` variants pin the worker count explicitly);
//! * `BitwiseCondExp` becomes a true streaming conditional-expectation
//!   walk: each half-space mean is a fresh parallel reduction, nothing is
//!   materialized, and the trace/guarantee fields match the exhaustive
//!   table walk bit-for-bit for integer-valued costs (SSP failure counts —
//!   verified by `tests/seed_fastpath_equivalence.rs`).

use parcolor_exec::{Executor, SumMinArgmin};
use rayon::prelude::*;
use serde::Serialize;

/// Width of one seed block: [`select_seed_blocks`] hands its evaluator up
/// to this many **contiguous** seeds at a time, so cost functions can
/// amortize shared work (graph scans, plane fills) across the block's
/// seed lanes.  Sized to one AVX2 register of `u32` picks — and capped at
/// 8 by the `u8` lane bitmasks block evaluators accumulate clash bits in
/// (widen those before raising this).  Evaluators may rely on block
/// lengths never exceeding this.
pub const SEED_BLOCK: usize = 8;
const _: () = assert!(SEED_BLOCK <= u8::BITS as usize, "lane masks are u8");

/// Strategy for choosing a PRG seed deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum SeedStrategy {
    /// Evaluate all `2^seed_bits` seeds, pick the argmin (ties → lowest).
    Exhaustive,
    /// Evaluate seeds `0..k`, pick the argmin.
    FixedSubset(u64),
    /// Bitwise method of conditional expectations over the full space.
    BitwiseCondExp,
    /// Use this seed unconditionally (ablation baseline).
    SingleSeed(u64),
}

/// Result of a seed search.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SeedSelection {
    /// The chosen seed.
    pub seed: u64,
    /// Cost of the chosen seed.
    pub cost: f64,
    /// Mean cost over the evaluated seeds.
    pub mean_cost: f64,
    /// Minimum cost over the evaluated seeds (= `cost` except `SingleSeed`).
    pub min_cost: f64,
    /// How many seeds were evaluated.
    pub evaluated: u64,
    /// For `BitwiseCondExp`: `(bit, mean_if_0, mean_if_1)` per fixed bit,
    /// most-significant first.
    pub trace: Vec<(u32, f64, f64)>,
}

impl SeedSelection {
    /// The derandomization guarantee of Lemma 10: the chosen seed's cost is
    /// at most the mean over the evaluated space.
    pub fn satisfies_guarantee(&self) -> bool {
        self.cost <= self.mean_cost + 1e-9
    }
}

/// Deterministically choose a seed from `{0,1}^seed_bits` minimizing
/// `cost`, following `strategy`.  `cost` must be a pure function of the
/// seed; evaluation is parallelized over seeds with rayon.
pub fn select_seed<F>(seed_bits: u32, strategy: SeedStrategy, cost: F) -> SeedSelection
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!((1..=24).contains(&seed_bits));
    let space = 1u64 << seed_bits;
    match strategy {
        SeedStrategy::SingleSeed(seed) => {
            assert!(seed < space, "seed {seed} outside 2^{seed_bits} space");
            let c = cost(seed);
            SeedSelection {
                seed,
                cost: c,
                mean_cost: c,
                min_cost: c,
                evaluated: 1,
                trace: Vec::new(),
            }
        }
        SeedStrategy::FixedSubset(k) => {
            let k = k.clamp(1, space);
            let costs: Vec<f64> = (0..k).into_par_iter().map(&cost).collect();
            argmin_selection(&costs, k)
        }
        SeedStrategy::Exhaustive => {
            let costs: Vec<f64> = (0..space).into_par_iter().map(&cost).collect();
            argmin_selection(&costs, space)
        }
        SeedStrategy::BitwiseCondExp => {
            let costs: Vec<f64> = (0..space).into_par_iter().map(&cost).collect();
            bitwise_walk(seed_bits, &costs)
        }
    }
}

/// Deterministically choose a seed using per-thread scratch state — the
/// zero-allocation fast path of the seed search.
///
/// `make_scratch` builds one scratch arena per worker thread;
/// `eval(seed, &mut scratch)` must be a pure function of the seed (the
/// scratch is an optimization detail, not state: evaluations must not
/// depend on what a previous seed left in it beyond capacity).  Returns
/// exactly the same `SeedSelection` as [`select_seed`] for integer-valued
/// cost functionals, for every strategy.
///
/// Parallelism is over **seeds only**: chunks of the seed space are folded
/// on scoped threads, each owning one scratch.  Evaluations must therefore
/// be sequential internally — exactly the regime the framework's
/// `simulate_into` implementations are written for.
pub fn select_seed_with<S, M, F>(
    seed_bits: u32,
    strategy: SeedStrategy,
    make_scratch: M,
    eval: F,
) -> SeedSelection
where
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(u64, &mut S) -> f64 + Sync,
{
    select_seed_with_n(seed_bits, strategy, 0, make_scratch, eval)
}

/// [`select_seed_with`] with an explicit worker count (`0` = auto); see
/// [`select_seed_blocks_n`] for the sharding semantics.
pub fn select_seed_with_n<S, M, F>(
    seed_bits: u32,
    strategy: SeedStrategy,
    workers: usize,
    make_scratch: M,
    eval: F,
) -> SeedSelection
where
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(u64, &mut S) -> f64 + Sync,
{
    // The scalar evaluator is a degenerate block evaluator.
    select_seed_blocks_n(
        seed_bits,
        strategy,
        workers,
        make_scratch,
        |seed0, costs, scratch| {
            for (i, c) in costs.iter_mut().enumerate() {
                *c = eval(seed0 + i as u64, scratch);
            }
        },
    )
}

/// [`select_seed_with`] with a **block** evaluator — the batched
/// randomness-plane form of the seed search.
///
/// `eval_block(seed0, costs, scratch)` must write
/// `costs[i] = cost(seed0 + i)` for every `i < costs.len()`; blocks are
/// contiguous, at most [`SEED_BLOCK`] long, and aligned to block-index
/// boundaries of the evaluated range.  Because each cost must be a pure
/// function of its own seed, block grouping (and hence worker count) can
/// never change the outcome; the selection is field-for-field identical
/// to [`select_seed`] for integer-valued costs.
///
/// The block form is what lets evaluators amortize per-seed fixed costs:
/// a procedure can materialize the pick plane of all the block's seeds
/// (structure-of-arrays, one `u32` lane per seed) and run its clash scan
/// once over the graph with lane-parallel compares, instead of once per
/// seed.
pub fn select_seed_blocks<S, M, F>(
    seed_bits: u32,
    strategy: SeedStrategy,
    make_scratch: M,
    eval_block: F,
) -> SeedSelection
where
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(u64, &mut [f64], &mut S) + Sync,
{
    select_seed_blocks_n(seed_bits, strategy, 0, make_scratch, eval_block)
}

/// [`select_seed_blocks`] with an explicit worker count (`0` = auto: the
/// `PARCOLOR_THREADS` env var — `PARCOLOR_SEED_THREADS` is honored as a
/// deprecated alias — else all hardware threads).
///
/// Workers **steal seed blocks** off one shared atomic counter instead of
/// owning fixed contiguous chunks, so a straggler block (dense
/// neighborhood, cache miss storm) never idles the other workers.  The
/// fold merges `(sum, min, argmin)` with an explicit lowest-seed
/// tie-break, which makes the selection independent of the (nondeterministic)
/// steal order: for integer-valued costs — every cost functional in this
/// workspace — the result is bit-identical at every worker count.
///
/// Callers supplying **non-integer** costs keep a deterministic
/// `best_seed`/`min_cost` (the min/argmin merge is order-invariant), but
/// `sum` — and hence `mean_cost` — accumulates per-worker partials in
/// steal order, so its low bits may differ run to run.  Round such costs
/// to a fixed grid (or scale to integers) if an exact mean matters.
pub fn select_seed_blocks_n<S, M, F>(
    seed_bits: u32,
    strategy: SeedStrategy,
    workers: usize,
    make_scratch: M,
    eval_block: F,
) -> SeedSelection
where
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(u64, &mut [f64], &mut S) + Sync,
{
    let mut folder = LocalFolder {
        pool: Vec::new(),
        requested: workers,
        make_scratch: &make_scratch,
        eval_block: &eval_block,
    };
    select_seed_folded(seed_bits, strategy, &mut folder)
}

/// The range-fold surface a seed-selection **strategy** runs against —
/// the hook that lets the same strategy logic (exhaustive argmin,
/// fixed-subset, the bitwise conditional-expectation walk) drive either
/// the in-process work-stealing fold *or* a remote fleet.
///
/// The contract is the executor crate's: every cost must be a pure
/// function of its seed, and [`fold_range`](RangeFolder::fold_range)
/// must return the grouping-invariant `(sum, min, argmin)` of the range
/// with the lowest-seed argmin tie-break.  Any implementation honoring
/// that — however it shards, schedules, retries, or re-issues the range —
/// yields a [`SeedSelection`] bit-identical to the local path for
/// integer-valued costs, which is exactly why the distributed layer
/// (`parcolor-dist`) can re-issue orphaned blocks at will.
pub trait RangeFolder {
    /// Fold costs over seeds `start..start + len` (`len >= 1`).
    fn fold_range(&mut self, start: u64, len: u64) -> SumMinArgmin;
    /// Evaluate a single seed's cost (the chosen-seed re-evaluation of
    /// the bitwise walk and the `SingleSeed` pin).
    fn eval_seed(&mut self, seed: u64) -> f64;
}

/// Run a seed-selection strategy against an arbitrary [`RangeFolder`].
/// This is [`select_seed_blocks_n`] with the fold backend abstracted
/// out; the local path delegates here, so any conforming folder is
/// field-for-field identical to it by construction.
pub fn select_seed_folded(
    seed_bits: u32,
    strategy: SeedStrategy,
    folder: &mut dyn RangeFolder,
) -> SeedSelection {
    assert!((1..=24).contains(&seed_bits));
    let space = 1u64 << seed_bits;
    match strategy {
        SeedStrategy::SingleSeed(seed) => {
            assert!(seed < space, "seed {seed} outside 2^{seed_bits} space");
            let c = folder.eval_seed(seed);
            SeedSelection {
                seed,
                cost: c,
                mean_cost: c,
                min_cost: c,
                evaluated: 1,
                trace: Vec::new(),
            }
        }
        SeedStrategy::FixedSubset(k) => {
            let k = k.clamp(1, space);
            let fold = folder.fold_range(0, k);
            SeedSelection {
                seed: fold.argmin,
                cost: fold.min,
                mean_cost: fold.sum / k as f64,
                min_cost: fold.min,
                evaluated: k,
                trace: Vec::new(),
            }
        }
        SeedStrategy::Exhaustive => {
            let fold = folder.fold_range(0, space);
            SeedSelection {
                seed: fold.argmin,
                cost: fold.min,
                mean_cost: fold.sum / space as f64,
                min_cost: fold.min,
                evaluated: space,
                trace: Vec::new(),
            }
        }
        SeedStrategy::BitwiseCondExp => {
            // Streaming method of conditional expectations: fix bits
            // MSB-first, each step folding both half-spaces.  Total
            // evaluations are `2^{d+1} - 2` plus a final re-evaluation of
            // the chosen seed; `mean_cost`/`min_cost` come from the first
            // level, whose two folds jointly cover the entire space.
            let mut prefix: u64 = 0;
            let mut trace = Vec::with_capacity(seed_bits as usize);
            let mut mean = 0.0;
            let mut min = f64::INFINITY;
            for fixed in 0..seed_bits {
                let bit = seed_bits - 1 - fixed; // position being fixed
                let block = 1u64 << bit; // size of each half
                let f0 = folder.fold_range(prefix, block);
                let f1 = folder.fold_range(prefix | block, block);
                if fixed == 0 {
                    mean = (f0.sum + f1.sum) / space as f64;
                    min = f0.min.min(f1.min);
                }
                let mean0 = f0.sum / block as f64;
                let mean1 = f1.sum / block as f64;
                trace.push((bit, mean0, mean1));
                if mean1 < mean0 {
                    prefix |= block;
                }
            }
            let cost = folder.eval_seed(prefix);
            SeedSelection {
                seed: prefix,
                cost,
                mean_cost: mean,
                min_cost: min,
                evaluated: space,
                trace,
            }
        }
    }
}

/// The in-process [`RangeFolder`]: block-stealing folds on the
/// persistent executor pool, with per-worker scratch arenas grown
/// lazily to the widest fold and reused across every fold of the walk.
struct LocalFolder<'a, S, M, F> {
    pool: Vec<S>,
    requested: usize,
    make_scratch: &'a M,
    eval_block: &'a F,
}

impl<S, M, F> RangeFolder for LocalFolder<'_, S, M, F>
where
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(u64, &mut [f64], &mut S) + Sync,
{
    fn fold_range(&mut self, start: u64, len: u64) -> SumMinArgmin {
        let w = seed_workers(len, self.requested);
        while self.pool.len() < w {
            self.pool.push((self.make_scratch)());
        }
        fold_seed_range_in(&mut self.pool[..w], start, len, self.eval_block)
    }

    fn eval_seed(&mut self, seed: u64) -> f64 {
        if self.pool.is_empty() {
            self.pool.push((self.make_scratch)());
        }
        let mut c = [0.0f64];
        (self.eval_block)(seed, &mut c, &mut self.pool[0]);
        c[0]
    }
}

/// Partial aggregate of a seed-range fold: the grouping-invariant
/// `(sum, min, argmin)` reduce, now provided by the executor crate (the
/// scheduler was extracted from this module — `parcolor_exec` keeps the
/// lowest-index tie-break semantics the seed search pioneered).
type RangeFold = SumMinArgmin;

/// Fold a block evaluator over seeds `start..start + len` with one
/// scratch per worker taken from `pool` (worker count = `pool.len()`), so
/// callers issuing many folds (the streaming bitwise walk) construct
/// arenas once and reuse them across folds instead of re-zeroing O(n)
/// memory per half-space.
///
/// Runs on the workspace's persistent work-stealing pool
/// ([`Executor::global`]): workers steal [`SEED_BLOCK`]-aligned blocks
/// off one shared atomic counter, so load imbalance between seeds (the
/// cost of one evaluation depends on the outcome it simulates) never
/// leaves a worker idle behind a fixed chunk boundary — and no threads
/// are spawned per call.  Which worker evaluates which block is
/// nondeterministic; the *result* is not — the block fold is
/// grouping-invariant (see [`SumMinArgmin`]), so the merged
/// `(sum, min, argmin)` is bit-identical to the serial walk for
/// integer-valued costs.
pub fn fold_seed_range_in<S, F>(pool: &mut [S], start: u64, len: u64, eval_block: &F) -> RangeFold
where
    S: Send,
    F: Fn(u64, &mut [f64], &mut S) + Sync,
{
    debug_assert!(len > 0 && !pool.is_empty());
    parcolor_exec::par_fold_in(
        Executor::global(),
        pool,
        start..start + len,
        SEED_BLOCK as u64,
        || SumMinArgmin::EMPTY,
        |seed, blen, mut acc: SumMinArgmin, scratch: &mut S| {
            let mut costs = [0.0f64; SEED_BLOCK];
            let block = &mut costs[..blen as usize];
            eval_block(seed, block, scratch);
            let mut b = SumMinArgmin::EMPTY;
            for (i, &c) in block.iter().enumerate() {
                b.observe(seed + i as u64, c);
            }
            acc = acc.merge(b);
            acc
        },
        |a, b| a.merge(b),
    )
}

/// Worker threads for a fold over `len` seeds.  `requested = 0` means
/// auto: the `PARCOLOR_THREADS` env var if set (with
/// `PARCOLOR_SEED_THREADS` honored as a deprecated alias), else all
/// hardware threads — see [`parcolor_exec::resolve_workers`].  Tiny
/// ranges stay serial — scheduling overhead would dominate — and the
/// count is capped so every worker has ≥ 32 seeds.
pub fn seed_workers(len: u64, requested: usize) -> usize {
    let hw = parcolor_exec::resolve_workers(requested);
    if len < 64 {
        1
    } else {
        hw.min((len / 32) as usize).max(1)
    }
}

fn argmin_selection(costs: &[f64], evaluated: u64) -> SeedSelection {
    let (seed, &cmin) = costs
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| a.partial_cmp(b).unwrap().then(i.cmp(j)))
        .expect("non-empty seed space");
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    SeedSelection {
        seed: seed as u64,
        cost: cmin,
        mean_cost: mean,
        min_cost: cmin,
        evaluated,
        trace: Vec::new(),
    }
}

/// Fix bits most-significant first; at each step compute the exact
/// conditional mean of both extensions and keep the smaller.
fn bitwise_walk(seed_bits: u32, costs: &[f64]) -> SeedSelection {
    let mut prefix: u64 = 0;
    let mut trace = Vec::with_capacity(seed_bits as usize);
    for fixed in 0..seed_bits {
        let bit = seed_bits - 1 - fixed; // position being fixed this step
        let block = 1u64 << bit; // size of each half under the prefix
        let base = prefix; // prefix occupies bits above `bit`
        let mean0 = range_mean(costs, base, block);
        let mean1 = range_mean(costs, base | block, block);
        trace.push((bit, mean0, mean1));
        if mean1 < mean0 {
            prefix |= block;
        }
    }
    let chosen_cost = costs[prefix as usize];
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    SeedSelection {
        seed: prefix,
        cost: chosen_cost,
        mean_cost: mean,
        min_cost: min,
        evaluated: costs.len() as u64,
        trace,
    }
}

fn range_mean(costs: &[f64], start: u64, len: u64) -> f64 {
    let s = start as usize;
    let e = s + len as usize;
    costs[s..e].par_iter().sum::<f64>() / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(seed: u64) -> f64 {
        // Minimum at 37.
        let d = seed as f64 - 37.0;
        d * d
    }

    #[test]
    fn exhaustive_finds_global_min() {
        let sel = select_seed(8, SeedStrategy::Exhaustive, quad);
        assert_eq!(sel.seed, 37);
        assert_eq!(sel.cost, 0.0);
        assert_eq!(sel.evaluated, 256);
        assert!(sel.satisfies_guarantee());
    }

    #[test]
    fn bitwise_beats_mean() {
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, quad);
        assert!(sel.satisfies_guarantee());
        assert_eq!(sel.trace.len(), 8);
        // For a unimodal cost the bitwise walk lands at the optimum here.
        assert_eq!(sel.seed, 37);
    }

    #[test]
    fn bitwise_guarantee_on_adversarial_cost() {
        // Spiky cost: zero at one point, large elsewhere; the walk may not
        // find the zero but must end at most at the mean.
        let cost = |s: u64| if s == 200 { 0.0 } else { 10.0 + (s % 7) as f64 };
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, cost);
        assert!(sel.satisfies_guarantee(), "{sel:?}");
    }

    #[test]
    fn fixed_subset_stays_in_prefix() {
        let sel = select_seed(10, SeedStrategy::FixedSubset(16), quad);
        assert!(sel.seed < 16);
        assert_eq!(sel.evaluated, 16);
        assert_eq!(sel.seed, 15); // closest to 37 within 0..16
    }

    #[test]
    fn fixed_subset_clamps_to_space() {
        let sel = select_seed(3, SeedStrategy::FixedSubset(1000), quad);
        assert_eq!(sel.evaluated, 8);
    }

    #[test]
    fn single_seed_is_pinned() {
        let sel = select_seed(8, SeedStrategy::SingleSeed(5), quad);
        assert_eq!(sel.seed, 5);
        assert_eq!(sel.evaluated, 1);
    }

    #[test]
    #[should_panic]
    fn single_seed_out_of_range_panics() {
        select_seed(4, SeedStrategy::SingleSeed(16), quad);
    }

    #[test]
    fn ties_break_to_lowest_seed() {
        let sel = select_seed(6, SeedStrategy::Exhaustive, |_| 1.0);
        assert_eq!(sel.seed, 0);
    }

    #[test]
    fn bitwise_equals_exhaustive_on_monotone_cost() {
        let cost = |s: u64| s as f64;
        let e = select_seed(7, SeedStrategy::Exhaustive, cost);
        let b = select_seed(7, SeedStrategy::BitwiseCondExp, cost);
        assert_eq!(e.seed, b.seed);
        assert_eq!(b.seed, 0);
    }

    /// The fast path must agree with the reference path field-for-field on
    /// integer-valued costs, for every strategy.
    #[test]
    fn select_seed_with_matches_reference() {
        let cost = |s: u64| ((s * 37 + 11) % 19) as f64;
        for strategy in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(23),
            SeedStrategy::SingleSeed(5),
        ] {
            let old = select_seed(8, strategy, cost);
            let new = select_seed_with(8, strategy, || (), |s, _| cost(s));
            assert_eq!(old.seed, new.seed, "{strategy:?}");
            assert_eq!(old.cost, new.cost, "{strategy:?}");
            assert_eq!(old.mean_cost, new.mean_cost, "{strategy:?}");
            assert_eq!(old.min_cost, new.min_cost, "{strategy:?}");
            assert_eq!(old.evaluated, new.evaluated, "{strategy:?}");
            assert_eq!(old.trace, new.trace, "{strategy:?}");
        }
    }

    /// Worker count must not change the outcome (chunk merge is ordered).
    /// Exercised through the explicit-worker fold rather than the
    /// `PARCOLOR_SEED_THREADS` env var: tests run multi-threaded in one
    /// process, so mutating the environment would race other tests.
    #[test]
    fn fold_is_worker_count_invariant() {
        let eval_block = |s0: u64, out: &mut [f64], _: &mut ()| {
            for (i, o) in out.iter_mut().enumerate() {
                *o = (((s0 + i as u64) ^ 0x2F) % 13) as f64;
            }
        };
        let reference = fold_seed_range_in(&mut [()], 0, 1 << 10, &eval_block);
        for workers in [2usize, 3, 5, 8] {
            let mut pool = vec![(); workers];
            let f = fold_seed_range_in(&mut pool, 0, 1 << 10, &eval_block);
            assert_eq!(f.argmin, reference.argmin, "workers = {workers}");
            assert_eq!(f.sum, reference.sum, "workers = {workers}");
            assert_eq!(f.min, reference.min, "workers = {workers}");
        }
    }

    /// A true block evaluator — writing the whole block at once — must be
    /// indistinguishable from the reference scalar path for every
    /// strategy, including block lengths that don't divide the range.
    #[test]
    fn select_seed_blocks_matches_reference() {
        let cost = |s: u64| ((s * 37 + 11) % 19) as f64;
        for strategy in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(23),
            SeedStrategy::SingleSeed(5),
        ] {
            let old = select_seed(8, strategy, cost);
            let new = select_seed_blocks(
                8,
                strategy,
                || (),
                |s0, out: &mut [f64], _| {
                    assert!(out.len() <= SEED_BLOCK);
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = cost(s0 + i as u64);
                    }
                },
            );
            assert_eq!(old.seed, new.seed, "{strategy:?}");
            assert_eq!(old.cost, new.cost, "{strategy:?}");
            assert_eq!(old.mean_cost, new.mean_cost, "{strategy:?}");
            assert_eq!(old.min_cost, new.min_cost, "{strategy:?}");
            assert_eq!(old.trace, new.trace, "{strategy:?}");
        }
    }

    /// Scratch reuse: the factory is called once per worker, not per seed
    /// (workers for a 256-seed fold are capped at 256/32 = 8).
    #[test]
    fn scratch_is_reused_across_seeds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let factories = AtomicUsize::new(0);
        let sel = select_seed_with(
            8,
            SeedStrategy::Exhaustive,
            || {
                factories.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |s, scratch| {
                scratch.clear();
                scratch.push(s);
                (s % 7) as f64
            },
        );
        assert_eq!(sel.seed, 0);
        let made = factories.load(Ordering::Relaxed);
        assert!(made <= 8, "scratch factories: {made} for 256 seeds");
    }

    /// The stolen-block fold must agree with the serial walk including
    /// argmin tie-breaks, which the stealing merge resolves by explicit
    /// seed comparison rather than chunk order.
    #[test]
    fn stealing_fold_breaks_ties_to_lowest_seed() {
        // Constant cost: every seed ties; argmin must be the lowest.
        let eval_block = |_s0: u64, out: &mut [f64], _: &mut ()| {
            out.iter_mut().for_each(|o| *o = 3.0);
        };
        for workers in [1usize, 2, 5, 8] {
            let mut pool = vec![(); workers];
            let f = fold_seed_range_in(&mut pool, 0, 1 << 9, &eval_block);
            assert_eq!(f.argmin, 0, "workers = {workers}");
            assert_eq!(f.min, 3.0);
            assert_eq!(f.sum, (1u64 << 9) as f64 * 3.0);
        }
        // Two tied minima: the lower seed must win at every worker count.
        let eval_block = |s0: u64, out: &mut [f64], _: &mut ()| {
            for (i, o) in out.iter_mut().enumerate() {
                let s = s0 + i as u64;
                *o = if s == 100 || s == 400 { 0.0 } else { 5.0 };
            }
        };
        for workers in [1usize, 3, 7] {
            let mut pool = vec![(); workers];
            let f = fold_seed_range_in(&mut pool, 0, 1 << 9, &eval_block);
            assert_eq!(f.argmin, 100, "workers = {workers}");
        }
    }

    /// The explicit-worker entry points must return identical selections
    /// at every worker count, for every strategy.
    #[test]
    fn explicit_worker_counts_are_deterministic() {
        let cost = |s: u64| ((s * 131 + 17) % 23) as f64;
        for strategy in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(200),
        ] {
            let reference = select_seed_with_n(9, strategy, 1, || (), |s, _| cost(s));
            for workers in [2usize, 4, 8] {
                let got = select_seed_with_n(9, strategy, workers, || (), |s, _| cost(s));
                assert_eq!(reference.seed, got.seed, "{strategy:?} workers {workers}");
                assert_eq!(reference.cost, got.cost, "{strategy:?} workers {workers}");
                assert_eq!(reference.mean_cost, got.mean_cost, "{strategy:?}");
                assert_eq!(reference.trace, got.trace, "{strategy:?}");
            }
        }
    }

    /// An external [`RangeFolder`] — here a toy serial one standing in
    /// for a remote fleet — must reproduce the local selection
    /// field-for-field for every strategy, including when its folds
    /// arrive as out-of-order unit merges (grouping invariance).
    #[test]
    fn foreign_folder_matches_local_path() {
        struct SerialFolder<F: Fn(u64) -> f64>(F);
        impl<F: Fn(u64) -> f64> RangeFolder for SerialFolder<F> {
            fn fold_range(&mut self, start: u64, len: u64) -> SumMinArgmin {
                // Merge in deliberately scrambled unit order, the way
                // remote completions arrive.
                let unit = 8u64;
                let nunits = len.div_ceil(unit);
                let mut parts: Vec<SumMinArgmin> = (0..nunits)
                    .map(|u| {
                        let s = start + u * unit;
                        let l = (start + len - s).min(unit);
                        let mut acc = SumMinArgmin::EMPTY;
                        for seed in s..s + l {
                            acc.observe(seed, (self.0)(seed));
                        }
                        acc
                    })
                    .collect();
                parts.reverse();
                parts
                    .into_iter()
                    .fold(SumMinArgmin::EMPTY, |a, b| a.merge(b))
            }
            fn eval_seed(&mut self, seed: u64) -> f64 {
                (self.0)(seed)
            }
        }
        let cost = |s: u64| ((s * 53 + 7) % 17) as f64;
        for strategy in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(23),
            SeedStrategy::SingleSeed(5),
        ] {
            let local = select_seed_blocks_n(
                8,
                strategy,
                1,
                || (),
                |s0, out: &mut [f64], _| {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = cost(s0 + i as u64);
                    }
                },
            );
            let foreign = select_seed_folded(8, strategy, &mut SerialFolder(cost));
            assert_eq!(local.seed, foreign.seed, "{strategy:?}");
            assert_eq!(local.cost, foreign.cost, "{strategy:?}");
            assert_eq!(local.mean_cost, foreign.mean_cost, "{strategy:?}");
            assert_eq!(local.min_cost, foreign.min_cost, "{strategy:?}");
            assert_eq!(local.evaluated, foreign.evaluated, "{strategy:?}");
            assert_eq!(local.trace, foreign.trace, "{strategy:?}");
        }
    }

    #[test]
    fn bitwise_mean_halves_consistent() {
        // First trace entry's two means must average to the global mean.
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, quad);
        let (_, m0, m1) = sel.trace[0];
        assert!(((m0 + m1) / 2.0 - sel.mean_cost).abs() < 1e-6);
    }
}
