//! Deterministic seed selection — the "method of conditional expectations"
//! half of the paper's framework (Lemma 10).
//!
//! Given a cost functional `cost(seed)` (for us: the number of nodes
//! failing the strong success property when a normal distributed procedure
//! is simulated under `seed`), the derandomizer must *deterministically*
//! find a seed whose cost is at most the mean over the seed space.  Three
//! interchangeable strategies are provided:
//!
//! * [`SeedStrategy::Exhaustive`] — evaluate every seed (rayon-parallel)
//!   and take the argmin.  Gold standard; cost `2^d · eval`.
//! * [`SeedStrategy::BitwiseCondExp`] — the textbook method of conditional
//!   expectations: fix seed bits one at a time, each time choosing the
//!   branch with the smaller conditional mean.  This is the form that maps
//!   onto MPC rounds (one converge-cast per bit) and is what Lemma 10
//!   charges; it returns a per-bit trace for the E6 experiment.  The final
//!   cost is ≤ the global mean by induction on bits.
//! * [`SeedStrategy::FixedSubset`] — evaluate a deterministic prefix of the
//!   seed space and take the argmin.  A throughput concession for large
//!   instances; still fully deterministic.  Its guarantee is relative to
//!   the subset mean (reported so experiments can compare).
//!
//! `SingleSeed` pins the seed (used to measure "no derandomization" in
//! ablations).

use rayon::prelude::*;
use serde::Serialize;

/// Strategy for choosing a PRG seed deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum SeedStrategy {
    /// Evaluate all `2^seed_bits` seeds, pick the argmin (ties → lowest).
    Exhaustive,
    /// Evaluate seeds `0..k`, pick the argmin.
    FixedSubset(u64),
    /// Bitwise method of conditional expectations over the full space.
    BitwiseCondExp,
    /// Use this seed unconditionally (ablation baseline).
    SingleSeed(u64),
}

/// Result of a seed search.
#[derive(Clone, Debug, Serialize)]
pub struct SeedSelection {
    /// The chosen seed.
    pub seed: u64,
    /// Cost of the chosen seed.
    pub cost: f64,
    /// Mean cost over the evaluated seeds.
    pub mean_cost: f64,
    /// Minimum cost over the evaluated seeds (= `cost` except `SingleSeed`).
    pub min_cost: f64,
    /// How many seeds were evaluated.
    pub evaluated: u64,
    /// For `BitwiseCondExp`: `(bit, mean_if_0, mean_if_1)` per fixed bit,
    /// most-significant first.
    pub trace: Vec<(u32, f64, f64)>,
}

impl SeedSelection {
    /// The derandomization guarantee of Lemma 10: the chosen seed's cost is
    /// at most the mean over the evaluated space.
    pub fn satisfies_guarantee(&self) -> bool {
        self.cost <= self.mean_cost + 1e-9
    }
}

/// Deterministically choose a seed from `{0,1}^seed_bits` minimizing
/// `cost`, following `strategy`.  `cost` must be a pure function of the
/// seed; evaluation is parallelized over seeds with rayon.
pub fn select_seed<F>(seed_bits: u32, strategy: SeedStrategy, cost: F) -> SeedSelection
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!((1..=24).contains(&seed_bits));
    let space = 1u64 << seed_bits;
    match strategy {
        SeedStrategy::SingleSeed(seed) => {
            assert!(seed < space, "seed {seed} outside 2^{seed_bits} space");
            let c = cost(seed);
            SeedSelection {
                seed,
                cost: c,
                mean_cost: c,
                min_cost: c,
                evaluated: 1,
                trace: Vec::new(),
            }
        }
        SeedStrategy::FixedSubset(k) => {
            let k = k.clamp(1, space);
            let costs: Vec<f64> = (0..k).into_par_iter().map(&cost).collect();
            argmin_selection(&costs, k)
        }
        SeedStrategy::Exhaustive => {
            let costs: Vec<f64> = (0..space).into_par_iter().map(&cost).collect();
            argmin_selection(&costs, space)
        }
        SeedStrategy::BitwiseCondExp => {
            let costs: Vec<f64> = (0..space).into_par_iter().map(&cost).collect();
            bitwise_walk(seed_bits, &costs)
        }
    }
}

fn argmin_selection(costs: &[f64], evaluated: u64) -> SeedSelection {
    let (seed, &cmin) = costs
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| a.partial_cmp(b).unwrap().then(i.cmp(j)))
        .expect("non-empty seed space");
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    SeedSelection {
        seed: seed as u64,
        cost: cmin,
        mean_cost: mean,
        min_cost: cmin,
        evaluated,
        trace: Vec::new(),
    }
}

/// Fix bits most-significant first; at each step compute the exact
/// conditional mean of both extensions and keep the smaller.
fn bitwise_walk(seed_bits: u32, costs: &[f64]) -> SeedSelection {
    let mut prefix: u64 = 0;
    let mut trace = Vec::with_capacity(seed_bits as usize);
    for fixed in 0..seed_bits {
        let bit = seed_bits - 1 - fixed; // position being fixed this step
        let block = 1u64 << bit; // size of each half under the prefix
        let base = prefix; // prefix occupies bits above `bit`
        let mean0 = range_mean(costs, base, block);
        let mean1 = range_mean(costs, base | block, block);
        trace.push((bit, mean0, mean1));
        if mean1 < mean0 {
            prefix |= block;
        }
    }
    let chosen_cost = costs[prefix as usize];
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    SeedSelection {
        seed: prefix,
        cost: chosen_cost,
        mean_cost: mean,
        min_cost: min,
        evaluated: costs.len() as u64,
        trace,
    }
}

fn range_mean(costs: &[f64], start: u64, len: u64) -> f64 {
    let s = start as usize;
    let e = s + len as usize;
    costs[s..e].par_iter().sum::<f64>() / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(seed: u64) -> f64 {
        // Minimum at 37.
        let d = seed as f64 - 37.0;
        d * d
    }

    #[test]
    fn exhaustive_finds_global_min() {
        let sel = select_seed(8, SeedStrategy::Exhaustive, quad);
        assert_eq!(sel.seed, 37);
        assert_eq!(sel.cost, 0.0);
        assert_eq!(sel.evaluated, 256);
        assert!(sel.satisfies_guarantee());
    }

    #[test]
    fn bitwise_beats_mean() {
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, quad);
        assert!(sel.satisfies_guarantee());
        assert_eq!(sel.trace.len(), 8);
        // For a unimodal cost the bitwise walk lands at the optimum here.
        assert_eq!(sel.seed, 37);
    }

    #[test]
    fn bitwise_guarantee_on_adversarial_cost() {
        // Spiky cost: zero at one point, large elsewhere; the walk may not
        // find the zero but must end at most at the mean.
        let cost = |s: u64| if s == 200 { 0.0 } else { 10.0 + (s % 7) as f64 };
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, cost);
        assert!(sel.satisfies_guarantee(), "{sel:?}");
    }

    #[test]
    fn fixed_subset_stays_in_prefix() {
        let sel = select_seed(10, SeedStrategy::FixedSubset(16), quad);
        assert!(sel.seed < 16);
        assert_eq!(sel.evaluated, 16);
        assert_eq!(sel.seed, 15); // closest to 37 within 0..16
    }

    #[test]
    fn fixed_subset_clamps_to_space() {
        let sel = select_seed(3, SeedStrategy::FixedSubset(1000), quad);
        assert_eq!(sel.evaluated, 8);
    }

    #[test]
    fn single_seed_is_pinned() {
        let sel = select_seed(8, SeedStrategy::SingleSeed(5), quad);
        assert_eq!(sel.seed, 5);
        assert_eq!(sel.evaluated, 1);
    }

    #[test]
    #[should_panic]
    fn single_seed_out_of_range_panics() {
        select_seed(4, SeedStrategy::SingleSeed(16), quad);
    }

    #[test]
    fn ties_break_to_lowest_seed() {
        let sel = select_seed(6, SeedStrategy::Exhaustive, |_| 1.0);
        assert_eq!(sel.seed, 0);
    }

    #[test]
    fn bitwise_equals_exhaustive_on_monotone_cost() {
        let cost = |s: u64| s as f64;
        let e = select_seed(7, SeedStrategy::Exhaustive, cost);
        let b = select_seed(7, SeedStrategy::BitwiseCondExp, cost);
        assert_eq!(e.seed, b.seed);
        assert_eq!(b.seed, 0);
    }

    #[test]
    fn bitwise_mean_halves_consistent() {
        // First trace entry's two means must average to the global mean.
        let sel = select_seed(8, SeedStrategy::BitwiseCondExp, quad);
        let (_, m0, m1) = sel.trace[0];
        assert!(((m0 + m1) / 2.0 - sel.mean_cost).abs() < 1e-6);
    }
}
