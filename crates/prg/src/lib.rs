#![warn(missing_docs)]
//! Pseudorandomness and derandomization machinery.
//!
//! This crate supplies the two randomness-reduction tools the paper's
//! framework composes (Section 4):
//!
//! 1. **A short-seed PRG** ([`prg::Prg`] / [`prg::PrgTape`]).  The paper
//!    invokes the existential `(t, ε)` PRG of Vadhan (Proposition 7.8),
//!    constructed in exponential time (Lemma 9).  That construction is a
//!    proof device; we substitute a keyed avalanche mixer whose output is
//!    addressed by `(seed, chunk, index)`.  The substitution is recorded in
//!    `DESIGN.md` §5: the run-time guarantee the framework needs — *the seed
//!    chosen by conditional expectations achieves at most the seed-space
//!    mean failure count* — is enforced and measured directly, independent
//!    of any indistinguishability assumption.
//! 2. **k-wise independent hash families** ([`hashing`]) over a Mersenne
//!    prime field, used by the degree-reduction step (Section 6,
//!    `LowSpacePartition`) exactly as in CDP21d.
//!
//! On top of both sits [`seed_search`]: deterministic seed selection by
//! exhaustive evaluation, fixed-subset evaluation, or the bitwise **method
//! of conditional expectations** (the form actually run on an MPC, Lemma
//! 10).  Seed evaluation is embarrassingly parallel and is distributed with
//! rayon — the hot loop of the whole reproduction.

pub mod hashing;
pub mod prg;
pub mod seed_search;

pub use hashing::{KWiseFamily, PairwiseHash};
pub use prg::{ChunkAssignment, Prg, PrgTape};
pub use seed_search::{
    fold_seed_range_in, seed_workers, select_seed, select_seed_blocks, select_seed_blocks_n,
    select_seed_folded, select_seed_with, select_seed_with_n, RangeFolder, SeedSelection,
    SeedStrategy, SEED_BLOCK,
};
// Re-exported so remote-sharding backends can merge partial folds with
// the exact kernel the local path uses.
pub use parcolor_exec::SumMinArgmin;
