//! Loopback-cluster e2e: the distributed seed search must produce the
//! **bit-identical** coloring (and seed selections) of the
//! single-machine path under every chaos schedule — kills, restarts,
//! stragglers, frame loss, and total fleet death.
//!
//! Bit-identity doubles as the end-to-end dedup proof: `mean_cost`
//! aggregates every unit's exact integer sum, so a duplicate unit
//! merged twice (or a dropped unit merged never) would perturb the mean
//! and, for the bitwise strategy, flip chosen seeds — and the colors
//! would diverge.

use parcolor_core::{D1lcInstance, Params, SeedStrategy, Solver};
use parcolor_dist::{solve_on_cluster, ChaosConfig, DistConfig};
use parcolor_graphgen as gen;

/// Job codec for the tests: generator parameters, so every node
/// reconstructs the same instance (the real CLI ships DIMACS text).
fn job(n: usize, m: usize, seed: u64, bits: u32, strat: &str) -> Vec<u8> {
    format!("{n} {m} {seed} {bits} {strat}").into_bytes()
}

fn decode(job: &[u8]) -> (D1lcInstance, Params) {
    let s = std::str::from_utf8(job).expect("utf8 job");
    let p: Vec<&str> = s.split_whitespace().collect();
    let (n, m, seed, bits) = (
        p[0].parse().unwrap(),
        p[1].parse().unwrap(),
        p[2].parse().unwrap(),
        p[3].parse().unwrap(),
    );
    let strategy = match p[4] {
        "ex" => SeedStrategy::Exhaustive,
        "bw" => SeedStrategy::BitwiseCondExp,
        other => SeedStrategy::FixedSubset(other.parse().unwrap()),
    };
    let inst = gen::degree_plus_one(gen::gnm(n, m, seed));
    let params = Params::default()
        .with_seed_bits(bits)
        .with_strategy(strategy);
    (inst, params)
}

fn local_solution(job_bytes: &[u8]) -> Vec<u32> {
    let (inst, params) = decode(job_bytes);
    let sol = Solver::deterministic(params).solve(&inst);
    inst.verify_coloring(&sol.colors)
        .expect("local must verify");
    sol.colors
}

/// Aggressive-but-sane knobs for loopback tests: tiny lease deadlines
/// so stragglers expire fast, short patience so stuck folds degrade,
/// quick reconnects.
fn test_cfg(min_workers: usize) -> DistConfig {
    DistConfig {
        lease_timeout_ms: 30,
        heartbeat_timeout_ms: 2_000,
        blocks_per_lease: 4,
        poll_ms: 2,
        max_outstanding: 2,
        min_remote_len: 64,
        local_patience_ms: 300,
        min_workers,
        min_worker_wait_ms: 10_000,
        connect_backoff_ms: 10,
        max_backoff_ms: 100,
        max_reconnects: 5,
        idle_reconnect_ms: 400,
        result_flush_ms: 3,
        standby_reconnects: 3,
        jitter_seed: 0xD15C0,
    }
}

#[test]
fn clean_cluster_matches_local_bit_for_bit() {
    let j = job(240, 1_200, 1, 8, "ex");
    let expected = local_solution(&j);
    let out = solve_on_cluster(&j, decode, 2, &[None, None], test_cfg(2));
    assert_eq!(out.coordinator.colors, expected, "coordinator diverged");
    for (i, w) in out.workers.iter().enumerate() {
        let w = w.as_ref().expect("worker finished");
        assert_eq!(w.colors, expected, "worker {i} replica diverged");
    }
    assert!(
        out.stats.remote_units > 0,
        "fleet did real work: {:?}",
        out.stats
    );
    assert_eq!(out.stats.searches, out.stats.folds.min(out.stats.searches));
}

#[test]
fn bitwise_walk_distributes_identically() {
    // The bitwise strategy folds two half-spaces per bit — dozens of
    // folds per search, exercising fold-id plumbing and the
    // local-vs-remote split (deep bits run under min_remote_len).
    let j = job(200, 900, 2, 8, "bw");
    let expected = local_solution(&j);
    let out = solve_on_cluster(&j, decode, 2, &[None, None], test_cfg(2));
    assert_eq!(out.coordinator.colors, expected);
    for w in &out.workers {
        assert_eq!(w.as_ref().unwrap().colors, expected);
    }
    assert!(out.stats.remote_folds > 0);
    assert!(out.stats.local_units > 0, "deep bits should fold locally");
}

#[test]
fn result_batching_coalesces_frames_and_stays_exact() {
    // Satellite pin: the worker coalesces completed units into one
    // `Result` frame per flush (depth, key-change, or window), and the
    // coordinator's per-entry dedup keeps the merge exact.  With a
    // lease depth of 4 the flush-at-depth path alone guarantees fewer
    // frames than units.
    let j = job(240, 1_200, 8, 8, "ex");
    let expected = local_solution(&j);
    let mut cfg = test_cfg(1);
    cfg.max_outstanding = 4;
    cfg.result_flush_ms = 10;
    let out = solve_on_cluster(&j, decode, 1, &[None], cfg);
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    assert_eq!(
        out.workers[0].as_ref().unwrap().colors,
        expected,
        "worker replica diverged"
    );
    let ws = out.worker_stats[0].as_ref().expect("worker stats");
    assert!(
        ws.served_units >= 8,
        "worker should have served real work: {ws:?}"
    );
    assert!(
        ws.result_frames < ws.served_units,
        "batching must coalesce: {} frames for {} units",
        ws.result_frames,
        ws.served_units
    );
    assert_eq!(out.stats.duplicates, 0, "batching must not duplicate");
}

#[test]
fn chaos_worker_killed_mid_lease_reissues_and_stays_exact() {
    // Schedule 1: the proxy kills every connection after 11 frames —
    // repeatedly, so the worker lives in a kill/restart loop.  Severed
    // grants and unreturned results must be re-issued; dedup keeps the
    // merge exact.
    let j = job(240, 1_200, 3, 8, "ex");
    let expected = local_solution(&j);
    let out = solve_on_cluster(
        &j,
        decode,
        1,
        &[Some(ChaosConfig::killer(41, 11))],
        test_cfg(1),
    );
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    if let Some(w) = &out.workers[0] {
        assert_eq!(w.colors, expected, "restarted worker replica diverged");
    }
    assert!(
        out.stats.disconnects + out.stats.evictions >= 1,
        "kills must be observed: {:?}",
        out.stats
    );
    assert!(
        out.stats.reissued >= 1,
        "killed leases must re-issue: {:?}",
        out.stats
    );
}

#[test]
fn chaos_straggler_past_deadline_expires_and_stays_exact() {
    // Schedule 2: worker 1 sits behind a link that delays every frame
    // ≥ 80 ms while leases expire at 30 ms — all its leases blow the
    // deadline and re-issue to the fast worker (or the local fallback);
    // its late results arrive anyway and must be dropped as
    // duplicates/stale, never double-merged.
    let j = job(240, 1_200, 4, 8, "ex");
    let expected = local_solution(&j);
    let out = solve_on_cluster(
        &j,
        decode,
        2,
        &[None, Some(ChaosConfig::straggler(42, 80, 40))],
        test_cfg(2),
    );
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    assert_eq!(
        out.workers[0].as_ref().unwrap().colors,
        expected,
        "fast worker diverged"
    );
    assert!(
        out.stats.expired >= 1,
        "straggler must expire: {:?}",
        out.stats
    );
    assert!(
        out.stats.reissued >= 1,
        "expiry must re-issue: {:?}",
        out.stats
    );
}

#[test]
fn chaos_lossy_link_converges_exactly() {
    // Schedule 3: 20% of frames vanish.  Lost grants and results are
    // straight lease expiries; lost Chosen broadcasts force the worker
    // through the idle-reconnect + Welcome-history resync path.
    let j = job(200, 900, 5, 8, "ex");
    let expected = local_solution(&j);
    let out = solve_on_cluster(
        &j,
        decode,
        1,
        &[Some(ChaosConfig::lossy(43, 200))],
        test_cfg(1),
    );
    assert_eq!(out.coordinator.colors, expected, "{:?}", out.stats);
    if let Some(w) = &out.workers[0] {
        assert_eq!(w.colors, expected);
    }
}

#[test]
fn fleet_never_arrives_coordinator_degrades_to_local() {
    // Schedule 4: nobody shows up.  Every fold runs on the coordinator's
    // own pool (`select_seed_blocks_n` semantics) — same answer.
    let j = job(200, 900, 6, 8, "ex");
    let expected = local_solution(&j);
    let out = solve_on_cluster(&j, decode, 0, &[], test_cfg(0));
    assert_eq!(out.coordinator.colors, expected);
    assert!(out.stats.local_units >= 1);
    assert_eq!(out.stats.remote_units, 0);
}

#[test]
fn orphaned_coordinator_worker_goes_standalone() {
    // Schedule 5: the coordinator dies mid-solve.  The worker must
    // exhaust its reconnect budget, flip to standalone, finish the
    // replica locally — bit-identically — and never panic.
    use parcolor_dist::{run_worker, DistCoordinator};
    use std::sync::Arc;

    let j = job(200, 900, 7, 8, "ex");
    let expected = local_solution(&j);
    let cfg = test_cfg(1);
    let coordinator =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", j.clone(), cfg.clone()).expect("bind"));
    let addr = coordinator.local_addr().to_string();

    let (colors, standalone) = std::thread::scope(|scope| {
        let worker = {
            let cfg = cfg.clone();
            let j = &j;
            scope.spawn(move || {
                run_worker(&[addr], cfg, |job_bytes, searcher| {
                    assert_eq!(job_bytes, &j[..], "welcome must carry the job");
                    let (inst, params) = decode(job_bytes);
                    let sol = Solver::deterministic(params)
                        .with_seed_searcher(searcher.clone())
                        .solve(&inst);
                    (sol.colors, searcher.is_standalone())
                })
                .expect("initial connect must succeed")
            })
        };
        // Let the worker in, then vanish without serving a single search.
        while coordinator.connected_workers() < 1 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        coordinator.shutdown();
        worker.join().expect("worker must not panic")
    });
    assert!(standalone, "worker must degrade to standalone");
    assert_eq!(colors, expected, "standalone replica diverged");
}
