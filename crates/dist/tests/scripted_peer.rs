//! Scripted-peer protocol tests: hand-driven TCP clients speak the wire
//! protocol directly to a real coordinator, exercising the merge/fence/
//! evict edges no well-behaved worker produces — double-sent results,
//! wrong-epoch batches, silent peers past the heartbeat deadline, and
//! v1 handshakes.

use parcolor_core::framework::{SeedSearcher, SimScratch};
use parcolor_core::SeedStrategy;
use parcolor_dist::frame::{write_frame, FrameReader};
use parcolor_dist::proto::{Msg, Role, UnitResult, PROTO_VERSION};
use parcolor_dist::{DistConfig, DistCoordinator, WorkerSearcher};
use parcolor_prg::{fold_seed_range_in, select_seed_blocks_n};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Pure integer-valued cost: exact sums, so any double-merge would shift
/// `mean_cost` and fail the selection-equality assert below.
fn eval(seed: u64, out: &mut [f64], _scratch: &mut SimScratch) {
    for (i, c) in out.iter_mut().enumerate() {
        *c = (((seed + i as u64) * 37 + 11) % 19) as f64;
    }
}

/// Generous-deadline config: nothing expires or falls back locally
/// unless a test wants it to.
fn patient_cfg() -> DistConfig {
    DistConfig {
        lease_timeout_ms: 10_000,
        heartbeat_timeout_ms: 10_000,
        local_patience_ms: 10_000,
        min_remote_len: 64,
        blocks_per_lease: 4,
        poll_ms: 2,
        max_outstanding: 2,
        min_workers: 1,
        min_worker_wait_ms: 10_000,
        ..DistConfig::default()
    }
}

struct ScriptedPeer {
    reader: FrameReader,
    writer: TcpStream,
}

/// Handshake by hand as a v2 worker; returns the peer and the Welcome's
/// `(epoch, job, history_len)`.
fn handshake(addr: std::net::SocketAddr) -> (ScriptedPeer, u64, Vec<u8>, usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = FrameReader::new(stream);
    write_frame(
        &mut writer,
        &Msg::Hello {
            version: PROTO_VERSION,
            role: Role::Worker,
        }
        .encode(),
    )
    .unwrap();
    let welcome = loop {
        if let Some(f) = reader.poll_frame().expect("welcome") {
            break Msg::decode(&f).expect("decode welcome");
        }
    };
    match welcome {
        Msg::Welcome {
            epoch,
            job,
            history,
            ..
        } => (ScriptedPeer { reader, writer }, epoch, job, history.len()),
        other => panic!("expected Welcome, got {other:?}"),
    }
}

#[test]
fn duplicated_results_are_merged_exactly_once() {
    let coordinator = Arc::new(
        DistCoordinator::bind("127.0.0.1:0", b"duplicate-test".to_vec(), patient_cfg())
            .expect("bind"),
    );
    let (mut peer, epoch, job, history_len) = handshake(coordinator.local_addr());
    assert_eq!(job, b"duplicate-test");
    assert_eq!(history_len, 0);
    assert_eq!(epoch, 1, "a primary starts at epoch 1");
    while coordinator.connected_workers() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Exhaustive over 2^8 seeds: one fold, 8 units of 32 — all leased to
    // the script because min_remote_len (64) < 256 and deadlines never
    // fire.
    let solve = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            SeedSearcher::select(&*coordinator, 8, SeedStrategy::Exhaustive, 2, 16, &eval)
        })
    };

    // Serve every grant — twice.
    let mut pool = vec![SimScratch::new(16)];
    let chosen = loop {
        let Some(f) = peer.reader.poll_frame().expect("peer read") else {
            continue;
        };
        match Msg::decode(&f).expect("peer decode") {
            Msg::Grant {
                epoch,
                search_id,
                fold_id,
                lease_id,
                unit,
                start,
                len,
            } => {
                let agg = fold_seed_range_in(&mut pool, start, len, &eval);
                let result = Msg::Result {
                    epoch,
                    search_id,
                    fold_id,
                    batch: vec![UnitResult {
                        lease_id,
                        unit,
                        sum: agg.sum,
                        min: agg.min,
                        argmin: agg.argmin,
                    }],
                };
                write_frame(&mut peer.writer, &result.encode()).unwrap();
                write_frame(&mut peer.writer, &result.encode()).unwrap();
            }
            Msg::Chosen { selection, .. } => break selection,
            Msg::Ping | Msg::Bye => {}
            other => panic!("unexpected frame for scripted peer: {other:?}"),
        }
    };

    let distributed = solve.join().expect("select must finish");
    let expected =
        select_seed_blocks_n(8, SeedStrategy::Exhaustive, 2, || SimScratch::new(16), eval);
    assert_eq!(distributed, expected, "dedup failed: selection diverged");
    assert_eq!(chosen, expected, "broadcast selection diverged");

    let stats = coordinator.stats();
    assert_eq!(
        stats.remote_units, 8,
        "all 8 units served remotely: {stats:?}"
    );
    assert_eq!(stats.local_units, 0, "{stats:?}");
    assert!(
        stats.duplicates >= 8,
        "every double-send must be rejected: {stats:?}"
    );
    assert_eq!(stats.reissued, 0, "{stats:?}");
    coordinator.shutdown();
}

#[test]
fn wrong_epoch_results_are_fenced_not_merged() {
    let coordinator = Arc::new(
        DistCoordinator::bind("127.0.0.1:0", b"fence-test".to_vec(), patient_cfg()).expect("bind"),
    );
    let (mut peer, _epoch, _job, _hist) = handshake(coordinator.local_addr());
    while coordinator.connected_workers() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let solve = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            SeedSearcher::select(&*coordinator, 8, SeedStrategy::Exhaustive, 2, 16, &eval)
        })
    };

    // For every grant, first answer with a *stale-primary* epoch — the
    // coordinator must drop the whole batch before dedup even looks at
    // the unit — then with the real one.
    let mut pool = vec![SimScratch::new(16)];
    let chosen = loop {
        let Some(f) = peer.reader.poll_frame().expect("peer read") else {
            continue;
        };
        match Msg::decode(&f).expect("peer decode") {
            Msg::Grant {
                epoch,
                search_id,
                fold_id,
                lease_id,
                unit,
                start,
                len,
            } => {
                let agg = fold_seed_range_in(&mut pool, start, len, &eval);
                let batch = vec![UnitResult {
                    lease_id,
                    unit,
                    sum: agg.sum,
                    min: agg.min,
                    argmin: agg.argmin,
                }];
                // Poisoned copy: a *wrong aggregate* under a stale
                // epoch.  If fencing failed to drop it, the merge would
                // be corrupted and the selection assert below would
                // catch it.
                let stale = Msg::Result {
                    epoch: epoch + 999,
                    search_id,
                    fold_id,
                    batch: vec![UnitResult {
                        lease_id,
                        unit,
                        sum: agg.sum + 1.0e6,
                        min: -1.0e6,
                        argmin: 0,
                    }],
                };
                write_frame(&mut peer.writer, &stale.encode()).unwrap();
                let good = Msg::Result {
                    epoch,
                    search_id,
                    fold_id,
                    batch,
                };
                write_frame(&mut peer.writer, &good.encode()).unwrap();
            }
            Msg::Chosen { selection, .. } => break selection,
            Msg::Ping | Msg::Bye => {}
            other => panic!("unexpected frame for scripted peer: {other:?}"),
        }
    };

    let distributed = solve.join().expect("select must finish");
    let expected =
        select_seed_blocks_n(8, SeedStrategy::Exhaustive, 2, || SimScratch::new(16), eval);
    assert_eq!(distributed, expected, "fencing failed: selection diverged");
    assert_eq!(chosen, expected);

    let stats = coordinator.stats();
    assert!(
        stats.fenced >= 8,
        "every stale-epoch batch must be fenced: {stats:?}"
    );
    assert_eq!(stats.remote_units, 8, "{stats:?}");
    assert_eq!(stats.duplicates, 0, "fencing runs before dedup: {stats:?}");
    coordinator.shutdown();
}

#[test]
fn silent_peer_is_evicted_and_its_leases_requeued() {
    // A worker that handshakes, takes grants, then never sends another
    // frame: the heartbeat sweep must evict it, orphan its in-flight
    // leases back to the pending queue, and the solve must still finish
    // (local fallback — the fleet is gone) with the exact selection.
    let cfg = DistConfig {
        heartbeat_timeout_ms: 150,
        ..patient_cfg()
    };
    let coordinator =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", b"evict-test".to_vec(), cfg).expect("bind"));
    let (mut peer, _epoch, _job, _hist) = handshake(coordinator.local_addr());
    while coordinator.connected_workers() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let solve = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            SeedSearcher::select(&*coordinator, 8, SeedStrategy::Exhaustive, 2, 16, &eval)
        })
    };

    // Read until the first grant arrives (proving leases were issued to
    // this peer), then fall silent past the heartbeat deadline.
    loop {
        match peer.reader.poll_frame() {
            Ok(Some(f)) => {
                if matches!(Msg::decode(&f), Ok(Msg::Grant { .. })) {
                    break;
                }
            }
            Ok(None) => continue,
            Err(e) => panic!("grant never arrived: {e}"),
        }
    }

    let distributed = solve.join().expect("select must finish despite silence");
    let expected =
        select_seed_blocks_n(8, SeedStrategy::Exhaustive, 2, || SimScratch::new(16), eval);
    assert_eq!(distributed, expected, "eviction path diverged");

    let stats = coordinator.stats();
    assert_eq!(stats.evictions, 1, "silent peer must be evicted: {stats:?}");
    assert!(
        stats.orphaned >= 1,
        "its in-flight leases must be orphaned and re-queued: {stats:?}"
    );
    assert_eq!(
        stats.remote_units, 0,
        "the silent peer served nothing: {stats:?}"
    );
    assert_eq!(
        stats.local_units, 8,
        "orphaned units must complete via local fallback: {stats:?}"
    );
    coordinator.shutdown();
}

#[test]
fn v1_hello_gets_a_clean_version_refusal() {
    let coordinator = Arc::new(
        DistCoordinator::bind("127.0.0.1:0", b"v1-test".to_vec(), patient_cfg()).expect("bind"),
    );
    let stream = TcpStream::connect(coordinator.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);
    // A protocol-v1 Hello on the wire: tag byte 1, u32 version 1 — no
    // role byte (v1 predates roles).
    let mut v1_hello = vec![1u8];
    v1_hello.extend_from_slice(&1u32.to_le_bytes());
    write_frame(&mut writer, &v1_hello).unwrap();
    let reply = loop {
        match reader.poll_frame() {
            Ok(Some(f)) => break Msg::decode(&f).expect("refusal must decode"),
            Ok(None) => continue,
            Err(e) => panic!("expected a Refuse frame, got connection error: {e}"),
        }
    };
    match reply {
        Msg::Refuse {
            required_version,
            reason,
        } => {
            assert_eq!(required_version, PROTO_VERSION);
            assert!(
                reason.contains("version"),
                "reason must name the version mismatch: {reason:?}"
            );
        }
        other => panic!("expected Refuse, got {other:?}"),
    }
    assert_eq!(
        coordinator.connected_workers(),
        0,
        "a refused peer must not register"
    );
    coordinator.shutdown();
}

#[test]
fn worker_surfaces_a_refusal_as_a_friendly_error() {
    // A "coordinator" that refuses every handshake (what an unpromoted
    // standby or a version-mismatched server sends): the worker's
    // connect must fail with a readable error, not a panic or a hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        for _ in 0..4 {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .ok();
            let mut reader = FrameReader::new(stream.try_clone().unwrap());
            let _ = reader.poll_frame(); // consume the Hello
            let mut w = stream;
            let _ = write_frame(
                &mut w,
                &Msg::Refuse {
                    required_version: PROTO_VERSION,
                    reason: "not primary: this coordinator is an unpromoted standby".into(),
                }
                .encode(),
            );
        }
    });
    let cfg = DistConfig {
        max_reconnects: 2,
        connect_backoff_ms: 1,
        max_backoff_ms: 5,
        ..DistConfig::default()
    };
    let err = WorkerSearcher::connect(&[addr.to_string()], cfg)
        .err()
        .expect("refused handshake must be an error");
    let msg = err.to_string();
    assert!(
        msg.contains("refused") && msg.contains("not primary"),
        "error must carry the peer's reason: {msg:?}"
    );
    drop(server); // server thread exits on its own accept budget
}
