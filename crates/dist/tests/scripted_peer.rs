//! Scripted-peer protocol test: a hand-driven TCP client speaks the wire
//! protocol directly and **double-sends every Result**.  The coordinator
//! must merge each unit exactly once (`stats.duplicates` counts the
//! rejected copies) and still select the bit-identical seed of the local
//! path — the deterministic proof behind the re-issue safety argument.

use parcolor_core::framework::{SeedSearcher, SimScratch};
use parcolor_core::SeedStrategy;
use parcolor_dist::frame::{write_frame, FrameReader};
use parcolor_dist::proto::{Msg, PROTO_VERSION};
use parcolor_dist::{DistConfig, DistCoordinator};
use parcolor_prg::{fold_seed_range_in, select_seed_blocks_n};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Pure integer-valued cost: exact sums, so any double-merge would shift
/// `mean_cost` and fail the selection-equality assert below.
fn eval(seed: u64, out: &mut [f64], _scratch: &mut SimScratch) {
    for (i, c) in out.iter_mut().enumerate() {
        *c = (((seed + i as u64) * 37 + 11) % 19) as f64;
    }
}

#[test]
fn duplicated_results_are_merged_exactly_once() {
    let cfg = DistConfig {
        // Generous deadlines: nothing may expire or fall back locally —
        // every unit must be served (and duplicated) by the script.
        lease_timeout_ms: 10_000,
        heartbeat_timeout_ms: 10_000,
        local_patience_ms: 10_000,
        min_remote_len: 64,
        blocks_per_lease: 4,
        poll_ms: 2,
        max_outstanding: 2,
        min_workers: 1,
        min_worker_wait_ms: 10_000,
        ..DistConfig::default()
    };
    let coordinator = Arc::new(
        DistCoordinator::bind("127.0.0.1:0", b"duplicate-test".to_vec(), cfg).expect("bind"),
    );
    let addr = coordinator.local_addr();

    // Handshake by hand.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = FrameReader::new(stream);
    write_frame(
        &mut writer,
        &Msg::Hello {
            version: PROTO_VERSION,
        }
        .encode(),
    )
    .unwrap();
    let welcome = loop {
        if let Some(f) = reader.poll_frame().expect("welcome") {
            break Msg::decode(&f).expect("decode welcome");
        }
    };
    match welcome {
        Msg::Welcome { job, history, .. } => {
            assert_eq!(job, b"duplicate-test");
            assert!(history.is_empty());
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    while coordinator.connected_workers() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Exhaustive over 2^8 seeds: one fold, 8 units of 32 — all leased to
    // the script because min_remote_len (64) < 256 and deadlines never
    // fire.
    let solve = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || {
            SeedSearcher::select(&*coordinator, 8, SeedStrategy::Exhaustive, 2, 16, &eval)
        })
    };

    // Serve every grant — twice.
    let mut pool = vec![SimScratch::new(16)];
    let chosen = loop {
        let Some(f) = reader.poll_frame().expect("peer read") else {
            continue;
        };
        match Msg::decode(&f).expect("peer decode") {
            Msg::Grant {
                search_id,
                fold_id,
                lease_id,
                unit,
                start,
                len,
            } => {
                let agg = fold_seed_range_in(&mut pool, start, len, &eval);
                let result = Msg::Result {
                    search_id,
                    fold_id,
                    lease_id,
                    unit,
                    sum: agg.sum,
                    min: agg.min,
                    argmin: agg.argmin,
                };
                write_frame(&mut writer, &result.encode()).unwrap();
                write_frame(&mut writer, &result.encode()).unwrap();
            }
            Msg::Chosen { selection, .. } => break selection,
            Msg::Ping | Msg::Bye => {}
            other => panic!("unexpected frame for scripted peer: {other:?}"),
        }
    };

    let distributed = solve.join().expect("select must finish");
    let expected =
        select_seed_blocks_n(8, SeedStrategy::Exhaustive, 2, || SimScratch::new(16), eval);
    assert_eq!(distributed, expected, "dedup failed: selection diverged");
    assert_eq!(chosen, expected, "broadcast selection diverged");

    let stats = coordinator.stats();
    assert_eq!(
        stats.remote_units, 8,
        "all 8 units served remotely: {stats:?}"
    );
    assert_eq!(stats.local_units, 0, "{stats:?}");
    assert!(
        stats.duplicates >= 8,
        "every double-send must be rejected: {stats:?}"
    );
    assert_eq!(stats.reissued, 0, "{stats:?}");
    coordinator.shutdown();
}
