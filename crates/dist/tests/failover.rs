//! Coordinator-kill chaos gauntlet: a primary with an armed kill
//! switch, a standby tailing its replication stream, and workers
//! carrying the ordered coordinator list.  Under every kill schedule
//! the surviving side must finish with the **bit-identical** coloring
//! — and the bit-identical *chosen-seed sequence* — of the plain
//! single-machine solve.
//!
//! The seed-sequence comparison is the sharp assertion: the promoted
//! standby replays the primary's replicated per-unit aggregates and
//! finishes the in-flight fold itself, so a single double-merged or
//! dropped unit would perturb `mean_cost` and flip a chosen seed long
//! before it flipped a color.

use parcolor_core::framework::{BlockEval, SeedSearcher, SimScratch};
use parcolor_core::{D1lcInstance, Params, SeedStrategy, Solver};
use parcolor_dist::{
    solve_on_failover_cluster, DistConfig, DistCoordinator, FailoverOutcome, FailoverSchedule,
    KillSpec, Standby,
};
use parcolor_graphgen as gen;
use parcolor_prg::{select_seed_blocks_n, SeedSelection};
use std::sync::{Arc, Mutex};

fn job(n: usize, m: usize, seed: u64, bits: u32, strat: &str) -> Vec<u8> {
    format!("{n} {m} {seed} {bits} {strat}").into_bytes()
}

fn decode(job: &[u8]) -> (D1lcInstance, Params) {
    let s = std::str::from_utf8(job).expect("utf8 job");
    let p: Vec<&str> = s.split_whitespace().collect();
    let (n, m, seed, bits) = (
        p[0].parse().unwrap(),
        p[1].parse().unwrap(),
        p[2].parse().unwrap(),
        p[3].parse().unwrap(),
    );
    let strategy = match p[4] {
        "ex" => SeedStrategy::Exhaustive,
        "bw" => SeedStrategy::BitwiseCondExp,
        other => SeedStrategy::FixedSubset(other.parse().unwrap()),
    };
    let inst = gen::degree_plus_one(gen::gnm(n, m, seed));
    let params = Params::default()
        .with_seed_bits(bits)
        .with_strategy(strategy);
    (inst, params)
}

/// A local searcher that records every selection it returns, in order —
/// the single-machine chosen-seed sequence the failover run must match.
struct RecordingSearcher {
    history: Mutex<Vec<SeedSelection>>,
}

impl SeedSearcher for RecordingSearcher {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        let sel = select_seed_blocks_n(
            seed_bits,
            strategy,
            workers,
            || SimScratch::new(n),
            |seed0, costs, scratch: &mut SimScratch| eval_block(seed0, costs, scratch),
        );
        self.history.lock().unwrap().push(sel.clone());
        sel
    }
}

/// Single-machine reference: the expected coloring *and* the expected
/// chosen-seed sequence.
fn reference(job_bytes: &[u8]) -> (Vec<u32>, Vec<SeedSelection>) {
    let (inst, params) = decode(job_bytes);
    let rec = Arc::new(RecordingSearcher {
        history: Mutex::new(Vec::new()),
    });
    let sol = Solver::deterministic(params)
        .with_seed_searcher(Arc::clone(&rec) as Arc<dyn SeedSearcher>)
        .solve(&inst);
    inst.verify_coloring(&sol.colors)
        .expect("reference must verify");
    let history = rec.history.lock().unwrap().clone();
    (sol.colors, history)
}

/// Loopback knobs with a roomier reconnect budget: workers must outlast
/// the standby's detect-and-promote window, not flip standalone.
fn failover_cfg(min_workers: usize) -> DistConfig {
    DistConfig {
        lease_timeout_ms: 60,
        heartbeat_timeout_ms: 2_000,
        blocks_per_lease: 4,
        poll_ms: 2,
        max_outstanding: 2,
        min_remote_len: 64,
        local_patience_ms: 500,
        min_workers,
        min_worker_wait_ms: 10_000,
        connect_backoff_ms: 10,
        max_backoff_ms: 150,
        max_reconnects: 10,
        idle_reconnect_ms: 400,
        result_flush_ms: 3,
        standby_reconnects: 3,
        jitter_seed: 0xFA110FF,
    }
}

/// The common assertion block for single-fault schedules: primary dead,
/// standby finished bit-identically (colors *and* seed sequence), every
/// worker replica exact.
fn assert_failover_exact(out: &FailoverOutcome, expected: &[u32], history: &[SeedSelection]) {
    assert!(out.primary_killed, "kill switch must fire");
    assert!(out.primary.is_none(), "killed primary must not finish");
    assert!(
        out.standby_stats.promoted,
        "standby must promote: {:?}",
        out.standby_stats
    );
    assert_eq!(
        out.standby_stats.promote_epoch, 2,
        "first promotion is epoch 2"
    );
    let standby = out.standby.as_ref().expect("standby must finish");
    assert_eq!(standby.colors, expected, "standby coloring diverged");
    assert_eq!(
        out.standby_history, history,
        "chosen-seed sequence diverged under failover"
    );
    for (i, w) in out.workers.iter().enumerate() {
        let w = w.as_ref().expect("worker finished");
        assert_eq!(w.colors, expected, "worker {i} replica diverged");
    }
    assert!(
        !out.standby_killed,
        "standby kill must not fire in single-fault schedules"
    );
}

#[test]
fn kill_primary_mid_fold_standby_finishes_exhaustive() {
    let j = job(240, 1_200, 21, 8, "ex");
    let (expected, history) = reference(&j);
    let out = solve_on_failover_cluster(
        &j,
        decode,
        2,
        FailoverSchedule {
            primary_kill: Some(KillSpec::after_units(6)),
            standby_kill: None,
        },
        failover_cfg(2),
    );
    assert_failover_exact(&out, &expected, &history);
    assert!(
        out.standby_stats.replicated_units >= 1,
        "replication stream must have been tailed: {:?}",
        out.standby_stats
    );
    assert!(
        out.standby_coord_stats.searches >= 1,
        "promoted standby must run searches itself: {:?}",
        out.standby_coord_stats
    );
}

#[test]
fn kill_primary_mid_fold_standby_finishes_bitwise() {
    // The bitwise walk is the dedup stress: dozens of folds per search,
    // each chosen seed conditioned on every prior fold's exact mean.
    let j = job(200, 900, 22, 8, "bw");
    let (expected, history) = reference(&j);
    let out = solve_on_failover_cluster(
        &j,
        decode,
        2,
        FailoverSchedule {
            primary_kill: Some(KillSpec::after_units(6)),
            standby_kill: None,
        },
        failover_cfg(2),
    );
    assert_failover_exact(&out, &expected, &history);
}

#[test]
fn kill_primary_between_folds_standby_finishes() {
    // Kill at a fold boundary: the in-flight fold is empty, so the
    // promoted standby starts clean from tailed `Chosen` history.
    let j = job(240, 1_200, 23, 8, "ex");
    let (expected, history) = reference(&j);
    let out = solve_on_failover_cluster(
        &j,
        decode,
        2,
        FailoverSchedule {
            primary_kill: Some(KillSpec::after_folds(2)),
            standby_kill: None,
        },
        failover_cfg(2),
    );
    assert_failover_exact(&out, &expected, &history);
    assert!(
        out.standby_stats.tailed_selections >= 1,
        "completed searches must have been tailed: {:?}",
        out.standby_stats
    );
}

#[test]
fn double_fault_workers_degrade_to_standalone() {
    // Kill the primary mid-fold AND the standby the instant it
    // promotes: no coordinator survives.  The fleet must not hang or
    // panic — every worker exhausts its reconnect budget, flips
    // standalone, and finishes its replica bit-identically.
    let j = job(200, 900, 24, 8, "ex");
    let (expected, _) = reference(&j);
    let out = solve_on_failover_cluster(
        &j,
        decode,
        2,
        FailoverSchedule {
            primary_kill: Some(KillSpec::after_units(4)),
            standby_kill: Some(KillSpec::on_promotion()),
        },
        failover_cfg(2),
    );
    assert!(out.primary_killed, "primary kill must fire");
    assert!(out.standby_killed, "standby kill must fire on promotion");
    assert!(out.primary.is_none());
    assert!(
        out.standby.is_none(),
        "killed standby must not produce a solution"
    );
    for (i, w) in out.workers.iter().enumerate() {
        let w = w.as_ref().expect("worker finished");
        assert_eq!(w.colors, expected, "standalone worker {i} diverged");
        assert!(
            out.standalone[i],
            "worker {i} must degrade to standalone: {:?}",
            out.worker_stats[i]
        );
    }
}

#[test]
fn orderly_handover_promotes_standby_cleanly() {
    // `Promote` without a crash: the primary hands over before running
    // anything, and the standby — promoted at epoch 2 — solves the
    // whole job itself, bit-identically, without waiting on a fleet.
    let j = job(200, 900, 25, 8, "ex");
    let (expected, history) = reference(&j);
    let cfg = failover_cfg(0);
    let primary =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", j.clone(), cfg.clone()).expect("bind"));
    let standby = Arc::new(
        Standby::start("127.0.0.1:0", &primary.local_addr().to_string(), cfg)
            .expect("standby start"),
    );
    assert_eq!(primary.connected_standbys(), 1, "tail must be registered");

    let colors = std::thread::scope(|scope| {
        let solve = {
            let standby = Arc::clone(&standby);
            scope.spawn(move || {
                let (inst, params) = decode(&standby.job());
                Solver::deterministic(params)
                    .with_seed_searcher(standby.searcher())
                    .solve(&inst)
                    .colors
            })
        };
        assert!(primary.handover(), "a standby must receive the promote");
        // Wait for the promotion to land before tearing the primary
        // down, so the handoff is unambiguously the `Promote` path.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !standby.stats().promoted {
            assert!(
                std::time::Instant::now() < deadline,
                "standby never promoted"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        primary.shutdown();
        solve.join().expect("standby solve thread")
    });
    standby.finish();

    assert_eq!(colors, expected, "handed-over standby diverged");
    assert_eq!(standby.history(), history, "seed sequence diverged");
    let st = standby.stats();
    assert!(st.promoted);
    assert_eq!(st.promote_epoch, 2, "orderly handover is epoch 1 → 2");
    assert!(!standby.was_killed());
}
