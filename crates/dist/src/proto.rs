//! The coordinator/worker message set and its wire encoding (v2).
//!
//! See the crate docs for the protocol narrative.  Every message is one
//! frame; the first payload byte is the message tag.  Unknown tags and
//! malformed payloads decode to errors (never panics) — the receiving
//! loop drops the connection, and the lease layer absorbs the loss.
//!
//! ## Version 2
//!
//! v2 is the failover revision: `Hello` carries the peer's [`Role`],
//! `Welcome`/`Grant`/`Chosen` carry the coordinator **epoch** (fencing:
//! frames from a deposed primary are dropped by epoch mismatch, never
//! merged), `Result` became a *batch* of unit aggregates (worker-side
//! result coalescing), and three messages were added: [`Msg::Replicate`]
//! (primary → standby unit-completion stream), [`Msg::Promote`]
//! (deliberate leadership handover) and [`Msg::Refuse`] (friendly
//! handshake refusal — version mismatch or "not primary yet").
//!
//! v1 peers are refused cleanly: a v1 `Hello` (no role byte) still
//! decodes, so a v2 coordinator can answer it with `Refuse` instead of
//! hanging up silently, and a v1 coordinator's silence makes a v2
//! worker's handshake fail with a timeout, not a panic.

use crate::frame::{Dec, Enc};
use parcolor_prg::SeedSelection;
use std::io;

/// Protocol version carried in `Hello`; mismatched peers are refused
/// with [`Msg::Refuse`].
pub const PROTO_VERSION: u32 = 2;

const T_HELLO: u8 = 1;
const T_WELCOME: u8 = 2;
const T_GRANT: u8 = 3;
const T_RESULT: u8 = 4;
const T_CHOSEN: u8 = 5;
const T_PING: u8 = 6;
const T_BYE: u8 = 7;
const T_REPLICATE: u8 = 8;
const T_PROMOTE: u8 = 9;
const T_REFUSE: u8 = 10;

/// What a connecting peer is (carried in `Hello` since v2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// A lease-serving worker replica.
    Worker,
    /// A standby coordinator tailing the replication stream.
    Standby,
}

impl Role {
    fn to_u8(self) -> u8 {
        match self {
            Role::Worker => 0,
            Role::Standby => 1,
        }
    }

    fn from_u8(v: u8) -> io::Result<Role> {
        match v {
            0 => Ok(Role::Worker),
            1 => Ok(Role::Standby),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "unknown role")),
        }
    }
}

/// One unit's grouping-invariant aggregate inside a [`Msg::Result`]
/// batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitResult {
    /// Echo of the grant's lease.
    pub lease_id: u64,
    /// Echo of the grant's unit (the dedup key).
    pub unit: u32,
    /// Sum of the unit's costs.
    pub sum: f64,
    /// Minimum cost in the unit.
    pub min: f64,
    /// Lowest seed achieving the minimum.
    pub argmin: u64,
}

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Peer → coordinator: first frame on every connection.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
        /// Worker or standby (v1 peers, which have no role byte, decode
        /// as `Worker` so the coordinator can refuse them politely).
        role: Role,
    },
    /// Coordinator → peer: handshake reply.  Carries everything a fresh
    /// (or reconnecting) peer needs to join mid-solve: the opaque job
    /// bytes, the coordinator's epoch, and the full history of
    /// already-chosen selections (`history[s]` is search `s`'s outcome),
    /// which the peer's replicated solve fast-forwards through.
    Welcome {
        /// Coordinator-assigned peer identity (unique per connection).
        worker_id: u64,
        /// The coordinator's epoch (bumped on every promotion); echoed
        /// by workers in `Result` so a deposed primary's frames fence.
        epoch: u64,
        /// Opaque job payload (the CLI encodes graph + parameters here).
        job: Vec<u8>,
        /// Selections of all completed searches, in search order.
        history: Vec<SeedSelection>,
    },
    /// Coordinator → worker: lease of one work unit — evaluate seeds
    /// `start .. start + len` and fold them.
    Grant {
        /// Issuing coordinator's epoch (echoed in the result).
        epoch: u64,
        /// Search this fold belongs to (workers serve only their
        /// current search).
        search_id: u64,
        /// Monotonic fold counter *within this coordinator* (one search
        /// may run many folds — the bitwise walk folds two half-spaces
        /// per bit).
        fold_id: u64,
        /// Lease identity, echoed in the result.
        lease_id: u64,
        /// Unit index within the fold (the dedup key).
        unit: u32,
        /// First seed of the unit.
        start: u64,
        /// Number of seeds in the unit.
        len: u64,
    },
    /// Worker → coordinator: a batch of completed unit aggregates for
    /// one `(epoch, search, fold)`.  Workers coalesce every result that
    /// completes within the flush window into one frame; the coordinator
    /// merges each entry independently (first copy per unit wins) and
    /// drops whole batches whose epoch is stale (fencing).
    Result {
        /// Epoch of the grants being answered.
        epoch: u64,
        /// Echo of the grants' search.
        search_id: u64,
        /// Echo of the grants' fold.
        fold_id: u64,
        /// The completed units (at least one).
        batch: Vec<UnitResult>,
    },
    /// Coordinator → all peers: a search concluded with this selection;
    /// workers and standbys adopt it and advance their replicas.
    Chosen {
        /// Epoch of the concluding coordinator.
        epoch: u64,
        /// The search that concluded.
        search_id: u64,
        /// Its outcome (trace included, so replicas report identically).
        selection: SeedSelection,
    },
    /// Primary → standby: one work unit completed, with enough fold
    /// geometry for the standby to rebuild the fold's `LeaseTable` after
    /// a promotion and re-lease only what is still in flight.  The
    /// stream is idempotent — every entry is self-describing and
    /// deduplicates by `(search, fold_seq, unit)`.
    Replicate {
        /// Epoch of the replicating primary.
        epoch: u64,
        /// Search the fold belongs to.
        search_id: u64,
        /// Fold index *within the search* (deterministic across
        /// replicas: both primaries count `fold_range` calls the same
        /// way, unlike the coordinator-global `fold_id`).
        fold_seq: u64,
        /// First seed of the whole fold.
        fold_start: u64,
        /// Seed count of the whole fold.
        fold_len: u64,
        /// Seeds per unit in this fold.
        unit_len: u64,
        /// The completed unit.
        unit: u32,
        /// Sum of the unit's costs.
        sum: f64,
        /// Minimum cost in the unit.
        min: f64,
        /// Lowest seed achieving the minimum.
        argmin: u64,
    },
    /// Primary → standby: deliberate leadership handover.  The standby
    /// promotes itself immediately with the given epoch instead of
    /// waiting out the crash-detection probation.
    Promote {
        /// The epoch the standby must adopt (the primary's epoch + 1).
        epoch: u64,
    },
    /// Coordinator → peer: friendly handshake refusal (version
    /// mismatch, or a standby that has not been promoted yet).  The
    /// peer must close the connection and report `reason`.
    Refuse {
        /// The protocol version this coordinator speaks.
        required_version: u32,
        /// Human-readable explanation.
        reason: String,
    },
    /// Worker → coordinator: liveness heartbeat (sent when idle).
    Ping,
    /// Either direction: orderly goodbye.
    Bye,
}

fn put_selection(e: &mut Enc, s: &SeedSelection) {
    e.u64(s.seed);
    e.f64(s.cost);
    e.f64(s.mean_cost);
    e.f64(s.min_cost);
    e.u64(s.evaluated);
    e.u32(s.trace.len() as u32);
    for &(bit, m0, m1) in &s.trace {
        e.u32(bit);
        e.f64(m0);
        e.f64(m1);
    }
}

fn get_selection(d: &mut Dec) -> io::Result<SeedSelection> {
    let seed = d.u64()?;
    let cost = d.f64()?;
    let mean_cost = d.f64()?;
    let min_cost = d.f64()?;
    let evaluated = d.u64()?;
    let ntrace = d.u32()? as usize;
    if ntrace > 1 << 16 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "absurd trace length",
        ));
    }
    let mut trace = Vec::with_capacity(ntrace);
    for _ in 0..ntrace {
        let bit = d.u32()?;
        let m0 = d.f64()?;
        let m1 = d.f64()?;
        trace.push((bit, m0, m1));
    }
    Ok(SeedSelection {
        seed,
        cost,
        mean_cost,
        min_cost,
        evaluated,
        trace,
    })
}

impl Msg {
    /// Encode to one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Msg::Hello { version, role } => {
                e.u8(T_HELLO);
                e.u32(*version);
                e.u8(role.to_u8());
            }
            Msg::Welcome {
                worker_id,
                epoch,
                job,
                history,
            } => {
                e.u8(T_WELCOME);
                e.u64(*worker_id);
                e.u64(*epoch);
                e.bytes(job);
                e.u32(history.len() as u32);
                for s in history {
                    put_selection(&mut e, s);
                }
            }
            Msg::Grant {
                epoch,
                search_id,
                fold_id,
                lease_id,
                unit,
                start,
                len,
            } => {
                e.u8(T_GRANT);
                e.u64(*epoch);
                e.u64(*search_id);
                e.u64(*fold_id);
                e.u64(*lease_id);
                e.u32(*unit);
                e.u64(*start);
                e.u64(*len);
            }
            Msg::Result {
                epoch,
                search_id,
                fold_id,
                batch,
            } => {
                e.u8(T_RESULT);
                e.u64(*epoch);
                e.u64(*search_id);
                e.u64(*fold_id);
                e.u32(batch.len() as u32);
                for r in batch {
                    e.u64(r.lease_id);
                    e.u32(r.unit);
                    e.f64(r.sum);
                    e.f64(r.min);
                    e.u64(r.argmin);
                }
            }
            Msg::Chosen {
                epoch,
                search_id,
                selection,
            } => {
                e.u8(T_CHOSEN);
                e.u64(*epoch);
                e.u64(*search_id);
                put_selection(&mut e, selection);
            }
            Msg::Replicate {
                epoch,
                search_id,
                fold_seq,
                fold_start,
                fold_len,
                unit_len,
                unit,
                sum,
                min,
                argmin,
            } => {
                e.u8(T_REPLICATE);
                e.u64(*epoch);
                e.u64(*search_id);
                e.u64(*fold_seq);
                e.u64(*fold_start);
                e.u64(*fold_len);
                e.u64(*unit_len);
                e.u32(*unit);
                e.f64(*sum);
                e.f64(*min);
                e.u64(*argmin);
            }
            Msg::Promote { epoch } => {
                e.u8(T_PROMOTE);
                e.u64(*epoch);
            }
            Msg::Refuse {
                required_version,
                reason,
            } => {
                e.u8(T_REFUSE);
                e.u32(*required_version);
                e.bytes(reason.as_bytes());
            }
            Msg::Ping => e.u8(T_PING),
            Msg::Bye => e.u8(T_BYE),
        }
        e.0
    }

    /// Decode one frame payload.
    pub fn decode(buf: &[u8]) -> io::Result<Msg> {
        let mut d = Dec::new(buf);
        let msg = match d.u8()? {
            T_HELLO => {
                let version = d.u32()?;
                // v1 Hello carries no role byte; decode it as a worker
                // so the handshake can refuse it with a reason instead
                // of a silent hangup.
                let role = if d.done() {
                    Role::Worker
                } else {
                    Role::from_u8(d.u8()?)?
                };
                Msg::Hello { version, role }
            }
            T_WELCOME => {
                let worker_id = d.u64()?;
                let epoch = d.u64()?;
                let job = d.bytes()?;
                let n = d.u32()? as usize;
                if n > 1 << 24 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "absurd history length",
                    ));
                }
                let mut history = Vec::with_capacity(n);
                for _ in 0..n {
                    history.push(get_selection(&mut d)?);
                }
                Msg::Welcome {
                    worker_id,
                    epoch,
                    job,
                    history,
                }
            }
            T_GRANT => Msg::Grant {
                epoch: d.u64()?,
                search_id: d.u64()?,
                fold_id: d.u64()?,
                lease_id: d.u64()?,
                unit: d.u32()?,
                start: d.u64()?,
                len: d.u64()?,
            },
            T_RESULT => {
                let epoch = d.u64()?;
                let search_id = d.u64()?;
                let fold_id = d.u64()?;
                let n = d.u32()? as usize;
                if n > 1 << 16 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "absurd result batch",
                    ));
                }
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(UnitResult {
                        lease_id: d.u64()?,
                        unit: d.u32()?,
                        sum: d.f64()?,
                        min: d.f64()?,
                        argmin: d.u64()?,
                    });
                }
                Msg::Result {
                    epoch,
                    search_id,
                    fold_id,
                    batch,
                }
            }
            T_CHOSEN => Msg::Chosen {
                epoch: d.u64()?,
                search_id: d.u64()?,
                selection: get_selection(&mut d)?,
            },
            T_REPLICATE => Msg::Replicate {
                epoch: d.u64()?,
                search_id: d.u64()?,
                fold_seq: d.u64()?,
                fold_start: d.u64()?,
                fold_len: d.u64()?,
                unit_len: d.u64()?,
                unit: d.u32()?,
                sum: d.f64()?,
                min: d.f64()?,
                argmin: d.u64()?,
            },
            T_PROMOTE => Msg::Promote { epoch: d.u64()? },
            T_REFUSE => {
                let required_version = d.u32()?;
                let raw = d.bytes()?;
                if raw.len() > 1 << 10 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "absurd refusal reason",
                    ));
                }
                let reason = String::from_utf8(raw)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 reason"))?;
                Msg::Refuse {
                    required_version,
                    reason,
                }
            }
            T_PING => Msg::Ping,
            T_BYE => Msg::Bye,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unknown message tag",
                ))
            }
        };
        if !d.done() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in message",
            ));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(seed: u64) -> SeedSelection {
        SeedSelection {
            seed,
            cost: 3.0,
            mean_cost: 4.5,
            min_cost: 3.0,
            evaluated: 256,
            trace: vec![(7, 4.25, 4.75), (6, 4.0, 4.5)],
        }
    }

    fn roundtrip(m: Msg) {
        let wire = m.encode();
        let back = Msg::decode(&wire).unwrap();
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::Hello {
            version: PROTO_VERSION,
            role: Role::Worker,
        });
        roundtrip(Msg::Hello {
            version: PROTO_VERSION,
            role: Role::Standby,
        });
        roundtrip(Msg::Welcome {
            worker_id: 3,
            epoch: 1,
            job: b"p edge 5 4".to_vec(),
            history: vec![sel(1), sel(200)],
        });
        roundtrip(Msg::Grant {
            epoch: 1,
            search_id: 9,
            fold_id: 41,
            lease_id: 7,
            unit: 2,
            start: 64,
            len: 32,
        });
        roundtrip(Msg::Result {
            epoch: 1,
            search_id: 9,
            fold_id: 41,
            batch: vec![
                UnitResult {
                    lease_id: 7,
                    unit: 2,
                    sum: 12.0,
                    min: 0.0,
                    argmin: 65,
                },
                UnitResult {
                    lease_id: 8,
                    unit: 3,
                    sum: 9.0,
                    min: 1.0,
                    argmin: 99,
                },
            ],
        });
        roundtrip(Msg::Chosen {
            epoch: 2,
            search_id: 9,
            selection: sel(65),
        });
        roundtrip(Msg::Replicate {
            epoch: 1,
            search_id: 9,
            fold_seq: 3,
            fold_start: 0,
            fold_len: 256,
            unit_len: 32,
            unit: 5,
            sum: 77.0,
            min: 2.0,
            argmin: 171,
        });
        roundtrip(Msg::Promote { epoch: 2 });
        roundtrip(Msg::Refuse {
            required_version: 2,
            reason: "protocol version 1 not supported".into(),
        });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Bye);
    }

    #[test]
    fn v1_hello_still_decodes_as_worker() {
        // A v1 peer's Hello is tag + u32 version, no role byte.  It must
        // decode (as a worker) so the coordinator can send a friendly
        // Refuse instead of hanging up on an opaque decode error.
        let mut wire = vec![T_HELLO];
        wire.extend_from_slice(&1u32.to_le_bytes());
        match Msg::decode(&wire).unwrap() {
            Msg::Hello { version, role } => {
                assert_eq!(version, 1);
                assert_eq!(role, Role::Worker);
            }
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        assert!(Msg::decode(&[]).is_err());
        assert!(Msg::decode(&[99]).is_err(), "unknown tag");
        let mut wire = Msg::Grant {
            epoch: 0,
            search_id: 1,
            fold_id: 2,
            lease_id: 3,
            unit: 4,
            start: 5,
            len: 6,
        }
        .encode();
        wire.truncate(wire.len() - 1);
        assert!(Msg::decode(&wire).is_err(), "truncated");
        let mut wire2 = Msg::Ping.encode();
        wire2.push(0);
        assert!(Msg::decode(&wire2).is_err(), "trailing bytes");
    }

    #[test]
    fn malformed_replicate_and_promote_are_rejected() {
        // Truncation at every prefix must error cleanly, exactly like
        // the seven v1 messages.
        let repl = Msg::Replicate {
            epoch: 1,
            search_id: 2,
            fold_seq: 3,
            fold_start: 0,
            fold_len: 128,
            unit_len: 32,
            unit: 1,
            sum: 5.0,
            min: 0.5,
            argmin: 40,
        }
        .encode();
        for cut in 1..repl.len() {
            assert!(Msg::decode(&repl[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = repl.clone();
        long.push(0);
        assert!(Msg::decode(&long).is_err(), "trailing byte");

        let promote = Msg::Promote { epoch: 9 }.encode();
        for cut in 1..promote.len() {
            assert!(Msg::decode(&promote[..cut]).is_err(), "cut at {cut}");
        }
        // A role byte outside {0, 1} is rejected, not defaulted.
        let mut hello = Msg::Hello {
            version: PROTO_VERSION,
            role: Role::Standby,
        }
        .encode();
        *hello.last_mut().unwrap() = 7;
        assert!(Msg::decode(&hello).is_err(), "unknown role");
        // Refuse with a non-UTF-8 reason is rejected.
        let mut refuse = Msg::Refuse {
            required_version: 2,
            reason: "ok".into(),
        }
        .encode();
        let n = refuse.len();
        refuse[n - 1] = 0xFF;
        refuse[n - 2] = 0xFE;
        assert!(Msg::decode(&refuse).is_err(), "invalid utf8 reason");
    }

    #[test]
    fn result_batch_rejects_absurd_lengths() {
        let mut e = Enc::default();
        e.u8(T_RESULT);
        e.u64(1);
        e.u64(2);
        e.u64(3);
        e.u32(u32::MAX); // absurd batch count
        assert!(Msg::decode(&e.0).is_err());
    }

    #[test]
    fn selection_roundtrip_is_bit_exact() {
        // f64 fields travel as raw bits: NaN-free exactness matters for
        // the bit-identity guarantee.
        let s = SeedSelection {
            seed: 5,
            cost: 0.1 + 0.2, // deliberately non-representable sum
            mean_cost: f64::MIN_POSITIVE,
            min_cost: -0.0,
            evaluated: 1,
            trace: vec![(0, 1.0 / 3.0, 2.0 / 3.0)],
        };
        let m = Msg::Chosen {
            epoch: 1,
            search_id: 0,
            selection: s.clone(),
        };
        if let Msg::Chosen { selection, .. } = Msg::decode(&m.encode()).unwrap() {
            assert_eq!(selection.cost.to_bits(), s.cost.to_bits());
            assert_eq!(selection.min_cost.to_bits(), s.min_cost.to_bits());
            assert_eq!(selection.trace[0].1.to_bits(), s.trace[0].1.to_bits());
        } else {
            panic!("wrong variant");
        }
    }
}
