//! The coordinator/worker message set and its wire encoding.
//!
//! See the crate docs for the protocol narrative.  Every message is one
//! frame; the first payload byte is the message tag.  Unknown tags and
//! malformed payloads decode to errors (never panics) — the receiving
//! loop drops the connection, and the lease layer absorbs the loss.

use crate::frame::{Dec, Enc};
use parcolor_prg::SeedSelection;
use std::io;

/// Protocol version carried in `Hello`; mismatched peers are refused.
pub const PROTO_VERSION: u32 = 1;

const T_HELLO: u8 = 1;
const T_WELCOME: u8 = 2;
const T_GRANT: u8 = 3;
const T_RESULT: u8 = 4;
const T_CHOSEN: u8 = 5;
const T_PING: u8 = 6;
const T_BYE: u8 = 7;

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker → coordinator: first frame on every connection.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
    },
    /// Coordinator → worker: handshake reply.  Carries everything a
    /// fresh (or reconnecting) worker needs to join mid-solve: the
    /// opaque job bytes and the full history of already-chosen
    /// selections (`history[s]` is search `s`'s outcome), which the
    /// worker's replicated solve fast-forwards through.
    Welcome {
        /// Coordinator-assigned worker identity (unique per connection).
        worker_id: u64,
        /// Opaque job payload (the CLI encodes graph + parameters here).
        job: Vec<u8>,
        /// Selections of all completed searches, in search order.
        history: Vec<SeedSelection>,
    },
    /// Coordinator → worker: lease of one work unit — evaluate seeds
    /// `start .. start + len` and fold them.
    Grant {
        /// Search this fold belongs to (workers serve only their
        /// current search).
        search_id: u64,
        /// Globally monotonic fold counter (one search may run many
        /// folds — the bitwise walk folds two half-spaces per bit).
        fold_id: u64,
        /// Lease identity, echoed in the result.
        lease_id: u64,
        /// Unit index within the fold (the dedup key).
        unit: u32,
        /// First seed of the unit.
        start: u64,
        /// Number of seeds in the unit.
        len: u64,
    },
    /// Worker → coordinator: the grouping-invariant aggregate of one
    /// unit.  Results for stale folds or already-done units are dropped
    /// by the coordinator (idempotent re-issue).
    Result {
        /// Echo of the grant's search.
        search_id: u64,
        /// Echo of the grant's fold.
        fold_id: u64,
        /// Echo of the grant's lease.
        lease_id: u64,
        /// Echo of the grant's unit (the dedup key).
        unit: u32,
        /// Sum of the unit's costs.
        sum: f64,
        /// Minimum cost in the unit.
        min: f64,
        /// Lowest seed achieving the minimum.
        argmin: u64,
    },
    /// Coordinator → all workers: a search concluded with this
    /// selection; workers adopt it and advance their replica.
    Chosen {
        /// The search that concluded.
        search_id: u64,
        /// Its outcome (trace included, so replicas report identically).
        selection: SeedSelection,
    },
    /// Worker → coordinator: liveness heartbeat (sent when idle).
    Ping,
    /// Either direction: orderly goodbye.
    Bye,
}

fn put_selection(e: &mut Enc, s: &SeedSelection) {
    e.u64(s.seed);
    e.f64(s.cost);
    e.f64(s.mean_cost);
    e.f64(s.min_cost);
    e.u64(s.evaluated);
    e.u32(s.trace.len() as u32);
    for &(bit, m0, m1) in &s.trace {
        e.u32(bit);
        e.f64(m0);
        e.f64(m1);
    }
}

fn get_selection(d: &mut Dec) -> io::Result<SeedSelection> {
    let seed = d.u64()?;
    let cost = d.f64()?;
    let mean_cost = d.f64()?;
    let min_cost = d.f64()?;
    let evaluated = d.u64()?;
    let ntrace = d.u32()? as usize;
    if ntrace > 1 << 16 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "absurd trace length",
        ));
    }
    let mut trace = Vec::with_capacity(ntrace);
    for _ in 0..ntrace {
        let bit = d.u32()?;
        let m0 = d.f64()?;
        let m1 = d.f64()?;
        trace.push((bit, m0, m1));
    }
    Ok(SeedSelection {
        seed,
        cost,
        mean_cost,
        min_cost,
        evaluated,
        trace,
    })
}

impl Msg {
    /// Encode to one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Msg::Hello { version } => {
                e.u8(T_HELLO);
                e.u32(*version);
            }
            Msg::Welcome {
                worker_id,
                job,
                history,
            } => {
                e.u8(T_WELCOME);
                e.u64(*worker_id);
                e.bytes(job);
                e.u32(history.len() as u32);
                for s in history {
                    put_selection(&mut e, s);
                }
            }
            Msg::Grant {
                search_id,
                fold_id,
                lease_id,
                unit,
                start,
                len,
            } => {
                e.u8(T_GRANT);
                e.u64(*search_id);
                e.u64(*fold_id);
                e.u64(*lease_id);
                e.u32(*unit);
                e.u64(*start);
                e.u64(*len);
            }
            Msg::Result {
                search_id,
                fold_id,
                lease_id,
                unit,
                sum,
                min,
                argmin,
            } => {
                e.u8(T_RESULT);
                e.u64(*search_id);
                e.u64(*fold_id);
                e.u64(*lease_id);
                e.u32(*unit);
                e.f64(*sum);
                e.f64(*min);
                e.u64(*argmin);
            }
            Msg::Chosen {
                search_id,
                selection,
            } => {
                e.u8(T_CHOSEN);
                e.u64(*search_id);
                put_selection(&mut e, selection);
            }
            Msg::Ping => e.u8(T_PING),
            Msg::Bye => e.u8(T_BYE),
        }
        e.0
    }

    /// Decode one frame payload.
    pub fn decode(buf: &[u8]) -> io::Result<Msg> {
        let mut d = Dec::new(buf);
        let msg = match d.u8()? {
            T_HELLO => Msg::Hello { version: d.u32()? },
            T_WELCOME => {
                let worker_id = d.u64()?;
                let job = d.bytes()?;
                let n = d.u32()? as usize;
                if n > 1 << 24 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "absurd history length",
                    ));
                }
                let mut history = Vec::with_capacity(n);
                for _ in 0..n {
                    history.push(get_selection(&mut d)?);
                }
                Msg::Welcome {
                    worker_id,
                    job,
                    history,
                }
            }
            T_GRANT => Msg::Grant {
                search_id: d.u64()?,
                fold_id: d.u64()?,
                lease_id: d.u64()?,
                unit: d.u32()?,
                start: d.u64()?,
                len: d.u64()?,
            },
            T_RESULT => Msg::Result {
                search_id: d.u64()?,
                fold_id: d.u64()?,
                lease_id: d.u64()?,
                unit: d.u32()?,
                sum: d.f64()?,
                min: d.f64()?,
                argmin: d.u64()?,
            },
            T_CHOSEN => Msg::Chosen {
                search_id: d.u64()?,
                selection: get_selection(&mut d)?,
            },
            T_PING => Msg::Ping,
            T_BYE => Msg::Bye,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unknown message tag",
                ))
            }
        };
        if !d.done() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes in message",
            ));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(seed: u64) -> SeedSelection {
        SeedSelection {
            seed,
            cost: 3.0,
            mean_cost: 4.5,
            min_cost: 3.0,
            evaluated: 256,
            trace: vec![(7, 4.25, 4.75), (6, 4.0, 4.5)],
        }
    }

    fn roundtrip(m: Msg) {
        let wire = m.encode();
        let back = Msg::decode(&wire).unwrap();
        assert_eq!(format!("{m:?}"), format!("{back:?}"));
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::Hello {
            version: PROTO_VERSION,
        });
        roundtrip(Msg::Welcome {
            worker_id: 3,
            job: b"p edge 5 4".to_vec(),
            history: vec![sel(1), sel(200)],
        });
        roundtrip(Msg::Grant {
            search_id: 9,
            fold_id: 41,
            lease_id: 7,
            unit: 2,
            start: 64,
            len: 32,
        });
        roundtrip(Msg::Result {
            search_id: 9,
            fold_id: 41,
            lease_id: 7,
            unit: 2,
            sum: 12.0,
            min: 0.0,
            argmin: 65,
        });
        roundtrip(Msg::Chosen {
            search_id: 9,
            selection: sel(65),
        });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Bye);
    }

    #[test]
    fn malformed_payloads_error_not_panic() {
        assert!(Msg::decode(&[]).is_err());
        assert!(Msg::decode(&[99]).is_err(), "unknown tag");
        let mut wire = Msg::Grant {
            search_id: 1,
            fold_id: 2,
            lease_id: 3,
            unit: 4,
            start: 5,
            len: 6,
        }
        .encode();
        wire.truncate(wire.len() - 1);
        assert!(Msg::decode(&wire).is_err(), "truncated");
        let mut wire2 = Msg::Ping.encode();
        wire2.push(0);
        assert!(Msg::decode(&wire2).is_err(), "trailing bytes");
    }

    #[test]
    fn selection_roundtrip_is_bit_exact() {
        // f64 fields travel as raw bits: NaN-free exactness matters for
        // the bit-identity guarantee.
        let s = SeedSelection {
            seed: 5,
            cost: 0.1 + 0.2, // deliberately non-representable sum
            mean_cost: f64::MIN_POSITIVE,
            min_cost: -0.0,
            evaluated: 1,
            trace: vec![(0, 1.0 / 3.0, 2.0 / 3.0)],
        };
        let m = Msg::Chosen {
            search_id: 0,
            selection: s.clone(),
        };
        if let Msg::Chosen { selection, .. } = Msg::decode(&m.encode()).unwrap() {
            assert_eq!(selection.cost.to_bits(), s.cost.to_bits());
            assert_eq!(selection.min_cost.to_bits(), s.min_cost.to_bits());
            assert_eq!(selection.trace[0].1.to_bits(), s.trace[0].1.to_bits());
        } else {
            panic!("wrong variant");
        }
    }
}
