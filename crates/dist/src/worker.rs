//! The worker: a replicated solve that serves leases.
//!
//! A worker runs the *same deterministic solve* as the coordinator
//! (reconstructed from the `Welcome` job bytes) with a
//! [`WorkerSearcher`] as its seed-search backend.  Each search, instead
//! of folding locally, the backend sits in a serve loop: evaluate every
//! `Grant` it is leased, return batched `Result`s, and conclude the
//! search when the coordinator's `Chosen` arrives — which keeps the
//! replica lock-step with the fleet.
//!
//! Failure handling: the worker carries an **ordered coordinator list**
//! (primary first, standbys after).  Any connection loss triggers a
//! reconnect sweep across the whole list with exponential backoff plus
//! deterministic jitter; the fresh `Welcome` carries the full selection
//! history, so a worker that was dark through any number of searches —
//! or that re-homed from a dead primary to a freshly promoted standby —
//! fast-forwards instead of desyncing.  An unpromoted standby answers
//! the handshake with a friendly `Refuse`, which counts as a failed
//! attempt and keeps the sweep cycling until promotion opens the door.
//! When the reconnect budget is exhausted (every coordinator gone for
//! good) the worker flips to **standalone** mode and finishes its
//! replica with the in-process search — same coloring, no panic.
//!
//! Result batching: completed units accumulate in a small batch that is
//! flushed as one `Result` frame when it reaches the pipelining depth,
//! when the `(epoch, search, fold)` key changes, when the
//! `result_flush_ms` window expires, or right before a heartbeat —
//! cutting frame count roughly `max_outstanding`-fold on chatty links
//! while dedup-by-unit-id semantics stay exactly as before.

use crate::chaos::SplitMix64;
use crate::frame::{write_frame, FrameReader};
use crate::proto::{Msg, Role, UnitResult, PROTO_VERSION};
use crate::DistConfig;
use parcolor_core::{BlockEval, SeedSearcher, SimScratch};
use parcolor_prg::{
    fold_seed_range_in, seed_workers, select_seed_blocks_n, SeedSelection, SeedStrategy,
};
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Socket read timeout — the worker's poll tick while idle.  With a
/// result batch pending the tick shrinks to `result_flush_ms` so the
/// flush window is honored at its own granularity.
const READ_TICK_MS: u64 = 25;

/// Worker-side counters (tests assert on these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Leases evaluated and answered.
    pub served_units: u64,
    /// `Result` frames sent (≤ `served_units`; batching coalesces).
    pub result_frames: u64,
    /// Successful (re)connections after the first.
    pub reconnects: u64,
    /// Heartbeats sent.
    pub pings: u64,
    /// Searches concluded from broadcast/history (lock-step path).
    pub adopted: u64,
    /// Searches concluded by local evaluation (standalone path).
    pub standalone_searches: u64,
}

pub(crate) struct Conn {
    pub(crate) reader: FrameReader,
    pub(crate) writer: TcpStream,
    /// Milliseconds of consecutive silence from the coordinator.
    pub(crate) idle_ms: u64,
    /// Milliseconds since we last sent anything (heartbeat pacing).
    pub(crate) since_send_ms: u64,
    /// The tick currently configured on the socket.
    tick_ms: u64,
}

impl Conn {
    fn set_tick(&mut self, tick_ms: u64) {
        if self.tick_ms != tick_ms
            && self
                .reader
                .set_read_timeout(Some(Duration::from_millis(tick_ms)))
                .is_ok()
        {
            self.tick_ms = tick_ms;
        }
    }
}

struct Inner {
    addrs: Vec<String>,
    /// Index of the coordinator the current/last connection used.
    addr_idx: usize,
    cfg: DistConfig,
    conn: Option<Conn>,
    job: Vec<u8>,
    history: Vec<SeedSelection>,
    /// Fencing epoch from the last `Welcome` (observability; fencing
    /// itself is coordinator-side — results echo their grant's epoch).
    epoch: u64,
    next_search: u64,
    standalone: bool,
    failed_attempts: u32,
    jitter: SplitMix64,
    /// Completed units awaiting one coalesced `Result` frame.
    batch: Vec<UnitResult>,
    /// `(epoch, search_id, fold_id)` every batched unit shares.
    batch_key: Option<(u64, u64, u64)>,
    /// Milliseconds the oldest batched unit has waited.
    batch_age_ms: u64,
    stats: WorkerStats,
}

/// The lease-serving [`SeedSearcher`] backend.  Construct with
/// [`WorkerSearcher::connect`] (or through [`run_worker`]) and hand to
/// `Solver::with_seed_searcher`.
pub struct WorkerSearcher {
    inner: Mutex<Inner>,
}

/// What a successful handshake yields: the connection, the `Welcome`
/// epoch, the job bytes, and the selection history.
pub(crate) type Handshake = (Conn, u64, Vec<u8>, Vec<SeedSelection>);

/// One connect + handshake as `role`.  A `Refuse` answer (version
/// mismatch, or an unpromoted standby) becomes a friendly
/// `ConnectionRefused` error carrying the peer's reason.
pub(crate) fn connect_once(addr: &str, _cfg: &DistConfig, role: Role) -> io::Result<Handshake> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(READ_TICK_MS)))?;
    let mut writer = stream.try_clone()?;
    write_frame(
        &mut writer,
        &Msg::Hello {
            version: PROTO_VERSION,
            role,
        }
        .encode(),
    )?;
    let mut reader = FrameReader::new(stream);
    let deadline = Instant::now() + Duration::from_secs(10);
    let frame = loop {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "handshake timed out",
            ));
        }
        match reader.poll_frame()? {
            Some(f) => break f,
            None => continue,
        }
    };
    match Msg::decode(&frame)? {
        Msg::Welcome {
            epoch,
            job,
            history,
            ..
        } => Ok((
            Conn {
                reader,
                writer,
                idle_ms: 0,
                since_send_ms: 0,
                tick_ms: READ_TICK_MS,
            },
            epoch,
            job,
            history,
        )),
        Msg::Refuse {
            required_version,
            reason,
        } => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("coordinator (protocol v{required_version}) refused handshake: {reason}"),
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Welcome",
        )),
    }
}

/// One sweep over the coordinator list starting at `start_idx`.
/// Returns the index of the address that answered, with its handshake.
fn connect_sweep(
    addrs: &[String],
    start_idx: usize,
    cfg: &DistConfig,
) -> io::Result<(usize, Handshake)> {
    let mut last_err = None;
    for k in 0..addrs.len() {
        let i = (start_idx + k) % addrs.len();
        match connect_once(&addrs[i], cfg, Role::Worker) {
            Ok(handshake) => return Ok((i, handshake)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("empty coordinator list")))
}

impl Inner {
    fn drop_conn(&mut self) {
        if let Some(c) = self.conn.take() {
            let _ = c.writer.shutdown(Shutdown::Both);
        }
        // Unflushed results die with the connection; the coordinator's
        // lease table re-issues those units.
        self.batch.clear();
        self.batch_key = None;
        self.batch_age_ms = 0;
    }

    /// Adopt a (re)connection's history: a live coordinator's record is
    /// a superset of ours (it appends before broadcasting) — unless we
    /// re-homed to a standby that lost the tail, in which case we keep
    /// our longer record and the lock-step fast path rides it out.
    fn adopt_history(&mut self, history: Vec<SeedSelection>) {
        if history.len() > self.history.len() {
            self.history = history;
        }
    }

    /// One backoff-then-sweep attempt across the coordinator list.
    /// Flips to standalone when the consecutive-failure budget runs out
    /// (each fully failed sweep counts once).
    fn reconnect(&mut self) {
        if self.failed_attempts >= self.cfg.max_reconnects {
            self.standalone = true;
            return;
        }
        let shift = self.failed_attempts.min(16);
        let base = self
            .cfg
            .connect_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_backoff_ms);
        let jitter = self.jitter.next_u64() % (base / 2 + 1);
        std::thread::sleep(Duration::from_millis(base + jitter));
        match connect_sweep(&self.addrs, self.addr_idx, &self.cfg) {
            Ok((idx, (conn, epoch, _job, history))) => {
                self.adopt_history(history);
                self.addr_idx = idx;
                self.epoch = epoch;
                self.conn = Some(conn);
                self.failed_attempts = 0;
                self.stats.reconnects += 1;
            }
            Err(_) => {
                self.failed_attempts += 1;
                if self.failed_attempts >= self.cfg.max_reconnects {
                    self.standalone = true;
                }
            }
        }
    }

    /// Send the pending batch as one `Result` frame.
    fn flush_batch(&mut self) {
        let Some((epoch, search_id, fold_id)) = self.batch_key.take() else {
            return;
        };
        let batch = std::mem::take(&mut self.batch);
        self.batch_age_ms = 0;
        if batch.is_empty() {
            return;
        }
        let wire = Msg::Result {
            epoch,
            search_id,
            fold_id,
            batch,
        }
        .encode();
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        conn.since_send_ms = 0;
        if write_frame(&mut conn.writer, &wire).is_err() {
            self.drop_conn();
            return;
        }
        self.stats.result_frames += 1;
    }
}

impl WorkerSearcher {
    /// Connect to the first reachable coordinator in `addrs` (ordered:
    /// primary first, standbys after) and complete the handshake,
    /// retrying whole-list sweeps with backoff up to the configured
    /// budget.
    pub fn connect(addrs: &[String], cfg: DistConfig) -> io::Result<WorkerSearcher> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty coordinator list",
            ));
        }
        let mut jitter = SplitMix64::new(cfg.jitter_seed);
        let mut last_err = None;
        for attempt in 0..cfg.max_reconnects.max(1) {
            match connect_sweep(addrs, 0, &cfg) {
                Ok((idx, (conn, epoch, job, history))) => {
                    return Ok(WorkerSearcher {
                        inner: Mutex::new(Inner {
                            addrs: addrs.to_vec(),
                            addr_idx: idx,
                            cfg,
                            conn: Some(conn),
                            job,
                            history,
                            epoch,
                            next_search: 0,
                            standalone: false,
                            failed_attempts: 0,
                            jitter,
                            batch: Vec::new(),
                            batch_key: None,
                            batch_age_ms: 0,
                            stats: WorkerStats::default(),
                        }),
                    })
                }
                Err(e) => {
                    last_err = Some(e);
                    let base = cfg
                        .connect_backoff_ms
                        .saturating_mul(1u64 << attempt.min(16))
                        .min(cfg.max_backoff_ms);
                    std::thread::sleep(Duration::from_millis(
                        base + jitter.next_u64() % (base / 2 + 1),
                    ));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no connection attempts")))
    }

    /// The job bytes from the handshake.
    pub fn job(&self) -> Vec<u8> {
        self.inner.lock().unwrap().job.clone()
    }

    /// Whether the worker has degraded to local-only operation.
    pub fn is_standalone(&self) -> bool {
        self.inner.lock().unwrap().standalone
    }

    /// The fencing epoch from the last `Welcome`.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerStats {
        self.inner.lock().unwrap().stats
    }

    /// Send a best-effort `Bye` and close the connection.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.flush_batch();
        if let Some(c) = inner.conn.as_mut() {
            let _ = write_frame(&mut c.writer, &Msg::Bye.encode());
        }
        inner.drop_conn();
    }
}

impl SeedSearcher for WorkerSearcher {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        let mut inner = self.inner.lock().unwrap();
        let sid = inner.next_search;
        let mut pool: Vec<SimScratch> = Vec::new();
        loop {
            // Lock-step fast path: the selection is already known
            // (broadcast received earlier, or replayed via Welcome).
            if let Some(sel) = inner.history.get(sid as usize) {
                let sel = sel.clone();
                inner.next_search += 1;
                inner.stats.adopted += 1;
                return sel;
            }
            if inner.standalone {
                let sel = select_seed_blocks_n(
                    seed_bits,
                    strategy,
                    workers,
                    || SimScratch::new(n),
                    |s, c, sc: &mut SimScratch| eval_block(s, c, sc),
                );
                debug_assert_eq!(inner.history.len() as u64, sid);
                inner.history.push(sel.clone());
                inner.next_search += 1;
                inner.stats.standalone_searches += 1;
                return sel;
            }
            if inner.conn.is_none() {
                inner.reconnect();
                continue;
            }

            // One poll tick of the serve loop.
            let msg = {
                let cfg_hb = inner.cfg.heartbeat_timeout_ms;
                let cfg_idle = inner.cfg.idle_reconnect_ms;
                let flush_ms = inner.cfg.result_flush_ms;
                let has_batch = !inner.batch.is_empty();
                let conn = inner.conn.as_mut().expect("checked above");
                conn.set_tick(if has_batch {
                    flush_ms.clamp(1, READ_TICK_MS)
                } else {
                    READ_TICK_MS
                });
                let tick = conn.tick_ms;
                match conn.reader.poll_frame() {
                    Ok(Some(frame)) => match Msg::decode(&frame) {
                        Ok(m) => {
                            conn.idle_ms = 0;
                            Some(m)
                        }
                        Err(_) => {
                            inner.drop_conn();
                            continue;
                        }
                    },
                    Ok(None) => {
                        conn.idle_ms += tick;
                        conn.since_send_ms += tick;
                        let (idle, quiet) = (conn.idle_ms, conn.since_send_ms);
                        if has_batch {
                            inner.batch_age_ms += tick;
                            if inner.batch_age_ms >= flush_ms {
                                inner.flush_batch();
                                continue;
                            }
                        }
                        // Heartbeat: one-way Ping whenever we've been
                        // quiet for a third of the eviction window.
                        if quiet >= cfg_hb / 3 {
                            // Never heartbeat past pending results.
                            inner.flush_batch();
                            let Some(conn) = inner.conn.as_mut() else {
                                continue;
                            };
                            conn.since_send_ms = 0;
                            if write_frame(&mut conn.writer, &Msg::Ping.encode()).is_err() {
                                inner.drop_conn();
                                continue;
                            }
                            inner.stats.pings += 1;
                        } else if idle >= cfg_idle {
                            // Dead air past the idle window: a Chosen
                            // may have been lost — resync via Welcome.
                            inner.drop_conn();
                        }
                        continue;
                    }
                    Err(_) => {
                        inner.drop_conn();
                        continue;
                    }
                }
            };

            match msg {
                Some(Msg::Grant {
                    epoch,
                    search_id,
                    fold_id,
                    lease_id,
                    unit,
                    start,
                    len,
                }) => {
                    if search_id > sid {
                        // The coordinator is ahead of us: we missed a
                        // Chosen.  Resync through a fresh Welcome.
                        inner.drop_conn();
                        continue;
                    }
                    if search_id < sid || len == 0 {
                        continue; // stale lease from before a reconnect
                    }
                    let w = seed_workers(len, workers);
                    while pool.len() < w {
                        pool.push(SimScratch::new(n));
                    }
                    let eval = |s: u64, c: &mut [f64], sc: &mut SimScratch| eval_block(s, c, sc);
                    let part = fold_seed_range_in(&mut pool[..w], start, len, &eval);
                    let key = (epoch, search_id, fold_id);
                    if inner.batch_key.is_some() && inner.batch_key != Some(key) {
                        inner.flush_batch();
                        if inner.conn.is_none() {
                            continue;
                        }
                    }
                    inner.batch_key = Some(key);
                    inner.batch.push(UnitResult {
                        lease_id,
                        unit,
                        sum: part.sum,
                        min: part.min,
                        argmin: part.argmin,
                    });
                    inner.stats.served_units += 1;
                    if inner.batch.len() >= inner.cfg.max_outstanding.max(1) {
                        inner.flush_batch();
                    }
                }
                Some(Msg::Chosen {
                    search_id,
                    selection,
                    ..
                }) => {
                    let have = inner.history.len() as u64;
                    if search_id == have {
                        // Results for a concluded search are moot.
                        inner.batch.clear();
                        inner.batch_key = None;
                        inner.batch_age_ms = 0;
                        inner.history.push(selection);
                    } else if search_id > have {
                        // Gap: an earlier Chosen was lost in transit.
                        inner.drop_conn();
                    }
                    // search_id < have: duplicate broadcast, ignore.
                }
                Some(Msg::Bye) => {
                    // Coordinator is leaving.  With standbys on the
                    // list, re-home (a standby promotes on its primary's
                    // death and serves the full history); with nowhere
                    // else to go, finish the replica locally.
                    inner.drop_conn();
                    if inner.addrs.len() <= 1 {
                        inner.standalone = true;
                    }
                }
                Some(_) | None => {}
            }
        }
    }
}

/// Connect to the first reachable coordinator in `addrs`, fetch the
/// job, and run `run(job, searcher)` — typically: decode the job, build
/// the replica solver, and call
/// `Solver::with_seed_searcher(searcher).solve(..)`.  Sends `Bye` when
/// `run` returns.  Errors only if no initial connection ever succeeds.
pub fn run_worker<R>(
    addrs: &[String],
    cfg: DistConfig,
    run: impl FnOnce(&[u8], Arc<WorkerSearcher>) -> R,
) -> io::Result<R> {
    let searcher = Arc::new(WorkerSearcher::connect(addrs, cfg)?);
    let job = searcher.job();
    let out = run(&job, Arc::clone(&searcher));
    searcher.finish();
    Ok(out)
}
