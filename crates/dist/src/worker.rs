//! The worker: a replicated solve that serves leases.
//!
//! A worker runs the *same deterministic solve* as the coordinator
//! (reconstructed from the `Welcome` job bytes) with a
//! [`WorkerSearcher`] as its seed-search backend.  Each search, instead
//! of folding locally, the backend sits in a serve loop: evaluate every
//! `Grant` it is leased, return `Result`s, and conclude the search when
//! the coordinator's `Chosen` arrives — which keeps the replica
//! lock-step with the fleet.
//!
//! Failure handling: any connection loss triggers reconnection with
//! exponential backoff plus deterministic jitter; the fresh `Welcome`
//! carries the full selection history, so a worker that was dark
//! through any number of searches fast-forwards instead of desyncing.
//! When the reconnect budget is exhausted (coordinator gone for good)
//! the worker flips to **standalone** mode and finishes its replica
//! with the in-process search — same coloring, no panic.

use crate::chaos::SplitMix64;
use crate::frame::{write_frame, FrameReader};
use crate::proto::{Msg, PROTO_VERSION};
use crate::DistConfig;
use parcolor_core::{BlockEval, SeedSearcher, SimScratch};
use parcolor_prg::{
    fold_seed_range_in, seed_workers, select_seed_blocks_n, SeedSelection, SeedStrategy,
};
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Socket read timeout — the worker's poll tick while idle.
const READ_TICK_MS: u64 = 25;

/// Worker-side counters (tests assert on these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Leases evaluated and answered.
    pub served_units: u64,
    /// Successful (re)connections after the first.
    pub reconnects: u64,
    /// Heartbeats sent.
    pub pings: u64,
    /// Searches concluded from broadcast/history (lock-step path).
    pub adopted: u64,
    /// Searches concluded by local evaluation (standalone path).
    pub standalone_searches: u64,
}

struct Conn {
    reader: FrameReader,
    writer: TcpStream,
    /// Milliseconds of consecutive silence from the coordinator.
    idle_ms: u64,
    /// Milliseconds since we last sent anything (heartbeat pacing).
    since_send_ms: u64,
}

struct Inner {
    addr: String,
    cfg: DistConfig,
    conn: Option<Conn>,
    job: Vec<u8>,
    history: Vec<SeedSelection>,
    next_search: u64,
    standalone: bool,
    failed_attempts: u32,
    jitter: SplitMix64,
    stats: WorkerStats,
}

/// The lease-serving [`SeedSearcher`] backend.  Construct with
/// [`WorkerSearcher::connect`] (or through [`run_worker`]) and hand to
/// `Solver::with_seed_searcher`.
pub struct WorkerSearcher {
    inner: Mutex<Inner>,
}

fn connect_once(addr: &str, _cfg: &DistConfig) -> io::Result<(Conn, Vec<u8>, Vec<SeedSelection>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_millis(READ_TICK_MS)))?;
    let mut writer = stream.try_clone()?;
    write_frame(
        &mut writer,
        &Msg::Hello {
            version: PROTO_VERSION,
        }
        .encode(),
    )?;
    let mut reader = FrameReader::new(stream);
    let deadline = Instant::now() + Duration::from_secs(10);
    let frame = loop {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "handshake timed out",
            ));
        }
        match reader.poll_frame()? {
            Some(f) => break f,
            None => continue,
        }
    };
    match Msg::decode(&frame)? {
        Msg::Welcome { job, history, .. } => Ok((
            Conn {
                reader,
                writer,
                idle_ms: 0,
                since_send_ms: 0,
            },
            job,
            history,
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Welcome",
        )),
    }
}

impl Inner {
    fn drop_conn(&mut self) {
        if let Some(c) = self.conn.take() {
            let _ = c.writer.shutdown(Shutdown::Both);
        }
    }

    /// Adopt a (re)connection's history: the coordinator's record is
    /// always a superset of ours (it appends before broadcasting).
    fn adopt_history(&mut self, history: Vec<SeedSelection>) {
        if history.len() > self.history.len() {
            self.history = history;
        }
    }

    /// One backoff-then-connect attempt.  Flips to standalone when the
    /// consecutive-failure budget runs out.
    fn reconnect(&mut self) {
        if self.failed_attempts >= self.cfg.max_reconnects {
            self.standalone = true;
            return;
        }
        let shift = self.failed_attempts.min(16);
        let base = self
            .cfg
            .connect_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_backoff_ms);
        let jitter = self.jitter.next_u64() % (base / 2 + 1);
        std::thread::sleep(Duration::from_millis(base + jitter));
        match connect_once(&self.addr, &self.cfg) {
            Ok((conn, _job, history)) => {
                self.adopt_history(history);
                self.conn = Some(conn);
                self.failed_attempts = 0;
                self.stats.reconnects += 1;
            }
            Err(_) => {
                self.failed_attempts += 1;
                if self.failed_attempts >= self.cfg.max_reconnects {
                    self.standalone = true;
                }
            }
        }
    }
}

impl WorkerSearcher {
    /// Connect to a coordinator and complete the handshake, retrying
    /// with backoff up to the configured budget.
    pub fn connect(addr: &str, cfg: DistConfig) -> io::Result<WorkerSearcher> {
        let mut jitter = SplitMix64::new(cfg.jitter_seed);
        let mut last_err = None;
        for attempt in 0..cfg.max_reconnects.max(1) {
            match connect_once(addr, &cfg) {
                Ok((conn, job, history)) => {
                    return Ok(WorkerSearcher {
                        inner: Mutex::new(Inner {
                            addr: addr.to_string(),
                            cfg,
                            conn: Some(conn),
                            job,
                            history,
                            next_search: 0,
                            standalone: false,
                            failed_attempts: 0,
                            jitter,
                            stats: WorkerStats::default(),
                        }),
                    })
                }
                Err(e) => {
                    last_err = Some(e);
                    let base = cfg
                        .connect_backoff_ms
                        .saturating_mul(1u64 << attempt.min(16))
                        .min(cfg.max_backoff_ms);
                    std::thread::sleep(Duration::from_millis(
                        base + jitter.next_u64() % (base / 2 + 1),
                    ));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no connection attempts")))
    }

    /// The job bytes from the handshake.
    pub fn job(&self) -> Vec<u8> {
        self.inner.lock().unwrap().job.clone()
    }

    /// Whether the worker has degraded to local-only operation.
    pub fn is_standalone(&self) -> bool {
        self.inner.lock().unwrap().standalone
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerStats {
        self.inner.lock().unwrap().stats
    }

    /// Send a best-effort `Bye` and close the connection.
    pub fn finish(&self) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.conn.as_mut() {
            let _ = write_frame(&mut c.writer, &Msg::Bye.encode());
        }
        inner.drop_conn();
    }
}

impl SeedSearcher for WorkerSearcher {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        let mut inner = self.inner.lock().unwrap();
        let sid = inner.next_search;
        let mut pool: Vec<SimScratch> = Vec::new();
        loop {
            // Lock-step fast path: the selection is already known
            // (broadcast received earlier, or replayed via Welcome).
            if let Some(sel) = inner.history.get(sid as usize) {
                let sel = sel.clone();
                inner.next_search += 1;
                inner.stats.adopted += 1;
                return sel;
            }
            if inner.standalone {
                let sel = select_seed_blocks_n(
                    seed_bits,
                    strategy,
                    workers,
                    || SimScratch::new(n),
                    |s, c, sc: &mut SimScratch| eval_block(s, c, sc),
                );
                debug_assert_eq!(inner.history.len() as u64, sid);
                inner.history.push(sel.clone());
                inner.next_search += 1;
                inner.stats.standalone_searches += 1;
                return sel;
            }
            if inner.conn.is_none() {
                inner.reconnect();
                continue;
            }

            // One poll tick of the serve loop.
            let msg = {
                let cfg_hb = inner.cfg.heartbeat_timeout_ms;
                let cfg_idle = inner.cfg.idle_reconnect_ms;
                let conn = inner.conn.as_mut().expect("checked above");
                match conn.reader.poll_frame() {
                    Ok(Some(frame)) => match Msg::decode(&frame) {
                        Ok(m) => {
                            conn.idle_ms = 0;
                            Some(m)
                        }
                        Err(_) => {
                            inner.drop_conn();
                            continue;
                        }
                    },
                    Ok(None) => {
                        conn.idle_ms += READ_TICK_MS;
                        conn.since_send_ms += READ_TICK_MS;
                        // Heartbeat: one-way Ping whenever we've been
                        // quiet for a third of the eviction window.
                        if conn.since_send_ms >= cfg_hb / 3 {
                            conn.since_send_ms = 0;
                            if write_frame(&mut conn.writer, &Msg::Ping.encode()).is_err() {
                                inner.drop_conn();
                                continue;
                            }
                            inner.stats.pings += 1;
                        } else if conn.idle_ms >= cfg_idle {
                            // Dead air past the idle window: a Chosen
                            // may have been lost — resync via Welcome.
                            inner.drop_conn();
                        }
                        continue;
                    }
                    Err(_) => {
                        inner.drop_conn();
                        continue;
                    }
                }
            };

            match msg {
                Some(Msg::Grant {
                    search_id,
                    fold_id,
                    lease_id,
                    unit,
                    start,
                    len,
                }) => {
                    if search_id > sid {
                        // The coordinator is ahead of us: we missed a
                        // Chosen.  Resync through a fresh Welcome.
                        inner.drop_conn();
                        continue;
                    }
                    if search_id < sid || len == 0 {
                        continue; // stale lease from before a reconnect
                    }
                    let w = seed_workers(len, workers);
                    while pool.len() < w {
                        pool.push(SimScratch::new(n));
                    }
                    let eval = |s: u64, c: &mut [f64], sc: &mut SimScratch| eval_block(s, c, sc);
                    let part = fold_seed_range_in(&mut pool[..w], start, len, &eval);
                    let wire = Msg::Result {
                        search_id,
                        fold_id,
                        lease_id,
                        unit,
                        sum: part.sum,
                        min: part.min,
                        argmin: part.argmin,
                    }
                    .encode();
                    let conn = inner.conn.as_mut().expect("serving");
                    conn.since_send_ms = 0;
                    if write_frame(&mut conn.writer, &wire).is_err() {
                        inner.drop_conn();
                        continue;
                    }
                    inner.stats.served_units += 1;
                }
                Some(Msg::Chosen {
                    search_id,
                    selection,
                }) => {
                    let have = inner.history.len() as u64;
                    if search_id == have {
                        inner.history.push(selection);
                    } else if search_id > have {
                        // Gap: an earlier Chosen was lost in transit.
                        inner.drop_conn();
                    }
                    // search_id < have: duplicate broadcast, ignore.
                }
                Some(Msg::Bye) => {
                    // Coordinator is shutting down.  If we still needed
                    // this search, finish the replica locally.
                    inner.drop_conn();
                    inner.standalone = true;
                }
                Some(_) | None => {}
            }
        }
    }
}

/// Connect to `addr`, fetch the job, and run `run(job, searcher)` —
/// typically: decode the job, build the replica solver, and call
/// `Solver::with_seed_searcher(searcher).solve(..)`.  Sends `Bye` when
/// `run` returns.  Errors only if the initial connection never
/// succeeds.
pub fn run_worker<R>(
    addr: &str,
    cfg: DistConfig,
    run: impl FnOnce(&[u8], Arc<WorkerSearcher>) -> R,
) -> io::Result<R> {
    let searcher = Arc::new(WorkerSearcher::connect(addr, cfg)?);
    let job = searcher.job();
    let out = run(&job, Arc::clone(&searcher));
    searcher.finish();
    Ok(out)
}
