//! The coordinator: leases seed-range units to a fleet, re-issues what
//! expires or orphans, dedups completions, and falls back to local
//! evaluation when the fleet is gone.
//!
//! [`DistCoordinator`] implements [`SeedSearcher`], so it plugs
//! straight into `Solver::with_seed_searcher`.  Strategy logic is not
//! duplicated here: each search runs [`select_seed_folded`] against a
//! [`RangeFolder`] whose `fold_range` leases units out instead of
//! folding in-process — the selection is therefore field-for-field the
//! local path's by construction (see the crate docs for the exactness
//! argument).

use crate::frame::{write_frame, FrameReader};
use crate::proto::{Msg, PROTO_VERSION};
use crate::DistConfig;
use parcolor_core::{BlockEval, SeedSearcher, SimScratch};
use parcolor_exec::{LeaseTable, SumMinArgmin};
use parcolor_prg::{
    fold_seed_range_in, seed_workers, select_seed_folded, RangeFolder, SeedSelection, SeedStrategy,
    SEED_BLOCK,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The lease granted to the coordinator's own local-fallback path.
const LOCAL_WORKER: u64 = 0;

/// Counters the coordinator accumulates across the whole solve
/// (aggregating each fold's [`parcolor_exec::LeaseStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Seed searches served.
    pub searches: u64,
    /// Range folds served (searches may fold many ranges).
    pub folds: u64,
    /// Folds that leased units to the fleet (the rest ran locally).
    pub remote_folds: u64,
    /// Leases granted, including re-issues.
    pub granted: u64,
    /// Units granted more than once (expiry, orphaning, or fallback).
    pub reissued: u64,
    /// Leases that blew their deadline.
    pub expired: u64,
    /// Leases released because their worker died.
    pub orphaned: u64,
    /// Unit completions dropped as duplicates (unit already done).
    pub duplicates: u64,
    /// Results for a fold that already concluded (late stragglers).
    pub stale_results: u64,
    /// Units merged from worker results.
    pub remote_units: u64,
    /// Units the coordinator folded itself (fallback path).
    pub local_units: u64,
    /// Workers evicted for heartbeat silence.
    pub evictions: u64,
    /// Worker connections lost (EOF, I/O error, or `Bye`).
    pub disconnects: u64,
}

struct Peer {
    stream: TcpStream,
    last_seen: u64,
}

enum Event {
    Msg(u64, Msg),
    Gone(u64),
}

struct Shared {
    cfg: DistConfig,
    job: Vec<u8>,
    start: Instant,
    history: Mutex<Vec<SeedSelection>>,
    peers: Mutex<HashMap<u64, Peer>>,
    events: Mutex<VecDeque<Event>>,
    events_cv: Condvar,
    next_worker: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn push_event(&self, ev: Event) {
        self.events.lock().unwrap().push_back(ev);
        self.events_cv.notify_one();
    }

    /// Drain all queued events, waiting up to `wait_ms` if none are
    /// queued yet.
    fn drain_events(&self, wait_ms: u64) -> Vec<Event> {
        let mut q = self.events.lock().unwrap();
        if q.is_empty() {
            let (q2, _) = self
                .events_cv
                .wait_timeout(q, Duration::from_millis(wait_ms))
                .unwrap();
            q = q2;
        }
        q.drain(..).collect()
    }

    /// Remove `id` from the peer map, closing its socket.  Returns
    /// whether the peer was still registered (so callers count each
    /// disconnect exactly once even when the writer and the reader both
    /// notice the death).
    fn drop_peer(&self, id: u64) -> bool {
        match self.peers.lock().unwrap().remove(&id) {
            Some(p) => {
                let _ = p.stream.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }
}

struct CoordState {
    next_search: u64,
    next_fold: u64,
    waited_for_fleet: bool,
    stats: DistStats,
}

/// Coordinator endpoint: owns the listener, the per-connection reader
/// threads, and the lease bookkeeping of every fold.  One instance
/// serves one solve (its searches arrive sequentially through
/// [`SeedSearcher::select`]).
pub struct DistCoordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    state: Mutex<CoordState>,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    reader_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl DistCoordinator {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting workers.
    /// `job` is the opaque payload every `Welcome` carries — whatever
    /// the workers need to reconstruct the instance (the CLI's codec
    /// lives in `parcolor-cli`).
    pub fn bind(addr: &str, job: Vec<u8>, cfg: DistConfig) -> io::Result<DistCoordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            job,
            start: Instant::now(),
            history: Mutex::new(Vec::new()),
            peers: Mutex::new(HashMap::new()),
            events: Mutex::new(VecDeque::new()),
            events_cv: Condvar::new(),
            next_worker: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let reader_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&reader_handles);
            std::thread::spawn(move || accept_loop(listener, shared, handles))
        };
        Ok(DistCoordinator {
            shared,
            addr: local,
            state: Mutex::new(CoordState {
                next_search: 0,
                next_fold: 0,
                waited_for_fleet: false,
                stats: DistStats::default(),
            }),
            accept_handle: Mutex::new(Some(accept_handle)),
            reader_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected workers.
    pub fn connected_workers(&self) -> usize {
        self.shared.peers.lock().unwrap().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DistStats {
        self.state.lock().unwrap().stats
    }

    /// Broadcast `Bye`, close every connection, and stop the accept
    /// loop.  Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut peers = self.shared.peers.lock().unwrap();
            for (_, peer) in peers.iter_mut() {
                let _ = write_frame(&mut peer.stream, &Msg::Bye.encode());
                let _ = peer.stream.shutdown(Shutdown::Both);
            }
            peers.clear();
        }
        if let Some(h) = self.accept_handle.lock().unwrap().take() {
            let _ = h.join();
        }
        for h in self.reader_handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }

    /// Wait (bounded) for the configured fleet before the first search,
    /// so benches measure distribution rather than a race the
    /// coordinator wins alone.
    fn wait_for_fleet(&self) {
        let cfg = &self.shared.cfg;
        if cfg.min_workers == 0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_millis(cfg.min_worker_wait_ms);
        while self.connected_workers() < cfg.min_workers && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
        }
    }
}

impl Drop for DistCoordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SeedSearcher for DistCoordinator {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        let mut st = self.state.lock().unwrap();
        if !st.waited_for_fleet {
            st.waited_for_fleet = true;
            drop(st);
            self.wait_for_fleet();
            st = self.state.lock().unwrap();
        }
        let search_id = st.next_search;
        st.next_search += 1;
        let mut folder = LeasingFolder {
            shared: &self.shared,
            st: &mut st,
            search_id,
            n,
            workers,
            eval_block,
            pool: Vec::new(),
        };
        let sel = select_seed_folded(seed_bits, strategy, &mut folder);
        st.stats.searches += 1;

        // Publish: record the selection (late joiners get it in their
        // Welcome) and broadcast it to the fleet.  History is locked
        // before peers everywhere, so a concurrent handshake either
        // snapshots this selection or is registered before the send.
        let mut dead = Vec::new();
        {
            let mut history = self.shared.history.lock().unwrap();
            history.push(sel.clone());
            let wire = Msg::Chosen {
                search_id,
                selection: sel.clone(),
            }
            .encode();
            let mut peers = self.shared.peers.lock().unwrap();
            for (&id, peer) in peers.iter_mut() {
                if write_frame(&mut peer.stream, &wire).is_err() {
                    dead.push(id);
                }
            }
        }
        for id in dead {
            if self.shared.drop_peer(id) {
                st.stats.disconnects += 1;
            }
        }
        sel
    }
}

/// The [`RangeFolder`] that leases.  Lives for one search; `pool` is
/// its local-evaluation scratch arena (fallbacks and short folds).
struct LeasingFolder<'a, 'b> {
    shared: &'a Shared,
    st: &'a mut CoordState,
    search_id: u64,
    n: usize,
    workers: usize,
    eval_block: BlockEval<'b>,
    pool: Vec<SimScratch>,
}

fn unit_range(start: u64, len: u64, unit_len: u64, unit: u32) -> (u64, u64) {
    let ustart = start + unit as u64 * unit_len;
    let ulen = (start + len - ustart).min(unit_len);
    (ustart, ulen)
}

impl LeasingFolder<'_, '_> {
    /// Fold a range on the in-process pool — the same primitive
    /// `select_seed_blocks_n` uses, so local shares are bit-identical.
    fn local_fold(&mut self, start: u64, len: u64) -> SumMinArgmin {
        let w = seed_workers(len, self.workers);
        while self.pool.len() < w {
            self.pool.push(SimScratch::new(self.n));
        }
        let eb = self.eval_block;
        let eval = move |s: u64, c: &mut [f64], sc: &mut SimScratch| eb(s, c, sc);
        fold_seed_range_in(&mut self.pool[..w], start, len, &eval)
    }

    /// Lease the fold out to the fleet; merge first-completions; expire,
    /// orphan, and re-issue as needed; degrade to local evaluation when
    /// the fleet is gone or the fold stalls.
    fn remote_fold(&mut self, start: u64, len: u64, unit_len: u64) -> SumMinArgmin {
        let cfg = &self.shared.cfg;
        let nunits = len.div_ceil(unit_len);
        let fold_id = self.st.next_fold;
        self.st.next_fold += 1;
        self.st.stats.remote_folds += 1;
        let mut table = LeaseTable::new(nunits as u32);
        let mut acc = SumMinArgmin::EMPTY;
        let fold_start = self.shared.now_ms();

        while !table.is_done() {
            let now = self.shared.now_ms();
            table.expire(now);

            // Evict workers that have been silent past the heartbeat
            // timeout; their leases go back to pending.
            let mut dead: Vec<u64> = Vec::new();
            {
                let peers = self.shared.peers.lock().unwrap();
                for (&id, p) in peers.iter() {
                    if now.saturating_sub(p.last_seen) > cfg.heartbeat_timeout_ms {
                        dead.push(id);
                    }
                }
            }
            for id in dead {
                if self.shared.drop_peer(id) {
                    self.st.stats.evictions += 1;
                }
                table.release_worker(id);
            }

            // Grant pending units to live workers, lowest worker id
            // first, up to the pipelining depth.
            let mut send_failed: Vec<u64> = Vec::new();
            {
                let mut peers = self.shared.peers.lock().unwrap();
                let mut ids: Vec<u64> = peers.keys().copied().collect();
                ids.sort_unstable();
                'workers: for id in ids {
                    while table.pending_len() > 0 && table.outstanding_of(id) < cfg.max_outstanding
                    {
                        let Some(lease) = table.grant(id, now, cfg.lease_timeout_ms) else {
                            break 'workers;
                        };
                        let (ustart, ulen) = unit_range(start, len, unit_len, lease.unit);
                        let wire = Msg::Grant {
                            search_id: self.search_id,
                            fold_id,
                            lease_id: lease.lease_id,
                            unit: lease.unit,
                            start: ustart,
                            len: ulen,
                        }
                        .encode();
                        let peer = peers.get_mut(&id).expect("granted to a live peer");
                        if write_frame(&mut peer.stream, &wire).is_err() {
                            send_failed.push(id);
                            break;
                        }
                    }
                }
            }
            for id in send_failed {
                if self.shared.drop_peer(id) {
                    self.st.stats.disconnects += 1;
                }
                table.release_worker(id);
            }

            // Merge completions; first copy per unit wins.
            for ev in self.shared.drain_events(cfg.poll_ms.max(1)) {
                match ev {
                    Event::Gone(id) => {
                        if self.shared.drop_peer(id) {
                            self.st.stats.disconnects += 1;
                        }
                        table.release_worker(id);
                    }
                    Event::Msg(
                        _,
                        Msg::Result {
                            search_id,
                            fold_id: result_fold,
                            unit,
                            sum,
                            min,
                            argmin,
                            ..
                        },
                    ) => {
                        if search_id != self.search_id || result_fold != fold_id {
                            self.st.stats.stale_results += 1;
                        } else if (unit as u64) < nunits && table.complete(unit) {
                            acc = acc.merge(SumMinArgmin { sum, min, argmin });
                            self.st.stats.remote_units += 1;
                        }
                    }
                    Event::Msg(id, Msg::Bye) => {
                        if self.shared.drop_peer(id) {
                            self.st.stats.disconnects += 1;
                        }
                        table.release_worker(id);
                    }
                    Event::Msg(..) => {}
                }
            }

            // Graceful degradation: with no fleet — or a fold stuck past
            // the patience window despite live-looking workers — fold
            // pending units locally, one per tick so fresh results can
            // still interleave.  Dedup makes the overlap harmless.
            let fleet_gone = self.shared.peers.lock().unwrap().is_empty();
            let stalled =
                now.saturating_sub(fold_start) > cfg.local_patience_ms && table.pending_len() > 0;
            if !table.is_done() && (fleet_gone || stalled) {
                if let Some(lease) = table.grant(LOCAL_WORKER, now, u64::MAX / 2) {
                    let (ustart, ulen) = unit_range(start, len, unit_len, lease.unit);
                    let part = self.local_fold(ustart, ulen);
                    table.complete(lease.unit);
                    acc = acc.merge(part);
                    self.st.stats.local_units += 1;
                }
            }
        }

        let ls = table.stats();
        self.st.stats.granted += ls.granted;
        self.st.stats.reissued += ls.reissued;
        self.st.stats.expired += ls.expired;
        self.st.stats.orphaned += ls.orphaned;
        self.st.stats.duplicates += ls.duplicates;
        acc
    }
}

impl RangeFolder for LeasingFolder<'_, '_> {
    fn fold_range(&mut self, start: u64, len: u64) -> SumMinArgmin {
        self.st.stats.folds += 1;
        let cfg = &self.shared.cfg;
        let unit_len = (cfg.blocks_per_lease.max(1)) * SEED_BLOCK as u64;
        let no_fleet = self.shared.peers.lock().unwrap().is_empty();
        if len < cfg.min_remote_len || no_fleet {
            self.st.stats.local_units += len.div_ceil(unit_len);
            return self.local_fold(start, len);
        }
        self.remote_fold(start, len, unit_len)
    }

    fn eval_seed(&mut self, seed: u64) -> f64 {
        if self.pool.is_empty() {
            self.pool.push(SimScratch::new(self.n));
        }
        let mut c = [0.0f64];
        (self.eval_block)(seed, &mut c, &mut self.pool[0]);
        c[0]
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::spawn(move || reader_loop(stream, shared));
                handles.lock().unwrap().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection reader: handshake (`Hello` → `Welcome` + register),
/// then pump frames into the event queue until death.  After
/// registration this thread never writes — the solve thread owns the
/// write half.
fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(read_half);

    // Handshake with a deadline.
    let handshake_deadline = Instant::now() + Duration::from_secs(10);
    let hello = loop {
        if shared.shutdown.load(Ordering::SeqCst) || Instant::now() > handshake_deadline {
            return;
        }
        match reader.poll_frame() {
            Ok(Some(frame)) => break frame,
            Ok(None) => continue,
            Err(_) => return,
        }
    };
    match Msg::decode(&hello) {
        Ok(Msg::Hello { version }) if version == PROTO_VERSION => {}
        _ => return, // wrong first message or version: refuse silently
    }

    let id = shared.next_worker.fetch_add(1, Ordering::SeqCst);
    {
        // Snapshot history and register atomically (history before
        // peers — the same order the broadcast path locks), so no
        // Chosen can fall between the snapshot and registration.
        let history = shared.history.lock().unwrap();
        let welcome = Msg::Welcome {
            worker_id: id,
            job: shared.job.clone(),
            history: history.clone(),
        }
        .encode();
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        if write_frame(&mut write_half, &welcome).is_err() {
            return;
        }
        shared.peers.lock().unwrap().insert(
            id,
            Peer {
                stream,
                last_seen: shared.now_ms(),
            },
        );
    }

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.poll_frame() {
            Ok(Some(frame)) => match Msg::decode(&frame) {
                Ok(msg) => {
                    if let Some(p) = shared.peers.lock().unwrap().get_mut(&id) {
                        p.last_seen = shared.now_ms();
                    }
                    match msg {
                        Msg::Ping => {} // liveness only, already recorded
                        other => shared.push_event(Event::Msg(id, other)),
                    }
                }
                Err(_) => {
                    // Malformed frame: drop the connection; the lease
                    // layer re-issues whatever it held.
                    shared.push_event(Event::Gone(id));
                    return;
                }
            },
            Ok(None) => continue,
            Err(_) => {
                shared.push_event(Event::Gone(id));
                return;
            }
        }
    }
}
