//! The coordinator: leases seed-range units to a fleet, re-issues what
//! expires or orphans, dedups completions, replicates progress to
//! standbys, and falls back to local evaluation when the fleet is gone.
//!
//! [`DistCoordinator`] implements [`SeedSearcher`], so it plugs
//! straight into `Solver::with_seed_searcher`.  Strategy logic is not
//! duplicated here: each search runs [`select_seed_folded`] against a
//! [`RangeFolder`] whose `fold_range` leases units out instead of
//! folding in-process — the selection is therefore field-for-field the
//! local path's by construction (see the crate docs for the exactness
//! argument).
//!
//! The same machinery serves two roles.  A **primary** (from
//! [`DistCoordinator::bind`]) accepts workers immediately and streams
//! [`Msg::Replicate`] unit completions to every connected standby.  A
//! **standby's embedded coordinator** (`bind_standby`, driven by
//! [`crate::standby::StandbySearcher`]) refuses workers with a friendly
//! [`Msg::Refuse`] until promotion, then runs searches through
//! [`DistCoordinator::run_search`] with the replicated completion state
//! pre-seeded into each fold's [`LeaseTable`] — only what was still in
//! flight at the primary's death is re-leased.

use crate::chaos::KillSwitch;
use crate::frame::{write_frame, FrameReader};
use crate::proto::{Msg, Role, PROTO_VERSION};
use crate::DistConfig;
use parcolor_core::{BlockEval, SeedSearcher, SimScratch};
use parcolor_exec::{LeaseTable, SumMinArgmin};
use parcolor_prg::{
    fold_seed_range_in, seed_workers, select_seed_folded, RangeFolder, SeedSelection, SeedStrategy,
    SEED_BLOCK,
};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The lease granted to the coordinator's own local-fallback path.
const LOCAL_WORKER: u64 = 0;

/// Panic payload used by an armed [`KillSwitch`] to abort the solve
/// thread mid-fold.  The failover harness catches it; sockets are
/// closed abruptly beforehand (no `Bye`), so peers observe a crash, not
/// an orderly shutdown.
#[derive(Debug)]
pub struct CoordinatorKilled;

/// Counters the coordinator accumulates across the whole solve
/// (aggregating each fold's [`parcolor_exec::LeaseStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Seed searches served.
    pub searches: u64,
    /// Range folds served (searches may fold many ranges).
    pub folds: u64,
    /// Folds that leased units to the fleet (the rest ran locally).
    pub remote_folds: u64,
    /// Leases granted, including re-issues.
    pub granted: u64,
    /// Units granted more than once (expiry, orphaning, or fallback).
    pub reissued: u64,
    /// Leases that blew their deadline.
    pub expired: u64,
    /// Leases released because their worker died.
    pub orphaned: u64,
    /// Unit completions dropped as duplicates (unit already done).
    pub duplicates: u64,
    /// Results for a fold that already concluded (late stragglers).
    pub stale_results: u64,
    /// Whole result batches dropped by epoch fencing (frames issued by
    /// a deposed primary must never merge, even if fold ids collide).
    pub fenced: u64,
    /// Units merged from worker results.
    pub remote_units: u64,
    /// Units the coordinator folded itself (fallback path).
    pub local_units: u64,
    /// Units pre-completed from the replication stream at promotion
    /// (work the dead primary already merged that was not redone).
    pub replayed_units: u64,
    /// Workers evicted for heartbeat silence.
    pub evictions: u64,
    /// Worker connections lost (EOF, I/O error, or `Bye`).
    pub disconnects: u64,
}

/// One fold's replicated completion state, keyed on the standby by
/// `(search_id, fold_seq)`.  Geometry is carried so a promoted standby
/// can verify the deterministically replayed fold matches before
/// pre-completing units.
#[derive(Clone, Debug, Default)]
pub struct ReplicatedFold {
    /// First seed of the fold.
    pub start: u64,
    /// Seed count of the fold.
    pub len: u64,
    /// Seeds per unit.
    pub unit_len: u64,
    /// Completed units and their aggregates (deduped by unit id).
    pub units: Vec<(u32, SumMinArgmin)>,
}

struct Peer {
    stream: TcpStream,
    last_seen: u64,
    role: Role,
}

enum Event {
    Msg(u64, Msg),
    Gone(u64),
}

struct Shared {
    cfg: DistConfig,
    job: Vec<u8>,
    start: Instant,
    history: Mutex<Vec<SeedSelection>>,
    peers: Mutex<HashMap<u64, Peer>>,
    events: Mutex<VecDeque<Event>>,
    events_cv: Condvar,
    next_worker: AtomicU64,
    shutdown: AtomicBool,
    /// Fencing epoch: starts at 1 on a primary, 0 on an unpromoted
    /// standby, and bumps on every promotion.
    epoch: AtomicU64,
    /// Whether worker handshakes are accepted (false on a standby until
    /// promotion — workers are refused with a "not primary" `Refuse`).
    accepting: AtomicBool,
    /// Set by a fired kill switch: the teardown was a crash, not an
    /// orderly shutdown.
    killed: AtomicBool,
    kill: Mutex<Option<Arc<KillSwitch>>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn push_event(&self, ev: Event) {
        self.events.lock().unwrap().push_back(ev);
        self.events_cv.notify_one();
    }

    /// Drain all queued events, waiting up to `wait_ms` if none are
    /// queued yet.
    fn drain_events(&self, wait_ms: u64) -> Vec<Event> {
        let mut q = self.events.lock().unwrap();
        if q.is_empty() {
            let (q2, _) = self
                .events_cv
                .wait_timeout(q, Duration::from_millis(wait_ms))
                .unwrap();
            q = q2;
        }
        q.drain(..).collect()
    }

    /// Remove `id` from the peer map, closing its socket.  Returns
    /// whether the peer was still registered (so callers count each
    /// disconnect exactly once even when the writer and the reader both
    /// notice the death).
    fn drop_peer(&self, id: u64) -> bool {
        match self.peers.lock().unwrap().remove(&id) {
            Some(p) => {
                let _ = p.stream.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }

    fn worker_count(&self) -> usize {
        self.peers
            .lock()
            .unwrap()
            .values()
            .filter(|p| p.role == Role::Worker)
            .count()
    }

    fn has_standby(&self) -> bool {
        self.peers
            .lock()
            .unwrap()
            .values()
            .any(|p| p.role == Role::Standby)
    }

    /// Write `wire` to every standby peer; returns the ids whose send
    /// failed (to be dropped by the caller).
    fn send_to_standbys(&self, wire: &[u8]) -> Vec<u64> {
        let mut dead = Vec::new();
        let mut peers = self.peers.lock().unwrap();
        for (&id, p) in peers.iter_mut() {
            if p.role == Role::Standby && write_frame(&mut p.stream, wire).is_err() {
                dead.push(id);
            }
        }
        dead
    }

    /// Crash: close every socket abruptly (no `Bye` — peers must see a
    /// death, not an orderly goodbye) and stop all loops.
    fn die(&self) {
        self.killed.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let mut peers = self.peers.lock().unwrap();
            for (_, p) in peers.iter_mut() {
                let _ = p.stream.shutdown(Shutdown::Both);
            }
            peers.clear();
        }
        self.events_cv.notify_all();
    }
}

struct CoordState {
    next_search: u64,
    next_fold: u64,
    waited_for_fleet: bool,
    stats: DistStats,
}

/// Coordinator endpoint: owns the listener, the per-connection reader
/// threads, and the lease bookkeeping of every fold.  One instance
/// serves one solve (its searches arrive sequentially through
/// [`SeedSearcher::select`]).
pub struct DistCoordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    state: Mutex<CoordState>,
    accept_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    reader_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl DistCoordinator {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting workers
    /// as a primary (epoch 1).  `job` is the opaque payload every
    /// `Welcome` carries — whatever the workers need to reconstruct the
    /// instance (the CLI's codec lives in `parcolor-cli`).
    pub fn bind(addr: &str, job: Vec<u8>, cfg: DistConfig) -> io::Result<DistCoordinator> {
        Self::bind_inner(addr, job, cfg, true, 1)
    }

    /// Bind as an unpromoted standby: the listener runs (so workers
    /// probing the address get a fast, friendly `Refuse` instead of a
    /// hang), but no handshake completes until [`Self::promote`].
    pub(crate) fn bind_standby(
        addr: &str,
        job: Vec<u8>,
        cfg: DistConfig,
    ) -> io::Result<DistCoordinator> {
        Self::bind_inner(addr, job, cfg, false, 0)
    }

    fn bind_inner(
        addr: &str,
        job: Vec<u8>,
        cfg: DistConfig,
        accepting: bool,
        epoch: u64,
    ) -> io::Result<DistCoordinator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            job,
            start: Instant::now(),
            history: Mutex::new(Vec::new()),
            peers: Mutex::new(HashMap::new()),
            events: Mutex::new(VecDeque::new()),
            events_cv: Condvar::new(),
            next_worker: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(epoch),
            accepting: AtomicBool::new(accepting),
            killed: AtomicBool::new(false),
            kill: Mutex::new(None),
        });
        let reader_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&reader_handles);
            std::thread::spawn(move || accept_loop(listener, shared, handles))
        };
        Ok(DistCoordinator {
            shared,
            addr: local,
            state: Mutex::new(CoordState {
                next_search: 0,
                next_fold: 0,
                waited_for_fleet: false,
                stats: DistStats::default(),
            }),
            accept_handle: Mutex::new(Some(accept_handle)),
            reader_handles,
        })
    }

    /// The state lock, recovering from poisoning: an armed kill switch
    /// panics the solve thread mid-fold by design, and the harness must
    /// still read stats afterwards.
    fn state_lock(&self) -> MutexGuard<'_, CoordState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently connected worker-role peers (standbys not counted).
    pub fn connected_workers(&self) -> usize {
        self.shared.worker_count()
    }

    /// Currently connected standby-role peers.
    pub fn connected_standbys(&self) -> usize {
        self.shared
            .peers
            .lock()
            .unwrap()
            .values()
            .filter(|p| p.role == Role::Standby)
            .count()
    }

    /// The current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Whether an armed kill switch fired (teardown was a crash).
    pub fn was_killed(&self) -> bool {
        self.shared.killed.load(Ordering::SeqCst)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DistStats {
        self.state_lock().stats
    }

    /// Arm a deterministic kill switch: when it fires (unit/fold counts
    /// or promotion, see [`KillSwitch`]), the coordinator closes every
    /// socket abruptly and panics the solve thread with
    /// [`CoordinatorKilled`] — a simulated crash for the chaos gauntlet.
    pub fn arm_kill(&self, switch: Arc<KillSwitch>) {
        *self.shared.kill.lock().unwrap() = Some(switch);
    }

    /// Orderly handover: send `Promote` to the lowest-id connected
    /// standby, telling it to take over at `epoch + 1`.  Returns whether
    /// a standby received it.  The caller is expected to stop granting
    /// afterwards (typically by shutting down).
    pub fn handover(&self) -> bool {
        let epoch = self.epoch() + 1;
        let wire = Msg::Promote { epoch }.encode();
        let mut peers = self.shared.peers.lock().unwrap();
        let mut ids: Vec<u64> = peers
            .iter()
            .filter(|(_, p)| p.role == Role::Standby)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let p = peers.get_mut(&id).expect("listed standby");
            if write_frame(&mut p.stream, &wire).is_ok() {
                return true;
            }
        }
        false
    }

    /// Broadcast `Bye`, close every connection, and stop the accept
    /// loop.  Idempotent; also runs on drop.  After a kill the sockets
    /// are already gone, so this only reaps threads.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            let mut peers = self.shared.peers.lock().unwrap();
            for (_, peer) in peers.iter_mut() {
                let _ = write_frame(&mut peer.stream, &Msg::Bye.encode());
                let _ = peer.stream.shutdown(Shutdown::Both);
            }
            peers.clear();
        }
        if let Some(h) = self.accept_handle.lock().unwrap().take() {
            let _ = h.join();
        }
        for h in self.reader_handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }

    /// Wait (bounded) for the configured fleet before the first search,
    /// so benches measure distribution rather than a race the
    /// coordinator wins alone.  Also called after a standby's promotion
    /// so the orphaned fleet has a chance to re-home before the first
    /// re-leased fold.
    pub(crate) fn wait_for_fleet(&self) {
        let cfg = &self.shared.cfg;
        if cfg.min_workers == 0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_millis(cfg.min_worker_wait_ms);
        while self.connected_workers() < cfg.min_workers && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
        }
    }

    /// Promote a standby-bound coordinator: adopt `epoch`, install the
    /// tailed `history` (so worker `Welcome`s fast-forward correctly),
    /// position the search counter, and start accepting workers.
    pub(crate) fn promote(&self, epoch: u64, history: Vec<SeedSelection>, next_search: u64) {
        let fire = match self.shared.kill.lock().unwrap().as_ref() {
            Some(k) => k.note_promotion(),
            None => false,
        };
        if fire {
            self.shared.die();
            std::panic::panic_any(CoordinatorKilled);
        }
        self.shared.epoch.store(epoch, Ordering::SeqCst);
        *self.shared.history.lock().unwrap() = history;
        {
            let mut st = self.state_lock();
            st.next_search = next_search;
        }
        self.shared.accepting.store(true, Ordering::SeqCst);
    }

    /// Run one search through the leasing machinery.  `preseed` carries
    /// replicated completion state keyed by per-search fold sequence —
    /// a promoted standby passes what it tailed from the dead primary;
    /// a primary passes an empty map.
    pub(crate) fn run_search(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
        preseed: HashMap<u64, ReplicatedFold>,
    ) -> SeedSelection {
        let mut st = self.state_lock();
        let search_id = st.next_search;
        st.next_search += 1;
        let epoch = self.shared.epoch.load(Ordering::SeqCst);
        let kill = self.shared.kill.lock().unwrap().clone();
        let mut folder = LeasingFolder {
            shared: &self.shared,
            st: &mut st,
            search_id,
            epoch,
            fold_seq: 0,
            preseed,
            kill,
            n,
            workers,
            eval_block,
            pool: Vec::new(),
        };
        let sel = select_seed_folded(seed_bits, strategy, &mut folder);
        st.stats.searches += 1;

        // Publish: record the selection (late joiners get it in their
        // Welcome) and broadcast it to the fleet.  History is locked
        // before peers everywhere, so a concurrent handshake either
        // snapshots this selection or is registered before the send.
        let mut dead = Vec::new();
        {
            let mut history = self.shared.history.lock().unwrap();
            history.push(sel.clone());
            let wire = Msg::Chosen {
                epoch,
                search_id,
                selection: sel.clone(),
            }
            .encode();
            let mut peers = self.shared.peers.lock().unwrap();
            for (&id, peer) in peers.iter_mut() {
                if write_frame(&mut peer.stream, &wire).is_err() {
                    dead.push(id);
                }
            }
        }
        for id in dead {
            if self.shared.drop_peer(id) {
                st.stats.disconnects += 1;
            }
        }
        sel
    }
}

impl Drop for DistCoordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SeedSearcher for DistCoordinator {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        {
            let mut st = self.state_lock();
            if !st.waited_for_fleet {
                st.waited_for_fleet = true;
                drop(st);
                self.wait_for_fleet();
            }
        }
        self.run_search(seed_bits, strategy, workers, n, eval_block, HashMap::new())
    }
}

/// The [`RangeFolder`] that leases.  Lives for one search; `pool` is
/// its local-evaluation scratch arena (fallbacks and short folds).
struct LeasingFolder<'a, 'b> {
    shared: &'a Shared,
    st: &'a mut CoordState,
    search_id: u64,
    epoch: u64,
    /// Fold counter *within this search* — deterministic across
    /// replicas (both a primary and a promoted standby count
    /// `fold_range` calls identically), unlike the coordinator-global
    /// `next_fold`.  Keys the replication stream.
    fold_seq: u64,
    preseed: HashMap<u64, ReplicatedFold>,
    kill: Option<Arc<KillSwitch>>,
    n: usize,
    workers: usize,
    eval_block: BlockEval<'b>,
    pool: Vec<SimScratch>,
}

fn unit_range(start: u64, len: u64, unit_len: u64, unit: u32) -> (u64, u64) {
    let ustart = start + unit as u64 * unit_len;
    let ulen = (start + len - ustart).min(unit_len);
    (ustart, ulen)
}

impl LeasingFolder<'_, '_> {
    /// Crash now if the armed kill switch says this completed unit was
    /// the trigger (simulated coordinator death, mid-fold).
    fn kill_check_unit(&mut self) {
        if let Some(k) = &self.kill {
            if k.note_unit() {
                self.shared.die();
                std::panic::panic_any(CoordinatorKilled);
            }
        }
    }

    /// Crash now if the armed kill switch triggers on fold boundaries.
    fn kill_check_fold(&mut self) {
        if let Some(k) = &self.kill {
            if k.note_fold() {
                self.shared.die();
                std::panic::panic_any(CoordinatorKilled);
            }
        }
    }

    /// Stream one completed unit to the standbys (no-op without any).
    fn replicate_unit(&mut self, seq: u64, geom: (u64, u64, u64), unit: u32, agg: SumMinArgmin) {
        if !self.shared.has_standby() {
            return;
        }
        let (fold_start, fold_len, unit_len) = geom;
        let wire = Msg::Replicate {
            epoch: self.epoch,
            search_id: self.search_id,
            fold_seq: seq,
            fold_start,
            fold_len,
            unit_len,
            unit,
            sum: agg.sum,
            min: agg.min,
            argmin: agg.argmin,
        }
        .encode();
        for id in self.shared.send_to_standbys(&wire) {
            if self.shared.drop_peer(id) {
                self.st.stats.disconnects += 1;
            }
        }
    }

    /// Fold a range on the in-process pool — the same primitive
    /// `select_seed_blocks_n` uses, so local shares are bit-identical.
    fn local_fold(&mut self, start: u64, len: u64) -> SumMinArgmin {
        let w = seed_workers(len, self.workers);
        while self.pool.len() < w {
            self.pool.push(SimScratch::new(self.n));
        }
        let eb = self.eval_block;
        let eval = move |s: u64, c: &mut [f64], sc: &mut SimScratch| eb(s, c, sc);
        fold_seed_range_in(&mut self.pool[..w], start, len, &eval)
    }

    /// Lease the fold out to the fleet; merge first-completions; expire,
    /// orphan, and re-issue as needed; degrade to local evaluation when
    /// the fleet is gone or the fold stalls.
    fn remote_fold(&mut self, start: u64, len: u64, unit_len: u64, seq: u64) -> SumMinArgmin {
        let cfg = &self.shared.cfg;
        let nunits = len.div_ceil(unit_len);
        let fold_id = self.st.next_fold;
        self.st.next_fold += 1;
        self.st.stats.remote_folds += 1;
        let mut table = LeaseTable::new(nunits as u32);
        let mut acc = SumMinArgmin::EMPTY;
        let geom = (start, len, unit_len);

        // Promotion replay: pre-complete every unit the dead primary
        // already merged (and replicated) for this fold, provided the
        // deterministically re-derived geometry matches.  Only what was
        // still in flight stays pending and gets (re-)leased.
        if let Some(rf) = self.preseed.remove(&seq) {
            if (rf.start, rf.len, rf.unit_len) == geom {
                for (unit, agg) in rf.units {
                    if (unit as u64) < nunits && table.complete(unit) {
                        acc = acc.merge(agg);
                        self.st.stats.replayed_units += 1;
                    }
                }
            }
        }

        let fold_start = self.shared.now_ms();
        while !table.is_done() {
            let now = self.shared.now_ms();
            table.expire(now);

            // Evict peers that have been silent past the heartbeat
            // timeout; a worker's leases go back to pending.
            let mut dead: Vec<u64> = Vec::new();
            {
                let peers = self.shared.peers.lock().unwrap();
                for (&id, p) in peers.iter() {
                    if now.saturating_sub(p.last_seen) > cfg.heartbeat_timeout_ms {
                        dead.push(id);
                    }
                }
            }
            for id in dead {
                if self.shared.drop_peer(id) {
                    self.st.stats.evictions += 1;
                }
                table.release_worker(id);
            }

            // Grant pending units to live workers, lowest worker id
            // first, up to the pipelining depth.  Standbys never serve
            // leases — they only tail the replication stream.
            let mut send_failed: Vec<u64> = Vec::new();
            {
                let mut peers = self.shared.peers.lock().unwrap();
                let mut ids: Vec<u64> = peers
                    .iter()
                    .filter(|(_, p)| p.role == Role::Worker)
                    .map(|(&id, _)| id)
                    .collect();
                ids.sort_unstable();
                'workers: for id in ids {
                    while table.pending_len() > 0 && table.outstanding_of(id) < cfg.max_outstanding
                    {
                        let Some(lease) = table.grant(id, now, cfg.lease_timeout_ms) else {
                            break 'workers;
                        };
                        let (ustart, ulen) = unit_range(start, len, unit_len, lease.unit);
                        let wire = Msg::Grant {
                            epoch: self.epoch,
                            search_id: self.search_id,
                            fold_id,
                            lease_id: lease.lease_id,
                            unit: lease.unit,
                            start: ustart,
                            len: ulen,
                        }
                        .encode();
                        let peer = peers.get_mut(&id).expect("granted to a live peer");
                        if write_frame(&mut peer.stream, &wire).is_err() {
                            send_failed.push(id);
                            break;
                        }
                    }
                }
            }
            for id in send_failed {
                if self.shared.drop_peer(id) {
                    self.st.stats.disconnects += 1;
                }
                table.release_worker(id);
            }

            // Merge completions; first copy per unit wins.  Batches are
            // fenced by epoch first: frames from a deposed primary's
            // grants are dropped wholesale, before unit dedup applies.
            for ev in self.shared.drain_events(cfg.poll_ms.max(1)) {
                match ev {
                    Event::Gone(id) => {
                        if self.shared.drop_peer(id) {
                            self.st.stats.disconnects += 1;
                        }
                        table.release_worker(id);
                    }
                    Event::Msg(
                        _,
                        Msg::Result {
                            epoch,
                            search_id,
                            fold_id: result_fold,
                            batch,
                        },
                    ) => {
                        if epoch != self.epoch {
                            self.st.stats.fenced += batch.len() as u64;
                        } else if search_id != self.search_id || result_fold != fold_id {
                            self.st.stats.stale_results += batch.len() as u64;
                        } else {
                            for r in batch {
                                if (r.unit as u64) < nunits && table.complete(r.unit) {
                                    let agg = SumMinArgmin {
                                        sum: r.sum,
                                        min: r.min,
                                        argmin: r.argmin,
                                    };
                                    acc = acc.merge(agg);
                                    self.st.stats.remote_units += 1;
                                    self.replicate_unit(seq, geom, r.unit, agg);
                                    self.kill_check_unit();
                                }
                            }
                        }
                    }
                    Event::Msg(id, Msg::Bye) => {
                        if self.shared.drop_peer(id) {
                            self.st.stats.disconnects += 1;
                        }
                        table.release_worker(id);
                    }
                    Event::Msg(..) => {}
                }
            }

            // Graceful degradation: with no fleet — or a fold stuck past
            // the patience window despite live-looking workers — fold
            // pending units locally, one per tick so fresh results can
            // still interleave.  Dedup makes the overlap harmless.
            let fleet_gone = self.shared.worker_count() == 0;
            let stalled =
                now.saturating_sub(fold_start) > cfg.local_patience_ms && table.pending_len() > 0;
            if !table.is_done() && (fleet_gone || stalled) {
                if let Some(lease) = table.grant(LOCAL_WORKER, now, u64::MAX / 2) {
                    let (ustart, ulen) = unit_range(start, len, unit_len, lease.unit);
                    let part = self.local_fold(ustart, ulen);
                    table.complete(lease.unit);
                    acc = acc.merge(part);
                    self.st.stats.local_units += 1;
                    self.replicate_unit(seq, geom, lease.unit, part);
                    self.kill_check_unit();
                }
            }
        }

        let ls = table.stats();
        self.st.stats.granted += ls.granted;
        self.st.stats.reissued += ls.reissued;
        self.st.stats.expired += ls.expired;
        self.st.stats.orphaned += ls.orphaned;
        self.st.stats.duplicates += ls.duplicates;
        acc
    }
}

impl RangeFolder for LeasingFolder<'_, '_> {
    fn fold_range(&mut self, start: u64, len: u64) -> SumMinArgmin {
        self.st.stats.folds += 1;
        let seq = self.fold_seq;
        self.fold_seq += 1;
        self.kill_check_fold();
        let cfg = &self.shared.cfg;
        let unit_len = (cfg.blocks_per_lease.max(1)) * SEED_BLOCK as u64;
        let no_fleet = self.shared.worker_count() == 0;
        if len < cfg.min_remote_len || no_fleet {
            let units = len.div_ceil(unit_len);
            self.st.stats.local_units += units;
            let acc = self.local_fold(start, len);
            for _ in 0..units {
                self.kill_check_unit();
            }
            return acc;
        }
        self.remote_fold(start, len, unit_len, seq)
    }

    fn eval_seed(&mut self, seed: u64) -> f64 {
        if self.pool.is_empty() {
            self.pool.push(SimScratch::new(self.n));
        }
        let mut c = [0.0f64];
        (self.eval_block)(seed, &mut c, &mut self.pool[0]);
        c[0]
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let h = std::thread::spawn(move || reader_loop(stream, shared));
                handles.lock().unwrap().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection reader: handshake (`Hello` → `Welcome` + register, or
/// a friendly `Refuse`), then pump frames into the event queue until
/// death.  After registration this thread never writes — the solve
/// thread owns the write half.
fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = FrameReader::new(read_half);

    // Handshake with a deadline.
    let handshake_deadline = Instant::now() + Duration::from_secs(10);
    let hello = loop {
        if shared.shutdown.load(Ordering::SeqCst) || Instant::now() > handshake_deadline {
            return;
        }
        match reader.poll_frame() {
            Ok(Some(frame)) => break frame,
            Ok(None) => continue,
            Err(_) => return,
        }
    };
    let refuse = |reason: String| {
        let mut write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let _ = write_frame(
            &mut write_half,
            &Msg::Refuse {
                required_version: PROTO_VERSION,
                reason,
            }
            .encode(),
        );
        let _ = stream.shutdown(Shutdown::Both);
    };
    let role = match Msg::decode(&hello) {
        Ok(Msg::Hello { version, role }) if version == PROTO_VERSION => {
            if !shared.accepting.load(Ordering::SeqCst) {
                // A standby's listener: friendly redirect so probing
                // workers keep cycling their coordinator list.
                refuse("not primary: this coordinator is an unpromoted standby".into());
                return;
            }
            role
        }
        Ok(Msg::Hello { version, .. }) => {
            refuse(format!(
                "protocol version {version} not supported (this coordinator speaks v{PROTO_VERSION})"
            ));
            return;
        }
        _ => return, // not a Hello at all: refuse silently
    };

    let id = shared.next_worker.fetch_add(1, Ordering::SeqCst);
    {
        // Snapshot history and register atomically (history before
        // peers — the same order the broadcast path locks), so no
        // Chosen can fall between the snapshot and registration.  The
        // peer is inserted before its Welcome is written: once the
        // handshake completes on the peer's side, it is registered.
        let history = shared.history.lock().unwrap();
        let welcome = Msg::Welcome {
            worker_id: id,
            epoch: shared.epoch.load(Ordering::SeqCst),
            job: shared.job.clone(),
            history: history.clone(),
        }
        .encode();
        let mut peers = shared.peers.lock().unwrap();
        peers.insert(
            id,
            Peer {
                stream,
                last_seen: shared.now_ms(),
                role,
            },
        );
        let peer = peers.get_mut(&id).expect("just inserted");
        if write_frame(&mut peer.stream, &welcome).is_err() {
            peers.remove(&id);
            return;
        }
    }

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.poll_frame() {
            Ok(Some(frame)) => match Msg::decode(&frame) {
                Ok(msg) => {
                    if let Some(p) = shared.peers.lock().unwrap().get_mut(&id) {
                        p.last_seen = shared.now_ms();
                    }
                    match msg {
                        Msg::Ping => {} // liveness only, already recorded
                        other => shared.push_event(Event::Msg(id, other)),
                    }
                }
                Err(_) => {
                    // Malformed frame: drop the connection; the lease
                    // layer re-issues whatever it held.
                    shared.push_event(Event::Gone(id));
                    return;
                }
            },
            Ok(None) => continue,
            Err(_) => {
                shared.push_event(Event::Gone(id));
                return;
            }
        }
    }
}
