//! Loopback cluster harness: coordinator + N workers + optional chaos
//! proxies — and, for the failover gauntlet, a standby coordinator plus
//! deterministic kill schedules — all in one process, for the e2e suite
//! and the bench.
//!
//! [`solve_on_cluster`] runs the full distributed solve and returns
//! every participant's solution, so tests can assert the strongest
//! property the design promises: the coordinator's coloring **and**
//! every worker replica's coloring are bit-identical to the plain
//! single-machine solve — under any chaos schedule.  (Bit-identity is
//! also the end-to-end dedup proof: a double-merged duplicate would
//! perturb `mean_cost` and change a bitwise walk's chosen seed.)
//!
//! [`solve_on_failover_cluster`] extends that to coordinator death: a
//! primary with an armed [`KillSwitch`], a standby tailing its
//! replication stream, and workers carrying the two-address coordinator
//! list.  The kill closes the primary's sockets abruptly and panics its
//! solve thread with [`CoordinatorKilled`] — caught here, with a quiet
//! panic hook so the intentional crash doesn't spew a backtrace into
//! test output.

use crate::chaos::{ChaosConfig, ChaosProxy, FailoverSchedule, KillSwitch};
use crate::coordinator::{CoordinatorKilled, DistCoordinator, DistStats};
use crate::standby::{Standby, StandbyStats};
use crate::worker::{run_worker, WorkerStats};
use crate::DistConfig;
use parcolor_core::{D1lcInstance, Params, Solution, Solver};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Everything a cluster run produced.
pub struct ClusterOutcome {
    /// The coordinator's solution (the authoritative one).
    pub coordinator: Solution,
    /// Each worker replica's solution (`None` if that worker could
    /// never complete its initial handshake).
    pub workers: Vec<Option<Solution>>,
    /// Each worker's counters (`None` where the worker never ran).
    pub worker_stats: Vec<Option<WorkerStats>>,
    /// Coordinator-side lease/failure counters.
    pub stats: DistStats,
    /// Which workers degraded to standalone mode.
    pub standalone: Vec<bool>,
}

/// Suppress the backtrace of the *intentional* [`CoordinatorKilled`]
/// panic (kill switches fire it by design); every other panic still
/// reaches the previous hook.  Installed once per process.
pub fn install_quiet_kill_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CoordinatorKilled>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Solve `job` on a loopback cluster of `nworkers` workers, the i-th
/// connected through `chaos[i]` (if given, else directly).  `decode`
/// reconstructs `(instance, params)` from the job bytes on every node —
/// coordinator and workers alike — which is what keeps the replicas
/// deterministic twins.
pub fn solve_on_cluster<B>(
    job: &[u8],
    decode: B,
    nworkers: usize,
    chaos: &[Option<ChaosConfig>],
    cfg: DistConfig,
) -> ClusterOutcome
where
    B: Fn(&[u8]) -> (D1lcInstance, Params) + Sync,
{
    let coordinator =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", job.to_vec(), cfg.clone()).expect("bind"));
    let target = coordinator.local_addr();
    let decode = &decode;

    let (coord_solution, worker_results) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..nworkers {
            let proxy = chaos
                .get(i)
                .and_then(|c| *c)
                .map(|c| ChaosProxy::start(target, c).expect("proxy"));
            let addr = proxy.as_ref().map(|p| p.addr()).unwrap_or(target);
            let wcfg = cfg.clone();
            handles.push(scope.spawn(move || {
                let _proxy = proxy; // keep the proxy alive for the run
                run_worker(&[addr.to_string()], wcfg, |job, searcher| {
                    let (inst, params) = decode(job);
                    let sol = Solver::deterministic(params)
                        .with_seed_searcher(searcher.clone())
                        .solve(&inst);
                    (sol, searcher.is_standalone(), searcher.stats())
                })
                .ok()
            }));
        }

        let (inst, params) = decode(job);
        let sol = Solver::deterministic(params)
            .with_seed_searcher(Arc::clone(&coordinator) as Arc<dyn parcolor_core::SeedSearcher>)
            .solve(&inst);

        let results: Vec<Option<(Solution, bool, WorkerStats)>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (sol, results)
    });

    let stats = coordinator.stats();
    coordinator.shutdown();
    let mut workers = Vec::new();
    let mut worker_stats = Vec::new();
    let mut standalone = Vec::new();
    for r in worker_results {
        match r {
            Some((sol, alone, ws)) => {
                workers.push(Some(sol));
                worker_stats.push(Some(ws));
                standalone.push(alone);
            }
            None => {
                workers.push(None);
                worker_stats.push(None);
                standalone.push(false);
            }
        }
    }
    ClusterOutcome {
        coordinator: coord_solution,
        workers,
        worker_stats,
        stats,
        standalone,
    }
}

/// Everything a failover gauntlet run produced.
pub struct FailoverOutcome {
    /// The primary's solution — `None` when its kill switch fired.
    pub primary: Option<Solution>,
    /// The standby replica's solution — `None` when its own kill switch
    /// fired (the double-fault schedules).
    pub standby: Option<Solution>,
    /// Each worker replica's solution.
    pub workers: Vec<Option<Solution>>,
    /// Each worker's counters.
    pub worker_stats: Vec<Option<WorkerStats>>,
    /// Which workers degraded to standalone mode.
    pub standalone: Vec<bool>,
    /// Primary-side lease counters (up to its death).
    pub primary_stats: DistStats,
    /// Whether the primary's kill switch fired.
    pub primary_killed: bool,
    /// Standby-side tail/promotion counters.
    pub standby_stats: StandbyStats,
    /// The standby's full selection history — tailed from the primary
    /// plus searches it ran itself after promotion.  The chosen-seed
    /// sequence under failover must be bit-identical to the
    /// single-machine path.
    pub standby_history: Vec<parcolor_prg::SeedSelection>,
    /// The standby's embedded-coordinator lease counters (nonzero only
    /// after promotion put it to work).
    pub standby_coord_stats: DistStats,
    /// Whether the standby's kill switch fired.
    pub standby_killed: bool,
}

/// Solve `job` on a loopback failover cluster: one primary (kill switch
/// per `schedule.primary_kill`), one standby tailing it (kill switch
/// per `schedule.standby_kill`), and `nworkers` workers carrying the
/// ordered `[primary, standby]` coordinator list.
///
/// The standby's replication handshake completes before any worker
/// connects, so the stream covers every completed unit — tests can
/// assert `replayed_units` against `replicated_units` exactly.
pub fn solve_on_failover_cluster<B>(
    job: &[u8],
    decode: B,
    nworkers: usize,
    schedule: FailoverSchedule,
    cfg: DistConfig,
) -> FailoverOutcome
where
    B: Fn(&[u8]) -> (D1lcInstance, Params) + Sync,
{
    install_quiet_kill_hook();
    let primary =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", job.to_vec(), cfg.clone()).expect("bind"));
    if let Some(spec) = schedule.primary_kill {
        primary.arm_kill(KillSwitch::arm(spec));
    }
    let standby = Arc::new(
        Standby::start(
            "127.0.0.1:0",
            &primary.local_addr().to_string(),
            cfg.clone(),
        )
        .expect("standby start"),
    );
    if let Some(spec) = schedule.standby_kill {
        standby.arm_kill(KillSwitch::arm(spec));
    }
    let addrs: Vec<String> = vec![
        primary.local_addr().to_string(),
        standby.local_addr().to_string(),
    ];
    let decode = &decode;

    let (primary_solution, standby_solution, worker_results) = std::thread::scope(|scope| {
        let standby_handle = {
            let standby = Arc::clone(&standby);
            scope.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    let (inst, params) = decode(&standby.job());
                    Solver::deterministic(params)
                        .with_seed_searcher(standby.searcher())
                        .solve(&inst)
                }))
                .ok()
            })
        };
        let mut handles = Vec::new();
        for _ in 0..nworkers {
            let wcfg = cfg.clone();
            let addrs = addrs.clone();
            handles.push(scope.spawn(move || {
                run_worker(&addrs, wcfg, |job, searcher| {
                    let (inst, params) = decode(job);
                    let sol = Solver::deterministic(params)
                        .with_seed_searcher(searcher.clone())
                        .solve(&inst);
                    (sol, searcher.is_standalone(), searcher.stats())
                })
                .ok()
            }));
        }

        let (inst, params) = decode(job);
        let primary_solution = catch_unwind(AssertUnwindSafe(|| {
            Solver::deterministic(params)
                .with_seed_searcher(Arc::clone(&primary) as Arc<dyn parcolor_core::SeedSearcher>)
                .solve(&inst)
        }))
        .ok();
        // Orderly or crashed, the primary is done — close its sockets so
        // the standby (on `Bye`) and the fleet (on the reconnect sweep)
        // move on.  After a kill this only reaps threads.
        primary.shutdown();

        let standby_solution = standby_handle.join().expect("standby thread");
        standby.finish();
        let worker_results: Vec<Option<(Solution, bool, WorkerStats)>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (primary_solution, standby_solution, worker_results)
    });

    let mut workers = Vec::new();
    let mut worker_stats = Vec::new();
    let mut standalone = Vec::new();
    for r in worker_results {
        match r {
            Some((sol, alone, ws)) => {
                workers.push(Some(sol));
                worker_stats.push(Some(ws));
                standalone.push(alone);
            }
            None => {
                workers.push(None);
                worker_stats.push(None);
                standalone.push(false);
            }
        }
    }
    FailoverOutcome {
        primary: primary_solution,
        standby: standby_solution,
        workers,
        worker_stats,
        standalone,
        primary_stats: primary.stats(),
        primary_killed: primary.was_killed(),
        standby_stats: standby.stats(),
        standby_history: standby.history(),
        standby_coord_stats: standby.coordinator_stats(),
        standby_killed: standby.was_killed(),
    }
}
