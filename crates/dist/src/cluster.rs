//! Loopback cluster harness: coordinator + N workers + optional chaos
//! proxies, all in one process, for the e2e suite and the bench.
//!
//! [`solve_on_cluster`] runs the full distributed solve and returns
//! every participant's solution, so tests can assert the strongest
//! property the design promises: the coordinator's coloring **and**
//! every worker replica's coloring are bit-identical to the plain
//! single-machine solve — under any chaos schedule.  (Bit-identity is
//! also the end-to-end dedup proof: a double-merged duplicate would
//! perturb `mean_cost` and change a bitwise walk's chosen seed.)

use crate::chaos::{ChaosConfig, ChaosProxy};
use crate::coordinator::{DistCoordinator, DistStats};
use crate::worker::run_worker;
use crate::DistConfig;
use parcolor_core::{D1lcInstance, Params, Solution, Solver};
use std::sync::Arc;

/// Everything a cluster run produced.
pub struct ClusterOutcome {
    /// The coordinator's solution (the authoritative one).
    pub coordinator: Solution,
    /// Each worker replica's solution (`None` if that worker could
    /// never complete its initial handshake).
    pub workers: Vec<Option<Solution>>,
    /// Coordinator-side lease/failure counters.
    pub stats: DistStats,
    /// Which workers degraded to standalone mode.
    pub standalone: Vec<bool>,
}

/// Solve `job` on a loopback cluster of `nworkers` workers, the i-th
/// connected through `chaos[i]` (if given, else directly).  `decode`
/// reconstructs `(instance, params)` from the job bytes on every node —
/// coordinator and workers alike — which is what keeps the replicas
/// deterministic twins.
pub fn solve_on_cluster<B>(
    job: &[u8],
    decode: B,
    nworkers: usize,
    chaos: &[Option<ChaosConfig>],
    cfg: DistConfig,
) -> ClusterOutcome
where
    B: Fn(&[u8]) -> (D1lcInstance, Params) + Sync,
{
    let coordinator =
        Arc::new(DistCoordinator::bind("127.0.0.1:0", job.to_vec(), cfg.clone()).expect("bind"));
    let target = coordinator.local_addr();
    let decode = &decode;

    let (coord_solution, worker_results) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..nworkers {
            let proxy = chaos
                .get(i)
                .and_then(|c| *c)
                .map(|c| ChaosProxy::start(target, c).expect("proxy"));
            let addr = proxy.as_ref().map(|p| p.addr()).unwrap_or(target);
            let wcfg = cfg.clone();
            handles.push(scope.spawn(move || {
                let _proxy = proxy; // keep the proxy alive for the run
                run_worker(&addr.to_string(), wcfg, |job, searcher| {
                    let (inst, params) = decode(job);
                    let sol = Solver::deterministic(params)
                        .with_seed_searcher(searcher.clone())
                        .solve(&inst);
                    (sol, searcher.is_standalone())
                })
                .ok()
            }));
        }

        let (inst, params) = decode(job);
        let sol = Solver::deterministic(params)
            .with_seed_searcher(Arc::clone(&coordinator) as Arc<dyn parcolor_core::SeedSearcher>)
            .solve(&inst);

        let results: Vec<Option<(Solution, bool)>> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (sol, results)
    });

    let stats = coordinator.stats();
    coordinator.shutdown();
    let mut workers = Vec::new();
    let mut standalone = Vec::new();
    for r in worker_results {
        match r {
            Some((sol, alone)) => {
                workers.push(Some(sol));
                standalone.push(alone);
            }
            None => {
                workers.push(None);
                standalone.push(false);
            }
        }
    }
    ClusterOutcome {
        coordinator: coord_solution,
        workers,
        stats,
        standalone,
    }
}
