//! Length-prefixed framing and the little-endian wire codec.
//!
//! Every protocol message travels as one **frame**: a 4-byte
//! little-endian length followed by that many payload bytes.  Frames are
//! the unit of everything above this module — the chaos proxy forwards,
//! delays, and drops *whole frames*, so a lossy link can lose messages
//! but can never desynchronize the stream.
//!
//! [`FrameReader`] is the read half: it accumulates partial reads across
//! socket timeouts (a heartbeat tick landing mid-frame must not discard
//! the prefix already read) and yields complete frames only.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on one frame's payload.  The largest legitimate frame is
/// `Welcome` (job bytes + selection history); anything bigger is a
/// corrupt or hostile peer and the connection is dropped.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Buffered frame reassembly over a [`TcpStream`] with a read timeout.
///
/// [`poll_frame`](FrameReader::poll_frame) returns `Ok(Some(frame))`
/// when a whole frame is available, `Ok(None)` when the read timed out
/// with the frame still incomplete (the partial bytes stay buffered),
/// and `Err` on EOF or a real I/O error.
pub struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    /// Wrap `stream` (whose read timeout the caller configures).
    pub fn new(stream: TcpStream) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Adjust the underlying socket's read timeout.  The worker uses
    /// this to shrink its poll tick while a result batch is pending, so
    /// the flush window (`result_flush_ms`) can be shorter than the
    /// steady-state tick.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn take_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized frame",
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Read until a whole frame is buffered or the socket's read timeout
    /// elapses.
    pub fn poll_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Little-endian field encoder (the write half of the codec).
#[derive(Default)]
pub struct Enc(pub Vec<u8>);

impl Enc {
    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Append an `f64` (IEEE-754 bits — exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
}

/// Little-endian field decoder (the read half of the codec).  Every
/// accessor fails cleanly on truncated input — a malformed frame must
/// never panic the peer.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated message")
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    /// Read a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Read a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Read an `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    /// Whether every byte was consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let mut e = Enc::default();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.f64(-0.125);
        e.bytes(b"hello");
        let mut d = Dec::new(&e.0);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert!(d.done());
    }

    #[test]
    fn decoder_rejects_truncation() {
        let mut e = Enc::default();
        e.u64(42);
        let mut d = Dec::new(&e.0[..5]);
        assert!(d.u64().is_err());
        let mut e2 = Enc::default();
        e2.bytes(b"abcdef");
        let mut d2 = Dec::new(&e2.0[..7]);
        assert!(d2.bytes().is_err());
    }

    #[test]
    fn frames_roundtrip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut r = FrameReader::new(s);
            let mut got = Vec::new();
            for _ in 0..3 {
                loop {
                    if let Some(f) = r.poll_frame().unwrap() {
                        got.push(f);
                        break;
                    }
                }
            }
            got
        });
        let mut c = TcpStream::connect(addr).unwrap();
        write_frame(&mut c, b"").unwrap();
        write_frame(&mut c, b"x").unwrap();
        write_frame(&mut c, &vec![9u8; 10_000]).unwrap();
        let got = t.join().unwrap();
        assert_eq!(got[0], b"");
        assert_eq!(got[1], b"x");
        assert_eq!(got[2], vec![9u8; 10_000]);
    }

    #[test]
    fn partial_reads_survive_timeouts() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            s.set_read_timeout(Some(std::time::Duration::from_millis(2)))
                .unwrap();
            let mut r = FrameReader::new(s);
            let mut timeouts = 0;
            loop {
                match r.poll_frame().unwrap() {
                    Some(f) => return (f, timeouts),
                    None => timeouts += 1,
                }
            }
        });
        let mut c = TcpStream::connect(addr).unwrap();
        // Dribble one frame byte-by-byte so the reader times out mid-frame.
        let mut wire = Vec::new();
        let body = b"split-across-timeouts".to_vec();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        use std::io::Write as _;
        for b in wire {
            c.write_all(&[b]).unwrap();
            c.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(8));
        }
        let (frame, timeouts) = t.join().unwrap();
        assert_eq!(frame, body);
        assert!(timeouts > 0, "reader must have ticked through timeouts");
    }
}
