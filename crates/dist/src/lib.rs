#![warn(missing_docs)]
//! Fault-tolerant distributed seed search.
//!
//! The seed search is the hot loop of the whole reproduction: every
//! derandomized step folds a `(sum, min, argmin)` reduce over `2^d`
//! seeds.  `parcolor-exec` already spreads that fold across one
//! machine's cores; this crate spreads it across a fleet, over plain
//! `std::net` TCP with a hand-rolled length-prefixed codec (no external
//! dependencies), and keeps the answer **bit-identical** to the
//! single-machine path under worker crashes, restarts, stragglers, and
//! a lossy network.
//!
//! ## Why re-issue is exact
//!
//! Everything rests on one algebraic fact (see
//! [`parcolor_exec::SumMinArgmin`]): the per-seed cost is a pure
//! function of the seed, and the fold is a grouping-invariant reduce —
//! associative, commutative, with an explicit lowest-seed argmin
//! tie-break, and exact sums for the integer-valued cost functionals
//! the framework produces.  A work unit (a [`SEED_BLOCK`]-aligned seed
//! range) therefore has exactly one possible aggregate, no matter who
//! computes it, how many times it is computed, or in what order units
//! merge.  The coordinator may lease the same unit to three workers and
//! its own fallback path simultaneously; the first completed copy is
//! merged, the rest are **deduplicated by unit id**, and the final
//! [`SeedSelection`] — seed, cost, mean, trace, everything — is
//! field-for-field the one `select_seed_blocks_n` computes locally.
//! The strategy logic itself is not reimplemented here: both paths run
//! [`parcolor_prg::select_seed_folded`] and differ only in the
//! [`parcolor_prg::RangeFolder`] plugged into it.
//!
//! ## Protocol
//!
//! One coordinator, any number of workers, one TCP connection each.
//! Frames are `u32` little-endian length + payload ([`frame`]); the
//! payload's first byte tags the message ([`proto::Msg`]):
//!
//! ```text
//! worker                          coordinator
//!   | -- Hello{version} ------------> |   handshake
//!   | <-- Welcome{id, job, history} - |   job bytes + all past selections
//!   |                                 |
//!   | <-- Grant{search, fold, lease,  |   lease: fold seeds start..start+len
//!   |          unit, start, len} ---- |
//!   | -- Result{..., sum,min,argmin}> |   merged once per unit, dups dropped
//!   | <-- Chosen{search, selection} - |   search concluded; replica advances
//!   |                                 |
//!   | -- Ping ----------------------> |   idle heartbeat (liveness only)
//!   | -- Bye / <-- Bye -------------- |   orderly shutdown
//! ```
//!
//! Workers are **replicated state machines**: each runs the full
//! deterministic solve on the same job bytes, so graph state never
//! crosses the wire — only leases, unit aggregates, and chosen
//! selections do.  Searches are issued sequentially in a deterministic
//! order (see [`parcolor_core::SeedSearcher`]), so a worker's replica
//! stays lock-step with the coordinator's; a worker that joins or
//! reconnects mid-solve fast-forwards through `Welcome.history` instead
//! of replaying network traffic.
//!
//! ## Lease lifecycle
//!
//! Each fold slices its seed range into units of
//! `blocks_per_lease × SEED_BLOCK` seeds and tracks them in a
//! [`parcolor_exec::LeaseTable`]:
//!
//! 1. **Grant** — lowest pending unit first, to any live worker with
//!    fewer than `max_outstanding` leases, deadline `now +
//!    lease_timeout_ms`.
//! 2. **Expire** — past-deadline leases return their unit to the front
//!    of the pending queue (straggler insurance); the unit is re-issued
//!    with a fresh lease id.  The straggler's late result is still
//!    accepted if it arrives first — whichever copy completes the unit
//!    wins, by the exactness argument above.
//! 3. **Orphan** — a disconnect or heartbeat eviction returns all of
//!    that worker's outstanding units to the pending queue.
//! 4. **Complete** — the first `Result` per unit merges into the fold
//!    accumulator; later copies (and results for stale folds) are
//!    counted and dropped.
//! 5. **Local fallback** — whenever no worker is connected, the
//!    coordinator folds pending units itself on the in-process pool, so
//!    the solve finishes even if the entire fleet dies (graceful
//!    degradation to `select_seed_blocks_n`).
//!
//! Workers reconnect with exponential backoff plus deterministic
//! jitter; after `max_reconnects` consecutive failures a worker flips
//! to **standalone** mode and finishes its replica locally — still
//! producing the bit-identical coloring, never a panic.
//!
//! [`chaos`] supplies the deterministic failure harness: a frame-aware
//! TCP proxy that drops, delays, and severs whole frames under a seeded
//! splitmix64 PRG, so the loopback e2e suite ([`cluster`]) can assert
//! bit-identity under kill/restart/straggler schedules.
//!
//! [`SEED_BLOCK`]: parcolor_prg::SEED_BLOCK
//! [`SeedSelection`]: parcolor_prg::SeedSelection

pub mod chaos;
pub mod cluster;
pub mod coordinator;
pub mod frame;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosConfig, ChaosProxy, SplitMix64};
pub use cluster::{solve_on_cluster, ClusterOutcome};
pub use coordinator::{DistCoordinator, DistStats};
pub use worker::{run_worker, WorkerSearcher, WorkerStats};

/// Tuning knobs shared by the coordinator and the workers.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Lease deadline: a unit unacked for this long goes back to the
    /// pending queue and is re-issued.
    pub lease_timeout_ms: u64,
    /// Workers silent for this long are evicted and their leases
    /// orphaned (any frame counts as liveness, including `Ping`).
    pub heartbeat_timeout_ms: u64,
    /// Seed blocks per lease; the unit is `blocks_per_lease ×
    /// SEED_BLOCK` seeds.
    pub blocks_per_lease: u64,
    /// Coordinator event-loop tick and worker idle-poll granularity.
    pub poll_ms: u64,
    /// Maximum leases outstanding per worker (pipelining depth).
    pub max_outstanding: usize,
    /// Folds shorter than this many seeds are evaluated on the
    /// coordinator without distribution (the deep bits of the bitwise
    /// walk are single blocks — round-tripping them would be all
    /// latency).  Purely a throughput knob: bit-identity holds at any
    /// value.
    pub min_remote_len: u64,
    /// Patience before the coordinator starts folding a stuck fold's
    /// pending units itself even though workers look alive (a worker
    /// whose results are all being dropped still heartbeats — without
    /// this, such a fold would re-issue forever).  Liveness backstop;
    /// `0` folds locally whenever a tick grants nothing.
    pub local_patience_ms: u64,
    /// Workers to wait for (up to `min_worker_wait_ms`) before the
    /// first fold starts granting, so tests and benches measure the
    /// fleet rather than the coordinator racing it alone.
    pub min_workers: usize,
    /// How long to wait for `min_workers`.
    pub min_worker_wait_ms: u64,
    /// Worker: initial reconnect backoff (doubles per failure).
    pub connect_backoff_ms: u64,
    /// Worker: backoff ceiling.
    pub max_backoff_ms: u64,
    /// Worker: consecutive connection failures tolerated before
    /// flipping to standalone (local) mode.
    pub max_reconnects: u32,
    /// Worker: reconnect if the coordinator has been silent this long
    /// (covers a lost `Chosen` frame — the reconnect's `Welcome`
    /// history resynchronizes the replica).
    pub idle_reconnect_ms: u64,
    /// Worker: seed for the backoff jitter PRG.
    pub jitter_seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_timeout_ms: 2_000,
            heartbeat_timeout_ms: 5_000,
            blocks_per_lease: 4,
            poll_ms: 5,
            max_outstanding: 2,
            min_remote_len: 64,
            local_patience_ms: 4_000,
            min_workers: 0,
            min_worker_wait_ms: 5_000,
            connect_backoff_ms: 50,
            max_backoff_ms: 2_000,
            max_reconnects: 8,
            idle_reconnect_ms: 10_000,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}
