#![warn(missing_docs)]
//! Fault-tolerant distributed seed search with coordinator failover.
//!
//! The seed search is the hot loop of the whole reproduction: every
//! derandomized step folds a `(sum, min, argmin)` reduce over `2^d`
//! seeds.  `parcolor-exec` already spreads that fold across one
//! machine's cores; this crate spreads it across a fleet, over plain
//! `std::net` TCP with a hand-rolled length-prefixed codec (no external
//! dependencies), and keeps the answer **bit-identical** to the
//! single-machine path under worker crashes, restarts, stragglers, a
//! lossy network — and, since protocol v2, the death of the
//! coordinator itself.
//!
//! ## Why re-issue (and failover) is exact
//!
//! Everything rests on one algebraic fact (see
//! [`parcolor_exec::SumMinArgmin`]): the per-seed cost is a pure
//! function of the seed, and the fold is a grouping-invariant reduce —
//! associative, commutative, with an explicit lowest-seed argmin
//! tie-break, and exact sums for the integer-valued cost functionals
//! the framework produces.  A work unit (a [`SEED_BLOCK`]-aligned seed
//! range) therefore has exactly one possible aggregate, no matter who
//! computes it, how many times it is computed, or in what order units
//! merge.  The coordinator may lease the same unit to three workers and
//! its own fallback path simultaneously; the first completed copy is
//! merged, the rest are **deduplicated by unit id**, and the final
//! [`SeedSelection`] — seed, cost, mean, trace, everything — is
//! field-for-field the one `select_seed_blocks_n` computes locally.
//! The identical argument covers a *promoted standby*: it replays the
//! dead primary's completed units from the replication stream and
//! re-leases the rest, and since every unit still has its one possible
//! aggregate, the fold — and the whole chosen-seed sequence — comes out
//! bit-identical to a never-failed run.  The strategy logic itself is
//! not reimplemented here: every path runs
//! [`parcolor_prg::select_seed_folded`] and differs only in the
//! [`parcolor_prg::RangeFolder`] plugged into it.
//!
//! ## Protocol (v2)
//!
//! One primary coordinator, any number of workers, optionally a standby
//! coordinator; one TCP connection each.  Frames are `u32`
//! little-endian length + payload ([`frame`]); the payload's first byte
//! tags the message ([`proto::Msg`]):
//!
//! ```text
//! worker                          primary                     standby
//!   | -- Hello{v2, role:Worker} ----> | <-- Hello{v2, role:Standby} - |
//!   | <-- Welcome{id, epoch, job,     | -- Welcome{...} ------------> |
//!   |             history} ---------- |                               |
//!   |                                 |                               |
//!   | <-- Grant{epoch, search, fold,  |                               |
//!   |       lease, unit, start, len}- |                               |
//!   | -- Result{epoch, search, fold,  | -- Replicate{epoch, search,   |
//!   |       [unit aggregates]} -----> |      fold_seq, geometry,      |
//!   |                                 |      unit, aggregate} ------> |
//!   | <-- Chosen{epoch, search, sel}- | -- Chosen ------------------> |
//!   |                                 |                               |
//!   | -- Ping ----------------------> |   idle heartbeat (liveness)   |
//!   | <-- Refuse{version, reason} --- |   friendly handshake refusal  |
//!   |                                 | -- Promote{epoch} ----------> |
//!   | -- Bye / <-- Bye -------------- |   orderly shutdown            |
//! ```
//!
//! A v1 `Hello` (no role byte) is answered with
//! `Refuse{required_version: 2, ...}` — a clean version refusal on both
//! sides, never a panic.  `Result` is a **batch**: workers coalesce
//! completed units under a `result_flush_ms` window (flushing early on
//! the pipelining depth, a key change, or a heartbeat), cutting frame
//! count on chatty links while dedup semantics stay per unit.
//!
//! Workers are **replicated state machines**: each runs the full
//! deterministic solve on the same job bytes, so graph state never
//! crosses the wire — only leases, unit aggregates, and chosen
//! selections do.  Searches are issued sequentially in a deterministic
//! order (see [`parcolor_core::SeedSearcher`]), so a worker's replica
//! stays lock-step with the coordinator's; a worker that joins or
//! reconnects mid-solve fast-forwards through `Welcome.history` instead
//! of replaying network traffic.
//!
//! ## Epochs
//!
//! Every granted lease and every result carries the issuing
//! coordinator's **epoch** (primary = 1, each promotion += 1, or as
//! dictated by `Promote`).  A new primary's global fold counter
//! restarts, so `(search_id, fold_id)` pairs can alias across a
//! failover; the epoch check runs *before* unit dedup and drops a
//! stale-primary batch wholesale (the `fenced` stat counts them).
//! Fencing is defense-in-depth — a worker holds one connection at a
//! time, so in the common schedules stale frames die with the old
//! socket — but it makes the merge safe against any interleaving.
//!
//! ## Failover state machine
//!
//! A **standby** ([`standby::Standby`]) is a worker-shaped tail plus a
//! refusing listener plus a full replica:
//!
//! 1. **Tailing** — connected to the primary with `role: Standby`, it
//!    receives the standard `Welcome`, every `Chosen`, and a
//!    `Replicate` frame per completed work unit carrying the unit's
//!    aggregate and its deterministic position (`search_id`, per-search
//!    `fold_seq`, fold geometry).  Its own listener answers worker
//!    handshakes with `Refuse("not primary")`.
//! 2. **Promotion trigger** — any of: `Promote{epoch}` from the primary
//!    (orderly handover), `Bye` (orderly shutdown with searches left),
//!    or `standby_reconnects` consecutive failed reconnects (crash).
//! 3. **Promoted** — the embedded [`DistCoordinator`] adopts the new
//!    epoch and the tailed history, starts accepting workers (the
//!    orphaned fleet's reconnect sweep lands here and fast-forwards via
//!    `Welcome.history`), and runs every remaining search through the
//!    normal leasing machinery.  Each fold's [`parcolor_exec::LeaseTable`]
//!    is pre-completed from the replicated state — geometry-checked
//!    against the deterministically re-derived fold, counted in
//!    `replayed_units` — so only work in flight at the death is
//!    re-leased.
//! 4. **Double fault** — if the standby dies too (or none exists),
//!    workers exhaust their reconnect budget and finish **standalone**:
//!    the same coloring from the in-process search, never a panic.
//!
//! ## Lease lifecycle
//!
//! Each fold slices its seed range into units of
//! `blocks_per_lease × SEED_BLOCK` seeds and tracks them in a
//! [`parcolor_exec::LeaseTable`]:
//!
//! 1. **Grant** — lowest pending unit first, to any live worker with
//!    fewer than `max_outstanding` leases, deadline `now +
//!    lease_timeout_ms`.  Standbys never serve leases.
//! 2. **Expire** — past-deadline leases return their unit to the front
//!    of the pending queue (straggler insurance); the unit is re-issued
//!    with a fresh lease id.  The straggler's late result is still
//!    accepted if it arrives first — whichever copy completes the unit
//!    wins, by the exactness argument above.
//! 3. **Orphan** — a disconnect or heartbeat eviction returns all of
//!    that worker's outstanding units to the pending queue.
//! 4. **Complete** — the first `Result` per unit merges into the fold
//!    accumulator and is streamed to the standbys as `Replicate`; later
//!    copies (and results for stale folds or fenced epochs) are counted
//!    and dropped.
//! 5. **Local fallback** — whenever no worker is connected, the
//!    coordinator folds pending units itself on the in-process pool, so
//!    the solve finishes even if the entire fleet dies (graceful
//!    degradation to `select_seed_blocks_n`).
//!
//! Workers reconnect with exponential backoff plus deterministic
//! jitter, sweeping their whole ordered coordinator list per attempt;
//! after `max_reconnects` consecutive failed sweeps a worker flips to
//! **standalone** mode and finishes its replica locally — still
//! producing the bit-identical coloring, never a panic.
//!
//! [`chaos`] supplies the deterministic failure harness: a frame-aware
//! TCP proxy that drops, delays, and severs whole frames under a seeded
//! splitmix64 PRG, plus [`chaos::KillSwitch`] — progress-counted
//! coordinator kills (mid-fold, between folds, during promotion) that
//! close sockets abruptly and panic the solve thread, so the loopback
//! e2e suite ([`cluster`]) can assert bit-identity under every kill
//! schedule.
//!
//! [`SEED_BLOCK`]: parcolor_prg::SEED_BLOCK
//! [`SeedSelection`]: parcolor_prg::SeedSelection

pub mod chaos;
pub mod cluster;
pub mod coordinator;
pub mod frame;
pub mod proto;
pub mod standby;
pub mod worker;

pub use chaos::{ChaosConfig, ChaosProxy, FailoverSchedule, KillSpec, KillSwitch, SplitMix64};
pub use cluster::{
    install_quiet_kill_hook, solve_on_cluster, solve_on_failover_cluster, ClusterOutcome,
    FailoverOutcome,
};
pub use coordinator::{CoordinatorKilled, DistCoordinator, DistStats, ReplicatedFold};
pub use standby::{run_standby, Standby, StandbySearcher, StandbyStats};
pub use worker::{run_worker, WorkerSearcher, WorkerStats};

/// Tuning knobs shared by the coordinator and the workers.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Lease deadline: a unit unacked for this long goes back to the
    /// pending queue and is re-issued.
    pub lease_timeout_ms: u64,
    /// Workers silent for this long are evicted and their leases
    /// orphaned (any frame counts as liveness, including `Ping`).
    pub heartbeat_timeout_ms: u64,
    /// Seed blocks per lease; the unit is `blocks_per_lease ×
    /// SEED_BLOCK` seeds.
    pub blocks_per_lease: u64,
    /// Coordinator event-loop tick and worker idle-poll granularity.
    pub poll_ms: u64,
    /// Maximum leases outstanding per worker (pipelining depth); also
    /// the worker's result-batch flush threshold.
    pub max_outstanding: usize,
    /// Folds shorter than this many seeds are evaluated on the
    /// coordinator without distribution (the deep bits of the bitwise
    /// walk are single blocks — round-tripping them would be all
    /// latency).  Purely a throughput knob: bit-identity holds at any
    /// value.
    pub min_remote_len: u64,
    /// Patience before the coordinator starts folding a stuck fold's
    /// pending units itself even though workers look alive (a worker
    /// whose results are all being dropped still heartbeats — without
    /// this, such a fold would re-issue forever).  Liveness backstop;
    /// `0` folds locally whenever a tick grants nothing.
    pub local_patience_ms: u64,
    /// Workers to wait for (up to `min_worker_wait_ms`) before the
    /// first fold starts granting, so tests and benches measure the
    /// fleet rather than the coordinator racing it alone.  A promoted
    /// standby applies the same wait before its first re-leased fold.
    pub min_workers: usize,
    /// How long to wait for `min_workers`.
    pub min_worker_wait_ms: u64,
    /// Worker: initial reconnect backoff (doubles per failure).
    pub connect_backoff_ms: u64,
    /// Worker: backoff ceiling.
    pub max_backoff_ms: u64,
    /// Worker: consecutive failed sweeps of the coordinator list
    /// tolerated before flipping to standalone (local) mode.
    pub max_reconnects: u32,
    /// Worker: reconnect if the coordinator has been silent this long
    /// (covers a lost `Chosen` frame — the reconnect's `Welcome`
    /// history resynchronizes the replica).
    pub idle_reconnect_ms: u64,
    /// Worker: flush window for result batching — a completed unit
    /// waits at most this long before its (possibly singleton) batch is
    /// sent as one `Result` frame.
    pub result_flush_ms: u64,
    /// Standby: consecutive failed reconnects to the primary before
    /// concluding it is dead and promoting itself.
    pub standby_reconnects: u32,
    /// Worker: seed for the backoff jitter PRG.
    pub jitter_seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_timeout_ms: 2_000,
            heartbeat_timeout_ms: 5_000,
            blocks_per_lease: 4,
            poll_ms: 5,
            max_outstanding: 2,
            min_remote_len: 64,
            local_patience_ms: 4_000,
            min_workers: 0,
            min_worker_wait_ms: 5_000,
            connect_backoff_ms: 50,
            max_backoff_ms: 2_000,
            max_reconnects: 8,
            idle_reconnect_ms: 10_000,
            result_flush_ms: 3,
            standby_reconnects: 3,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}
