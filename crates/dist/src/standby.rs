//! The standby coordinator: a hot spare that tails the primary and
//! promotes itself when the primary dies.
//!
//! A standby is three things at once:
//!
//! 1. **A replication tail.**  It connects to the primary with
//!    `Hello{role: Standby}` and receives the same `Welcome` (job bytes
//!    plus selection history) a worker would, plus a stream the primary
//!    sends only to standbys: one [`Msg::Replicate`] per completed work
//!    unit, carrying the unit's aggregate and its fold's deterministic
//!    position (`search_id`, per-search `fold_seq`, geometry).
//!    `Chosen` broadcasts advance its history exactly like a worker's.
//! 2. **A refusing listener.**  Its embedded [`DistCoordinator`] is
//!    bound from the start, but answers every worker handshake with a
//!    friendly `Refuse` until promotion — workers probing their
//!    coordinator list get a fast "not primary" instead of a hang.
//! 3. **A full replica.**  Like a worker, it runs the whole
//!    deterministic solve with [`StandbySearcher`] as its seed-search
//!    backend, so at promotion time it is positioned at exactly the
//!    search the fleet is on.
//!
//! **Promotion** happens on any of: an explicit [`Msg::Promote`] from
//! the primary (orderly handover), a `Bye` (orderly shutdown with work
//! left), or exhaustion of the `standby_reconnects` budget (primary
//! crashed).  The new epoch is the `Promote` payload, or the last known
//! epoch + 1 for the other two.  The embedded coordinator then adopts
//! the tailed history, starts accepting workers, waits for the orphaned
//! fleet to re-home, and runs every remaining search through the normal
//! leasing machinery — with the replicated completion state pre-seeded
//! into each fold's lease table, so only work that was still in flight
//! at the primary's death is re-leased.  Bit-identity of the result is
//! the same exactness argument as lease re-issue: units have unique
//! aggregates and the merge is grouping-invariant.

use crate::chaos::{KillSwitch, SplitMix64};
use crate::coordinator::{DistCoordinator, DistStats, ReplicatedFold};
use crate::frame::write_frame;
use crate::proto::{Msg, Role};
use crate::worker::{connect_once, Conn};
use crate::DistConfig;
use parcolor_core::{BlockEval, SeedSearcher};
use parcolor_exec::SumMinArgmin;
use parcolor_prg::{SeedSelection, SeedStrategy};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Tick granularity of the replication tail loop, in milliseconds.
const TAIL_TICK_MS: u64 = 25;

/// Standby-side counters (tests assert on these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StandbyStats {
    /// `Replicate` frames tailed from the primary.
    pub replicated_units: u64,
    /// `Chosen` selections tailed from the primary.
    pub tailed_selections: u64,
    /// Successful reconnections to the primary after the first.
    pub reconnects: u64,
    /// Heartbeats sent to the primary.
    pub pings: u64,
    /// Whether this standby promoted itself to primary.
    pub promoted: bool,
    /// The epoch adopted at promotion (0 if never promoted).
    pub promote_epoch: u64,
}

struct SbInner {
    primary: String,
    cfg: DistConfig,
    conn: Option<Conn>,
    /// Last epoch learned from the primary's `Welcome`.
    epoch: u64,
    history: Vec<SeedSelection>,
    next_search: u64,
    /// Replicated completion state, keyed `(search_id, fold_seq)`.
    repl: HashMap<(u64, u64), ReplicatedFold>,
    promoted: bool,
    /// Whether the post-promotion fleet wait already happened (it is
    /// lazy: only a search that actually needs the leasing machinery
    /// waits for the orphaned fleet to re-home — a standby whose tailed
    /// history is already complete returns without it).
    waited_for_fleet: bool,
    failed_attempts: u32,
    jitter: SplitMix64,
    stats: StandbyStats,
}

impl SbInner {
    fn drop_conn(&mut self) {
        if let Some(c) = self.conn.take() {
            let _ = c.writer.shutdown(std::net::Shutdown::Both);
        }
    }

    /// One backoff-then-connect attempt against the primary.  Returns
    /// false when the `standby_reconnects` budget is exhausted — the
    /// caller promotes.
    fn reconnect(&mut self) -> bool {
        if self.failed_attempts >= self.cfg.standby_reconnects {
            return false;
        }
        let shift = self.failed_attempts.min(16);
        let base = self
            .cfg
            .connect_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_backoff_ms);
        let jitter = self.jitter.next_u64() % (base / 2 + 1);
        std::thread::sleep(Duration::from_millis(base + jitter));
        match connect_once(&self.primary, &self.cfg, Role::Standby) {
            Ok((conn, epoch, _job, history)) => {
                if history.len() > self.history.len() {
                    self.history = history;
                }
                self.epoch = epoch;
                self.conn = Some(conn);
                self.failed_attempts = 0;
                self.stats.reconnects += 1;
                true
            }
            Err(_) => {
                self.failed_attempts += 1;
                self.failed_attempts < self.cfg.standby_reconnects
            }
        }
    }

    /// Record one replicated unit completion (idempotent per unit).
    fn record_replicate(&mut self, msg: Msg) {
        let Msg::Replicate {
            search_id,
            fold_seq,
            fold_start,
            fold_len,
            unit_len,
            unit,
            sum,
            min,
            argmin,
            ..
        } = msg
        else {
            return;
        };
        let rf = self
            .repl
            .entry((search_id, fold_seq))
            .or_insert_with(|| ReplicatedFold {
                start: fold_start,
                len: fold_len,
                unit_len,
                units: Vec::new(),
            });
        if (rf.start, rf.len, rf.unit_len) != (fold_start, fold_len, unit_len) {
            // Geometry changed under the same key — only possible with
            // a corrupt peer; reset to the fresh frame's view.
            *rf = ReplicatedFold {
                start: fold_start,
                len: fold_len,
                unit_len,
                units: Vec::new(),
            };
        }
        if rf.units.iter().all(|(u, _)| *u != unit) {
            rf.units.push((unit, SumMinArgmin { sum, min, argmin }));
            self.stats.replicated_units += 1;
        }
    }

    /// Take the replicated state for search `sid` as a promotion
    /// preseed (keyed by per-search fold sequence).
    fn take_preseed(&mut self, sid: u64) -> HashMap<u64, ReplicatedFold> {
        let keys: Vec<(u64, u64)> = self
            .repl
            .keys()
            .filter(|(s, _)| *s == sid)
            .copied()
            .collect();
        let mut out = HashMap::new();
        for k in keys {
            if let Some(rf) = self.repl.remove(&k) {
                out.insert(k.1, rf);
            }
        }
        out
    }
}

/// The tail-then-takeover [`SeedSearcher`] backend a standby node runs
/// its replica solve with.  Obtain from [`Standby::searcher`].
pub struct StandbySearcher {
    coord: Arc<DistCoordinator>,
    inner: Mutex<SbInner>,
}

impl StandbySearcher {
    fn lock(&self) -> MutexGuard<'_, SbInner> {
        // A kill during promotion panics mid-lock by design; stats must
        // still be readable afterwards.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StandbyStats {
        self.lock().stats
    }

    /// The full selection history this standby holds (tailed from the
    /// primary plus anything it ran itself after promotion) — the
    /// chosen-seed sequence tests compare bit-for-bit against the
    /// single-machine path.
    pub fn history(&self) -> Vec<SeedSelection> {
        self.lock().history.clone()
    }

    /// Adopt primacy: install the tailed history into the embedded
    /// coordinator and open the listener to workers.
    fn promote(&self, inner: &mut SbInner, epoch: u64) {
        inner.drop_conn();
        inner.promoted = true;
        inner.epoch = epoch;
        inner.stats.promoted = true;
        inner.stats.promote_epoch = epoch;
        // May panic with `CoordinatorKilled` under the double-fault
        // schedule — the promoted flag above keeps stats truthful.
        self.coord
            .promote(epoch, inner.history.clone(), inner.history.len() as u64);
    }
}

impl SeedSearcher for StandbySearcher {
    fn select(
        &self,
        seed_bits: u32,
        strategy: SeedStrategy,
        workers: usize,
        n: usize,
        eval_block: BlockEval,
    ) -> SeedSelection {
        let mut inner = self.lock();
        let sid = inner.next_search;
        loop {
            // Lock-step fast path: already tailed (or already run).
            if let Some(sel) = inner.history.get(sid as usize) {
                let sel = sel.clone();
                inner.next_search += 1;
                return sel;
            }
            if inner.promoted {
                // We are the primary now: run the search through the
                // leasing machinery, replaying what the dead primary
                // already completed.
                if !inner.waited_for_fleet {
                    inner.waited_for_fleet = true;
                    self.coord.wait_for_fleet();
                }
                let preseed = inner.take_preseed(sid);
                let sel = self
                    .coord
                    .run_search(seed_bits, strategy, workers, n, eval_block, preseed);
                inner.history.push(sel.clone());
                inner.next_search += 1;
                return sel;
            }
            if inner.conn.is_none() {
                if !inner.reconnect() && !inner.promoted {
                    // Primary unreachable past the budget: take over.
                    let epoch = inner.epoch + 1;
                    self.promote(&mut inner, epoch);
                }
                continue;
            }

            // One tail tick.
            let msg = {
                let cfg_hb = inner.cfg.heartbeat_timeout_ms;
                let cfg_idle = inner.cfg.idle_reconnect_ms;
                let conn = inner.conn.as_mut().expect("checked above");
                match conn.reader.poll_frame() {
                    Ok(Some(frame)) => match Msg::decode(&frame) {
                        Ok(m) => {
                            conn.idle_ms = 0;
                            Some(m)
                        }
                        Err(_) => {
                            inner.drop_conn();
                            continue;
                        }
                    },
                    Ok(None) => {
                        conn.idle_ms += TAIL_TICK_MS;
                        conn.since_send_ms += TAIL_TICK_MS;
                        if conn.since_send_ms >= cfg_hb / 3 {
                            // Heartbeat so the primary's eviction sweep
                            // keeps the replication stream alive.
                            conn.since_send_ms = 0;
                            if write_frame(&mut conn.writer, &Msg::Ping.encode()).is_err() {
                                inner.drop_conn();
                                continue;
                            }
                            inner.stats.pings += 1;
                        } else if conn.idle_ms >= cfg_idle {
                            inner.drop_conn();
                        }
                        continue;
                    }
                    Err(_) => {
                        inner.drop_conn();
                        continue;
                    }
                }
            };

            match msg {
                Some(Msg::Chosen {
                    search_id,
                    selection,
                    ..
                }) => {
                    let have = inner.history.len() as u64;
                    if search_id == have {
                        inner.history.push(selection);
                        inner.stats.tailed_selections += 1;
                        // Concluded searches' replicated state is dead
                        // weight — prune it.
                        inner.repl.retain(|(s, _), _| *s > search_id);
                    } else if search_id > have {
                        inner.drop_conn(); // gap: resync via Welcome
                    }
                }
                Some(m @ Msg::Replicate { .. }) => inner.record_replicate(m),
                Some(Msg::Promote { epoch }) => {
                    // Orderly handover: the primary names our epoch.
                    self.promote(&mut inner, epoch);
                }
                Some(Msg::Bye) => {
                    // Orderly shutdown with searches left: take over.
                    let epoch = inner.epoch + 1;
                    self.promote(&mut inner, epoch);
                }
                Some(_) | None => {}
            }
        }
    }
}

/// A running standby node: the tail connection to the primary plus the
/// embedded (initially refusing) coordinator.
pub struct Standby {
    coord: Arc<DistCoordinator>,
    searcher: Arc<StandbySearcher>,
    job: Vec<u8>,
}

impl Standby {
    /// Connect to `primary` as a standby (completing the replication
    /// handshake synchronously — once this returns, every subsequently
    /// completed unit is replicated here) and bind the embedded
    /// coordinator on `listen` (e.g. `"127.0.0.1:0"`).
    pub fn start(listen: &str, primary: &str, cfg: DistConfig) -> io::Result<Standby> {
        let (conn, epoch, job, history) = connect_once(primary, &cfg, Role::Standby)?;
        let coord = Arc::new(DistCoordinator::bind_standby(
            listen,
            job.clone(),
            cfg.clone(),
        )?);
        let jitter = SplitMix64::new(cfg.jitter_seed ^ 0x5741_4E44_4259);
        let searcher = Arc::new(StandbySearcher {
            coord: Arc::clone(&coord),
            inner: Mutex::new(SbInner {
                primary: primary.to_string(),
                cfg,
                conn: Some(conn),
                epoch,
                history,
                next_search: 0,
                repl: HashMap::new(),
                promoted: false,
                waited_for_fleet: false,
                failed_attempts: 0,
                jitter,
                stats: StandbyStats::default(),
            }),
        });
        Ok(Standby {
            coord,
            searcher,
            job,
        })
    }

    /// The embedded coordinator's listen address (what workers put
    /// after the primary on their coordinator list).
    pub fn local_addr(&self) -> SocketAddr {
        self.coord.local_addr()
    }

    /// The job bytes from the primary's `Welcome`.
    pub fn job(&self) -> Vec<u8> {
        self.job.clone()
    }

    /// The [`SeedSearcher`] backend to run the replica solve with.
    pub fn searcher(&self) -> Arc<StandbySearcher> {
        Arc::clone(&self.searcher)
    }

    /// Arm a kill switch on the embedded coordinator (the double-fault
    /// schedules kill the standby during or after its promotion).
    pub fn arm_kill(&self, switch: Arc<KillSwitch>) {
        self.coord.arm_kill(switch);
    }

    /// Standby-side counters.
    pub fn stats(&self) -> StandbyStats {
        self.searcher.stats()
    }

    /// The standby's selection history (see [`StandbySearcher::history`]).
    pub fn history(&self) -> Vec<SeedSelection> {
        self.searcher.history()
    }

    /// The embedded coordinator's lease counters (all zeros until
    /// promotion puts it to work).
    pub fn coordinator_stats(&self) -> DistStats {
        self.coord.stats()
    }

    /// Whether an armed kill switch fired here.
    pub fn was_killed(&self) -> bool {
        self.coord.was_killed()
    }

    /// Orderly shutdown of the embedded coordinator (sends `Bye` to any
    /// re-homed workers).
    pub fn finish(&self) {
        self.coord.shutdown();
    }
}

/// Run a standby node end to end: start the tail, run `run(job,
/// searcher)` (typically: decode the job, build the replica solver, and
/// solve with the searcher as backend), then shut the embedded
/// coordinator down.  Returns `run`'s output together with the standby.
pub fn run_standby<R>(
    listen: &str,
    primary: &str,
    cfg: DistConfig,
    run: impl FnOnce(&[u8], Arc<StandbySearcher>) -> R,
) -> io::Result<(R, Standby)> {
    let standby = Standby::start(listen, primary, cfg)?;
    let job = standby.job();
    let out = run(&job, standby.searcher());
    standby.finish();
    Ok((out, standby))
}
