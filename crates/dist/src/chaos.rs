//! Deterministic network chaos: a frame-aware TCP proxy.
//!
//! [`ChaosProxy`] sits between a worker and the coordinator and
//! mistreats traffic at **frame granularity** — whole messages are
//! dropped, delayed, or the connection severed, but a frame is never
//! split, so chaos exercises the protocol's loss handling rather than
//! trivially corrupting the codec.  Every decision comes from a
//! [`SplitMix64`] stream seeded per `(proxy seed, connection, frame
//! direction)`, so a schedule is reproducible: the same seed yields the
//! same drop/delay pattern at every run (modulo wall-clock
//! interleaving, which the protocol must tolerate anyway — that is the
//! point).
//!
//! Severing closes both directions after a fixed number of forwarded
//! frames, which models a worker killed mid-lease; the worker's
//! reconnect (a fresh proxied connection) models its restart.

use crate::frame::{write_frame, FrameReader};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `splitmix64` — the tiny, high-quality seeded PRG used for every
/// chaos decision and for worker backoff jitter (no crates.io RNGs in
/// this workspace).
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli draw: true with probability `num`/1000.
    pub fn per_mille(&mut self, num: u32) -> bool {
        (self.next_u64() % 1000) < num as u64
    }
}

/// When to kill a coordinator, in deterministic progress units rather
/// than wall clock — the same spec fires at the same logical point in
/// every run.
#[derive(Clone, Copy, Debug, Default)]
pub struct KillSpec {
    /// Fire after this many completed units (remote merges + local
    /// fallbacks + pure-local units), counted across the whole solve.
    /// Mid-fold kills: pick a count smaller than the first fold's unit
    /// count.
    pub after_units: Option<u64>,
    /// Fire on entry to the Nth `fold_range` call (1-based: `Some(2)`
    /// dies *between* the first and second fold).
    pub after_folds: Option<u64>,
    /// Fire during promotion itself — the double-fault schedule: the
    /// standby dies while taking over.
    pub on_promotion: bool,
}

impl KillSpec {
    /// Kill mid-fold, after `units` completed units.
    pub fn after_units(units: u64) -> Self {
        KillSpec {
            after_units: Some(units),
            ..KillSpec::default()
        }
    }

    /// Kill between folds, on entry to fold number `n` (1-based).
    pub fn after_folds(n: u64) -> Self {
        KillSpec {
            after_folds: Some(n),
            ..KillSpec::default()
        }
    }

    /// Kill during promotion (standby double fault).
    pub fn on_promotion() -> Self {
        KillSpec {
            on_promotion: true,
            ..KillSpec::default()
        }
    }
}

/// The armed form of a [`KillSpec`]: shared atomic progress counters
/// the coordinator consults at each unit completion, fold entry, and
/// promotion.  Arm with `DistCoordinator::arm_kill`; when a check
/// trips, the coordinator closes every socket abruptly (no `Bye`) and
/// panics its solve thread with `CoordinatorKilled`.
#[derive(Debug)]
pub struct KillSwitch {
    spec: KillSpec,
    units: AtomicU64,
    folds: AtomicU64,
    fired: AtomicBool,
}

impl KillSwitch {
    /// Arm `spec`.
    pub fn arm(spec: KillSpec) -> Arc<KillSwitch> {
        Arc::new(KillSwitch {
            spec,
            units: AtomicU64::new(0),
            folds: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    fn fire(&self) -> bool {
        !self.fired.swap(true, Ordering::SeqCst)
    }

    /// Record one completed unit; true if the switch fires now.
    pub fn note_unit(&self) -> bool {
        let n = self.units.fetch_add(1, Ordering::SeqCst) + 1;
        match self.spec.after_units {
            Some(k) if n >= k && !self.fired.load(Ordering::SeqCst) => self.fire(),
            _ => false,
        }
    }

    /// Record one fold entry; true if the switch fires now.
    pub fn note_fold(&self) -> bool {
        let n = self.folds.fetch_add(1, Ordering::SeqCst) + 1;
        match self.spec.after_folds {
            Some(k) if n >= k && !self.fired.load(Ordering::SeqCst) => self.fire(),
            _ => false,
        }
    }

    /// Record a promotion attempt; true if the switch fires now.
    pub fn note_promotion(&self) -> bool {
        if self.spec.on_promotion && !self.fired.load(Ordering::SeqCst) {
            self.fire()
        } else {
            false
        }
    }

    /// Whether the switch has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A failover gauntlet schedule: when the primary dies, and (for the
/// double-fault scenario) when the standby dies too.
#[derive(Clone, Copy, Debug, Default)]
pub struct FailoverSchedule {
    /// Kill spec armed on the primary (`None` = primary survives).
    pub primary_kill: Option<KillSpec>,
    /// Kill spec armed on the standby (`None` = standby survives).
    pub standby_kill: Option<KillSpec>,
}

/// One proxy's misbehavior schedule.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// PRG seed; same seed → same decision sequence.
    pub seed: u64,
    /// Probability (per mille) of silently dropping a frame.
    pub drop_per_mille: u32,
    /// Fixed floor added to every frame's forwarding latency.
    pub delay_min_ms: u64,
    /// Additional uniform jitter `0..=delay_jitter_ms` per frame.
    pub delay_jitter_ms: u64,
    /// Sever the connection (both directions) after this many frames
    /// have been forwarded across it, counting both directions.  Every
    /// connection through the proxy gets the same treatment, so a
    /// reconnecting worker is "killed" again and again.
    pub sever_after: Option<u64>,
    /// Never drop the first frames of a connection (per direction) —
    /// keeps `Hello`/`Welcome` deliverable so schedules exercise
    /// steady-state loss rather than pure connection failure.  Severing
    /// ignores this.
    pub protect_first: u64,
}

impl ChaosConfig {
    /// A proxy that forwards faithfully (baseline).
    pub fn clean(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_per_mille: 0,
            delay_min_ms: 0,
            delay_jitter_ms: 0,
            sever_after: None,
            protect_first: 2,
        }
    }

    /// Kill every connection after `frames` forwarded frames.
    pub fn killer(seed: u64, frames: u64) -> Self {
        ChaosConfig {
            sever_after: Some(frames),
            ..ChaosConfig::clean(seed)
        }
    }

    /// Delay every frame by at least `min` ms (straggler link).
    pub fn straggler(seed: u64, min: u64, jitter: u64) -> Self {
        ChaosConfig {
            delay_min_ms: min,
            delay_jitter_ms: jitter,
            ..ChaosConfig::clean(seed)
        }
    }

    /// Drop `per_mille`/1000 of frames (lossy link).
    pub fn lossy(seed: u64, per_mille: u32) -> Self {
        ChaosConfig {
            drop_per_mille: per_mille,
            ..ChaosConfig::clean(seed)
        }
    }
}

/// A running chaos proxy; connect workers to [`ChaosProxy::addr`]
/// instead of the coordinator.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral loopback port forwarding to
    /// `target` under `cfg`'s schedule.
    pub fn start(target: SocketAddr, cfg: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let mut conn_index: u64 = 0;
            loop {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        let i = conn_index;
                        conn_index += 1;
                        let flag = Arc::clone(&flag);
                        std::thread::spawn(move || proxy_connection(client, target, cfg, i, flag));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// Address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and tear down.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn proxy_connection(
    client: TcpStream,
    target: SocketAddr,
    cfg: ChaosConfig,
    conn_index: u64,
    shutdown: Arc<AtomicBool>,
) {
    let upstream = match TcpStream::connect(target) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let forwarded = Arc::new(AtomicU64::new(0));
    let severed = Arc::new(AtomicBool::new(false));

    let c2s = {
        let (src, dst) = (
            client.try_clone().expect("clone client"),
            upstream.try_clone().expect("clone upstream"),
        );
        let (fwd, sev, flag) = (
            Arc::clone(&forwarded),
            Arc::clone(&severed),
            Arc::clone(&shutdown),
        );
        std::thread::spawn(move || pump(src, dst, cfg, conn_index, 0, fwd, sev, flag))
    };
    pump(
        upstream, client, cfg, conn_index, 1, forwarded, severed, shutdown,
    );
    let _ = c2s.join();
}

/// Forward whole frames src → dst under the chaos schedule.  Direction
/// 0 is client→server, 1 is server→client; each direction draws from
/// its own PRG stream so schedules are reproducible per direction.
#[allow(clippy::too_many_arguments)]
fn pump(
    src: TcpStream,
    dst: TcpStream,
    cfg: ChaosConfig,
    conn_index: u64,
    direction: u64,
    forwarded: Arc<AtomicU64>,
    severed: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(20)));
    let mut prg = SplitMix64::new(
        cfg.seed ^ conn_index.wrapping_mul(0x9E37_79B9) ^ direction.wrapping_mul(0x85EB_CA6B),
    );
    let mut reader = FrameReader::new(src.try_clone().expect("clone pump src"));
    let mut dst_w = dst.try_clone().expect("clone pump dst");
    let mut frame_idx: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) || severed.load(Ordering::SeqCst) {
            break;
        }
        match reader.poll_frame() {
            Ok(Some(frame)) => {
                let total = forwarded.fetch_add(1, Ordering::SeqCst);
                if let Some(n) = cfg.sever_after {
                    if total + 1 >= n {
                        severed.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                let protected = frame_idx < cfg.protect_first;
                frame_idx += 1;
                if !protected && cfg.drop_per_mille > 0 && prg.per_mille(cfg.drop_per_mille) {
                    continue; // dropped on the floor
                }
                let delay = cfg.delay_min_ms
                    + if cfg.delay_jitter_ms > 0 {
                        prg.next_u64() % (cfg.delay_jitter_ms + 1)
                    } else {
                        0
                    };
                if delay > 0 {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                if write_frame(&mut dst_w, &frame).is_err() {
                    break;
                }
            }
            Ok(None) => continue,
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "no collisions in 64 draws");
    }

    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            if let Ok((s, _)) = listener.accept() {
                let mut r = FrameReader::new(s.try_clone().unwrap());
                let mut w = s;
                loop {
                    match r.poll_frame() {
                        Ok(Some(f)) => {
                            if write_frame(&mut w, &f).is_err() {
                                return;
                            }
                        }
                        Ok(None) => continue,
                        Err(_) => return,
                    }
                }
            }
        });
        (addr, h)
    }

    #[test]
    fn clean_proxy_forwards_frames() {
        let (addr, server) = echo_server();
        let proxy = ChaosProxy::start(addr, ChaosConfig::clean(1)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut c, b"ping-frame").unwrap();
        let mut r = FrameReader::new(c.try_clone().unwrap());
        let echoed = loop {
            if let Some(f) = r.poll_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(echoed, b"ping-frame");
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn severing_proxy_cuts_the_connection() {
        let (addr, server) = echo_server();
        // Sever after 3 forwarded frames (both directions counted).
        let proxy = ChaosProxy::start(addr, ChaosConfig::killer(2, 3)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let mut r = FrameReader::new(c.try_clone().unwrap());
        let mut echoed = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        for i in 0..10u8 {
            if write_frame(&mut c, &[i]).is_err() {
                break;
            }
            loop {
                match r.poll_frame() {
                    Ok(Some(_)) => {
                        echoed += 1;
                        break;
                    }
                    Ok(None) => {
                        if std::time::Instant::now() > deadline {
                            break;
                        }
                    }
                    Err(_) => break,
                }
                if std::time::Instant::now() > deadline {
                    break;
                }
            }
            if std::time::Instant::now() > deadline {
                break;
            }
        }
        assert!(echoed < 10, "sever must interrupt the echo stream");
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn delaying_proxy_preserves_content() {
        let (addr, server) = echo_server();
        let proxy = ChaosProxy::start(addr, ChaosConfig::straggler(3, 30, 20)).unwrap();
        let t0 = std::time::Instant::now();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        write_frame(&mut c, b"slow").unwrap();
        c.flush().unwrap();
        let mut r = FrameReader::new(c.try_clone().unwrap());
        let echoed = loop {
            if let Some(f) = r.poll_frame().unwrap() {
                break f;
            }
        };
        assert_eq!(echoed, b"slow");
        // Round trip crosses the delay twice (c→s and s→c).
        assert!(
            t0.elapsed() >= Duration::from_millis(60),
            "{:?}",
            t0.elapsed()
        );
        drop(c);
        drop(proxy);
        let _ = server.join();
    }
}
