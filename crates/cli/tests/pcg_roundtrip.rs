//! Property coverage for the `.pcg` codec: write → load is the
//! identity, corruption in any byte is rejected cleanly, and the
//! mmap-backed load agrees with the owned-memory load — including the
//! solver output over both storages.

use parcolor_cli::pcg::{load_pcg, load_pcg_owned, read_pcg_bytes, write_pcg, PCG_HEADER_LEN};
use parcolor_core::{Graph, NodeId, Params, SeedStrategy, Solver};
use proptest::prelude::*;

fn graph_from(n: usize, raw: &[(u32, u32)]) -> Graph {
    let edges: Vec<(NodeId, NodeId)> = raw
        .iter()
        .map(|&(a, b)| (a % n as u32, b % n as u32))
        .filter(|&(u, v)| u != v)
        .collect();
    Graph::from_edges(n, &edges)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "parcolor-pcg-test-{}-{tag}.pcg",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_then_read_is_identity(
        n in 2usize..60,
        raw in proptest::collection::vec((0u32..1 << 16, 0u32..1 << 16), 0..240),
    ) {
        let g = graph_from(n, &raw);
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();
        let back = read_pcg_bytes(&bytes).unwrap();
        prop_assert_eq!(back.offsets(), g.offsets());
        prop_assert_eq!(back.adj(), g.adj());
    }

    #[test]
    fn any_single_byte_flip_is_rejected(
        n in 2usize..20,
        raw in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
        victim in 0usize..4096,
    ) {
        let g = graph_from(n, &raw);
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();
        let victim = victim % bytes.len();
        bytes[victim] ^= 0x5A;
        // Whatever field the flip lands in — magic, version, sizes,
        // checksum, or payload — the decode must fail, not mis-load.
        prop_assert!(read_pcg_bytes(&bytes).is_err(), "flip at {} accepted", victim);
    }

    #[test]
    fn truncation_is_rejected(
        n in 2usize..20,
        raw in proptest::collection::vec((0u32..64, 0u32..64), 1..40),
        cut in 1usize..64,
    ) {
        let g = graph_from(n, &raw);
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(read_pcg_bytes(&bytes[..bytes.len() - cut]).is_err());
        // Trailing garbage is rejected too.
        bytes.push(0);
        prop_assert!(read_pcg_bytes(&bytes).is_err());
    }
}

#[test]
fn mmap_and_owned_loads_agree() {
    let g = parcolor_graphgen::gnm(800, 3200, 77);
    let path = temp_path("agree");
    let f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    write_pcg(f, &g).unwrap();

    let mapped = load_pcg(&path).expect("mmap load");
    let owned = load_pcg_owned(&path).expect("owned load");
    assert_eq!(mapped.offsets(), owned.offsets());
    assert_eq!(mapped.adj(), owned.adj());
    assert_eq!(mapped, g);
    #[cfg(all(unix, target_endian = "little"))]
    assert!(mapped.is_mapped(), "unix load should be zero-copy");
    assert!(!owned.is_mapped());

    // The acceptance bar: solves over the two storages are bit-identical.
    let params = Params::default()
        .with_seed_bits(4)
        .with_strategy(SeedStrategy::FixedSubset(8));
    let sol_mapped = Solver::deterministic(params.clone())
        .solve(&parcolor_core::D1lcInstance::delta_plus_one(mapped));
    let sol_owned =
        Solver::deterministic(params).solve(&parcolor_core::D1lcInstance::delta_plus_one(owned));
    assert_eq!(sol_mapped.colors, sol_owned.colors);
    std::fs::remove_file(&path).ok();
}

#[test]
fn header_constant_matches_layout() {
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let mut bytes = Vec::new();
    write_pcg(&mut bytes, &g).unwrap();
    assert_eq!(bytes.len(), PCG_HEADER_LEN + 4 * 8 + 4 * 4);
    assert!(
        PCG_HEADER_LEN.is_multiple_of(8),
        "offsets must stay 8-aligned"
    );
}
