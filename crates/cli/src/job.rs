//! The distributed **job codec**: the opaque payload a coordinator hands
//! every worker in its `Welcome` frame.
//!
//! A job is everything a worker replica needs to run the *identical*
//! deterministic solve: the graph and the seed-search parameters.  The
//! format is a one-line text header followed by the graph payload:
//!
//! ```text
//! parcolor-job 2 <seed_bits> <strategy>
//! <.pcg container bytes — see crate::pcg>
//! ```
//!
//! Version 2 (current) ships the binary `.pcg` container, so workers
//! decode the CSR arrays directly instead of re-parsing text DIMACS on
//! every `Welcome`; the checksum guards the wire transfer for free.
//! Version 1 (DIMACS payload) is still decoded for compatibility:
//!
//! ```text
//! parcolor-job 1 <seed_bits> <strategy>
//! p edge <n> <m>
//! e <u> <v>
//! ...
//! ```
//!
//! `<strategy>` is `ex` (exhaustive), `bw` (bitwise conditional
//! expectations), `fs:<k>` (fixed subset) or `ss:<seed>` (single seed).
//!
//! Both sides of the protocol build `(instance, params)` through
//! [`decode_job`] — the coordinator decodes its *own* encoding — so the
//! replicas can never disagree on a default the header doesn't carry.

use crate::parse_dimacs;
use crate::pcg::{read_pcg_bytes, write_pcg};
use parcolor_core::{D1lcInstance, Graph, Params, SeedStrategy};
use std::io::BufReader;

/// Current job-format version (the leading header field).
pub const JOB_VERSION: u32 = 2;

fn strategy_token(s: SeedStrategy) -> String {
    match s {
        SeedStrategy::Exhaustive => "ex".into(),
        SeedStrategy::BitwiseCondExp => "bw".into(),
        SeedStrategy::FixedSubset(k) => format!("fs:{k}"),
        SeedStrategy::SingleSeed(seed) => format!("ss:{seed}"),
    }
}

/// Parse a strategy token (`ex`, `bw`, `fs:<k>`, `ss:<seed>`) — the
/// same grammar the job header uses, reused by the CLI's `--strategy`.
pub fn parse_strategy(tok: &str) -> Result<SeedStrategy, String> {
    match tok {
        "ex" => Ok(SeedStrategy::Exhaustive),
        "bw" => Ok(SeedStrategy::BitwiseCondExp),
        _ => {
            if let Some(k) = tok.strip_prefix("fs:") {
                k.parse()
                    .map(SeedStrategy::FixedSubset)
                    .map_err(|_| format!("bad fixed-subset size {k:?}"))
            } else if let Some(s) = tok.strip_prefix("ss:") {
                s.parse()
                    .map(SeedStrategy::SingleSeed)
                    .map_err(|_| format!("bad single-seed value {s:?}"))
            } else {
                Err(format!("unknown strategy token {tok:?}"))
            }
        }
    }
}

/// Encode a graph + the seed-search parameters as job bytes (version 2:
/// `.pcg` payload).
pub fn encode_job(g: &Graph, seed_bits: u32, strategy: SeedStrategy) -> Vec<u8> {
    let mut out = format!(
        "parcolor-job {JOB_VERSION} {seed_bits} {}\n",
        strategy_token(strategy)
    )
    .into_bytes();
    write_pcg(&mut out, g).expect("write to Vec cannot fail");
    out
}

/// Decode job bytes back into the (Δ+1) instance and solver parameters.
///
/// Every field the header doesn't carry comes from [`Params::default`],
/// so a coordinator and its workers — both calling this — are guaranteed
/// the same configuration.
pub fn decode_job(job: &[u8]) -> Result<(D1lcInstance, Params), String> {
    let nl = job
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("job: missing header line")?;
    let header = std::str::from_utf8(&job[..nl]).map_err(|_| "job: header is not UTF-8")?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("parcolor-job") {
        return Err("job: bad magic (expected \"parcolor-job\")".into());
    }
    let version: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("job: bad version field")?;
    if version != 1 && version != JOB_VERSION {
        return Err(format!(
            "job: version {version} not supported (this build speaks {JOB_VERSION})"
        ));
    }
    let seed_bits: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("job: bad seed_bits field")?;
    let strategy = parse_strategy(parts.next().ok_or("job: missing strategy field")?)?;
    if parts.next().is_some() {
        return Err("job: trailing header fields".into());
    }
    let payload = &job[nl + 1..];
    let g = if version == 1 {
        parse_dimacs(BufReader::new(payload)).map_err(|e| format!("job graph: {e}"))?
    } else {
        read_pcg_bytes(payload).map_err(|e| format!("job graph: {e}"))?
    };
    let params = Params::default()
        .with_seed_bits(seed_bits)
        .with_strategy(strategy);
    Ok((D1lcInstance::delta_plus_one(g), params))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn roundtrips_every_strategy() {
        for strat in [
            SeedStrategy::Exhaustive,
            SeedStrategy::BitwiseCondExp,
            SeedStrategy::FixedSubset(16),
            SeedStrategy::SingleSeed(7),
        ] {
            let job = encode_job(&sample_graph(), 9, strat);
            let (inst, params) = decode_job(&job).expect("roundtrip");
            assert_eq!(inst.n(), 4);
            assert_eq!(inst.graph.m(), 4);
            assert_eq!(params.seed_bits, 9);
            assert_eq!(params.strategy, strat);
        }
    }

    #[test]
    fn rejects_malformed_jobs() {
        assert!(decode_job(b"").is_err());
        assert!(decode_job(b"no newline here").is_err());
        assert!(decode_job(b"wrong-magic 1 6 ex\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 99 6 ex\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 1 six ex\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 1 6 warp\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 1 6 fs:many\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 1 6 ex extra\np edge 1 0\n").is_err());
        assert!(decode_job(b"parcolor-job 1 6 ex\ne 1 2\n").is_err());
        // v2 with a mangled binary payload
        assert!(decode_job(b"parcolor-job 2 6 ex\nnot a pcg container").is_err());
    }

    #[test]
    fn still_decodes_version_1_dimacs_jobs() {
        let job = b"parcolor-job 1 9 fs:16\np edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n";
        let (inst, params) = decode_job(job).expect("legacy decode");
        assert_eq!(inst.n(), 4);
        assert_eq!(inst.graph.m(), 4);
        assert_eq!(params.seed_bits, 9);
        assert_eq!(params.strategy, SeedStrategy::FixedSubset(16));
        assert_eq!(inst.graph, sample_graph());
    }

    #[test]
    fn v2_jobs_carry_pcg_payload() {
        let job = encode_job(&sample_graph(), 6, SeedStrategy::Exhaustive);
        let header_end = job.iter().position(|&b| b == b'\n').unwrap() + 1;
        assert_eq!(&job[header_end..header_end + 8], crate::pcg::PCG_MAGIC);
    }
}
