//! Argument validation for the `parcolor` binary — pure functions that
//! return `Result` instead of panicking, so the binary can print one
//! friendly diagnostic and exit with a meaningful status (2 for usage
//! errors, 1 for runtime failures) and tests can assert on the messages.

use parcolor_core::{SeedStrategy, SimdPath};
use parcolor_dist::DistConfig;

/// Validated options for `parcolor solve`.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOpts {
    /// Input graph path (`.col`).
    pub input: String,
    /// Output coloring path (`-o`), stdout when absent.
    pub out: Option<String>,
    /// Randomized mode key (`--randomized <key>`); deterministic when absent.
    pub randomized: Option<u64>,
    /// PRG seed length (`--seed-bits`, default 6).
    pub seed_bits: u32,
    /// Worker threads (`--workers`, default 0 = auto).
    pub workers: usize,
    /// Forced SIMD kernel path (`--simd`, default `None` = auto:
    /// `PARCOLOR_SIMD` env, else runtime detection).  Bit-identical
    /// results on every path — a throughput/testing knob.
    pub simd: Option<SimdPath>,
}

/// Seed lengths outside this range are either degenerate or blow the
/// exhaustive/fixed-subset search past any practical budget.
pub const SEED_BITS_RANGE: std::ops::RangeInclusive<u32> = 1..=24;

fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

/// Parse and validate the arguments of `parcolor solve` (everything
/// after the subcommand).  Errors are complete sentences ready for
/// `eprintln!` — no panics on malformed input.
pub fn parse_solve_args<S: AsRef<str>>(args: &[S]) -> Result<SolveOpts, String> {
    let mut opts = SolveOpts {
        input: String::new(),
        out: None,
        randomized: None,
        seed_bits: 6,
        workers: 0,
        simd: None,
    };
    let mut seen_seed_bits = false;
    let mut seen_simd = false;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next().ok_or(format!("{flag} requires a value"))
        };
        match arg {
            "-o" => {
                let v = value_of("-o")?;
                if opts.out.replace(v.to_string()).is_some() {
                    return Err("-o given twice".into());
                }
            }
            "--randomized" => {
                let v = value_of("--randomized")?;
                if opts
                    .randomized
                    .replace(parsed("--randomized", v)?)
                    .is_some()
                {
                    return Err("--randomized given twice".into());
                }
            }
            "--seed-bits" => {
                if seen_seed_bits {
                    return Err("--seed-bits given twice".into());
                }
                seen_seed_bits = true;
                opts.seed_bits = parsed("--seed-bits", value_of("--seed-bits")?)?;
            }
            "--workers" => {
                opts.workers = parsed("--workers", value_of("--workers")?)?;
            }
            "--simd" => {
                if seen_simd {
                    return Err("--simd given twice".into());
                }
                seen_simd = true;
                let v = value_of("--simd")?;
                if !v.eq_ignore_ascii_case("auto") {
                    opts.simd = Some(SimdPath::parse(v).ok_or(format!(
                        "--simd expects scalar|avx2|avx512|neon|auto, got {v:?}"
                    ))?);
                }
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown flag {flag}"));
            }
            positional => {
                if !opts.input.is_empty() {
                    return Err(format!(
                        "unexpected extra argument {positional:?} (input is {:?})",
                        opts.input
                    ));
                }
                opts.input = positional.to_string();
            }
        }
    }
    if opts.input.is_empty() {
        return Err("missing input graph (expected a .col path)".into());
    }
    if !SEED_BITS_RANGE.contains(&opts.seed_bits) {
        return Err(format!(
            "--seed-bits must be in {}..={}, got {}",
            SEED_BITS_RANGE.start(),
            SEED_BITS_RANGE.end(),
            opts.seed_bits
        ));
    }
    if opts.randomized.is_some() && seen_seed_bits {
        return Err(
            "--randomized and --seed-bits contradict: the randomized solver draws colors \
             directly and never runs the seed search"
                .into(),
        );
    }
    Ok(opts)
}

/// Validated options for `parcolor coordinator`.
#[derive(Clone, Debug)]
pub struct CoordinatorOpts {
    /// Input graph path — `None` in standby mode (the job arrives over
    /// the replication handshake).
    pub input: Option<String>,
    /// Listen address (`--listen`, required).
    pub listen: String,
    /// Primary address when running as a standby (`--standby`).
    pub standby_of: Option<String>,
    /// Output coloring path (`-o`), stdout when absent.
    pub out: Option<String>,
    /// PRG seed length (`--seed-bits`, default 6).
    pub seed_bits: u32,
    /// Seed-search strategy (`--strategy`, default `fs:16`).
    pub strategy: SeedStrategy,
    /// Executor threads (`--workers`, default 0 = auto).
    pub workers: usize,
    /// Lease/failure knobs overlaid on [`DistConfig::default`]:
    /// `--min-workers`, `--blocks-per-lease`, `--local-patience-ms`,
    /// `--lease-timeout-ms`, `--heartbeat-timeout-ms`.
    pub cfg: DistConfig,
}

/// Validated options for `parcolor worker`.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerOpts {
    /// Ordered coordinator list (`--connect`, required; repeatable
    /// and/or comma-separated — `primary,standby`).  The worker tries
    /// the addresses in order on every reconnect sweep.
    pub connect: Vec<String>,
    /// Executor threads (`--workers`, default 0 = auto).
    pub workers: usize,
}

fn in_range<T: PartialOrd + std::fmt::Display + Copy>(
    flag: &str,
    v: T,
    lo: T,
    hi: T,
) -> Result<T, String> {
    if v < lo || v > hi {
        return Err(format!("{flag} must be in {lo}..={hi}, got {v}"));
    }
    Ok(v)
}

/// Parse and validate the arguments of `parcolor coordinator`.  Same
/// contract as [`parse_solve_args`]: complete-sentence errors, no
/// panics.  `--standby PRIMARY` runs a standby instead of a primary and
/// contradicts the flags that describe a job (`input`, `--seed-bits`,
/// `--strategy`) — a standby's job arrives over the wire.
pub fn parse_coordinator_args<S: AsRef<str>>(args: &[S]) -> Result<CoordinatorOpts, String> {
    let mut opts = CoordinatorOpts {
        input: None,
        listen: String::new(),
        standby_of: None,
        out: None,
        seed_bits: 6,
        strategy: SeedStrategy::FixedSubset(16),
        workers: 0,
        cfg: DistConfig::default(),
    };
    let mut seen_seed_bits = false;
    let mut seen_strategy = false;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next().ok_or(format!("{flag} requires a value"))
        };
        match arg {
            "--listen" => {
                let v = value_of("--listen")?;
                if !opts.listen.is_empty() {
                    return Err("--listen given twice".into());
                }
                opts.listen = v.to_string();
            }
            "--standby" => {
                let v = value_of("--standby")?;
                if opts.standby_of.replace(v.to_string()).is_some() {
                    return Err("--standby given twice".into());
                }
            }
            "-o" => {
                let v = value_of("-o")?;
                if opts.out.replace(v.to_string()).is_some() {
                    return Err("-o given twice".into());
                }
            }
            "--seed-bits" => {
                if seen_seed_bits {
                    return Err("--seed-bits given twice".into());
                }
                seen_seed_bits = true;
                opts.seed_bits = parsed("--seed-bits", value_of("--seed-bits")?)?;
            }
            "--strategy" => {
                if seen_strategy {
                    return Err("--strategy given twice".into());
                }
                seen_strategy = true;
                opts.strategy = crate::job::parse_strategy(value_of("--strategy")?)?;
            }
            "--workers" => {
                opts.workers = parsed("--workers", value_of("--workers")?)?;
            }
            "--min-workers" => {
                opts.cfg.min_workers = parsed("--min-workers", value_of("--min-workers")?)?;
            }
            "--blocks-per-lease" => {
                let v = value_of("--blocks-per-lease")?;
                opts.cfg.blocks_per_lease = in_range(
                    "--blocks-per-lease",
                    parsed("--blocks-per-lease", v)?,
                    1,
                    1_024,
                )?;
            }
            "--local-patience-ms" => {
                let v = value_of("--local-patience-ms")?;
                opts.cfg.local_patience_ms = in_range(
                    "--local-patience-ms",
                    parsed("--local-patience-ms", v)?,
                    0,
                    600_000,
                )?;
            }
            "--lease-timeout-ms" => {
                let v = value_of("--lease-timeout-ms")?;
                opts.cfg.lease_timeout_ms = in_range(
                    "--lease-timeout-ms",
                    parsed("--lease-timeout-ms", v)?,
                    10,
                    600_000,
                )?;
            }
            "--heartbeat-timeout-ms" => {
                let v = value_of("--heartbeat-timeout-ms")?;
                opts.cfg.heartbeat_timeout_ms = in_range(
                    "--heartbeat-timeout-ms",
                    parsed("--heartbeat-timeout-ms", v)?,
                    10,
                    600_000,
                )?;
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown flag {flag}"));
            }
            positional => {
                if opts.input.is_some() {
                    return Err(format!(
                        "unexpected extra argument {positional:?} (input is {:?})",
                        opts.input.as_deref().unwrap_or("")
                    ));
                }
                opts.input = Some(positional.to_string());
            }
        }
    }
    if opts.listen.is_empty() {
        return Err("--listen HOST:PORT is required".into());
    }
    if opts.standby_of.is_some() {
        if let Some(input) = &opts.input {
            return Err(format!(
                "--standby and an input graph ({input:?}) contradict: a standby's job \
                 arrives from the primary over the replication handshake"
            ));
        }
        if seen_seed_bits || seen_strategy {
            return Err(
                "--standby and --seed-bits/--strategy contradict: a standby inherits the \
                 primary's job parameters"
                    .into(),
            );
        }
    } else if opts.input.is_none() {
        return Err("missing input graph (expected a .col path)".into());
    }
    if !SEED_BITS_RANGE.contains(&opts.seed_bits) {
        return Err(format!(
            "--seed-bits must be in {}..={}, got {}",
            SEED_BITS_RANGE.start(),
            SEED_BITS_RANGE.end(),
            opts.seed_bits
        ));
    }
    Ok(opts)
}

/// Parse and validate the arguments of `parcolor worker`.  `--connect`
/// accepts an ordered coordinator list: repeated flags and/or one
/// comma-separated value (`--connect primary:9000,standby:9001`).
pub fn parse_worker_args<S: AsRef<str>>(args: &[S]) -> Result<WorkerOpts, String> {
    let mut opts = WorkerOpts {
        connect: Vec::new(),
        workers: 0,
    };
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next().ok_or(format!("{flag} requires a value"))
        };
        match arg {
            "--connect" => {
                for addr in value_of("--connect")?.split(',') {
                    let addr = addr.trim();
                    if addr.is_empty() {
                        return Err("--connect has an empty address in its list".into());
                    }
                    opts.connect.push(addr.to_string());
                }
            }
            "--workers" => {
                opts.workers = parsed("--workers", value_of("--workers")?)?;
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown flag {flag}"));
            }
            positional => {
                return Err(format!("unexpected argument {positional:?}"));
            }
        }
    }
    if opts.connect.is_empty() {
        return Err("--connect HOST:PORT[,HOST:PORT] is required".into());
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SolveOpts, String> {
        parse_solve_args(args)
    }

    #[test]
    fn accepts_minimal_and_full_invocations() {
        let o = parse(&["g.col"]).unwrap();
        assert_eq!(o.input, "g.col");
        assert_eq!((o.seed_bits, o.workers), (6, 0));
        assert!(o.out.is_none() && o.randomized.is_none());

        let o = parse(&[
            "g.col",
            "-o",
            "c.txt",
            "--seed-bits",
            "10",
            "--workers",
            "4",
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("c.txt"));
        assert_eq!((o.seed_bits, o.workers), (10, 4));

        // Flags may precede the positional.
        let o = parse(&["--workers", "2", "g.col"]).unwrap();
        assert_eq!(o.input, "g.col");
    }

    #[test]
    fn rejects_missing_input() {
        let e = parse(&[]).unwrap_err();
        assert!(e.contains("missing input"), "{e}");
        let e = parse(&["-o", "out.txt"]).unwrap_err();
        assert!(e.contains("missing input"), "{e}");
    }

    #[test]
    fn rejects_malformed_numbers_without_panicking() {
        for bad in [
            vec!["g.col", "--seed-bits", "ten"],
            vec!["g.col", "--workers", "-3"],
            vec!["g.col", "--randomized", "0x12"],
        ] {
            let e = parse(&bad).unwrap_err();
            assert!(e.contains("expects a number"), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn rejects_out_of_range_seed_bits() {
        assert!(parse(&["g.col", "--seed-bits", "0"])
            .unwrap_err()
            .contains("1..=24"));
        assert!(parse(&["g.col", "--seed-bits", "25"])
            .unwrap_err()
            .contains("1..=24"));
        assert!(parse(&["g.col", "--seed-bits", "24"]).is_ok());
    }

    #[test]
    fn rejects_contradictory_flags() {
        let e = parse(&["g.col", "--randomized", "7", "--seed-bits", "8"]).unwrap_err();
        assert!(e.contains("contradict"), "{e}");
        // --randomized alone is fine (default bits are not "given").
        assert!(parse(&["g.col", "--randomized", "7"]).is_ok());
    }

    #[test]
    fn parses_simd_flag() {
        assert_eq!(parse(&["g.col"]).unwrap().simd, None);
        assert_eq!(
            parse(&["g.col", "--simd", "scalar"]).unwrap().simd,
            Some(SimdPath::Scalar)
        );
        assert_eq!(
            parse(&["g.col", "--simd", "AVX2"]).unwrap().simd,
            Some(SimdPath::Avx2)
        );
        // "auto" is accepted and means "no forcing".
        assert_eq!(parse(&["g.col", "--simd", "Auto"]).unwrap().simd, None);
        let e = parse(&["g.col", "--simd", "sse9"]).unwrap_err();
        assert!(e.contains("scalar|avx2|avx512|neon|auto"), "{e}");
        assert!(parse(&["g.col", "--simd", "avx2", "--simd", "auto"])
            .unwrap_err()
            .contains("twice"));
        assert!(parse(&["g.col", "--simd"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn rejects_missing_values_unknown_flags_and_duplicates() {
        assert!(parse(&["g.col", "-o"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["g.col", "--seed-bits"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["g.col", "--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["a.col", "b.col"])
            .unwrap_err()
            .contains("unexpected extra argument"));
        assert!(parse(&["g.col", "-o", "a", "-o", "b"])
            .unwrap_err()
            .contains("twice"));
        assert!(parse(&["g.col", "--seed-bits", "8", "--seed-bits", "9"])
            .unwrap_err()
            .contains("twice"));
    }

    #[test]
    fn coordinator_accepts_primary_and_standby_forms() {
        let o = parse_coordinator_args(&["g.col", "--listen", "0.0.0.0:9000"]).unwrap();
        assert_eq!(o.input.as_deref(), Some("g.col"));
        assert_eq!(o.listen, "0.0.0.0:9000");
        assert!(o.standby_of.is_none());
        assert_eq!(o.seed_bits, 6);
        assert_eq!(o.strategy, SeedStrategy::FixedSubset(16));
        assert_eq!(o.cfg.min_workers, DistConfig::default().min_workers);

        let o = parse_coordinator_args(&[
            "g.col",
            "--listen",
            ":9000",
            "--min-workers",
            "3",
            "--seed-bits",
            "10",
            "--strategy",
            "bw",
            "--blocks-per-lease",
            "16",
            "--local-patience-ms",
            "250",
            "--lease-timeout-ms",
            "500",
            "--heartbeat-timeout-ms",
            "4000",
            "-o",
            "c.txt",
        ])
        .unwrap();
        assert_eq!(o.cfg.min_workers, 3);
        assert_eq!(o.seed_bits, 10);
        assert_eq!(o.strategy, SeedStrategy::BitwiseCondExp);
        assert_eq!(o.cfg.blocks_per_lease, 16);
        assert_eq!(o.cfg.local_patience_ms, 250);
        assert_eq!(o.cfg.lease_timeout_ms, 500);
        assert_eq!(o.cfg.heartbeat_timeout_ms, 4_000);
        assert_eq!(o.out.as_deref(), Some("c.txt"));

        let o =
            parse_coordinator_args(&["--listen", ":9001", "--standby", "primary:9000"]).unwrap();
        assert!(o.input.is_none());
        assert_eq!(o.standby_of.as_deref(), Some("primary:9000"));
    }

    #[test]
    fn coordinator_rejects_bad_and_contradictory_flags() {
        let e = parse_coordinator_args(&["g.col"]).unwrap_err();
        assert!(e.contains("--listen"), "{e}");
        let e = parse_coordinator_args(&["--listen", ":9000"]).unwrap_err();
        assert!(e.contains("missing input"), "{e}");
        let e = parse_coordinator_args(&["g.col", "--listen", ":9000", "--standby", "p:1"])
            .unwrap_err();
        assert!(e.contains("contradict"), "{e}");
        let e =
            parse_coordinator_args(&["--listen", ":9000", "--standby", "p:1", "--seed-bits", "8"])
                .unwrap_err();
        assert!(e.contains("contradict"), "{e}");
        let e = parse_coordinator_args(&["g.col", "--listen", ":9000", "--strategy", "zz"])
            .unwrap_err();
        assert!(e.contains("unknown strategy"), "{e}");
    }

    #[test]
    fn coordinator_validates_knob_ranges() {
        for (flag, low, high) in [
            ("--blocks-per-lease", "0", "1025"),
            ("--local-patience-ms", "-1", "600001"),
            ("--lease-timeout-ms", "9", "600001"),
            ("--heartbeat-timeout-ms", "9", "600001"),
        ] {
            for bad in [low, high] {
                let e =
                    parse_coordinator_args(&["g.col", "--listen", ":9000", flag, bad]).unwrap_err();
                assert!(
                    e.contains("must be in") || e.contains("expects a number"),
                    "{flag} {bad} -> {e}"
                );
            }
        }
        // Boundary values are accepted.
        assert!(parse_coordinator_args(&[
            "g.col",
            "--listen",
            ":9000",
            "--blocks-per-lease",
            "1024",
            "--lease-timeout-ms",
            "10",
        ])
        .is_ok());
    }

    #[test]
    fn worker_builds_the_ordered_coordinator_list() {
        let o = parse_worker_args(&["--connect", "a:1"]).unwrap();
        assert_eq!(o.connect, vec!["a:1"]);
        let o = parse_worker_args(&["--connect", "a:1,b:2", "--workers", "4"]).unwrap();
        assert_eq!(o.connect, vec!["a:1", "b:2"]);
        assert_eq!(o.workers, 4);
        let o = parse_worker_args(&["--connect", "a:1", "--connect", "b:2"]).unwrap();
        assert_eq!(o.connect, vec!["a:1", "b:2"]);

        let e = parse_worker_args(&[] as &[&str]).unwrap_err();
        assert!(e.contains("--connect"), "{e}");
        let e = parse_worker_args(&["--connect", "a:1,,b:2"]).unwrap_err();
        assert!(e.contains("empty address"), "{e}");
        let e = parse_worker_args(&["--connect", "a:1", "stray"]).unwrap_err();
        assert!(e.contains("unexpected argument"), "{e}");
    }
}
