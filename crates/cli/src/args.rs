//! Argument validation for the `parcolor` binary — pure functions that
//! return `Result` instead of panicking, so the binary can print one
//! friendly diagnostic and exit with a meaningful status (2 for usage
//! errors, 1 for runtime failures) and tests can assert on the messages.

use parcolor_core::SimdPath;

/// Validated options for `parcolor solve`.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOpts {
    /// Input graph path (`.col`).
    pub input: String,
    /// Output coloring path (`-o`), stdout when absent.
    pub out: Option<String>,
    /// Randomized mode key (`--randomized <key>`); deterministic when absent.
    pub randomized: Option<u64>,
    /// PRG seed length (`--seed-bits`, default 6).
    pub seed_bits: u32,
    /// Worker threads (`--workers`, default 0 = auto).
    pub workers: usize,
    /// Forced SIMD kernel path (`--simd`, default `None` = auto:
    /// `PARCOLOR_SIMD` env, else runtime detection).  Bit-identical
    /// results on every path — a throughput/testing knob.
    pub simd: Option<SimdPath>,
}

/// Seed lengths outside this range are either degenerate or blow the
/// exhaustive/fixed-subset search past any practical budget.
pub const SEED_BITS_RANGE: std::ops::RangeInclusive<u32> = 1..=24;

fn parsed<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects a number, got {value:?}"))
}

/// Parse and validate the arguments of `parcolor solve` (everything
/// after the subcommand).  Errors are complete sentences ready for
/// `eprintln!` — no panics on malformed input.
pub fn parse_solve_args<S: AsRef<str>>(args: &[S]) -> Result<SolveOpts, String> {
    let mut opts = SolveOpts {
        input: String::new(),
        out: None,
        randomized: None,
        seed_bits: 6,
        workers: 0,
        simd: None,
    };
    let mut seen_seed_bits = false;
    let mut seen_simd = false;
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next().ok_or(format!("{flag} requires a value"))
        };
        match arg {
            "-o" => {
                let v = value_of("-o")?;
                if opts.out.replace(v.to_string()).is_some() {
                    return Err("-o given twice".into());
                }
            }
            "--randomized" => {
                let v = value_of("--randomized")?;
                if opts
                    .randomized
                    .replace(parsed("--randomized", v)?)
                    .is_some()
                {
                    return Err("--randomized given twice".into());
                }
            }
            "--seed-bits" => {
                if seen_seed_bits {
                    return Err("--seed-bits given twice".into());
                }
                seen_seed_bits = true;
                opts.seed_bits = parsed("--seed-bits", value_of("--seed-bits")?)?;
            }
            "--workers" => {
                opts.workers = parsed("--workers", value_of("--workers")?)?;
            }
            "--simd" => {
                if seen_simd {
                    return Err("--simd given twice".into());
                }
                seen_simd = true;
                let v = value_of("--simd")?;
                if !v.eq_ignore_ascii_case("auto") {
                    opts.simd = Some(SimdPath::parse(v).ok_or(format!(
                        "--simd expects scalar|avx2|avx512|neon|auto, got {v:?}"
                    ))?);
                }
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("unknown flag {flag}"));
            }
            positional => {
                if !opts.input.is_empty() {
                    return Err(format!(
                        "unexpected extra argument {positional:?} (input is {:?})",
                        opts.input
                    ));
                }
                opts.input = positional.to_string();
            }
        }
    }
    if opts.input.is_empty() {
        return Err("missing input graph (expected a .col path)".into());
    }
    if !SEED_BITS_RANGE.contains(&opts.seed_bits) {
        return Err(format!(
            "--seed-bits must be in {}..={}, got {}",
            SEED_BITS_RANGE.start(),
            SEED_BITS_RANGE.end(),
            opts.seed_bits
        ));
    }
    if opts.randomized.is_some() && seen_seed_bits {
        return Err(
            "--randomized and --seed-bits contradict: the randomized solver draws colors \
             directly and never runs the seed search"
                .into(),
        );
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SolveOpts, String> {
        parse_solve_args(args)
    }

    #[test]
    fn accepts_minimal_and_full_invocations() {
        let o = parse(&["g.col"]).unwrap();
        assert_eq!(o.input, "g.col");
        assert_eq!((o.seed_bits, o.workers), (6, 0));
        assert!(o.out.is_none() && o.randomized.is_none());

        let o = parse(&[
            "g.col",
            "-o",
            "c.txt",
            "--seed-bits",
            "10",
            "--workers",
            "4",
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("c.txt"));
        assert_eq!((o.seed_bits, o.workers), (10, 4));

        // Flags may precede the positional.
        let o = parse(&["--workers", "2", "g.col"]).unwrap();
        assert_eq!(o.input, "g.col");
    }

    #[test]
    fn rejects_missing_input() {
        let e = parse(&[]).unwrap_err();
        assert!(e.contains("missing input"), "{e}");
        let e = parse(&["-o", "out.txt"]).unwrap_err();
        assert!(e.contains("missing input"), "{e}");
    }

    #[test]
    fn rejects_malformed_numbers_without_panicking() {
        for bad in [
            vec!["g.col", "--seed-bits", "ten"],
            vec!["g.col", "--workers", "-3"],
            vec!["g.col", "--randomized", "0x12"],
        ] {
            let e = parse(&bad).unwrap_err();
            assert!(e.contains("expects a number"), "{bad:?} -> {e}");
        }
    }

    #[test]
    fn rejects_out_of_range_seed_bits() {
        assert!(parse(&["g.col", "--seed-bits", "0"])
            .unwrap_err()
            .contains("1..=24"));
        assert!(parse(&["g.col", "--seed-bits", "25"])
            .unwrap_err()
            .contains("1..=24"));
        assert!(parse(&["g.col", "--seed-bits", "24"]).is_ok());
    }

    #[test]
    fn rejects_contradictory_flags() {
        let e = parse(&["g.col", "--randomized", "7", "--seed-bits", "8"]).unwrap_err();
        assert!(e.contains("contradict"), "{e}");
        // --randomized alone is fine (default bits are not "given").
        assert!(parse(&["g.col", "--randomized", "7"]).is_ok());
    }

    #[test]
    fn parses_simd_flag() {
        assert_eq!(parse(&["g.col"]).unwrap().simd, None);
        assert_eq!(
            parse(&["g.col", "--simd", "scalar"]).unwrap().simd,
            Some(SimdPath::Scalar)
        );
        assert_eq!(
            parse(&["g.col", "--simd", "AVX2"]).unwrap().simd,
            Some(SimdPath::Avx2)
        );
        // "auto" is accepted and means "no forcing".
        assert_eq!(parse(&["g.col", "--simd", "Auto"]).unwrap().simd, None);
        let e = parse(&["g.col", "--simd", "sse9"]).unwrap_err();
        assert!(e.contains("scalar|avx2|avx512|neon|auto"), "{e}");
        assert!(parse(&["g.col", "--simd", "avx2", "--simd", "auto"])
            .unwrap_err()
            .contains("twice"));
        assert!(parse(&["g.col", "--simd"])
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn rejects_missing_values_unknown_flags_and_duplicates() {
        assert!(parse(&["g.col", "-o"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["g.col", "--seed-bits"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["g.col", "--frobnicate"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse(&["a.col", "b.col"])
            .unwrap_err()
            .contains("unexpected extra argument"));
        assert!(parse(&["g.col", "-o", "a", "-o", "b"])
            .unwrap_err()
            .contains("twice"));
        assert!(parse(&["g.col", "--seed-bits", "8", "--seed-bits", "9"])
            .unwrap_err()
            .contains("twice"));
    }
}
