//! The binary `.pcg` on-disk graph container ("parcolor graph").
//!
//! Text DIMACS is fine for inspection but hopeless at scale: a
//! ten-million-node graph takes minutes to re-parse and triples peak
//! memory while doing so.  `.pcg` stores the CSR arrays **exactly as
//! the solver uses them**, so loading is either one pair of reads
//! (portable path) or zero-copy via `mmap` (little-endian unix), and
//! the dist job codec can ship the same bytes to every worker.
//!
//! ## Layout (version 1, all fields little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"parcolpc"
//!      8     4  version (= 1)
//!     12     4  reserved (= 0)
//!     16     8  n        (node count)
//!     24     8  adj_len  (directed adjacency entries = 2m)
//!     32     8  checksum (splitmix64 fold over offsets then adj words)
//!     40    24  reserved (= 0)
//!     64  8(n+1)  offsets array, u64[n+1]
//!      …  4·adj_len  adjacency array, u32[adj_len]
//! ```
//!
//! The 64-byte header keeps the offsets array 8-byte aligned inside the
//! file, so an `mmap` of the whole file can hand out `&[u64]`/`&[u32]`
//! views with nothing but a bounds-and-alignment check (see
//! `parcolor_local::store`).  The file size is fully determined by the
//! header; any trailing or missing byte is rejected, and the checksum
//! catches in-place corruption.  Loading verifies the checksum first —
//! on the mmap path this also faults every page in once, surfacing I/O
//! errors eagerly instead of mid-solve.

use parcolor_core::Graph;
use parcolor_local::tape::splitmix64;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every `.pcg` file.
pub const PCG_MAGIC: &[u8; 8] = b"parcolpc";
/// Current container version.
pub const PCG_VERSION: u32 = 1;
/// Header size; also the file offset of the offsets array.
pub const PCG_HEADER_LEN: usize = 64;

/// Fold the CSR arrays into a 64-bit integrity checksum.
///
/// A seeded splitmix64 chain over every word: cheap, order-sensitive,
/// and identical whichever storage the words live in.
pub fn checksum_words(offsets: &[u64], adj: &[u32]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for &w in offsets {
        acc = splitmix64(acc ^ w);
    }
    for &w in adj {
        acc = splitmix64(acc ^ w as u64);
    }
    acc
}

/// Serialize `g` as a `.pcg` container.
pub fn write_pcg<W: Write>(mut w: W, g: &Graph) -> std::io::Result<()> {
    let offsets = g.offsets();
    let adj = g.adj();
    let mut header = [0u8; PCG_HEADER_LEN];
    header[0..8].copy_from_slice(PCG_MAGIC);
    header[8..12].copy_from_slice(&PCG_VERSION.to_le_bytes());
    header[16..24].copy_from_slice(&(g.n() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(adj.len() as u64).to_le_bytes());
    header[32..40].copy_from_slice(&checksum_words(offsets, adj).to_le_bytes());
    w.write_all(&header)?;
    // Stream the arrays through a fixed buffer: no second full-size copy.
    let mut buf = Vec::with_capacity(1 << 16);
    for chunk in offsets.chunks(8192) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    for chunk in adj.chunks(16384) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Header fields needed to locate and verify the arrays.
struct PcgHeader {
    n: usize,
    adj_len: usize,
    checksum: u64,
}

/// Parse and sanity-check the header against the total byte length.
fn parse_header(bytes_len: usize, header: &[u8]) -> Result<PcgHeader, String> {
    if header.len() < PCG_HEADER_LEN {
        return Err(format!(
            "pcg: file too short for a header ({} bytes)",
            header.len()
        ));
    }
    if &header[0..8] != PCG_MAGIC {
        return Err("pcg: bad magic (not a .pcg file)".into());
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != PCG_VERSION {
        return Err(format!(
            "pcg: version {version} not supported (this build speaks {PCG_VERSION})"
        ));
    }
    // Reserved fields must be zero in version 1 — strictness keeps them
    // available for future versions and lets corruption anywhere in the
    // header be detected, not just in the meaningful fields.
    if header[12..16].iter().any(|&b| b != 0) || header[40..PCG_HEADER_LEN].iter().any(|&b| b != 0)
    {
        return Err("pcg: nonzero reserved header bytes".into());
    }
    let n = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let adj_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let checksum = u64::from_le_bytes(header[32..40].try_into().unwrap());
    let n = usize::try_from(n).map_err(|_| "pcg: n overflows this platform")?;
    let adj_len = usize::try_from(adj_len).map_err(|_| "pcg: adj_len overflows this platform")?;
    let expect = (n + 1)
        .checked_mul(8)
        .and_then(|ob| adj_len.checked_mul(4).and_then(|ab| ob.checked_add(ab)))
        .and_then(|arrays| arrays.checked_add(PCG_HEADER_LEN))
        .ok_or("pcg: header sizes overflow")?;
    if bytes_len != expect {
        return Err(format!(
            "pcg: file is {bytes_len} bytes but the header promises {expect} (truncated or trailing data)"
        ));
    }
    Ok(PcgHeader {
        n,
        adj_len,
        checksum,
    })
}

/// Decode a `.pcg` byte buffer into an owned graph (portable path; also
/// the job-codec decode).
pub fn read_pcg_bytes(bytes: &[u8]) -> Result<Graph, String> {
    let h = parse_header(bytes.len(), bytes.get(..PCG_HEADER_LEN).unwrap_or(bytes))?;
    let off_end = PCG_HEADER_LEN + (h.n + 1) * 8;
    let offsets: Vec<u64> = bytes[PCG_HEADER_LEN..off_end]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let adj: Vec<u32> = bytes[off_end..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if checksum_words(&offsets, &adj) != h.checksum {
        return Err("pcg: checksum mismatch (corrupt file)".into());
    }
    Graph::from_csr(offsets, adj).map_err(|e| format!("pcg: {e}"))
}

/// Load a `.pcg` file, zero-copy when the platform allows it.
///
/// On little-endian unix the file is mmap'd and the graph borrows the
/// arrays straight from the page cache ([`Graph::is_mapped`] returns
/// `true`); elsewhere it falls back to [`read_pcg_bytes`].  Both paths
/// verify the checksum and yield observationally identical graphs.
pub fn load_pcg(path: &Path) -> Result<Graph, String> {
    #[cfg(all(unix, target_endian = "little"))]
    {
        use parcolor_local::store::{MappedCsr, Mmap};
        use std::sync::Arc;
        let file =
            std::fs::File::open(path).map_err(|e| format!("pcg: cannot open {path:?}: {e}"))?;
        let map = Arc::new(Mmap::map_file(&file)?);
        let h = parse_header(map.len(), map.as_slice())?;
        let csr = MappedCsr::new(
            map,
            PCG_HEADER_LEN,
            h.n + 1,
            PCG_HEADER_LEN + (h.n + 1) * 8,
            h.adj_len,
        )?;
        if checksum_words(csr.offsets(), csr.adj()) != h.checksum {
            return Err("pcg: checksum mismatch (corrupt file)".into());
        }
        Graph::from_mapped(csr).map_err(|e| format!("pcg: {e}"))
    }
    #[cfg(not(all(unix, target_endian = "little")))]
    {
        let bytes = std::fs::read(path).map_err(|e| format!("pcg: cannot read {path:?}: {e}"))?;
        read_pcg_bytes(&bytes)
    }
}

/// Load a `.pcg` file into owned memory regardless of platform — the
/// reference path the mmap loader is tested against.
pub fn load_pcg_owned(path: &Path) -> Result<Graph, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("pcg: cannot read {path:?}: {e}"))?;
    read_pcg_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
    }

    #[test]
    fn roundtrips_in_memory() {
        let g = sample();
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();
        assert_eq!(
            bytes.len(),
            PCG_HEADER_LEN + (g.n() + 1) * 8 + g.adj().len() * 4
        );
        let back = read_pcg_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.offsets(), g.offsets());
        assert_eq!(back.adj(), g.adj());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::empty(3);
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();
        let back = read_pcg_bytes(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn rejects_corruption() {
        let g = sample();
        let mut bytes = Vec::new();
        write_pcg(&mut bytes, &g).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(read_pcg_bytes(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(read_pcg_bytes(&bad_version)
            .unwrap_err()
            .contains("version"));

        let truncated = &bytes[..bytes.len() - 3];
        assert!(read_pcg_bytes(truncated).unwrap_err().contains("truncated"));

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(read_pcg_bytes(&flipped).unwrap_err().contains("checksum"));

        assert!(read_pcg_bytes(&bytes[..10]).unwrap_err().contains("short"));
    }
}
