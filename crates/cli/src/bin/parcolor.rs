//! `parcolor` — deterministic (degree+1)-list coloring from the shell.
//!
//! ```text
//! parcolor solve  <graph.col> [-o coloring.txt] [--randomized <key>] [--seed-bits B]
//!                 [--workers W]
//! parcolor verify <graph.col> <coloring.txt>
//! parcolor gen    <family> <n> <param> [seed] [-o graph.col]
//! parcolor stats  <graph.col>
//! ```
//!
//! `--workers` runs the whole pipeline — seed search, striped round
//! simulation, and the parallel reduces — on W executor workers (0 =
//! auto: `PARCOLOR_THREADS`, or the deprecated `PARCOLOR_SEED_THREADS`
//! alias, else all hardware threads); the chosen seeds — and hence the
//! coloring — are identical at every worker count.
//!
//! Families for `gen`: `gnm` (param = m), `gnp` (param = p·1000),
//! `regular` (param = d), `powerlaw` (param = avg-degree), `ring`,
//! `torus` (param = side).

use parcolor_cli::{instance_of, parse_coloring, parse_dimacs, write_coloring, write_dimacs};
use parcolor_core::{Params, SeedStrategy, Solver};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  parcolor solve  <graph.col> [-o out.txt] [--randomized <key>] [--seed-bits B] [--workers W]\n  parcolor verify <graph.col> <coloring.txt>\n  parcolor gen    <gnm|gnp|regular|powerlaw|ring|torus> <n> <param> [seed] [-o out.col]\n  parcolor stats  <graph.col>"
    );
    exit(2)
}

fn open(path: &str) -> BufReader<File> {
    BufReader::new(File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_solve(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let g = parse_dimacs(open(path)).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let seed_bits: u32 = flag_value(args, "--seed-bits")
        .map(|s| s.parse().expect("--seed-bits"))
        .unwrap_or(6);
    let workers: usize = flag_value(args, "--workers")
        .map(|s| s.parse().expect("--workers"))
        .unwrap_or(0);
    let params = Params::default()
        .with_seed_bits(seed_bits)
        .with_strategy(SeedStrategy::FixedSubset(16))
        .with_workers(workers);
    let sol = match flag_value(args, "--randomized") {
        Some(key) => Solver::randomized(params, key.parse().expect("key")).solve(&inst),
        None => Solver::deterministic(params).solve(&inst),
    };
    inst.verify_coloring(&sol.colors)
        .expect("internal: invalid");
    eprintln!(
        "solved: n={} m={} Δ={}  MPC rounds={}  LOCAL rounds={}  peak machine words={}",
        inst.n(),
        inst.graph.m(),
        inst.graph.max_degree(),
        sol.cost.mpc_rounds,
        sol.cost.local_rounds,
        sol.cost.max_machine_words
    );
    match flag_value(args, "-o") {
        Some(out) => {
            let f = BufWriter::new(File::create(out).expect("create output"));
            write_coloring(f, &sol.colors).expect("write");
            eprintln!("coloring written to {out}");
        }
        None => {
            write_coloring(std::io::stdout().lock(), &sol.colors).expect("write");
        }
    }
}

fn cmd_verify(args: &[String]) {
    let (gp, cp) = match args {
        [g, c, ..] => (g, c),
        _ => usage(),
    };
    let g = parse_dimacs(open(gp)).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let colors = parse_coloring(open(cp), inst.n()).unwrap_or_else(|e| {
        eprintln!("coloring parse error: {e}");
        exit(1)
    });
    match inst.verify_coloring(&colors) {
        Ok(()) => {
            let mut distinct: Vec<u32> = colors.clone();
            distinct.sort_unstable();
            distinct.dedup();
            println!(
                "VALID: {} nodes, {} distinct colors",
                inst.n(),
                distinct.len()
            );
        }
        Err(e) => {
            println!("INVALID: {e}");
            exit(1)
        }
    }
}

fn cmd_gen(args: &[String]) {
    let (family, n, param) = match args {
        [f, n, p, ..] => (
            f.as_str(),
            n.parse::<usize>().expect("n"),
            p.parse::<usize>().expect("param"),
        ),
        _ => usage(),
    };
    let seed: u64 = args
        .get(3)
        .filter(|s| !s.starts_with('-'))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let g = match family {
        "gnm" => parcolor_graphgen::gnm(n, param, seed),
        "gnp" => parcolor_graphgen::gnp(n, param as f64 / 1000.0, seed),
        "regular" => parcolor_graphgen::random_regular(n, param, seed),
        "powerlaw" => parcolor_graphgen::power_law(n, 2.5, param as f64, seed),
        "ring" => parcolor_graphgen::ring(n),
        "torus" => parcolor_graphgen::torus(param, param),
        other => {
            eprintln!("unknown family {other}");
            exit(2)
        }
    };
    let comment = format!("parcolor gen {family} n={n} param={param} seed={seed}");
    match flag_value(args, "-o") {
        Some(out) => {
            let f = BufWriter::new(File::create(out).expect("create output"));
            write_dimacs(f, &g, &comment).expect("write");
            eprintln!("graph written to {out} (n={} m={})", g.n(), g.m());
        }
        None => write_dimacs(std::io::stdout().lock(), &g, &comment).expect("write"),
    }
}

fn cmd_stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let g = parse_dimacs(open(path)).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let (comp, ncomp) = g.components();
    let degsum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
    println!("n          = {}", g.n());
    println!("m          = {}", g.m());
    println!("Δ          = {}", g.max_degree());
    println!("avg degree = {:.2}", degsum as f64 / g.n().max(1) as f64);
    println!("components = {ncomp}");
    let biggest = (0..ncomp)
        .map(|c| comp.iter().filter(|&&x| x == c as u32).count())
        .max()
        .unwrap_or(0);
    println!("largest cc = {biggest}");
}
