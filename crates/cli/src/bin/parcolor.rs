//! `parcolor` — deterministic (degree+1)-list coloring from the shell.
//!
//! ```text
//! parcolor solve       <graph.col|.pcg> [-o coloring.txt] [--randomized <key>] [--seed-bits B]
//!                      [--workers W] [--simd scalar|avx2|avx512|neon|auto]
//! parcolor verify      <graph.col|.pcg> <coloring.txt>
//! parcolor gen         <family> <n> <param> [seed] [-o graph.col|.pcg]
//! parcolor convert     <in.col|.pcg> <out.col|.pcg>
//! parcolor stats       <graph.col|.pcg>
//! parcolor coordinator <graph.col|.pcg> --listen HOST:PORT [--min-workers K] [--seed-bits B]
//!                      [--strategy ex|bw|fs:K|ss:S] [--workers W] [--blocks-per-lease N]
//!                      [--local-patience-ms T] [--lease-timeout-ms T]
//!                      [--heartbeat-timeout-ms T] [-o coloring.txt]
//! parcolor coordinator --listen HOST:PORT --standby PRIMARY:PORT [-o coloring.txt]
//! parcolor worker      --connect HOST:PORT[,HOST:PORT] [--workers W]
//! ```
//!
//! Every graph argument accepts either text DIMACS or the binary `.pcg`
//! container (selected by extension).  `.pcg` is the scale path: graphs
//! load zero-copy via `mmap` on little-endian unix, and `gen -o x.pcg`
//! writes it directly.
//!
//! `--workers` runs the whole pipeline — seed search, striped round
//! simulation, and the parallel reduces — on W executor workers (0 =
//! auto: `PARCOLOR_THREADS`, or the deprecated `PARCOLOR_SEED_THREADS`
//! alias, else all hardware threads); the chosen seeds — and hence the
//! coloring — are identical at every worker count.
//!
//! `--simd` forces a SIMD kernel path (default auto: the
//! `PARCOLOR_SIMD` env var, else runtime CPU detection picks the best of
//! scalar/AVX2/AVX-512/NEON compiled into the binary).  Every path is
//! bit-identical — the flag exists for benchmarking and forced-path
//! testing; the selected path is reported in the solve summary and by
//! `parcolor stats`.
//!
//! `coordinator` serves the deterministic solve to a fleet: workers
//! connect, lease seed ranges, and return grouping-invariant aggregates,
//! so the coloring is bit-identical to `parcolor solve` on one machine —
//! with any number of workers, including zero (the coordinator degrades
//! to the local search if the fleet dies).  With `--standby PRIMARY`
//! the process runs as a hot standby instead: it tails the primary's
//! replication stream and, if the primary dies or hands over, promotes
//! itself and finishes the solve bit-identically — workers given both
//! addresses (`--connect primary,standby`) re-home automatically.  See
//! the `parcolor-dist` crate docs for the protocol, the epoch-fencing
//! rules, and the lease-lifecycle contract.
//!
//! Families for `gen`: `gnm` (param = m), `gnp` (param = p·1000),
//! `regular` (param = d), `powerlaw` (param = avg-degree), `ring`,
//! `torus` (param = side).

use parcolor_cli::args::{parse_coordinator_args, parse_solve_args, parse_worker_args};
use parcolor_cli::job::{decode_job, encode_job};
use parcolor_cli::pcg::write_pcg;
use parcolor_cli::{instance_of, load_graph, parse_coloring, write_coloring, write_dimacs};
use parcolor_core::Graph;
use parcolor_core::{Params, SeedStrategy, Solution, Solver};
use parcolor_dist::{run_standby, run_worker, DistConfig, DistCoordinator};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  parcolor solve       <graph.col|.pcg> [-o out.txt] [--randomized <key>] [--seed-bits B] [--workers W] [--simd P]\n  parcolor verify      <graph.col|.pcg> <coloring.txt>\n  parcolor gen         <gnm|gnp|regular|powerlaw|ring|torus> <n> <param> [seed] [-o out.col|.pcg]\n  parcolor convert     <in.col|.pcg> <out.col|.pcg>\n  parcolor stats       <graph.col|.pcg>\n  parcolor coordinator <graph.col|.pcg> --listen HOST:PORT [--min-workers K] [--seed-bits B] [--strategy S] [--workers W] [--blocks-per-lease N] [--local-patience-ms T] [--lease-timeout-ms T] [--heartbeat-timeout-ms T] [-o out.txt]\n  parcolor coordinator --listen HOST:PORT --standby PRIMARY:PORT [-o out.txt]\n  parcolor worker      --connect HOST:PORT[,HOST:PORT] [--workers W]"
    );
    exit(2)
}

/// Print a usage-level diagnostic for `subcmd` and exit 2.
fn die_usage(subcmd: &str, msg: &str) -> ! {
    eprintln!("parcolor {subcmd}: {msg}");
    eprintln!("(run `parcolor` with no arguments for usage)");
    exit(2)
}

fn open(path: &str) -> BufReader<File> {
    BufReader::new(File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("coordinator") => cmd_coordinator(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn report_solution(inst: &parcolor_core::D1lcInstance, sol: &Solution) {
    eprintln!(
        "solved: n={} m={} Δ={}  MPC rounds={}  LOCAL rounds={}  peak machine words={}  simd={}",
        inst.n(),
        inst.graph.m(),
        inst.graph.max_degree(),
        sol.cost.mpc_rounds,
        sol.cost.local_rounds,
        sol.cost.max_machine_words,
        parcolor_core::simd::active_path()
    );
}

fn emit_coloring(out: Option<&str>, colors: &[u32]) {
    match out {
        Some(out) => {
            let f = BufWriter::new(File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            }));
            write_coloring(f, colors).expect("write");
            eprintln!("coloring written to {out}");
        }
        None => {
            write_coloring(std::io::stdout().lock(), colors).expect("write");
        }
    }
}

fn cmd_solve(args: &[String]) {
    let opts = parse_solve_args(args).unwrap_or_else(|e| die_usage("solve", &e));
    let g = load_graph(&opts.input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let mut params = Params::default()
        .with_seed_bits(opts.seed_bits)
        .with_strategy(SeedStrategy::FixedSubset(16))
        .with_workers(opts.workers);
    if let Some(path) = opts.simd {
        // Validate here for a friendly diagnostic; the solver would
        // otherwise panic on an unavailable path.
        if let Err(e) = parcolor_core::simd::force_path(path) {
            eprintln!("parcolor solve: {e}");
            exit(1);
        }
        params = params.with_simd(path);
    }
    let sol = match opts.randomized {
        Some(key) => Solver::randomized(params, key).solve(&inst),
        None => Solver::deterministic(params).solve(&inst),
    };
    inst.verify_coloring(&sol.colors)
        .expect("internal: invalid");
    report_solution(&inst, &sol);
    emit_coloring(opts.out.as_deref(), &sol.colors);
}

fn print_cluster_stats(stats: &parcolor_dist::DistStats) {
    eprintln!(
        "cluster: searches={} folds={} remote_units={} local_units={} granted={} reissued={} expired={} orphaned={} duplicates={} fenced={} replayed={} evictions={} disconnects={}",
        stats.searches,
        stats.folds,
        stats.remote_units,
        stats.local_units,
        stats.granted,
        stats.reissued,
        stats.expired,
        stats.orphaned,
        stats.duplicates,
        stats.fenced,
        stats.replayed_units,
        stats.evictions,
        stats.disconnects
    );
}

fn cmd_coordinator(args: &[String]) {
    let opts = parse_coordinator_args(args).unwrap_or_else(|e| die_usage("coordinator", &e));
    if let Some(primary) = &opts.standby_of {
        return cmd_standby(&opts, primary);
    }

    let input = opts.input.as_deref().expect("validated primary input");
    let g = load_graph(input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let job = encode_job(&g, opts.seed_bits, opts.strategy);
    // Decode our own encoding: coordinator and workers build (instance,
    // params) through the exact same path, so the replicas cannot
    // disagree on a default the job header doesn't carry.
    let (inst, params) = decode_job(&job).expect("internal: job codec roundtrip");
    let params = params.with_workers(opts.workers);

    let coordinator = Arc::new(
        DistCoordinator::bind(&opts.listen, job, opts.cfg.clone()).unwrap_or_else(|e| {
            eprintln!("cannot listen on {}: {e}", opts.listen);
            exit(1)
        }),
    );
    eprintln!(
        "coordinator listening on {} (waiting for {} worker(s))",
        coordinator.local_addr(),
        opts.cfg.min_workers
    );
    let sol = Solver::deterministic(params)
        .with_seed_searcher(coordinator.clone())
        .solve(&inst);
    inst.verify_coloring(&sol.colors)
        .expect("internal: invalid");
    let stats = coordinator.stats();
    let had_standby = coordinator.connected_standbys() > 0;
    if had_standby {
        // Orderly handover before the Bye broadcast, so an attached
        // standby exits promptly instead of waiting out its reconnect
        // budget.  (It solves the same job and exits — useful when the
        // standby is the one writing the output.)
        coordinator.handover();
    }
    coordinator.shutdown();
    report_solution(&inst, &sol);
    print_cluster_stats(&stats);
    emit_coloring(opts.out.as_deref(), &sol.colors);
}

/// `parcolor coordinator --standby PRIMARY`: tail the primary's
/// replication stream and finish the job if it dies (or hands over).
fn cmd_standby(opts: &parcolor_cli::args::CoordinatorOpts, primary: &str) {
    eprintln!("standby listening on {}, tailing {primary}", opts.listen);
    let workers = opts.workers;
    let outcome = run_standby(&opts.listen, primary, opts.cfg.clone(), |job, searcher| {
        let (inst, params) = decode_job(job).unwrap_or_else(|e| {
            eprintln!("primary sent an undecodable job: {e}");
            exit(1)
        });
        let sol = Solver::deterministic(params.with_workers(workers))
            .with_seed_searcher(searcher.clone())
            .solve(&inst);
        inst.verify_coloring(&sol.colors)
            .expect("internal: standby replica produced an invalid coloring");
        (inst, sol)
    });
    let ((inst, sol), standby) = outcome.unwrap_or_else(|e| {
        eprintln!("cannot start standby (primary {primary}): {e}");
        exit(1)
    });
    let st = standby.stats();
    report_solution(&inst, &sol);
    eprintln!(
        "standby: promoted={} promote_epoch={} tailed_selections={} replicated_units={} reconnects={}",
        st.promoted, st.promote_epoch, st.tailed_selections, st.replicated_units, st.reconnects
    );
    if st.promoted {
        print_cluster_stats(&standby.coordinator_stats());
    }
    emit_coloring(opts.out.as_deref(), &sol.colors);
}

fn cmd_worker(args: &[String]) {
    let opts = parse_worker_args(args).unwrap_or_else(|e| die_usage("worker", &e));
    let workers = opts.workers;
    eprintln!("worker connecting to {}", opts.connect.join(", "));
    let outcome = run_worker(&opts.connect, DistConfig::default(), |job, searcher| {
        let (inst, params) = decode_job(job).unwrap_or_else(|e| {
            eprintln!("coordinator sent an undecodable job: {e}");
            exit(1)
        });
        let sol = Solver::deterministic(params.with_workers(workers))
            .with_seed_searcher(searcher.clone())
            .solve(&inst);
        inst.verify_coloring(&sol.colors)
            .expect("internal: replica produced an invalid coloring");
        let stats = searcher.stats();
        eprintln!(
            "worker replica done: n={} served_units={} result_frames={} reconnects={} adopted={} standalone={}",
            inst.n(),
            stats.served_units,
            stats.result_frames,
            stats.reconnects,
            stats.adopted,
            searcher.is_standalone()
        );
        searcher.finish();
    });
    if let Err(e) = outcome {
        eprintln!("cannot join cluster at {}: {e}", opts.connect.join(", "));
        exit(1);
    }
}

fn cmd_verify(args: &[String]) {
    let (gp, cp) = match args {
        [g, c, ..] => (g, c),
        _ => usage(),
    };
    let g = load_graph(gp).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let colors = parse_coloring(open(cp), inst.n()).unwrap_or_else(|e| {
        eprintln!("coloring parse error: {e}");
        exit(1)
    });
    match inst.verify_coloring(&colors) {
        Ok(()) => {
            let mut distinct: Vec<u32> = colors.clone();
            distinct.sort_unstable();
            distinct.dedup();
            println!(
                "VALID: {} nodes, {} distinct colors",
                inst.n(),
                distinct.len()
            );
        }
        Err(e) => {
            println!("INVALID: {e}");
            exit(1)
        }
    }
}

fn cmd_gen(args: &[String]) {
    let (family, n, param) = match args {
        [f, n, p, ..] => (
            f.as_str(),
            n.parse::<usize>().expect("n"),
            p.parse::<usize>().expect("param"),
        ),
        _ => usage(),
    };
    let seed: u64 = args
        .get(3)
        .filter(|s| !s.starts_with('-'))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let g = match family {
        "gnm" => parcolor_graphgen::gnm(n, param, seed),
        "gnp" => parcolor_graphgen::gnp(n, param as f64 / 1000.0, seed),
        "regular" => parcolor_graphgen::random_regular(n, param, seed),
        "powerlaw" => parcolor_graphgen::power_law(n, 2.5, param as f64, seed),
        "ring" => parcolor_graphgen::ring(n),
        "torus" => parcolor_graphgen::torus(param, param),
        other => {
            eprintln!("unknown family {other}");
            exit(2)
        }
    };
    let comment = format!("parcolor gen {family} n={n} param={param} seed={seed}");
    match flag_value(args, "-o") {
        Some(out) => {
            write_graph_file(out, &g, &comment);
            eprintln!("graph written to {out} (n={} m={})", g.n(), g.m());
        }
        None => write_dimacs(std::io::stdout().lock(), &g, &comment).expect("write"),
    }
}

/// Write `g` to `out`, choosing the format by extension (`.pcg` binary,
/// DIMACS otherwise).
fn write_graph_file(out: &str, g: &Graph, comment: &str) {
    let f = BufWriter::new(File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1)
    }));
    if out.ends_with(".pcg") {
        write_pcg(f, g).expect("write");
    } else {
        write_dimacs(f, g, comment).expect("write");
    }
}

fn cmd_convert(args: &[String]) {
    let (input, out) = match args {
        [i, o, ..] => (i.as_str(), o.as_str()),
        _ => usage(),
    };
    let g = load_graph(input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    write_graph_file(out, &g, &format!("converted from {input}"));
    eprintln!(
        "{input} -> {out} (n={} m={}{})",
        g.n(),
        g.m(),
        if g.is_mapped() { ", source mmap'd" } else { "" }
    );
}

fn cmd_stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let g = load_graph(path).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let (comp, ncomp) = g.components();
    let degsum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
    println!("n          = {}", g.n());
    println!("m          = {}", g.m());
    println!("Δ          = {}", g.max_degree());
    println!("avg degree = {:.2}", degsum as f64 / g.n().max(1) as f64);
    println!("components = {ncomp}");
    let biggest = (0..ncomp)
        .map(|c| comp.iter().filter(|&&x| x == c as u32).count())
        .max()
        .unwrap_or(0);
    println!("largest cc = {biggest}");
    let available: Vec<&str> = parcolor_core::simd::available_paths()
        .iter()
        .map(|p| p.name())
        .collect();
    println!(
        "simd path  = {} (available: {})",
        parcolor_core::simd::active_path(),
        available.join(", ")
    );
}
