//! `parcolor` — deterministic (degree+1)-list coloring from the shell.
//!
//! ```text
//! parcolor solve       <graph.col|.pcg> [-o coloring.txt] [--randomized <key>] [--seed-bits B]
//!                      [--workers W] [--simd scalar|avx2|avx512|neon|auto]
//! parcolor verify      <graph.col|.pcg> <coloring.txt>
//! parcolor gen         <family> <n> <param> [seed] [-o graph.col|.pcg]
//! parcolor convert     <in.col|.pcg> <out.col|.pcg>
//! parcolor stats       <graph.col|.pcg>
//! parcolor coordinator <graph.col|.pcg> --listen HOST:PORT [--min-workers K] [--seed-bits B]
//!                      [--strategy ex|bw|fs:K|ss:S] [--workers W] [-o coloring.txt]
//! parcolor worker      --connect HOST:PORT [--workers W]
//! ```
//!
//! Every graph argument accepts either text DIMACS or the binary `.pcg`
//! container (selected by extension).  `.pcg` is the scale path: graphs
//! load zero-copy via `mmap` on little-endian unix, and `gen -o x.pcg`
//! writes it directly.
//!
//! `--workers` runs the whole pipeline — seed search, striped round
//! simulation, and the parallel reduces — on W executor workers (0 =
//! auto: `PARCOLOR_THREADS`, or the deprecated `PARCOLOR_SEED_THREADS`
//! alias, else all hardware threads); the chosen seeds — and hence the
//! coloring — are identical at every worker count.
//!
//! `--simd` forces a SIMD kernel path (default auto: the
//! `PARCOLOR_SIMD` env var, else runtime CPU detection picks the best of
//! scalar/AVX2/AVX-512/NEON compiled into the binary).  Every path is
//! bit-identical — the flag exists for benchmarking and forced-path
//! testing; the selected path is reported in the solve summary and by
//! `parcolor stats`.
//!
//! `coordinator` serves the deterministic solve to a fleet: workers
//! connect, lease seed ranges, and return grouping-invariant aggregates,
//! so the coloring is bit-identical to `parcolor solve` on one machine —
//! with any number of workers, including zero (the coordinator degrades
//! to the local search if the fleet dies).  See the `parcolor-dist`
//! crate docs for the protocol and the lease-lifecycle contract.
//!
//! Families for `gen`: `gnm` (param = m), `gnp` (param = p·1000),
//! `regular` (param = d), `powerlaw` (param = avg-degree), `ring`,
//! `torus` (param = side).

use parcolor_cli::args::parse_solve_args;
use parcolor_cli::job::{decode_job, encode_job, parse_strategy};
use parcolor_cli::pcg::write_pcg;
use parcolor_cli::{instance_of, load_graph, parse_coloring, write_coloring, write_dimacs};
use parcolor_core::Graph;
use parcolor_core::{Params, SeedStrategy, Solution, Solver};
use parcolor_dist::{run_worker, DistConfig, DistCoordinator};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  parcolor solve       <graph.col|.pcg> [-o out.txt] [--randomized <key>] [--seed-bits B] [--workers W] [--simd P]\n  parcolor verify      <graph.col|.pcg> <coloring.txt>\n  parcolor gen         <gnm|gnp|regular|powerlaw|ring|torus> <n> <param> [seed] [-o out.col|.pcg]\n  parcolor convert     <in.col|.pcg> <out.col|.pcg>\n  parcolor stats       <graph.col|.pcg>\n  parcolor coordinator <graph.col|.pcg> --listen HOST:PORT [--min-workers K] [--seed-bits B] [--strategy S] [--workers W] [-o out.txt]\n  parcolor worker      --connect HOST:PORT [--workers W]"
    );
    exit(2)
}

/// Print a usage-level diagnostic for `subcmd` and exit 2.
fn die_usage(subcmd: &str, msg: &str) -> ! {
    eprintln!("parcolor {subcmd}: {msg}");
    eprintln!("(run `parcolor` with no arguments for usage)");
    exit(2)
}

fn open(path: &str) -> BufReader<File> {
    BufReader::new(File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1)
    }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("coordinator") => cmd_coordinator(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        _ => usage(),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn report_solution(inst: &parcolor_core::D1lcInstance, sol: &Solution) {
    eprintln!(
        "solved: n={} m={} Δ={}  MPC rounds={}  LOCAL rounds={}  peak machine words={}  simd={}",
        inst.n(),
        inst.graph.m(),
        inst.graph.max_degree(),
        sol.cost.mpc_rounds,
        sol.cost.local_rounds,
        sol.cost.max_machine_words,
        parcolor_core::simd::active_path()
    );
}

fn emit_coloring(out: Option<&str>, colors: &[u32]) {
    match out {
        Some(out) => {
            let f = BufWriter::new(File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            }));
            write_coloring(f, colors).expect("write");
            eprintln!("coloring written to {out}");
        }
        None => {
            write_coloring(std::io::stdout().lock(), colors).expect("write");
        }
    }
}

fn cmd_solve(args: &[String]) {
    let opts = parse_solve_args(args).unwrap_or_else(|e| die_usage("solve", &e));
    let g = load_graph(&opts.input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let mut params = Params::default()
        .with_seed_bits(opts.seed_bits)
        .with_strategy(SeedStrategy::FixedSubset(16))
        .with_workers(opts.workers);
    if let Some(path) = opts.simd {
        // Validate here for a friendly diagnostic; the solver would
        // otherwise panic on an unavailable path.
        if let Err(e) = parcolor_core::simd::force_path(path) {
            eprintln!("parcolor solve: {e}");
            exit(1);
        }
        params = params.with_simd(path);
    }
    let sol = match opts.randomized {
        Some(key) => Solver::randomized(params, key).solve(&inst),
        None => Solver::deterministic(params).solve(&inst),
    };
    inst.verify_coloring(&sol.colors)
        .expect("internal: invalid");
    report_solution(&inst, &sol);
    emit_coloring(opts.out.as_deref(), &sol.colors);
}

fn cmd_coordinator(args: &[String]) {
    let sub = "coordinator";
    let input = args
        .iter()
        .find(|a| !a.starts_with('-') && is_positional(args, a))
        .unwrap_or_else(|| die_usage(sub, "missing input graph (expected a .col path)"));
    let listen = flag_value(args, "--listen")
        .unwrap_or_else(|| die_usage(sub, "--listen HOST:PORT is required"));
    let min_workers: usize = parse_flag_or(args, "--min-workers", 0, sub);
    let seed_bits: u32 = parse_flag_or(args, "--seed-bits", 6, sub);
    let workers: usize = parse_flag_or(args, "--workers", 0, sub);
    if !parcolor_cli::args::SEED_BITS_RANGE.contains(&seed_bits) {
        die_usage(
            sub,
            &format!("--seed-bits must be in 1..=24, got {seed_bits}"),
        );
    }
    let strategy = match flag_value(args, "--strategy") {
        Some(tok) => parse_strategy(tok).unwrap_or_else(|e| die_usage(sub, &e)),
        None => SeedStrategy::FixedSubset(16),
    };

    let g = load_graph(input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let job = encode_job(&g, seed_bits, strategy);
    // Decode our own encoding: coordinator and workers build (instance,
    // params) through the exact same path, so the replicas cannot
    // disagree on a default the job header doesn't carry.
    let (inst, params) = decode_job(&job).expect("internal: job codec roundtrip");
    let params = params.with_workers(workers);

    let cfg = DistConfig {
        min_workers,
        ..DistConfig::default()
    };
    let coordinator = Arc::new(DistCoordinator::bind(listen, job, cfg).unwrap_or_else(|e| {
        eprintln!("cannot listen on {listen}: {e}");
        exit(1)
    }));
    eprintln!(
        "coordinator listening on {} (waiting for {} worker(s))",
        coordinator.local_addr(),
        min_workers
    );
    let sol = Solver::deterministic(params)
        .with_seed_searcher(coordinator.clone())
        .solve(&inst);
    inst.verify_coloring(&sol.colors)
        .expect("internal: invalid");
    let stats = coordinator.stats();
    coordinator.shutdown();
    report_solution(&inst, &sol);
    eprintln!(
        "cluster: searches={} folds={} remote_units={} local_units={} granted={} reissued={} expired={} orphaned={} duplicates={} evictions={} disconnects={}",
        stats.searches,
        stats.folds,
        stats.remote_units,
        stats.local_units,
        stats.granted,
        stats.reissued,
        stats.expired,
        stats.orphaned,
        stats.duplicates,
        stats.evictions,
        stats.disconnects
    );
    emit_coloring(flag_value(args, "-o"), &sol.colors);
}

/// Is `arg` a positional (i.e. not the value of the flag preceding it)?
fn is_positional(args: &[String], arg: &String) -> bool {
    let i = args
        .iter()
        .position(|a| std::ptr::eq(a, arg))
        .unwrap_or(usize::MAX);
    i == 0 || !args[i - 1].starts_with('-')
}

/// Parse `flag`'s value or exit 2 with a friendly message.
fn parse_flag_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T, sub: &str) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| die_usage(sub, &format!("{flag} expects a number, got {v:?}"))),
    }
}

fn cmd_worker(args: &[String]) {
    let sub = "worker";
    let addr = flag_value(args, "--connect")
        .unwrap_or_else(|| die_usage(sub, "--connect HOST:PORT is required"));
    let workers: usize = parse_flag_or(args, "--workers", 0, sub);
    eprintln!("worker connecting to {addr}");
    let outcome = run_worker(addr, DistConfig::default(), |job, searcher| {
        let (inst, params) = decode_job(job).unwrap_or_else(|e| {
            eprintln!("coordinator sent an undecodable job: {e}");
            exit(1)
        });
        let sol = Solver::deterministic(params.with_workers(workers))
            .with_seed_searcher(searcher.clone())
            .solve(&inst);
        inst.verify_coloring(&sol.colors)
            .expect("internal: replica produced an invalid coloring");
        let stats = searcher.stats();
        eprintln!(
            "worker replica done: n={} served_units={} reconnects={} adopted={} standalone={}",
            inst.n(),
            stats.served_units,
            stats.reconnects,
            stats.adopted,
            searcher.is_standalone()
        );
        searcher.finish();
    });
    if let Err(e) = outcome {
        eprintln!("cannot join cluster at {addr}: {e}");
        exit(1);
    }
}

fn cmd_verify(args: &[String]) {
    let (gp, cp) = match args {
        [g, c, ..] => (g, c),
        _ => usage(),
    };
    let g = load_graph(gp).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let inst = instance_of(g);
    let colors = parse_coloring(open(cp), inst.n()).unwrap_or_else(|e| {
        eprintln!("coloring parse error: {e}");
        exit(1)
    });
    match inst.verify_coloring(&colors) {
        Ok(()) => {
            let mut distinct: Vec<u32> = colors.clone();
            distinct.sort_unstable();
            distinct.dedup();
            println!(
                "VALID: {} nodes, {} distinct colors",
                inst.n(),
                distinct.len()
            );
        }
        Err(e) => {
            println!("INVALID: {e}");
            exit(1)
        }
    }
}

fn cmd_gen(args: &[String]) {
    let (family, n, param) = match args {
        [f, n, p, ..] => (
            f.as_str(),
            n.parse::<usize>().expect("n"),
            p.parse::<usize>().expect("param"),
        ),
        _ => usage(),
    };
    let seed: u64 = args
        .get(3)
        .filter(|s| !s.starts_with('-'))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let g = match family {
        "gnm" => parcolor_graphgen::gnm(n, param, seed),
        "gnp" => parcolor_graphgen::gnp(n, param as f64 / 1000.0, seed),
        "regular" => parcolor_graphgen::random_regular(n, param, seed),
        "powerlaw" => parcolor_graphgen::power_law(n, 2.5, param as f64, seed),
        "ring" => parcolor_graphgen::ring(n),
        "torus" => parcolor_graphgen::torus(param, param),
        other => {
            eprintln!("unknown family {other}");
            exit(2)
        }
    };
    let comment = format!("parcolor gen {family} n={n} param={param} seed={seed}");
    match flag_value(args, "-o") {
        Some(out) => {
            write_graph_file(out, &g, &comment);
            eprintln!("graph written to {out} (n={} m={})", g.n(), g.m());
        }
        None => write_dimacs(std::io::stdout().lock(), &g, &comment).expect("write"),
    }
}

/// Write `g` to `out`, choosing the format by extension (`.pcg` binary,
/// DIMACS otherwise).
fn write_graph_file(out: &str, g: &Graph, comment: &str) {
    let f = BufWriter::new(File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1)
    }));
    if out.ends_with(".pcg") {
        write_pcg(f, g).expect("write");
    } else {
        write_dimacs(f, g, comment).expect("write");
    }
}

fn cmd_convert(args: &[String]) {
    let (input, out) = match args {
        [i, o, ..] => (i.as_str(), o.as_str()),
        _ => usage(),
    };
    let g = load_graph(input).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    write_graph_file(out, &g, &format!("converted from {input}"));
    eprintln!(
        "{input} -> {out} (n={} m={}{})",
        g.n(),
        g.m(),
        if g.is_mapped() { ", source mmap'd" } else { "" }
    );
}

fn cmd_stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let g = load_graph(path).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        exit(1)
    });
    let (comp, ncomp) = g.components();
    let degsum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
    println!("n          = {}", g.n());
    println!("m          = {}", g.m());
    println!("Δ          = {}", g.max_degree());
    println!("avg degree = {:.2}", degsum as f64 / g.n().max(1) as f64);
    println!("components = {ncomp}");
    let biggest = (0..ncomp)
        .map(|c| comp.iter().filter(|&&x| x == c as u32).count())
        .max()
        .unwrap_or(0);
    println!("largest cc = {biggest}");
    let available: Vec<&str> = parcolor_core::simd::available_paths()
        .iter()
        .map(|p| p.name())
        .collect();
    println!(
        "simd path  = {} (available: {})",
        parcolor_core::simd::active_path(),
        available.join(", ")
    );
}
