#![warn(missing_docs)]
//! DIMACS I/O and the `parcolor` CLI's plumbing.
//!
//! Supported formats:
//! * **DIMACS `.col`** (graph coloring challenge format): `c` comment
//!   lines, one `p edge <n> <m>` problem line, `e <u> <v>` edge lines
//!   with **1-based** node ids.
//! * **Binary `.pcg`** (see [`pcg`]): the CSR arrays in a versioned
//!   little-endian container with an integrity checksum, loaded
//!   zero-copy via `mmap` on little-endian unix.  The scale format —
//!   `parcolor convert` translates between the two.
//! * **Coloring files**: one `<node> <color>` pair per line (0-based),
//!   as written by `parcolor solve` and read by `parcolor verify`.

use parcolor_core::{D1lcInstance, Graph, NodeId};
use std::io::{BufRead, Write};

/// Parse a DIMACS `.col` graph from a reader.
pub fn parse_dimacs<R: BufRead>(reader: R) -> Result<Graph, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let kind = parts
                    .next()
                    .ok_or(format!("line {}: missing format", lineno + 1))?;
                if kind != "edge" && kind != "edges" && kind != "col" {
                    return Err(format!(
                        "line {}: unsupported problem type {kind}",
                        lineno + 1
                    ));
                }
                let nn: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(format!("line {}: bad n", lineno + 1))?;
                if n.replace(nn).is_some() {
                    return Err(format!("line {}: duplicate p line", lineno + 1));
                }
            }
            Some("e") => {
                let n = n.ok_or(format!("line {}: e before p", lineno + 1))?;
                let u: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(format!("line {}: bad endpoint", lineno + 1))?;
                let v: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(format!("line {}: bad endpoint", lineno + 1))?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(format!(
                        "line {}: endpoint out of range (1-based)",
                        lineno + 1
                    ));
                }
                if u != v {
                    edges.push(((u - 1) as NodeId, (v - 1) as NodeId));
                }
            }
            Some(other) => {
                return Err(format!("line {}: unknown directive {other}", lineno + 1));
            }
            None => {}
        }
    }
    let n = n.ok_or("missing p line")?;
    Ok(Graph::from_edges(n, &edges))
}

/// Write a graph as DIMACS `.col`.
pub fn write_dimacs<W: Write>(mut w: W, g: &Graph, comment: &str) -> std::io::Result<()> {
    if !comment.is_empty() {
        writeln!(w, "c {comment}")?;
    }
    writeln!(w, "p edge {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

/// Write a coloring as `<node> <color>` lines (0-based).
pub fn write_coloring<W: Write>(mut w: W, colors: &[u32]) -> std::io::Result<()> {
    for (v, c) in colors.iter().enumerate() {
        writeln!(w, "{v} {c}")?;
    }
    Ok(())
}

/// Parse a coloring file produced by [`write_coloring`].
pub fn parse_coloring<R: BufRead>(reader: R, n: usize) -> Result<Vec<u32>, String> {
    let mut colors = vec![u32::MAX; n];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let v: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(format!("line {}: bad node", lineno + 1))?;
        let c: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(format!("line {}: bad color", lineno + 1))?;
        if v >= n {
            return Err(format!("line {}: node {v} out of range", lineno + 1));
        }
        colors[v] = c;
    }
    if let Some(v) = colors.iter().position(|&c| c == u32::MAX) {
        return Err(format!("node {v} has no color assigned"));
    }
    Ok(colors)
}

/// The (Δ+1) instance of a parsed graph — the CLI's default palettes.
pub fn instance_of(g: Graph) -> D1lcInstance {
    D1lcInstance::delta_plus_one(g)
}

/// Load a graph by file extension: `.pcg` binary (mmap'd where the
/// platform allows) or text DIMACS for everything else.
pub fn load_graph(path: &str) -> Result<Graph, String> {
    if path.ends_with(".pcg") {
        pcg::load_pcg(std::path::Path::new(path))
    } else {
        let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        parse_dimacs(std::io::BufReader::new(f))
    }
}

pub mod args;
pub mod job;
pub mod pcg;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "c sample graph\np edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n";

    #[test]
    fn parses_sample() {
        let g = parse_dimacs(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
    }

    #[test]
    fn roundtrip() {
        let g = parse_dimacs(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write_dimacs(&mut buf, &g, "roundtrip").unwrap();
        let g2 = parse_dimacs(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_missing_p() {
        assert!(parse_dimacs(Cursor::new("e 1 2\n")).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(parse_dimacs(Cursor::new("p edge 2 1\ne 1 5\n")).is_err());
        assert!(parse_dimacs(Cursor::new("p edge 2 1\ne 0 1\n")).is_err());
    }

    #[test]
    fn tolerates_self_loops_and_duplicates() {
        let g = parse_dimacs(Cursor::new("p edge 3 3\ne 1 1\ne 1 2\ne 2 1\n")).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn coloring_roundtrip() {
        let colors = vec![0u32, 2, 1];
        let mut buf = Vec::new();
        write_coloring(&mut buf, &colors).unwrap();
        let parsed = parse_coloring(Cursor::new(buf), 3).unwrap();
        assert_eq!(parsed, colors);
    }

    #[test]
    fn coloring_detects_missing_nodes() {
        assert!(parse_coloring(Cursor::new("0 1\n"), 2).is_err());
    }
}
