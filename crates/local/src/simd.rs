//! Explicit SIMD kernels for the hot randomness/clash-scan inner loops —
//! the places where the autovectorizer stops.
//!
//! Everything here is **bit-identical** to its scalar counterpart and
//! selected at **compile time**: when the build targets `x86_64` with
//! AVX2 enabled (the workspace builds with `target-cpu=native`, so any
//! AVX2-capable host qualifies), the kernels lower to intrinsics; on any
//! other target the same function compiles to the plain scalar loop.  No
//! runtime dispatch, no behavioral difference — callers can use these
//! unconditionally and the batch contract (`tape` module docs) is
//! preserved verbatim.
//!
//! Two kernels are exported:
//!
//! * [`splitmix4`] — four independent [`super::tape::splitmix64`] lanes.
//!   AVX2 has no 64-bit lane multiply (`vpmullq` is AVX-512), so the two
//!   mixer multiplies are composed from `vpmuludq` 32×32→64 partial
//!   products — exact arithmetic mod 2⁶⁴, hence bit-identical.
//! * [`lane_eq_mask8`] — the seed-lane clash compare: one `u8` whose bit
//!   `s` says whether two 8-lane `u32` pick rows agree in lane `s`
//!   (`_mm256_cmpeq_epi32` + movemask).

/// Number of 64-bit lanes [`splitmix4`] mixes at once (one AVX2 register).
pub const SPLITMIX_LANES: usize = 4;

#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod imp {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `a.wrapping_mul(b)` per 64-bit lane, from 32×32→64 partials:
    /// `lo(a)·lo(b) + ((hi(a)·lo(b) + lo(a)·hi(b)) << 32)` — the high
    /// cross-product overflow drops out mod 2⁶⁴ exactly like scalar
    /// wrapping multiply.
    #[inline(always)]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b),
            _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// Four [`crate::tape::splitmix64`] lanes (same constants, same
    /// rounds, exact mod-2⁶⁴ arithmetic).
    #[inline(always)]
    pub fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        // SAFETY: guarded by the compile-time `avx2` target feature.
        unsafe {
            let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
            let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
            let golden = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64);
            let mut v = _mm256_loadu_si256(z.as_ptr() as *const __m256i);
            v = _mm256_add_epi64(v, golden);
            v = mul64(_mm256_xor_si256(v, _mm256_srli_epi64::<30>(v)), c1);
            v = mul64(_mm256_xor_si256(v, _mm256_srli_epi64::<27>(v)), c2);
            v = _mm256_xor_si256(v, _mm256_srli_epi64::<31>(v));
            let mut out = [0u64; 4];
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v);
            out
        }
    }

    /// Bit `s` of the result ⇔ `a[s] == b[s]`.
    #[inline(always)]
    pub fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // SAFETY: guarded by the compile-time `avx2` target feature.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
            let eq = _mm256_cmpeq_epi32(va, vb);
            _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u8
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
mod imp {
    /// Four [`crate::tape::splitmix64`] lanes (scalar fallback).
    #[inline(always)]
    pub fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        [
            crate::tape::splitmix64(z[0]),
            crate::tape::splitmix64(z[1]),
            crate::tape::splitmix64(z[2]),
            crate::tape::splitmix64(z[3]),
        ]
    }

    /// Bit `s` of the result ⇔ `a[s] == b[s]` (scalar fallback).
    #[inline(always)]
    pub fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        let mut eq = 0u8;
        for s in 0..8 {
            eq |= u8::from(a[s] == b[s]) << s;
        }
        eq
    }
}

pub use imp::{lane_eq_mask8, splitmix4};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::splitmix64;

    #[test]
    fn splitmix4_matches_scalar() {
        // Probe structured and avalanche-y inputs, including extremes.
        let probes: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 59))
            .chain([0, 1, u64::MAX, u64::MAX - 1, 1u64 << 63])
            .collect();
        for w in probes.chunks(4) {
            let mut z = [0u64; 4];
            z[..w.len()].copy_from_slice(w);
            let got = splitmix4(z);
            for l in 0..4 {
                assert_eq!(got[l], splitmix64(z[l]), "lane {l} of {z:?}");
            }
        }
    }

    #[test]
    fn lane_eq_mask_matches_scalar() {
        let a = [1u32, 2, 3, u32::MAX, 5, 0, 7, 8];
        let mut b = a;
        assert_eq!(lane_eq_mask8(&a, &b), 0xFF);
        b[0] = 9;
        b[3] = 0;
        b[7] = 0;
        assert_eq!(lane_eq_mask8(&a, &b), 0b0111_0110);
        assert_eq!(lane_eq_mask8(&a, &[0; 8]), 0b0010_0000);
    }
}
