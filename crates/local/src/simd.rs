//! Runtime-dispatched SIMD kernels for the hot randomness/clash-scan
//! inner loops — the places where the autovectorizer stops.
//!
//! # The dispatch contract
//!
//! A shipped binary cannot assume the CPU it was compiled on: the
//! workspace builds for **baseline x86-64** (or baseline aarch64) and
//! selects the fastest compiled-in kernel variant **at runtime**:
//!
//! * **Detection once.**  The first call to [`kernels`] (equivalently,
//!   the first dispatched kernel call) probes the CPU with
//!   `is_x86_feature_detected!` and caches the winner in an atomic; every
//!   later call is one relaxed load plus an indirect call.  Hot loops
//!   hoist the [`KernelTable`] once per stripe, so the dispatch cost is
//!   amortized to nothing.
//! * **Override precedence.**  An explicit [`force_path`] call (the
//!   `Params::simd` knob and the CLI `--simd` flag route here) beats the
//!   `PARCOLOR_SIMD` environment variable, which beats auto-detection.
//!   `PARCOLOR_SIMD` accepts `scalar`, `avx2`, `avx512`, `neon`, or
//!   `auto`; naming a path the host cannot run warns to stderr and falls
//!   back to auto-detection (all paths are bit-identical, so the
//!   fallback is a throughput change only).  [`reset_auto`] clears any
//!   cached choice and re-runs the env-then-detect selection.
//! * **Bit-identity.**  Every variant of every kernel produces exactly
//!   the bytes of the scalar reference ([`crate::tape::splitmix64`] and
//!   the scalar compare loop) — integer lane arithmetic is exact, so
//!   colorings, seed selections, and golden hashes do not depend on the
//!   selected path.  `tests/simd_dispatch_equivalence.rs` pins every
//!   runtime-available path against scalar, and the forced-scalar golden
//!   leg pins the whole solver.
//!
//! # Kernel inventory
//!
//! * [`splitmix4`] — four independent [`crate::tape::splitmix64`] lanes.
//!   - *AVX2*: no 64-bit lane multiply exists, so the two mixer
//!     multiplies are composed from `vpmuludq` 32×32→64 partial products
//!     (exact arithmetic mod 2⁶⁴).
//!   - *AVX-512* (F+DQ+VL): `vpmullq` makes each 64-bit multiply one
//!     instruction on the same 256-bit vectors.
//!   - *NEON* (aarch64): the same partial-product composition from
//!     `vmull_u32`/`vmlal_u32`, two lanes per `uint64x2_t`.
//! * [`lane_eq_mask8`] — the seed-lane clash compare: one `u8` whose bit
//!   `s` says whether two 8-lane `u32` pick rows agree in lane `s`.
//!   - *AVX2*: `vpcmpeqd` + movemask.
//!   - *AVX-512*: `vpcmpeqd` straight into a mask register
//!     (`_mm256_cmpeq_epi32_mask`), no movemask round-trip.
//!   - *NEON*: `vceqq_u32` + per-lane bit weights + horizontal add.
//!
//! The batch contract of the `tape` module is preserved verbatim by
//! every variant; callers can use these unconditionally.

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of 64-bit lanes [`splitmix4`] mixes at once.
pub const SPLITMIX_LANES: usize = 4;

/// One selectable kernel implementation family.
///
/// `Scalar` is compiled into every binary; the vector paths exist only
/// on their architecture and are selected at runtime when the CPU
/// supports them.  All paths are bit-identical (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SimdPath {
    /// Portable scalar reference (always available).
    Scalar = 0,
    /// x86-64 AVX2: 256-bit vectors, 64-bit multiplies composed from
    /// 32×32→64 partial products.
    Avx2 = 1,
    /// x86-64 AVX-512 (F+DQ+VL): `vpmullq` single-instruction 64-bit
    /// multiplies and mask-register compares.
    Avx512 = 2,
    /// aarch64 NEON: 128-bit vectors, two 64-bit lanes per register.
    Neon = 3,
}

impl SimdPath {
    /// Every path in preference order, slowest first.
    pub const ALL: [SimdPath; 4] = [
        SimdPath::Scalar,
        SimdPath::Avx2,
        SimdPath::Avx512,
        SimdPath::Neon,
    ];

    /// Canonical lowercase name (`scalar`, `avx2`, `avx512`, `neon`) —
    /// the vocabulary of `PARCOLOR_SIMD` and the CLI `--simd` flag.
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
            SimdPath::Neon => "neon",
        }
    }

    /// Parse a canonical name (case-insensitive).  `None` for unknown
    /// tokens — `auto` is *not* a path; callers map it to detection.
    pub fn parse(s: &str) -> Option<SimdPath> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdPath::Scalar),
            "avx2" => Some(SimdPath::Avx2),
            "avx512" => Some(SimdPath::Avx512),
            "neon" => Some(SimdPath::Neon),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> SimdPath {
        match v {
            0 => SimdPath::Scalar,
            1 => SimdPath::Avx2,
            2 => SimdPath::Avx512,
            3 => SimdPath::Neon,
            other => unreachable!("invalid SimdPath encoding {other}"),
        }
    }
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Four independent [`crate::tape::splitmix64`] lanes.
pub type Splitmix4Fn = fn([u64; SPLITMIX_LANES]) -> [u64; SPLITMIX_LANES];
/// Bit `s` of the result ⇔ `a[s] == b[s]`.
pub type LaneEqMask8Fn = fn(&[u32; 8], &[u32; 8]) -> u8;

/// One path's kernel set.  Hot loops fetch this once per stripe via
/// [`kernels`] and call through the `fn` pointers, so selection costs one
/// predictable indirect call per 4-lane chunk.
pub struct KernelTable {
    /// Which path these kernels implement.
    pub path: SimdPath,
    /// Four [`crate::tape::splitmix64`] lanes at once.
    pub splitmix4: Splitmix4Fn,
    /// 8-lane `u32` equality compare to a bitmask.
    pub lane_eq_mask8: LaneEqMask8Fn,
}

// ---------------------------------------------------------------------
// Scalar reference (every target)
// ---------------------------------------------------------------------

mod scalar {
    /// Four [`crate::tape::splitmix64`] lanes (scalar reference).
    pub(super) fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        [
            crate::tape::splitmix64(z[0]),
            crate::tape::splitmix64(z[1]),
            crate::tape::splitmix64(z[2]),
            crate::tape::splitmix64(z[3]),
        ]
    }

    /// Bit `s` of the result ⇔ `a[s] == b[s]` (scalar reference).
    pub(super) fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        let mut eq = 0u8;
        for s in 0..8 {
            eq |= u8::from(a[s] == b[s]) << s;
        }
        eq
    }
}

// ---------------------------------------------------------------------
// x86-64: AVX2 and AVX-512 variants
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// `a.wrapping_mul(b)` per 64-bit lane, from 32×32→64 partials:
    /// `lo(a)·lo(b) + ((hi(a)·lo(b) + lo(a)·hi(b)) << 32)` — the high
    /// cross-product overflow drops out mod 2⁶⁴ exactly like scalar
    /// wrapping multiply.
    #[inline(always)]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), b),
            _mm256_mul_epu32(a, _mm256_srli_epi64::<32>(b)),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn splitmix4_tf(z: [u64; 4]) -> [u64; 4] {
        let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
        let golden = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let mut v = _mm256_loadu_si256(z.as_ptr() as *const __m256i);
        v = _mm256_add_epi64(v, golden);
        v = mul64(_mm256_xor_si256(v, _mm256_srli_epi64::<30>(v)), c1);
        v = mul64(_mm256_xor_si256(v, _mm256_srli_epi64::<27>(v)), c2);
        v = _mm256_xor_si256(v, _mm256_srli_epi64::<31>(v));
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v);
        out
    }

    #[target_feature(enable = "avx2")]
    unsafe fn lane_eq_mask8_tf(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
        let eq = _mm256_cmpeq_epi32(va, vb);
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u8
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        // SAFETY: this table entry is only reachable after
        // `is_x86_feature_detected!("avx2")` confirmed the CPU.
        unsafe { splitmix4_tf(z) }
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // SAFETY: as above — selection implies detection.
        unsafe { lane_eq_mask8_tf(a, b) }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    unsafe fn splitmix4_tf(z: [u64; 4]) -> [u64; 4] {
        // `vpmullq` (AVX-512 DQ+VL) gives the two mixer multiplies in one
        // instruction each — the whole AVX2 partial-product dance
        // collapses.
        let c1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let c2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
        let golden = _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64);
        let mut v = _mm256_loadu_si256(z.as_ptr() as *const __m256i);
        v = _mm256_add_epi64(v, golden);
        v = _mm256_mullo_epi64(_mm256_xor_si256(v, _mm256_srli_epi64::<30>(v)), c1);
        v = _mm256_mullo_epi64(_mm256_xor_si256(v, _mm256_srli_epi64::<27>(v)), c2);
        v = _mm256_xor_si256(v, _mm256_srli_epi64::<31>(v));
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v);
        out
    }

    #[target_feature(enable = "avx512f,avx512vl")]
    unsafe fn lane_eq_mask8_tf(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // The compare lands directly in a mask register — no float
        // movemask round-trip as on AVX2.
        let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
        _mm256_cmpeq_epi32_mask(va, vb)
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        // SAFETY: this table entry is only reachable after
        // `is_x86_feature_detected!` confirmed avx512f+dq+vl.
        unsafe { splitmix4_tf(z) }
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // SAFETY: as above — selection implies detection.
        unsafe { lane_eq_mask8_tf(a, b) }
    }
}

// ---------------------------------------------------------------------
// aarch64: NEON variants
// ---------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// `a.wrapping_mul(b)` per 64-bit lane from 32×32→64 partials
    /// (`vmull_u32` low halves, `vmlal_u32`-accumulated cross terms
    /// shifted up 32) — exact mod 2⁶⁴, same identity as the AVX2 path.
    #[inline(always)]
    unsafe fn mul64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let lo = vmull_u32(a_lo, b_lo);
        let cross = vmlal_u32(vmull_u32(a_hi, b_lo), a_lo, b_hi);
        vaddq_u64(lo, vshlq_n_u64::<32>(cross))
    }

    #[inline(always)]
    unsafe fn splitmix2(mut v: uint64x2_t) -> uint64x2_t {
        let c1 = vdupq_n_u64(0xBF58_476D_1CE4_E5B9);
        let c2 = vdupq_n_u64(0x94D0_49BB_1331_11EB);
        let golden = vdupq_n_u64(0x9E37_79B9_7F4A_7C15);
        v = vaddq_u64(v, golden);
        v = mul64(veorq_u64(v, vshrq_n_u64::<30>(v)), c1);
        v = mul64(veorq_u64(v, vshrq_n_u64::<27>(v)), c2);
        veorq_u64(v, vshrq_n_u64::<31>(v))
    }

    #[target_feature(enable = "neon")]
    unsafe fn splitmix4_tf(z: [u64; 4]) -> [u64; 4] {
        let lo = splitmix2(vld1q_u64(z.as_ptr()));
        let hi = splitmix2(vld1q_u64(z.as_ptr().add(2)));
        let mut out = [0u64; 4];
        vst1q_u64(out.as_mut_ptr(), lo);
        vst1q_u64(out.as_mut_ptr().add(2), hi);
        out
    }

    #[target_feature(enable = "neon")]
    unsafe fn lane_eq_mask8_tf(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // vceqq yields all-ones lanes; AND with per-lane bit weights and
        // horizontally add to assemble the 8-bit mask.
        let w0: [u32; 4] = [1, 2, 4, 8];
        let w1: [u32; 4] = [16, 32, 64, 128];
        let eq0 = vceqq_u32(vld1q_u32(a.as_ptr()), vld1q_u32(b.as_ptr()));
        let eq1 = vceqq_u32(vld1q_u32(a.as_ptr().add(4)), vld1q_u32(b.as_ptr().add(4)));
        let bits0 = vaddvq_u32(vandq_u32(eq0, vld1q_u32(w0.as_ptr())));
        let bits1 = vaddvq_u32(vandq_u32(eq1, vld1q_u32(w1.as_ptr())));
        (bits0 | bits1) as u8
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn splitmix4(z: [u64; 4]) -> [u64; 4] {
        // SAFETY: NEON is architecturally mandatory on aarch64.
        unsafe { splitmix4_tf(z) }
    }

    /// Safe `fn`-pointer-coercible wrapper.
    pub(super) fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
        // SAFETY: NEON is architecturally mandatory on aarch64.
        unsafe { lane_eq_mask8_tf(a, b) }
    }
}

// ---------------------------------------------------------------------
// Tables, detection, and the cached selection
// ---------------------------------------------------------------------

static SCALAR_TABLE: KernelTable = KernelTable {
    path: SimdPath::Scalar,
    splitmix4: scalar::splitmix4,
    lane_eq_mask8: scalar::lane_eq_mask8,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    path: SimdPath::Avx2,
    splitmix4: avx2::splitmix4,
    lane_eq_mask8: avx2::lane_eq_mask8,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    path: SimdPath::Avx512,
    splitmix4: avx512::splitmix4,
    lane_eq_mask8: avx512::lane_eq_mask8,
};

#[cfg(target_arch = "aarch64")]
static NEON_TABLE: KernelTable = KernelTable {
    path: SimdPath::Neon,
    splitmix4: neon::splitmix4,
    lane_eq_mask8: neon::lane_eq_mask8,
};

/// Can this binary run `path` on this CPU right now?
///
/// `Scalar` is always available; vector paths require both the matching
/// compile target (the variant must exist in the binary) and a runtime
/// CPU probe.
pub fn is_available(path: SimdPath) -> bool {
    match path {
        SimdPath::Scalar => true,
        SimdPath::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        SimdPath::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512dq")
                    && is_x86_feature_detected!("avx512vl")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        SimdPath::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// The kernel table for `path`, or `None` if the host cannot run it.
///
/// This never touches the cached global selection — benchmarks and tests
/// use it to exercise a specific variant without perturbing concurrent
/// callers of [`kernels`].
pub fn kernels_for(path: SimdPath) -> Option<&'static KernelTable> {
    if !is_available(path) {
        return None;
    }
    Some(match path {
        SimdPath::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => &AVX2_TABLE,
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx512 => &AVX512_TABLE,
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => &NEON_TABLE,
        // `is_available` returned true, so the variant exists on this
        // target; the arm is only needed to satisfy exhaustiveness on
        // foreign-arch builds.
        #[allow(unreachable_patterns)]
        other => unreachable!("path {other} unavailable on this target"),
    })
}

/// Every path the host can run, in preference order (scalar first).
pub fn available_paths() -> Vec<SimdPath> {
    SimdPath::ALL
        .into_iter()
        .filter(|&p| is_available(p))
        .collect()
}

/// The best path auto-detection would pick (ignores overrides).
pub fn detected_path() -> SimdPath {
    *available_paths()
        .last()
        .expect("scalar is always available")
}

/// Cached selection: `UNSET` until the first dispatch (or an explicit
/// [`force_path`]); afterwards a `SimdPath as u8`.
const UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

/// The active kernel table — one relaxed atomic load after the one-time
/// selection.  Hot loops should hoist this once per stripe.
#[inline]
pub fn kernels() -> &'static KernelTable {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v == UNSET {
        return select_slow();
    }
    kernels_for(SimdPath::from_u8(v)).expect("cached path was validated at selection")
}

/// One-time selection: `PARCOLOR_SIMD` env override, else detection.
#[cold]
fn select_slow() -> &'static KernelTable {
    let path = match std::env::var("PARCOLOR_SIMD") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => match SimdPath::parse(&v) {
            Some(p) if is_available(p) => p,
            Some(p) => {
                eprintln!(
                    "parcolor: PARCOLOR_SIMD={p} is not available on this host; \
                         falling back to {} (results are bit-identical either way)",
                    detected_path()
                );
                detected_path()
            }
            None => {
                eprintln!(
                    "parcolor: unknown PARCOLOR_SIMD value {v:?} \
                         (expected scalar|avx2|avx512|neon|auto); auto-detecting"
                );
                detected_path()
            }
        },
        _ => detected_path(),
    };
    // A concurrent force_path wins the race: keep whatever landed first.
    let _ = ACTIVE.compare_exchange(UNSET, path as u8, Ordering::Relaxed, Ordering::Relaxed);
    kernels_for(SimdPath::from_u8(ACTIVE.load(Ordering::Relaxed)))
        .expect("selection stored an available path")
}

/// The path [`kernels`] currently dispatches to (running selection first
/// if it has not happened yet).
pub fn active_path() -> SimdPath {
    kernels().path
}

/// Force dispatch onto `path` for the whole process (overrides env and
/// detection).  Errors if the host cannot run `path`; on error the
/// current selection is left untouched.
pub fn force_path(path: SimdPath) -> Result<(), String> {
    if !is_available(path) {
        return Err(format!(
            "SIMD path {path} is not available on this host (available: {})",
            available_paths()
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    ACTIVE.store(path as u8, Ordering::Relaxed);
    Ok(())
}

/// Drop any forced/cached choice; the next dispatch re-runs the
/// env-then-detect selection.  Intended for tests and benchmarks that
/// iterate paths via [`force_path`].
pub fn reset_auto() {
    ACTIVE.store(UNSET, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Dispatched convenience wrappers
// ---------------------------------------------------------------------

/// Four independent [`crate::tape::splitmix64`] lanes on the active path.
///
/// Stripe loops should hoist [`kernels`] instead of calling this per
/// chunk (saves the atomic load; the indirect call itself predicts
/// perfectly).
#[inline]
pub fn splitmix4(z: [u64; SPLITMIX_LANES]) -> [u64; SPLITMIX_LANES] {
    (kernels().splitmix4)(z)
}

/// Bit `s` of the result ⇔ `a[s] == b[s]`, on the active path.
#[inline]
pub fn lane_eq_mask8(a: &[u32; 8], b: &[u32; 8]) -> u8 {
    (kernels().lane_eq_mask8)(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::splitmix64;

    /// Structured and avalanche-y probe inputs, including extremes.
    fn probes() -> Vec<u64> {
        (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 59))
            .chain([0, 1, u64::MAX, u64::MAX - 1, 1u64 << 63])
            .collect()
    }

    #[test]
    fn every_available_path_splitmix_matches_scalar() {
        for path in available_paths() {
            let t = kernels_for(path).unwrap();
            assert_eq!(t.path, path);
            for w in probes().chunks(4) {
                let mut z = [0u64; 4];
                z[..w.len()].copy_from_slice(w);
                let got = (t.splitmix4)(z);
                for l in 0..4 {
                    assert_eq!(got[l], splitmix64(z[l]), "{path}: lane {l} of {z:?}");
                }
            }
        }
    }

    #[test]
    fn every_available_path_lane_eq_matches_scalar() {
        let a = [1u32, 2, 3, u32::MAX, 5, 0, 7, 8];
        for path in available_paths() {
            let t = kernels_for(path).unwrap();
            let mut b = a;
            assert_eq!((t.lane_eq_mask8)(&a, &b), 0xFF, "{path}");
            b[0] = 9;
            b[3] = 0;
            b[7] = 0;
            assert_eq!((t.lane_eq_mask8)(&a, &b), 0b0111_0110, "{path}");
            assert_eq!((t.lane_eq_mask8)(&a, &[0; 8]), 0b0010_0000, "{path}");
            // Exhaustive single-lane flips against the scalar reference.
            for flip in 0..8 {
                let mut c = a;
                c[flip] ^= 0x8000_0001;
                assert_eq!(
                    (t.lane_eq_mask8)(&a, &c),
                    scalar::lane_eq_mask8(&a, &c),
                    "{path}: flip {flip}"
                );
            }
        }
    }

    #[test]
    fn splitmix4_matches_scalar() {
        // The dispatched wrapper (whatever path is active) is still
        // bit-identical to the reference.
        for w in probes().chunks(4) {
            let mut z = [0u64; 4];
            z[..w.len()].copy_from_slice(w);
            let got = splitmix4(z);
            for l in 0..4 {
                assert_eq!(got[l], splitmix64(z[l]), "lane {l} of {z:?}");
            }
        }
    }

    #[test]
    fn lane_eq_mask_matches_scalar() {
        let a = [1u32, 2, 3, u32::MAX, 5, 0, 7, 8];
        let mut b = a;
        assert_eq!(lane_eq_mask8(&a, &b), 0xFF);
        b[0] = 9;
        b[3] = 0;
        b[7] = 0;
        assert_eq!(lane_eq_mask8(&a, &b), 0b0111_0110);
        assert_eq!(lane_eq_mask8(&a, &[0; 8]), 0b0010_0000);
    }

    #[test]
    fn scalar_is_always_available_and_preference_order_holds() {
        let paths = available_paths();
        assert_eq!(paths.first(), Some(&SimdPath::Scalar));
        // ALL is ordered slowest-first, so detected_path is the last.
        assert_eq!(detected_path(), *paths.last().unwrap());
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            assert_ne!(
                detected_path(),
                SimdPath::Scalar,
                "an AVX2-capable host must not auto-select scalar"
            );
        }
    }

    #[test]
    fn parse_roundtrips_names() {
        for p in SimdPath::ALL {
            assert_eq!(SimdPath::parse(p.name()), Some(p));
            assert_eq!(SimdPath::parse(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(SimdPath::parse("auto"), None);
        assert_eq!(SimdPath::parse("sse9"), None);
    }

    #[test]
    fn force_and_reset_govern_dispatch() {
        // Global state: this is the only test in the crate that mutates
        // the selection, and every kernel is bit-identical, so a
        // concurrent reader of `kernels()` cannot observe a behavioral
        // difference.
        force_path(SimdPath::Scalar).unwrap();
        assert_eq!(active_path(), SimdPath::Scalar);
        assert_eq!(kernels().path, SimdPath::Scalar);
        for p in available_paths() {
            force_path(p).unwrap();
            assert_eq!(active_path(), p);
        }
        let unavailable = SimdPath::ALL.into_iter().find(|&p| !is_available(p));
        if let Some(p) = unavailable {
            let before = active_path();
            assert!(force_path(p).is_err());
            assert_eq!(active_path(), before, "failed force must not disturb");
        }
        reset_auto();
        // After reset, selection honors PARCOLOR_SIMD then detection.
        let expect = match std::env::var("PARCOLOR_SIMD") {
            Ok(v) => SimdPath::parse(&v)
                .filter(|&p| is_available(p))
                .unwrap_or_else(detected_path),
            Err(_) => detected_path(),
        };
        assert_eq!(active_path(), expect);
    }
}
