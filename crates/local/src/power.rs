//! Graph powers `G^k`.
//!
//! The derandomization framework (Theorem 12 of the paper) needs a proper
//! coloring of `G^{4τ}` so that any two nodes within distance `4τ` receive
//! disjoint chunks of the PRG output.  This module materializes `G^k`
//! explicitly via bounded BFS.  The power graph has maximum degree up to
//! `Δ^k`, so callers must budget for that (the paper budgets `O(Δ^{11τ})`
//! words of machine space; our per-node chunking mode avoids the blow-up at
//! scale — see `parcolor-core::framework::ChunkMode`).

use crate::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Build `G^k`: same nodes, an edge between any pair at distance `1..=k`
/// in `G`.  `k = 0` yields the empty graph; `k = 1` is a copy of `G`.
///
/// Cost: `O(n · Δ^k)` time and output size.
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    if k <= 1 {
        return if k == 0 {
            Graph::empty(g.n())
        } else {
            g.clone()
        };
    }
    let n = g.n();
    let rows: Vec<Vec<NodeId>> = (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            let mut reached = ball(g, v, k);
            reached.retain(|&u| u != v);
            reached
        })
        .collect();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    for r in &rows {
        offsets.push(offsets.last().unwrap() + r.len() as u64);
    }
    let mut adj = Vec::with_capacity(*offsets.last().unwrap() as usize);
    for r in rows {
        adj.extend_from_slice(&r);
    }
    Graph::from_parts(offsets, adj)
}

/// Sorted set of nodes within distance `<= k` of `v` (including `v`).
pub fn ball(g: &Graph, v: NodeId, k: usize) -> Vec<NodeId> {
    let mut frontier = vec![v];
    let mut seen: Vec<NodeId> = vec![v];
    for _ in 0..k {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if seen.binary_search(&w).is_err() {
                    // `seen` must stay sorted for the binary search; insert.
                    let pos = seen.binary_search(&w).unwrap_err();
                    seen.insert(pos, w);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// Exact distance between `u` and `v` up to `limit` hops; `None` if larger.
pub fn bounded_distance(g: &Graph, u: NodeId, v: NodeId, limit: usize) -> Option<usize> {
    if u == v {
        return Some(0);
    }
    let mut frontier = vec![u];
    let mut seen = vec![u];
    for dist in 1..=limit {
        let mut next = Vec::new();
        for &x in &frontier {
            for &w in g.neighbors(x) {
                if w == v {
                    return Some(dist);
                }
                if let Err(pos) = seen.binary_search(&w) {
                    seen.insert(pos, w);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn square_of_path() {
        let g = path(5);
        let g2 = power_graph(&g, 2);
        assert!(g2.has_edge(0, 2));
        assert!(g2.has_edge(1, 3));
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g2.degree(2), 4);
        assert!(g2.validate().is_ok());
    }

    #[test]
    fn power_zero_and_one() {
        let g = path(4);
        assert_eq!(power_graph(&g, 0).m(), 0);
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    fn cube_of_path_is_distance_three() {
        let g = path(6);
        let g3 = power_graph(&g, 3);
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u == v {
                    continue;
                }
                let d = bounded_distance(&g, u, v, 5).unwrap();
                assert_eq!(g3.has_edge(u, v), d <= 3, "u={u} v={v} d={d}");
            }
        }
    }

    #[test]
    fn ball_radius() {
        let g = path(7);
        assert_eq!(ball(&g, 3, 2), vec![1, 2, 3, 4, 5]);
        assert_eq!(ball(&g, 0, 1), vec![0, 1]);
    }

    #[test]
    fn bounded_distance_limits() {
        let g = path(5);
        assert_eq!(bounded_distance(&g, 0, 4, 4), Some(4));
        assert_eq!(bounded_distance(&g, 0, 4, 3), None);
        assert_eq!(bounded_distance(&g, 2, 2, 0), Some(0));
    }
}
