//! Deterministic randomness tapes.
//!
//! Every "random" decision made by a LOCAL procedure in this workspace is a
//! *pure function* of `(node, stream, index)` through a [`Randomness`]
//! source.  This is the key enabler for derandomization by the method of
//! conditional expectations: re-running a procedure under a different seed
//! is just calling the same pure code with a different source, and rayon
//! can evaluate many seeds in parallel with no shared mutable state.
//!
//! Two families of sources exist:
//!
//! * [`CryptoTape`] — a strong keyed mixer standing in for true randomness
//!   (used by the randomized baselines, Lemma 4 of the paper).
//! * PRG-backed tapes (in `parcolor-prg`) — short-seed pseudorandomness
//!   used by the derandomized pipeline (Lemma 10 / Theorem 12).
//!
//! ## The batch contract
//!
//! Hot paths consume randomness through the batch plane — the
//! `fill_words` / `fill_words_seq` / `fill_below` / `fill_bernoulli`
//! methods of [`Randomness`] — rather than one scalar [`Randomness::word`]
//! call at a time.  The contract every implementation must honor:
//!
//! * **Bit-identical to scalar.**  `fill_*` over a stripe must produce
//!   exactly the words/draws that the corresponding scalar calls would:
//!   `fill_words(stream, nodes, idx, out)` ⇔ `out[i] = word(nodes[i],
//!   stream, idx)`, and likewise for the derived draws.  Batching is a
//!   throughput optimization, never a semantic change — the golden tests
//!   and `tests/batch_randomness_equivalence.rs` pin this.
//! * **Lane width is an internal detail.**  Overrides mix fixed-width
//!   lanes the compiler can autovectorize, with a scalar tail; callers
//!   must not observe (or depend on) any particular lane width, and
//!   stripes of every length — including empty — are valid.
//! * **Defaults are correct.**  The trait defaults fall back to scalar
//!   `word` calls (chunked through `fill_words` where that helps), so a
//!   tape only implementing `word` is already a valid, if slower, source.

/// A deterministic source of random words addressed by
/// `(node, stream, index)`.
///
/// * `node` — the node consuming randomness (its PRG *chunk* under
///   derandomization),
/// * `stream` — a caller-chosen label for the invocation (procedure id,
///   round number, retry counter…), so distinct invocations draw
///   independent-looking bits,
/// * `idx` — the position within the node's tape for this stream.
pub trait Randomness: Sync {
    /// The `idx`-th 64-bit word of node `node`'s tape for `stream`.
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64;

    /// Uniform value in `[0, bound)` (bound > 0), from word `idx`.
    ///
    /// Uses the fixed-point multiply trick (Lemire) — avoids modulo bias to
    /// within 2^-64, which is far below every failure probability we track.
    fn below(&self, node: u32, stream: u64, idx: u32, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let w = self.word(node, stream, idx);
        ((w as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`, from word `idx`.
    fn bernoulli(&self, node: u32, stream: u64, idx: u32, p: f64) -> bool {
        let w = self.word(node, stream, idx);
        // Map to [0,1) with 53 bits of precision.
        let u = (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    // -- batch plane -----------------------------------------------------

    /// Word `idx` of `stream` for a stripe of nodes:
    /// `out[i] = word(nodes[i], stream, idx)`.
    ///
    /// The default is the scalar loop; tapes with a known mixer override
    /// it with autovectorizable lanes (bit-identically — see the module
    /// docs for the batch contract).
    fn fill_words(&self, stream: u64, nodes: &[u32], idx: u32, out: &mut [u64]) {
        debug_assert_eq!(nodes.len(), out.len());
        for (o, &v) in out.iter_mut().zip(nodes) {
            *o = self.word(v, stream, idx);
        }
    }

    /// Consecutive words of one node's tape:
    /// `out[i] = word(node, stream, idx0 + i)`.
    ///
    /// The idx-stripe dual of [`Randomness::fill_words`], used by draws
    /// that walk one node's tape (permutation deals, multi-color draws).
    fn fill_words_seq(&self, node: u32, stream: u64, idx0: u32, out: &mut [u64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.word(node, stream, idx0.wrapping_add(i as u32));
        }
    }

    /// Bounded draws for a stripe of nodes with per-node bounds:
    /// `out[i] = below(nodes[i], stream, idx, bounds[i])`.
    ///
    /// Implemented on top of [`Randomness::fill_words`] (the Lemire
    /// reduction is elementwise), so overriding `fill_words` batches this
    /// for free.
    fn fill_below(&self, stream: u64, nodes: &[u32], idx: u32, bounds: &[u64], out: &mut [u64]) {
        debug_assert_eq!(nodes.len(), bounds.len());
        self.fill_words(stream, nodes, idx, out);
        for (o, &b) in out.iter_mut().zip(bounds) {
            debug_assert!(b > 0);
            *o = ((*o as u128 * b as u128) >> 64) as u64;
        }
    }

    /// Bernoulli trials with probability `p` for a stripe of nodes:
    /// `out[i] = bernoulli(nodes[i], stream, idx, p)`.
    ///
    /// Chunks through a stack buffer of [`Randomness::fill_words`] calls,
    /// so overriding `fill_words` batches this for free.
    fn fill_bernoulli(&self, stream: u64, nodes: &[u32], idx: u32, p: f64, out: &mut [bool]) {
        debug_assert_eq!(nodes.len(), out.len());
        let mut buf = [0u64; 64];
        for (nch, och) in nodes.chunks(64).zip(out.chunks_mut(64)) {
            let b = &mut buf[..nch.len()];
            self.fill_words(stream, nch, idx, b);
            for (o, &w) in och.iter_mut().zip(b.iter()) {
                let u = (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                *o = u < p;
            }
        }
    }
}

/// Adapter forcing the scalar default batch methods of an inner tape —
/// the "batching off" mode used by equivalence tests and the scalar legs
/// of the batch benchmarks.  Only [`Randomness::word`] is forwarded, so
/// every `fill_*` call runs the trait defaults over the inner scalar
/// mixer.
pub struct ForceScalar<R>(pub R);

impl<R: Randomness> Randomness for ForceScalar<R> {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        self.0.word(node, stream, idx)
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.  This is the
/// standard constant set from Vigna's `splitmix64`; it is bijective and
/// passes avalanche tests, which is all the tapes need.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-round keyed mixer over a 256-bit input `(key, node, stream, idx)`.
#[inline]
fn mix4(key: u64, node: u32, stream: u64, idx: u32) -> u64 {
    let a = splitmix64(key ^ 0xA076_1D64_78BD_642F);
    let b = splitmix64(a ^ (node as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let c = splitmix64(b ^ stream.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    splitmix64(c ^ (idx as u64).wrapping_mul(0x5897_89E6_C7C0_A791))
}

/// Fixed lane width of the batched mixers.  An internal tuning knob (wide
/// enough for one AVX-512 register of u64 lanes, small enough to stay in
/// registers); exposed only so equivalence tests can probe lane-boundary
/// stripe sizes.  Callers must not depend on its value.
pub const MIX_LANES: usize = 8;

/// A stateless keyed tape built from [`splitmix64`]; stands in for "true"
/// randomness in the randomized baselines.
///
/// Determinism note: two `CryptoTape`s with the same key are identical, so
/// randomized runs are reproducible given their `u64` seed.
#[derive(Clone, Copy, Debug)]
pub struct CryptoTape {
    key: u64,
}

impl CryptoTape {
    /// Tape keyed by `key` (same key ⇒ identical tape).
    pub fn new(key: u64) -> Self {
        CryptoTape { key }
    }
}

impl Randomness for CryptoTape {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        mix4(self.key, node, stream, idx)
    }

    /// [`mix4`] over lanes: the key round is hoisted once per stripe and
    /// the stream/idx products are loop invariants, leaving three
    /// straight-line splitmix rounds per lane — mixed four lanes at a time
    /// by the runtime-dispatched [`crate::simd`] kernel table (AVX2 /
    /// AVX-512 / NEON when the CPU has them, the identical scalar rounds
    /// otherwise), hoisted once per stripe.
    fn fill_words(&self, stream: u64, nodes: &[u32], idx: u32, out: &mut [u64]) {
        debug_assert_eq!(nodes.len(), out.len());
        let k = crate::simd::kernels();
        let a = splitmix64(self.key ^ 0xA076_1D64_78BD_642F);
        let sm = stream.wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
        let im = (idx as u64).wrapping_mul(0x5897_89E6_C7C0_A791);
        let mut node_it = nodes.chunks_exact(crate::simd::SPLITMIX_LANES);
        let mut out_it = out.chunks_exact_mut(crate::simd::SPLITMIX_LANES);
        for (nch, och) in (&mut node_it).zip(&mut out_it) {
            let b = (k.splitmix4)(std::array::from_fn(|l| {
                a ^ (nch[l] as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
            }));
            let c = (k.splitmix4)(std::array::from_fn(|l| b[l] ^ sm));
            let w = (k.splitmix4)(std::array::from_fn(|l| c[l] ^ im));
            och.copy_from_slice(&w);
        }
        for (&v, o) in node_it.remainder().iter().zip(out_it.into_remainder()) {
            let b = splitmix64(a ^ (v as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
            let c = splitmix64(b ^ sm);
            *o = splitmix64(c ^ im);
        }
    }

    /// [`mix4`] along one node's tape: key, node and stream rounds hoisted
    /// once, one splitmix round per output word (four words per dispatched
    /// [`crate::simd`] kernel call).
    fn fill_words_seq(&self, node: u32, stream: u64, idx0: u32, out: &mut [u64]) {
        let k = crate::simd::kernels();
        let a = splitmix64(self.key ^ 0xA076_1D64_78BD_642F);
        let b = splitmix64(a ^ (node as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let c = splitmix64(b ^ stream.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        let mut out_it = out.chunks_exact_mut(crate::simd::SPLITMIX_LANES);
        let mut i = 0u32;
        for och in &mut out_it {
            let w = (k.splitmix4)(std::array::from_fn(|l| {
                let idx = idx0.wrapping_add(i).wrapping_add(l as u32);
                c ^ (idx as u64).wrapping_mul(0x5897_89E6_C7C0_A791)
            }));
            och.copy_from_slice(&w);
            i += crate::simd::SPLITMIX_LANES as u32;
        }
        for o in out_it.into_remainder() {
            let idx = idx0.wrapping_add(i);
            *o = splitmix64(c ^ (idx as u64).wrapping_mul(0x5897_89E6_C7C0_A791));
            i += 1;
        }
    }
}

/// A plain sequential SplitMix64 stream — handy for shuffles and workload
/// generation where positional addressing is unnecessary.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next 64-bit word of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_deterministic() {
        let t1 = CryptoTape::new(42);
        let t2 = CryptoTape::new(42);
        for node in 0..10 {
            for idx in 0..10 {
                assert_eq!(t1.word(node, 7, idx), t2.word(node, 7, idx));
            }
        }
    }

    #[test]
    fn different_keys_differ() {
        let t1 = CryptoTape::new(1);
        let t2 = CryptoTape::new(2);
        let same = (0..100)
            .filter(|&i| t1.word(i, 0, 0) == t2.word(i, 0, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_looking() {
        let t = CryptoTape::new(3);
        let same = (0..1000)
            .filter(|&i| t.word(i, 0, 0) == t.word(i, 1, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let t = CryptoTape::new(5);
        for i in 0..1000 {
            let x = t.below(i, 0, 0, 17);
            assert!(x < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let t = CryptoTape::new(9);
        let mut counts = [0usize; 8];
        for i in 0..80_000u32 {
            counts[t.below(i, 4, 0, 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let t = CryptoTape::new(11);
        let hits = (0..100_000u32)
            .filter(|&i| t.bernoulli(i, 0, 0, 0.1))
            .count();
        assert!((hits as f64 - 10_000.0).abs() < 500.0, "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix::new(123);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batched_words_match_scalar_at_lane_boundaries() {
        let t = CryptoTape::new(0xBEEF);
        for len in [
            0,
            1,
            MIX_LANES - 1,
            MIX_LANES,
            MIX_LANES + 1,
            3 * MIX_LANES + 5,
        ] {
            let nodes: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(2654435761))
                .collect();
            let mut got = vec![0u64; len];
            t.fill_words(7, &nodes, 3, &mut got);
            for (i, &v) in nodes.iter().enumerate() {
                assert_eq!(got[i], t.word(v, 7, 3), "len {len} lane {i}");
            }
        }
    }

    #[test]
    fn batched_seq_matches_scalar() {
        let t = CryptoTape::new(99);
        let mut got = vec![0u64; 21];
        t.fill_words_seq(5, 11, 1000, &mut got);
        for (i, &w) in got.iter().enumerate() {
            assert_eq!(w, t.word(5, 11, 1000 + i as u32));
        }
    }

    #[test]
    fn batched_draws_match_scalar() {
        let t = CryptoTape::new(4242);
        let nodes: Vec<u32> = (0..37).collect();
        let bounds: Vec<u64> = (0..37u64).map(|i| i % 9 + 1).collect();
        let mut below = vec![0u64; 37];
        t.fill_below(2, &nodes, 1, &bounds, &mut below);
        let mut bern = vec![false; 37];
        t.fill_bernoulli(3, &nodes, 0, 0.3, &mut bern);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(below[i], t.below(v, 2, 1, bounds[i]));
            assert_eq!(bern[i], t.bernoulli(v, 3, 0, 0.3));
        }
    }

    #[test]
    fn force_scalar_is_transparent() {
        let t = CryptoTape::new(17);
        let s = ForceScalar(CryptoTape::new(17));
        let nodes: Vec<u32> = (0..MIX_LANES as u32 + 1).collect();
        let mut a = vec![0u64; nodes.len()];
        let mut b = vec![0u64; nodes.len()];
        t.fill_words(5, &nodes, 2, &mut a);
        s.fill_words(5, &nodes, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should flip ~32 output bits on average.
        let mut total = 0u32;
        for x in 0..256u64 {
            let a = splitmix64(x);
            let b = splitmix64(x ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 256.0;
        assert!((avg - 32.0).abs() < 4.0, "avg flipped bits {avg}");
    }
}
