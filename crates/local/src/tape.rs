//! Deterministic randomness tapes.
//!
//! Every "random" decision made by a LOCAL procedure in this workspace is a
//! *pure function* of `(node, stream, index)` through a [`Randomness`]
//! source.  This is the key enabler for derandomization by the method of
//! conditional expectations: re-running a procedure under a different seed
//! is just calling the same pure code with a different source, and rayon
//! can evaluate many seeds in parallel with no shared mutable state.
//!
//! Two families of sources exist:
//!
//! * [`CryptoTape`] — a strong keyed mixer standing in for true randomness
//!   (used by the randomized baselines, Lemma 4 of the paper).
//! * PRG-backed tapes (in `parcolor-prg`) — short-seed pseudorandomness
//!   used by the derandomized pipeline (Lemma 10 / Theorem 12).

/// A deterministic source of random words addressed by
/// `(node, stream, index)`.
///
/// * `node` — the node consuming randomness (its PRG *chunk* under
///   derandomization),
/// * `stream` — a caller-chosen label for the invocation (procedure id,
///   round number, retry counter…), so distinct invocations draw
///   independent-looking bits,
/// * `idx` — the position within the node's tape for this stream.
pub trait Randomness: Sync {
    /// The `idx`-th 64-bit word of node `node`'s tape for `stream`.
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64;

    /// Uniform value in `[0, bound)` (bound > 0), from word `idx`.
    ///
    /// Uses the fixed-point multiply trick (Lemire) — avoids modulo bias to
    /// within 2^-64, which is far below every failure probability we track.
    fn below(&self, node: u32, stream: u64, idx: u32, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let w = self.word(node, stream, idx);
        ((w as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`, from word `idx`.
    fn bernoulli(&self, node: u32, stream: u64, idx: u32, p: f64) -> bool {
        let w = self.word(node, stream, idx);
        // Map to [0,1) with 53 bits of precision.
        let u = (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.  This is the
/// standard constant set from Vigna's `splitmix64`; it is bijective and
/// passes avalanche tests, which is all the tapes need.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-round keyed mixer over a 256-bit input `(key, node, stream, idx)`.
#[inline]
fn mix4(key: u64, node: u32, stream: u64, idx: u32) -> u64 {
    let a = splitmix64(key ^ 0xA076_1D64_78BD_642F);
    let b = splitmix64(a ^ (node as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
    let c = splitmix64(b ^ stream.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    splitmix64(c ^ (idx as u64).wrapping_mul(0x5897_89E6_C7C0_A791))
}

/// A stateless keyed tape built from [`splitmix64`]; stands in for "true"
/// randomness in the randomized baselines.
///
/// Determinism note: two `CryptoTape`s with the same key are identical, so
/// randomized runs are reproducible given their `u64` seed.
#[derive(Clone, Copy, Debug)]
pub struct CryptoTape {
    key: u64,
}

impl CryptoTape {
    /// Tape keyed by `key` (same key ⇒ identical tape).
    pub fn new(key: u64) -> Self {
        CryptoTape { key }
    }
}

impl Randomness for CryptoTape {
    #[inline]
    fn word(&self, node: u32, stream: u64, idx: u32) -> u64 {
        mix4(self.key, node, stream, idx)
    }
}

/// A plain sequential SplitMix64 stream — handy for shuffles and workload
/// generation where positional addressing is unnecessary.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next 64-bit word of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_deterministic() {
        let t1 = CryptoTape::new(42);
        let t2 = CryptoTape::new(42);
        for node in 0..10 {
            for idx in 0..10 {
                assert_eq!(t1.word(node, 7, idx), t2.word(node, 7, idx));
            }
        }
    }

    #[test]
    fn different_keys_differ() {
        let t1 = CryptoTape::new(1);
        let t2 = CryptoTape::new(2);
        let same = (0..100)
            .filter(|&i| t1.word(i, 0, 0) == t2.word(i, 0, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_looking() {
        let t = CryptoTape::new(3);
        let same = (0..1000)
            .filter(|&i| t.word(i, 0, 0) == t.word(i, 1, 0))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let t = CryptoTape::new(5);
        for i in 0..1000 {
            let x = t.below(i, 0, 0, 17);
            assert!(x < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let t = CryptoTape::new(9);
        let mut counts = [0usize; 8];
        for i in 0..80_000u32 {
            counts[t.below(i, 4, 0, 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let t = CryptoTape::new(11);
        let hits = (0..100_000u32)
            .filter(|&i| t.bernoulli(i, 0, 0, 0.1))
            .count();
        assert!((hits as f64 - 10_000.0).abs() < 500.0, "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix::new(123);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should flip ~32 output bits on average.
        let mut total = 0u32;
        for x in 0..256u64 {
            let a = splitmix64(x);
            let b = splitmix64(x ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 256.0;
        assert!((avg - 32.0).abs() < 4.0, "avg flipped bits {avg}");
    }
}
